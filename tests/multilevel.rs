//! Property suite for the multilevel V-cycle (DESIGN.md §14).
//!
//! The invariants, checked over random small instances and hand-shaped
//! hierarchical ones:
//!
//! * **contraction accounting** — every level preserves total area
//!   exactly (cluster area = sum of member areas), maps each fine net
//!   either to the coarse net holding its deduplicated cluster image or
//!   to [`DROPPED_NET`] when it became cluster-internal, and reports
//!   `merges = fine modules − clusters`;
//! * **pins survive** — a module fixed to a block is on that block in
//!   the final flat k-way partition, however many levels it was
//!   contracted through;
//! * **refinement is monotone** — the final flat ratio never exceeds
//!   the pure projection of the coarsest partition (bipartition route),
//!   and the final k-way cut never exceeds the coarse cut;
//! * **flat oracle** — with `coarsen_target ≥ n` the V-cycle is
//!   bit-identical to the flat hybrid pipeline: same sides, same cut,
//!   same metered spend (the debug-mode oracle contract);
//! * **determinism** — identical output at 1, 2 and 8 threads;
//! * **budget grace** — a tripping meter either errors before any
//!   partition exists or degrades to exact projection, never panics and
//!   never returns a result worse than the projection floor.
//!
//! Cut claims are cross-checked against the brute-force recount in
//! `np_testkit`, which shares no code with the incremental trackers.

use ig_match_repro::core::engine::stages::{IgMatchStage, RatioRefineStage};
use ig_match_repro::core::engine::{Pipeline, RunContext, Stage};
use ig_match_repro::core::{IgMatchOptions, KwayOptions, PartitionError};
use ig_match_repro::multilevel::{
    coarsen_level, multilevel_ctx, multilevel_kway_ctx, CoarsenConfig, MultilevelOptions,
    DROPPED_NET,
};
use ig_match_repro::netlist::areas::ModuleAreas;
use ig_match_repro::netlist::FixedModules;
use ig_match_repro::{Budget, BudgetMeter, ModuleId, Side};
use np_testkit::{
    banded_hypergraph, check_cases, hierarchical_hypergraph, kway_reference_cut, pinned_instance,
    small_hypergraph,
};

/// Errors a random small instance may legitimately raise: the draw can
/// be too small, too degenerate or genuinely infeasible. Anything else
/// is a bug.
fn acceptable(err: &PartitionError) -> bool {
    matches!(
        err,
        PartitionError::TooSmall { .. }
            | PartitionError::Degenerate
            | PartitionError::InvalidInput { .. }
            | PartitionError::Eigen(_)
    )
}

/// Final bipartition sides as k-way labels for the reference recount.
fn side_labels(sides: &[Side]) -> Vec<u32> {
    sides.iter().map(|s| (*s == Side::Right) as u32).collect()
}

#[test]
fn contraction_preserves_area_and_net_accounting() {
    for absorb in [false, true] {
        check_cases(32, 0xC0A2_5E11 + absorb as u64, |g| {
            let hg = small_hypergraph(g);
            let n = hg.num_modules();
            let areas = ModuleAreas::new(g.vec_with(n, n, |g| g.f64_in(0.5, 2.0)));
            let fixed = FixedModules::free(n);
            let cfg = CoarsenConfig {
                // bind the cap sometimes so refused merges are exercised
                max_cluster_area: if absorb {
                    areas.total() / 2.0
                } else {
                    f64::INFINITY
                },
                absorb_unmatched: absorb,
                ..Default::default()
            };
            let level = coarsen_level(&hg, &areas, &fixed, &cfg);
            let coarse_n = level.coarse.num_modules();
            assert_eq!(level.merges, n - coarse_n, "merges count the shrink");

            // cluster area = sum of member areas, total preserved
            let mut sums = vec![0.0f64; coarse_n];
            for v in 0..n {
                sums[level.map[v] as usize] += areas.area(ModuleId(v as u32));
            }
            for (c, &expect) in sums.iter().enumerate() {
                let got = level.areas.area(ModuleId(c as u32));
                assert!(
                    (got - expect).abs() <= 1e-9 * expect.max(1.0),
                    "cluster {c}: area {got} != member sum {expect}"
                );
            }
            assert!((level.areas.total() - areas.total()).abs() <= 1e-6 * areas.total().max(1.0));

            // net accounting: dropped iff the cluster image is a single
            // module, otherwise the coarse net *is* that image
            assert_eq!(level.net_map.len(), hg.num_nets());
            let mut dropped = 0usize;
            for net in hg.nets() {
                let mut image: Vec<u32> =
                    hg.pins(net).iter().map(|m| level.map[m.index()]).collect();
                image.sort_unstable();
                image.dedup();
                let mapped = level.net_map[net.index()];
                if image.len() == 1 {
                    assert_eq!(mapped, DROPPED_NET, "internal net must be dropped");
                    dropped += 1;
                } else {
                    let mut coarse_pins: Vec<u32> = level
                        .coarse
                        .pins(ig_match_repro::NetId(mapped))
                        .iter()
                        .map(|m| m.0)
                        .collect();
                    coarse_pins.sort_unstable();
                    assert_eq!(coarse_pins, image, "coarse net must be the cluster image");
                }
            }
            assert_eq!(level.dropped_nets, dropped);
        });
    }
}

#[test]
fn pins_survive_the_kway_vcycle() {
    check_cases(24, 0xF1A7_1E57, |g| {
        let k = g.usize_in(2, 4);
        let (hg, fixed) = pinned_instance(g, k);
        if hg.num_modules() < k {
            return;
        }
        let opts = KwayOptions {
            k,
            epsilon: 1.0,
            fixed: Some(fixed.clone()),
            ..Default::default()
        };
        let mopts = MultilevelOptions {
            coarsen_target: 4,
            refine_passes: 2,
            ..Default::default()
        };
        match multilevel_kway_ctx(&hg, &opts, &mopts, &RunContext::unlimited()) {
            Ok(out) => {
                let labels = out.result.partition.labels();
                for (m, block) in fixed.pins() {
                    assert_eq!(
                        labels[m.index()],
                        block as u32,
                        "module {} pinned to {block} ended on {}",
                        m.index(),
                        labels[m.index()]
                    );
                }
                assert!(
                    out.result.stats.cut_nets <= out.coarse_cut,
                    "k-way refinement worsened the cut"
                );
                assert_eq!(
                    out.result.stats.cut_nets,
                    kway_reference_cut(&hg, labels),
                    "reported cut disagrees with the brute-force recount"
                );
            }
            Err(e) if acceptable(&e) => {}
            Err(e) => panic!("unexpected k-way V-cycle error: {e}"),
        }
    });
}

#[test]
fn refinement_never_worsens_the_projected_partition() {
    check_cases(24, 0x5AFE_C11B, |g| {
        let hg = small_hypergraph(g);
        let mopts = MultilevelOptions {
            coarsen_target: 4,
            refine_passes: 2,
            ..Default::default()
        };
        match multilevel_ctx(&hg, &mopts, &RunContext::unlimited()) {
            Ok(out) => {
                assert!(
                    out.result.ratio() <= out.projected_ratio + 1e-9,
                    "final ratio {} above the projection floor {}",
                    out.result.ratio(),
                    out.projected_ratio
                );
                assert_eq!(
                    out.result.stats.cut_nets,
                    kway_reference_cut(&hg, &side_labels(out.result.partition.sides())),
                    "reported cut disagrees with the brute-force recount"
                );
            }
            Err(e) if acceptable(&e) => {}
            Err(e) => panic!("unexpected V-cycle error: {e}"),
        }
    });
}

#[test]
fn vcycle_with_no_levels_is_the_flat_pipeline() {
    let hg = banded_hypergraph(11, 400, 320, 8);
    let mopts = MultilevelOptions {
        coarsen_target: usize::MAX,
        ..Default::default()
    };
    let meter = BudgetMeter::new(&Budget::default());
    let ctx = RunContext::with_meter(&meter);
    let out = multilevel_ctx(&hg, &mopts, &ctx).expect("flat-path V-cycle partitions");
    assert_eq!(out.levels, 0, "target above n must mean zero levels");
    let spend = meter.matvecs_used();

    let ref_meter = BudgetMeter::new(&Budget::default());
    let ref_ctx = RunContext::with_meter(&ref_meter);
    let reference = Pipeline::named("IG-Match+FM")
        .then(IgMatchStage::new(IgMatchOptions::default()))
        .then(RatioRefineStage::new(
            mopts.flat_refine_passes,
            "IG-Match+FM",
        ))
        .run(&hg, None, &ref_ctx)
        .expect("reference pipeline partitions");

    assert_eq!(
        out.result.partition.sides(),
        reference.partition.sides(),
        "zero-level V-cycle diverged from the flat pipeline"
    );
    assert_eq!(out.result.stats.cut_nets, reference.stats.cut_nets);
    assert_eq!(out.result.stats.left, reference.stats.left);
    assert_eq!(out.result.stats.right, reference.stats.right);
    assert_eq!(
        spend,
        ref_meter.matvecs_used(),
        "metered spend diverged from the flat pipeline"
    );
}

#[test]
fn the_vcycle_is_deterministic_across_thread_counts() {
    let hg = hierarchical_hypergraph(17, 8, 64, 48, 40);
    let mopts = MultilevelOptions {
        coarsen_target: 32,
        refine_passes: 2,
        ..Default::default()
    };
    let reference = multilevel_ctx(&hg, &mopts, &RunContext::unlimited().with_threads(1))
        .expect("V-cycle partitions");
    assert!(reference.levels > 0, "the instance must actually coarsen");
    for threads in [2usize, 8] {
        let out = multilevel_ctx(&hg, &mopts, &RunContext::unlimited().with_threads(threads))
            .expect("V-cycle partitions");
        assert_eq!(out.levels, reference.levels);
        assert_eq!(
            out.result.partition.sides(),
            reference.result.partition.sides(),
            "V-cycle diverged at {threads} threads"
        );
        assert_eq!(out.result.stats.cut_nets, reference.result.stats.cut_nets);
    }

    let kopts = KwayOptions {
        k: 4,
        epsilon: 0.5,
        ..Default::default()
    };
    let kref = multilevel_kway_ctx(
        &hg,
        &kopts,
        &mopts,
        &RunContext::unlimited().with_threads(1),
    )
    .expect("k-way V-cycle partitions");
    for threads in [2usize, 8] {
        let out = multilevel_kway_ctx(
            &hg,
            &kopts,
            &mopts,
            &RunContext::unlimited().with_threads(threads),
        )
        .expect("k-way V-cycle partitions");
        assert_eq!(
            out.result.partition.labels(),
            kref.result.partition.labels(),
            "k-way V-cycle diverged at {threads} threads"
        );
    }
}

#[test]
fn budget_trips_degrade_to_projection_and_never_panic() {
    let hg = hierarchical_hypergraph(23, 6, 32, 24, 16);
    let mopts = MultilevelOptions {
        coarsen_target: 16,
        refine_passes: 4,
        ..Default::default()
    };
    let full = multilevel_ctx(&hg, &mopts, &RunContext::unlimited())
        .expect("unlimited V-cycle partitions");
    assert!(full.levels > 0, "the instance must actually coarsen");

    let mut degraded_seen = false;
    for cap in [1u64, 2, 4, 8, 16, 64, 256, 4096, 1 << 20] {
        let budget = Budget::default().with_matvecs(cap);
        let meter = BudgetMeter::new(&budget);
        let ctx = RunContext::with_meter(&meter);
        match multilevel_ctx(&hg, &mopts, &ctx) {
            Ok(out) => {
                degraded_seen |= out.budget_degraded;
                assert!(
                    out.result.ratio() <= out.projected_ratio + 1e-9,
                    "cap {cap}: result worse than the projection floor"
                );
                assert_eq!(
                    out.result.stats.cut_nets,
                    kway_reference_cut(&hg, &side_labels(out.result.partition.sides())),
                    "cap {cap}: reported cut disagrees with the recount"
                );
            }
            // tripped before any partition existed: the contract says error
            Err(PartitionError::Budget(_)) => {}
            Err(e) => panic!("cap {cap}: unexpected error {e}"),
        }
    }
    // at least one cap must land in the degrade-to-projection window;
    // otherwise this test exercises nothing
    assert!(degraded_seen, "no cap hit the projection-fallback path");
}
