//! Serial-vs-parallel equivalence suite for the sharded spectral kernels.
//!
//! The determinism contract (`DESIGN.md` §10) promises that the
//! `--threads` knob trades wall-clock only: graph builds, eigenpairs,
//! orderings and metered spend are **bit-identical** for every thread
//! count, and operators served from a shared [`OperatorCache`] are
//! indistinguishable from fresh builds. This suite enforces the contract
//! end-to-end at `threads ∈ {1, 2, 8}`, and property-checks the model
//! builders on degenerate netlists (single-pin and duplicate-pin nets).
//!
//! CI runs this file in release mode with `RUST_TEST_THREADS=1` so the
//! kernels' own thread pools are the only parallelism in play.

use ig_match_repro::core::engine::{OperatorCache, RunContext};
use ig_match_repro::core::models::clique::{
    bound_preserving_adjacency, bound_preserving_adjacency_threaded,
};
use ig_match_repro::core::models::{
    clique_adjacency, clique_adjacency_threaded, intersection_adjacency,
    intersection_adjacency_threaded,
};
use ig_match_repro::core::ordering::{spectral_module_ordering_ctx, spectral_net_ordering_ctx};
use ig_match_repro::core::IgWeighting;
use ig_match_repro::eigen::{fiedler, LanczosOptions};
use ig_match_repro::netlist::generate::mcnc_benchmark;
use ig_match_repro::sparse::{BudgetMeter, Laplacian, LinearOperator as _};
use np_testkit::{check_cases, degenerate_hypergraph};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn model_builders_bit_identical_across_thread_counts() {
    let hg = mcnc_benchmark("bm1").expect("suite benchmark").hypergraph;
    let clique = clique_adjacency(&hg);
    let bound = bound_preserving_adjacency(&hg);
    for threads in THREAD_COUNTS {
        assert_eq!(clique, clique_adjacency_threaded(&hg, threads));
        assert_eq!(bound, bound_preserving_adjacency_threaded(&hg, threads));
        for weighting in IgWeighting::ALL {
            assert_eq!(
                intersection_adjacency(&hg, weighting),
                intersection_adjacency_threaded(&hg, weighting, threads),
                "intersection graph differs at {threads} threads ({weighting:?})"
            );
        }
    }
}

#[test]
fn eigenpairs_bit_identical_across_thread_counts() {
    let hg = mcnc_benchmark("bm1").expect("suite benchmark").hypergraph;
    let lap = Laplacian::from_adjacency(clique_adjacency(&hg));
    let opts = LanczosOptions::default();
    let baseline = fiedler(&lap.threaded(1), &opts).expect("serial solve");
    for threads in THREAD_COUNTS {
        let pair = fiedler(&lap.threaded(threads), &opts).expect("threaded solve");
        assert_eq!(
            baseline.value.to_bits(),
            pair.value.to_bits(),
            "eigenvalue differs at {threads} threads"
        );
        assert_eq!(
            baseline.vector, pair.vector,
            "vector differs at {threads} threads"
        );
    }
}

#[test]
fn orderings_and_metered_spend_bit_identical_across_thread_counts() {
    let hg = mcnc_benchmark("bm1").expect("suite benchmark").hypergraph;
    let opts = LanczosOptions::default();
    let mut baseline = None;
    for threads in THREAD_COUNTS {
        let meter = BudgetMeter::unlimited();
        let ctx = RunContext::with_meter(&meter).with_threads(threads);
        let modules = spectral_module_ordering_ctx(&hg, &opts, &ctx).expect("module ordering");
        let nets =
            spectral_net_ordering_ctx(&hg, IgWeighting::Paper, &opts, &ctx).expect("net ordering");
        let spend = meter.matvecs_used();
        match &baseline {
            None => baseline = Some((modules, nets, spend)),
            Some((m, n, s)) => {
                assert_eq!(m, &modules, "module ordering differs at {threads} threads");
                assert_eq!(n, &nets, "net ordering differs at {threads} threads");
                assert_eq!(*s, spend, "metered spend differs at {threads} threads");
            }
        }
    }
}

#[test]
fn shared_operator_cache_matches_fresh_builds() {
    let hg = mcnc_benchmark("bm1").expect("suite benchmark").hypergraph;
    let opts = LanczosOptions::default();
    let fresh =
        spectral_module_ordering_ctx(&hg, &opts, &RunContext::unlimited()).expect("fresh ordering");
    let cache = Arc::new(OperatorCache::new());
    for threads in THREAD_COUNTS {
        let ctx = RunContext::unlimited()
            .with_operator_cache(Arc::clone(&cache))
            .with_threads(threads);
        let cached = spectral_module_ordering_ctx(&hg, &opts, &ctx).expect("cached ordering");
        assert_eq!(
            fresh, cached,
            "cache changed the ordering at {threads} threads"
        );
    }
    // Every context above was served the same operator instance.
    assert!(Arc::ptr_eq(
        &cache.clique_laplacian(&hg, 1),
        &cache.clique_laplacian(&hg, 8),
    ));
}

#[test]
fn model_builders_finite_and_symmetric_on_degenerate_netlists() {
    check_cases(48, 0x57EC, |g| {
        let hg = degenerate_hypergraph(g);
        let mut graphs = vec![
            ("clique", clique_adjacency(&hg)),
            ("bound-preserving", bound_preserving_adjacency(&hg)),
        ];
        for weighting in IgWeighting::ALL {
            graphs.push(("intersection", intersection_adjacency(&hg, weighting)));
        }
        for (name, a) in &graphs {
            assert!(a.is_symmetric(0.0), "{name} adjacency not symmetric");
            for r in 0..a.dim() {
                let (cols, vals) = a.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    assert!(v.is_finite(), "{name} weight not finite at ({r},{c})");
                    assert_ne!(c as usize, r, "{name} has a diagonal entry at {r}");
                }
            }
        }
        // Threaded builds agree with serial even on degenerate inputs.
        for threads in [2, 8] {
            assert_eq!(graphs[0].1, clique_adjacency_threaded(&hg, threads));
            assert_eq!(
                intersection_adjacency(&hg, IgWeighting::Paper),
                intersection_adjacency_threaded(&hg, IgWeighting::Paper, threads)
            );
        }
    });
}
