//! Serial-vs-parallel equivalence suite for the sharded spectral kernels.
//!
//! The determinism contract (`DESIGN.md` §10) promises that the
//! `--threads` knob trades wall-clock only: graph builds, eigenpairs,
//! orderings and metered spend are **bit-identical** for every thread
//! count, and operators served from a shared [`OperatorCache`] are
//! indistinguishable from fresh builds. This suite enforces the contract
//! end-to-end at `threads ∈ {1, 2, 8}`, and property-checks the model
//! builders on degenerate netlists (single-pin and duplicate-pin nets).
//!
//! CI runs this file in release mode with `RUST_TEST_THREADS=1` so the
//! kernels' own thread pools are the only parallelism in play.

use ig_match_repro::core::engine::{OperatorCache, RunContext};
use ig_match_repro::core::models::clique::{
    bound_preserving_adjacency, bound_preserving_adjacency_threaded,
};
use ig_match_repro::core::models::{
    clique_adjacency, clique_adjacency_threaded, intersection_adjacency,
    intersection_adjacency_threaded,
};
use ig_match_repro::core::ordering::{spectral_module_ordering_ctx, spectral_net_ordering_ctx};
use ig_match_repro::core::IgWeighting;
use ig_match_repro::eigen::{fiedler, LanczosOptions};
use ig_match_repro::netlist::generate::mcnc_benchmark;
use ig_match_repro::sparse::{
    shard_ranges, vecops, BudgetMeter, CsrMatrix, Laplacian, LinearOperator as _,
};
use np_testkit::{check_cases, degenerate_hypergraph};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn model_builders_bit_identical_across_thread_counts() {
    let hg = mcnc_benchmark("bm1").expect("suite benchmark").hypergraph;
    let clique = clique_adjacency(&hg);
    let bound = bound_preserving_adjacency(&hg);
    for threads in THREAD_COUNTS {
        assert_eq!(clique, clique_adjacency_threaded(&hg, threads));
        assert_eq!(bound, bound_preserving_adjacency_threaded(&hg, threads));
        for weighting in IgWeighting::ALL {
            assert_eq!(
                intersection_adjacency(&hg, weighting),
                intersection_adjacency_threaded(&hg, weighting, threads),
                "intersection graph differs at {threads} threads ({weighting:?})"
            );
        }
    }
}

#[test]
fn eigenpairs_bit_identical_across_thread_counts() {
    let hg = mcnc_benchmark("bm1").expect("suite benchmark").hypergraph;
    let lap = Laplacian::from_adjacency(clique_adjacency(&hg));
    let opts = LanczosOptions::default();
    let baseline = fiedler(&lap.threaded(1), &opts).expect("serial solve");
    for threads in THREAD_COUNTS {
        let pair = fiedler(&lap.threaded(threads), &opts).expect("threaded solve");
        assert_eq!(
            baseline.value.to_bits(),
            pair.value.to_bits(),
            "eigenvalue differs at {threads} threads"
        );
        assert_eq!(
            baseline.vector, pair.vector,
            "vector differs at {threads} threads"
        );
    }
}

#[test]
fn orderings_and_metered_spend_bit_identical_across_thread_counts() {
    let hg = mcnc_benchmark("bm1").expect("suite benchmark").hypergraph;
    let opts = LanczosOptions::default();
    let mut baseline = None;
    for threads in THREAD_COUNTS {
        let meter = BudgetMeter::unlimited();
        let ctx = RunContext::with_meter(&meter).with_threads(threads);
        let modules = spectral_module_ordering_ctx(&hg, &opts, &ctx).expect("module ordering");
        let nets =
            spectral_net_ordering_ctx(&hg, IgWeighting::Paper, &opts, &ctx).expect("net ordering");
        let spend = meter.matvecs_used();
        match &baseline {
            None => baseline = Some((modules, nets, spend)),
            Some((m, n, s)) => {
                assert_eq!(m, &modules, "module ordering differs at {threads} threads");
                assert_eq!(n, &nets, "net ordering differs at {threads} threads");
                assert_eq!(*s, spend, "metered spend differs at {threads} threads");
            }
        }
    }
}

#[test]
fn shared_operator_cache_matches_fresh_builds() {
    let hg = mcnc_benchmark("bm1").expect("suite benchmark").hypergraph;
    let opts = LanczosOptions::default();
    let fresh =
        spectral_module_ordering_ctx(&hg, &opts, &RunContext::unlimited()).expect("fresh ordering");
    let cache = Arc::new(OperatorCache::new());
    for threads in THREAD_COUNTS {
        let ctx = RunContext::unlimited()
            .with_operator_cache(Arc::clone(&cache))
            .with_threads(threads);
        let cached = spectral_module_ordering_ctx(&hg, &opts, &ctx).expect("cached ordering");
        assert_eq!(
            fresh, cached,
            "cache changed the ordering at {threads} threads"
        );
    }
    // Every context above was served the same operator instance.
    assert!(Arc::ptr_eq(
        &cache.clique_laplacian(&hg, 1),
        &cache.clique_laplacian(&hg, 8),
    ));
}

/// Deterministic LCG-filled vector in `[-1, 1)`.
fn rand_vec(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

#[test]
fn blocked_spmv_bit_identical_to_reference_across_thread_counts() {
    let hg = mcnc_benchmark("bm1").expect("suite benchmark").hypergraph;
    let a = clique_adjacency(&hg);
    let n = a.dim();
    let x = rand_vec(0xB10C, n);
    let mut reference = vec![0.0; n];
    a.apply_rows_unblocked(0, &x, &mut reference);
    // The cache-blocked kernel must agree bit-for-bit at every block
    // width, including widths far below the dispatch threshold.
    for block in [1, 7, 64, 1000, CsrMatrix::SPMV_BLOCK_COLS] {
        let mut out = vec![f64::NAN; n];
        a.apply_rows_blocked(0, &x, &mut out, block);
        assert!(
            reference
                .iter()
                .zip(&out)
                .all(|(p, q)| p.to_bits() == q.to_bits()),
            "blocked SpMV differs from the straight loop at block width {block}"
        );
    }
    // Row-sharded application (the threaded operators' shape) agrees at
    // every thread count, blocked or not.
    for threads in THREAD_COUNTS {
        for block in [None, Some(64), Some(CsrMatrix::SPMV_BLOCK_COLS)] {
            let mut out = vec![f64::NAN; n];
            for (lo, hi) in shard_ranges(n, threads) {
                match block {
                    None => a.apply_rows(lo, &x, &mut out[lo..hi]),
                    Some(b) => a.apply_rows_blocked(lo, &x, &mut out[lo..hi], b),
                }
            }
            assert!(
                reference
                    .iter()
                    .zip(&out)
                    .all(|(p, q)| p.to_bits() == q.to_bits()),
                "sharded SpMV differs at {threads} threads (block {block:?})"
            );
        }
    }
}

#[test]
fn fused_vecops_match_unfused_on_random_and_degenerate_vectors() {
    // Random vectors of awkward lengths plus degenerate shapes: empty,
    // singleton, all zeros, all negative zeros, constant.
    let mut cases: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = [0usize, 1, 3, 64, 257, 1000]
        .iter()
        .map(|&n| (rand_vec(1, n), rand_vec(2, n), rand_vec(3, n)))
        .collect();
    cases.push((vec![0.0; 65], vec![0.0; 65], vec![0.0; 65]));
    cases.push((vec![-0.0; 65], vec![-0.0; 65], vec![-0.0; 65]));
    cases.push((vec![1.25; 33], vec![-2.5; 33], vec![0.5; 33]));
    for (x, y, z) in &cases {
        let n = x.len();
        // axpy-then-dot vs fused axpy_dot: same vector, same scalar.
        let mut plain = y.clone();
        vecops::axpy(0.37, x, &mut plain);
        let want = vecops::dot(z, &plain);
        let mut fused = y.clone();
        let got = vecops::axpy_dot(0.37, x, &mut fused, z);
        assert_eq!(want.to_bits(), got.to_bits(), "axpy_dot scalar at n={n}");
        assert!(
            plain
                .iter()
                .zip(&fused)
                .all(|(p, q)| p.to_bits() == q.to_bits()),
            "axpy_dot vector at n={n}"
        );
        // two axpys vs fused axpy2.
        let mut plain = y.clone();
        vecops::axpy(0.37, x, &mut plain);
        vecops::axpy(-0.81, z, &mut plain);
        let mut fused = y.clone();
        vecops::axpy2(0.37, x, -0.81, z, &mut fused);
        assert!(
            plain
                .iter()
                .zip(&fused)
                .all(|(p, q)| p.to_bits() == q.to_bits()),
            "axpy2 at n={n}"
        );
        // sequential projection sweep vs fused chain.
        let basis = vec![x.clone(), z.clone()];
        let mut plain = y.clone();
        for b in &basis {
            vecops::orthogonalize_against(b, &mut plain);
        }
        let mut fused = y.clone();
        vecops::orthogonalize_fused(&[&basis], &mut fused);
        assert!(
            plain
                .iter()
                .zip(&fused)
                .all(|(p, q)| p.to_bits() == q.to_bits()),
            "orthogonalize_fused at n={n}"
        );
        // The hot-dot dispatch: bit-identical to `dot` by default; under
        // `reassoc-fast` it reassociates, so the contract weakens to a
        // relative tolerance (DESIGN.md §16).
        let exact = vecops::dot(x, y);
        let hot = vecops::dot_hot(x, y);
        if cfg!(feature = "reassoc-fast") {
            let tol = (n as f64).max(1.0) * f64::EPSILON * 64.0 * exact.abs().max(1.0);
            assert!(
                (exact - hot).abs() <= tol,
                "dot_hot out of tolerance at n={n}: {exact} vs {hot}"
            );
        } else {
            assert_eq!(exact.to_bits(), hot.to_bits(), "dot_hot bits at n={n}");
        }
    }
}

#[test]
fn model_builders_finite_and_symmetric_on_degenerate_netlists() {
    check_cases(48, 0x57EC, |g| {
        let hg = degenerate_hypergraph(g);
        let mut graphs = vec![
            ("clique", clique_adjacency(&hg)),
            ("bound-preserving", bound_preserving_adjacency(&hg)),
        ];
        for weighting in IgWeighting::ALL {
            graphs.push(("intersection", intersection_adjacency(&hg, weighting)));
        }
        for (name, a) in &graphs {
            assert!(a.is_symmetric(0.0), "{name} adjacency not symmetric");
            for r in 0..a.dim() {
                let (cols, vals) = a.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    assert!(v.is_finite(), "{name} weight not finite at ({r},{c})");
                    assert_ne!(c as usize, r, "{name} has a diagonal entry at {r}");
                }
            }
        }
        // Threaded builds agree with serial even on degenerate inputs.
        for threads in [2, 8] {
            assert_eq!(graphs[0].1, clique_adjacency_threaded(&hg, threads));
            assert_eq!(
                intersection_adjacency(&hg, IgWeighting::Paper),
                intersection_adjacency_threaded(&hg, IgWeighting::Paper, threads)
            );
        }
    });
}
