//! Equivalence properties for the engine refactor: every context-taking
//! entry point, run with an unlimited budget and the default seed, must
//! be **bit-identical** to the pre-refactor plain function it replaced,
//! and the `Stage` adapters must agree with both. When the plain path
//! errors, the context path must fail with the same error variant.

use ig_match_repro::core::engine::stages::{
    Eig1Stage, FmStage, IgMatchStage, IgVoteStage, KlStage, RcutStage,
};
use ig_match_repro::core::models::clique_adjacency;
use ig_match_repro::core::ordering::{
    spectral_module_ordering, spectral_module_ordering_ctx, spectral_net_ordering,
    spectral_net_ordering_ctx,
};
use ig_match_repro::eigen::LanczosOptions;
use ig_match_repro::hybrid::{
    hybrid_pipeline, ig_match_refined, ig_match_refined_ctx, HybridOptions,
};
use ig_match_repro::netlist::generate::{generate, GeneratorConfig};
use ig_match_repro::{
    eig1, eig1_ctx, fm_bisect, ig_match, ig_match_ctx, ig_vote, ig_vote_ctx, kl_bisect, rcut,
    robust_partition, robust_partition_ctx, Bipartition, BudgetMeter, Eig1Options, FmOptions,
    IgMatchOptions, IgVoteOptions, KlOptions, ModuleId, PartitionError, RcutOptions, RobustOptions,
    RunContext, Side, Stage,
};
use np_testkit::{check_cases, small_hypergraph};
use std::mem::discriminant;

/// Asserts plain and ctx outcomes agree: identical partitions on
/// success, same error variant on failure.
fn assert_equivalent(
    plain: &Result<ig_match_repro::PartitionResult, PartitionError>,
    ctx: &Result<ig_match_repro::PartitionResult, PartitionError>,
    what: &str,
) {
    match (plain, ctx) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.partition, b.partition, "{what}: partitions diverge");
            assert_eq!(a.stats, b.stats, "{what}: stats diverge");
            assert_eq!(a.algorithm, b.algorithm, "{what}: labels diverge");
        }
        (Err(a), Err(b)) => {
            assert_eq!(discriminant(a), discriminant(b), "{what}: {a} vs {b}");
        }
        (a, b) => panic!("{what}: plain {a:?} but ctx {b:?}"),
    }
}

#[test]
fn eig1_ctx_and_stage_match_plain() {
    check_cases(48, 0xE161, |g| {
        let hg = small_hypergraph(g);
        let opts = Eig1Options::default();
        let plain = eig1(&hg, &opts);
        let via_ctx = eig1_ctx(&hg, &opts, &RunContext::unlimited());
        let via_stage = Eig1Stage::new(opts).run(&hg, None, &RunContext::unlimited());
        assert_equivalent(&plain, &via_ctx, "eig1 ctx");
        assert_equivalent(&plain, &via_stage, "eig1 stage");
    });
}

#[test]
fn ig_match_ctx_and_stage_match_plain() {
    check_cases(48, 0x16AC, |g| {
        let hg = small_hypergraph(g);
        let opts = IgMatchOptions::default();
        let plain = ig_match(&hg, &opts);
        let via_ctx = ig_match_ctx(&hg, &opts, &RunContext::unlimited());
        match (&plain, &via_ctx) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.result.partition, b.result.partition);
                assert_eq!(a.matching_size, b.matching_size);
                assert_eq!(a.loser_count, b.loser_count);
            }
            (Err(a), Err(b)) => assert_eq!(discriminant(a), discriminant(b), "{a} vs {b}"),
            (a, b) => panic!("ig_match: plain {a:?} but ctx {b:?}"),
        }
        let via_stage = IgMatchStage::new(opts).run(&hg, None, &RunContext::unlimited());
        assert_equivalent(&plain.map(|o| o.result), &via_stage, "ig_match stage");
    });
}

#[test]
fn ig_vote_ctx_and_stage_match_plain() {
    check_cases(48, 0x1607E, |g| {
        let hg = small_hypergraph(g);
        let opts = IgVoteOptions::default();
        let plain = ig_vote(&hg, &opts);
        let via_ctx = ig_vote_ctx(&hg, &opts, &RunContext::unlimited());
        let via_stage = IgVoteStage::new(opts).run(&hg, None, &RunContext::unlimited());
        assert_equivalent(&plain, &via_ctx, "ig_vote ctx");
        assert_equivalent(&plain, &via_stage, "ig_vote stage");
    });
}

#[test]
fn spectral_orderings_ctx_match_plain() {
    check_cases(48, 0x0DAC, |g| {
        let hg = small_hypergraph(g);
        let opts = LanczosOptions::default();
        let ctx = RunContext::unlimited();
        match (
            spectral_module_ordering(&hg, &opts),
            spectral_module_ordering_ctx(&hg, &opts, &ctx),
        ) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "module orderings diverge"),
            (Err(a), Err(b)) => assert_eq!(discriminant(&a), discriminant(&b)),
            (a, b) => panic!("module ordering: plain {a:?} but ctx {b:?}"),
        }
        let w = ig_match_repro::IgWeighting::Paper;
        match (
            spectral_net_ordering(&hg, w, &opts),
            spectral_net_ordering_ctx(&hg, w, &opts, &ctx),
        ) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "net orderings diverge"),
            (Err(a), Err(b)) => assert_eq!(discriminant(&a), discriminant(&b)),
            (a, b) => panic!("net ordering: plain {a:?} but ctx {b:?}"),
        }
    });
}

#[test]
fn rcut_stage_matches_plain() {
    check_cases(48, 0x2C07, |g| {
        let hg = small_hypergraph(g);
        let opts = RcutOptions::default();
        let plain = rcut(&hg, &opts);
        let via_stage = RcutStage::new(opts)
            .run(&hg, None, &RunContext::unlimited())
            .expect("rcut stage cannot fail on n >= 2");
        assert_eq!(plain.partition, via_stage.partition);
        assert_eq!(plain.stats, via_stage.stats);
    });
}

#[test]
fn fm_stage_matches_plain_from_the_same_seed_partition() {
    check_cases(48, 0xF180, |g| {
        let hg = small_hypergraph(g);
        let opts = FmOptions::default();
        let n = hg.num_modules();
        let start = Bipartition::from_left_set(n, (0..n as u32 / 2).map(ModuleId));
        let plain = fm_bisect(&hg, &start, &opts);
        match FmStage::new(opts).run(&hg, None, &RunContext::unlimited()) {
            Ok(r) => assert_eq!(plain.partition, r.partition),
            // the stage rejects one-sided results the raw function allows
            Err(PartitionError::Degenerate) => {
                let (l, r) = (
                    plain.partition.count(Side::Left),
                    plain.partition.count(Side::Right),
                );
                assert!(l == 0 || r == 0, "stage rejected a two-sided partition");
            }
            Err(e) => panic!("unexpected FM stage error: {e}"),
        }
    });
}

#[test]
fn kl_stage_matches_plain_on_the_clique_graph() {
    check_cases(48, 0x6B1, |g| {
        let hg = small_hypergraph(g);
        let opts = KlOptions::default();
        let plain = kl_bisect(&clique_adjacency(&hg), &opts);
        let via_stage = KlStage::new(opts)
            .run(&hg, None, &RunContext::unlimited())
            .expect("kl stage cannot fail on n >= 2");
        for (i, side) in via_stage.partition.sides().iter().enumerate() {
            assert_eq!(
                *side == Side::Left,
                plain.left[i],
                "module {i} on the wrong side"
            );
        }
    });
}

#[test]
fn hybrid_ctx_and_pipeline_match_plain() {
    let hg = generate(&GeneratorConfig::new(180, 200, 11).with_satellite(0.1, 4));
    let opts = HybridOptions::default();
    let plain = ig_match_refined(&hg, &opts).unwrap();
    let via_ctx = ig_match_refined_ctx(&hg, &opts, &RunContext::unlimited()).unwrap();
    let via_pipeline = hybrid_pipeline(&opts)
        .run(&hg, None, &RunContext::unlimited())
        .unwrap();
    assert_eq!(plain.partition, via_ctx.partition);
    assert_eq!(plain.partition, via_pipeline.partition);
    assert_eq!(via_pipeline.algorithm, "IG-Match+FM");
}

#[test]
fn robust_ctx_matches_plain_and_is_deterministic() {
    check_cases(16, 0x20B5, |g| {
        let hg = small_hypergraph(g);
        let opts = RobustOptions::default();
        let meter = BudgetMeter::new(&opts.budget);
        let via_ctx = robust_partition_ctx(&hg, &opts, &RunContext::with_meter(&meter));
        match (robust_partition(&hg, &opts), via_ctx) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.result.partition, b.result.partition);
                assert_eq!(a.diagnostics.winning_stage, b.diagnostics.winning_stage);
                assert_eq!(a.diagnostics.attempts.len(), b.diagnostics.attempts.len());
            }
            (Err(a), Err(b)) => {
                assert_eq!(discriminant(&a.error), discriminant(&b.error));
            }
            (a, b) => panic!("robust: plain {:?} but ctx {:?}", a.is_ok(), b.is_ok()),
        }
    });
}

#[test]
fn zero_budget_context_trips_every_entry_point() {
    let hg = generate(&GeneratorConfig::new(60, 70, 3));
    let budget = ig_match_repro::Budget::UNLIMITED.with_wall_clock(std::time::Duration::ZERO);
    let meter = BudgetMeter::new(&budget);
    let ctx = RunContext::with_meter(&meter);
    let budgeted = |r: Result<ig_match_repro::PartitionResult, PartitionError>, what: &str| {
        assert!(
            matches!(r, Err(PartitionError::Budget(_))),
            "{what} ignored an exhausted budget"
        );
    };
    budgeted(eig1_ctx(&hg, &Eig1Options::default(), &ctx), "eig1_ctx");
    budgeted(
        ig_match_ctx(&hg, &IgMatchOptions::default(), &ctx).map(|o| o.result),
        "ig_match_ctx",
    );
    budgeted(
        ig_vote_ctx(&hg, &IgVoteOptions::default(), &ctx),
        "ig_vote_ctx",
    );
    budgeted(RcutStage::default().run(&hg, None, &ctx), "RcutStage");
    budgeted(FmStage::default().run(&hg, None, &ctx), "FmStage");
    budgeted(KlStage::default().run(&hg, None, &ctx), "KlStage");
    budgeted(
        ig_match_refined_ctx(&hg, &HybridOptions::default(), &ctx),
        "ig_match_refined_ctx",
    );
}
