//! Cross-algorithm property tests: every partitioner, run on arbitrary
//! generated circuits, must produce valid, consistent, deterministic
//! output, and the documented dominance/never-worse relations must hold.

use ig_match_repro::core::bounds::ratio_cut_lower_bound;
use ig_match_repro::core::cluster::{clustered_ig_match, ClusterOptions};
use ig_match_repro::core::eig1::spectral_bisect;
use ig_match_repro::core::multiway::{recursive_ig_match, MultiwayOptions};
use ig_match_repro::core::placement::module_placement;
use ig_match_repro::hybrid::{ig_match_refined, HybridOptions};
use ig_match_repro::netlist::areas::{area_cut_stats, ModuleAreas};
use ig_match_repro::netlist::generate::{generate, GeneratorConfig};
use ig_match_repro::netlist::named::NamedNetlist;
use ig_match_repro::{
    eig1, ig_match, ig_vote, rcut, Eig1Options, IgMatchOptions, IgVoteOptions, RcutOptions,
};
use np_testkit::{check_cases, Gen};

fn arb_circuit(g: &mut Gen) -> ig_match_repro::Hypergraph {
    let modules = g.usize_in(30, 149);
    let extra = g.usize_in(0, 39);
    let seed = g.u64_below(400);
    let satellite = g.flip();
    let mut cfg = GeneratorConfig::new(modules, modules + extra, seed);
    if satellite {
        cfg = cfg.with_satellite(0.15, 3);
    }
    generate(&cfg)
}

#[test]
fn every_partitioner_valid_and_consistent() {
    check_cases(24, 0xA101, |g| {
        let hg = arb_circuit(g);
        let n = hg.num_modules();
        let igm = ig_match(&hg, &IgMatchOptions::default()).unwrap();
        let igv = ig_vote(&hg, &IgVoteOptions::default()).unwrap();
        let e1 = eig1(&hg, &Eig1Options::default()).unwrap();
        let rc = rcut(
            &hg,
            &RcutOptions {
                runs: 2,
                ..Default::default()
            },
        );
        for (name, partition, stats) in [
            ("igmatch", &igm.result.partition, igm.result.stats),
            ("igvote", &igv.partition, igv.stats),
            ("eig1", &e1.partition, e1.stats),
            ("rcut", &rc.partition, rc.stats),
        ] {
            assert_eq!(partition.len(), n, "{name}");
            assert_eq!(stats, partition.cut_stats(&hg), "{name}");
            assert!(stats.left > 0 && stats.right > 0, "{name}");
        }
    });
}

#[test]
fn theorem1_bound_below_all_results() {
    check_cases(24, 0xA102, |g| {
        let hg = arb_circuit(g);
        let bound = ratio_cut_lower_bound(&hg, &Default::default()).unwrap();
        for ratio in [
            ig_match(&hg, &IgMatchOptions::default())
                .unwrap()
                .result
                .ratio(),
            ig_vote(&hg, &IgVoteOptions::default()).unwrap().ratio(),
            eig1(&hg, &Eig1Options::default()).unwrap().ratio(),
        ] {
            assert!(ratio >= bound.bound - 1e-9);
        }
    });
}

#[test]
fn hybrid_and_refined_never_worse() {
    check_cases(24, 0xA103, |g| {
        let hg = arb_circuit(g);
        let plain = ig_match(&hg, &IgMatchOptions::default()).unwrap();
        let refined = ig_match(
            &hg,
            &IgMatchOptions {
                refine_free_modules: true,
                ..Default::default()
            },
        )
        .unwrap();
        let hybrid = ig_match_refined(&hg, &HybridOptions::default()).unwrap();
        assert!(refined.result.ratio() <= plain.result.ratio() + 1e-12);
        assert!(hybrid.ratio() <= plain.result.ratio() + 1e-12);
    });
}

#[test]
fn bisection_is_balanced() {
    check_cases(24, 0xA104, |g| {
        let hg = arb_circuit(g);
        let r = spectral_bisect(&hg, 0.0, &Eig1Options::default()).unwrap();
        assert!(r.stats.left.abs_diff(r.stats.right) <= 3);
    });
}

#[test]
fn multiway_blocks_cover_and_fit() {
    check_cases(24, 0xA105, |g| {
        let hg = arb_circuit(g);
        let budget = (hg.num_modules() / 3).max(8);
        let mw = recursive_ig_match(
            &hg,
            &MultiwayOptions {
                max_block_size: budget,
                ..Default::default()
            },
        )
        .unwrap();
        let sizes = mw.block_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), hg.num_modules());
        assert!(sizes.iter().all(|&s| s <= budget));
        assert!(mw.crossing_nets(&hg) <= hg.num_nets());
    });
}

#[test]
fn clustered_partition_valid() {
    check_cases(24, 0xA106, |g| {
        let hg = arb_circuit(g);
        let r = clustered_ig_match(&hg, &ClusterOptions::default()).unwrap();
        assert_eq!(r.stats, r.partition.cut_stats(&hg));
        assert!(r.stats.left > 0 && r.stats.right > 0);
    });
}

#[test]
fn area_metric_consistent_with_counts_for_uniform_areas() {
    check_cases(24, 0xA107, |g| {
        let hg = arb_circuit(g);
        let igm = ig_match(&hg, &IgMatchOptions::default()).unwrap();
        let areas = ModuleAreas::uniform(hg.num_modules());
        let a = area_cut_stats(&hg, &igm.result.partition, &areas);
        assert_eq!(a.cut_nets, igm.result.stats.cut_nets);
        assert!((a.ratio() - igm.result.ratio()).abs() < 1e-12);
    });
}

#[test]
fn placement_first_axis_matches_eig1_ordering_signs() {
    check_cases(24, 0xA108, |g| {
        let hg = arb_circuit(g);
        // the 1-D Hall placement IS the EIG1 ordering vector
        let p = module_placement(&hg, 1, &Default::default()).unwrap();
        assert_eq!(p.len(), hg.num_modules());
        assert!(p.eigenvalues[0] >= -1e-9);
    });
}

#[test]
fn named_netlist_roundtrip_generated() {
    check_cases(24, 0xA109, |g| {
        let hg = arb_circuit(g);
        // module indices are assigned by first occurrence when parsing, so
        // the round trip is an isomorphism: compare per-net *name* sets
        let nl = NamedNetlist::from_hypergraph(hg.clone());
        let back = NamedNetlist::parse(&nl.to_string()).unwrap();
        assert_eq!(back.hypergraph().num_nets(), hg.num_nets());
        for net in hg.nets() {
            let orig_net = nl.net_by_name(nl.net_name(net)).unwrap();
            let back_net = back.net_by_name(nl.net_name(net)).unwrap();
            let mut orig: Vec<&str> = nl
                .hypergraph()
                .pins(orig_net)
                .iter()
                .map(|&m| nl.module_name(m))
                .collect();
            let mut round: Vec<&str> = back
                .hypergraph()
                .pins(back_net)
                .iter()
                .map(|&m| back.module_name(m))
                .collect();
            orig.sort_unstable();
            round.sort_unstable();
            assert_eq!(orig, round, "net {}", nl.net_name(net));
        }
    });
}
