//! End-to-end integration tests spanning all workspace crates: generate a
//! netlist, run every algorithm, check the cross-algorithm invariants.

use ig_match_repro::netlist::generate::{generate, mcnc_specs, GeneratorConfig};
use ig_match_repro::netlist::io::{parse_hgr, to_hgr_string};
use ig_match_repro::netlist::stats::CutBySize;
use ig_match_repro::{
    eig1, fm_bisect, ig_match, ig_vote, rcut, Bipartition, Eig1Options, FmOptions, IgMatchOptions,
    IgVoteOptions, ModuleId, RcutOptions,
};

fn small_circuit() -> ig_match_repro::Hypergraph {
    generate(&GeneratorConfig::new(250, 270, 0xC0FFEE).with_satellite(0.12, 3))
}

#[test]
fn all_algorithms_produce_valid_partitions() {
    let hg = small_circuit();
    let igm = ig_match(&hg, &IgMatchOptions::default()).unwrap();
    let igv = ig_vote(&hg, &IgVoteOptions::default()).unwrap();
    let e1 = eig1(&hg, &Eig1Options::default()).unwrap();
    let rc = rcut(&hg, &RcutOptions::default());
    for (name, stats) in [
        ("ig-match", igm.result.stats),
        ("ig-vote", igv.stats),
        ("eig1", e1.stats),
        ("rcut", rc.stats),
    ] {
        assert!(stats.left > 0 && stats.right > 0, "{name}: empty side");
        assert_eq!(stats.left + stats.right, hg.num_modules(), "{name}");
        assert!(stats.ratio().is_finite(), "{name}");
    }
}

#[test]
fn ig_match_respects_matching_bound_end_to_end() {
    let hg = small_circuit();
    let out = ig_match(&hg, &IgMatchOptions::default()).unwrap();
    assert!(
        out.result.stats.cut_nets <= out.matching_size,
        "cut {} > matching bound {}",
        out.result.stats.cut_nets,
        out.matching_size
    );
    assert!(out.loser_count <= out.matching_size);
}

#[test]
fn ig_match_finds_planted_satellite() {
    // 12% satellite coupled by 3 nets: IG-Match should find a cut of ~3
    // with the satellite's ~30 modules on the small side
    let hg = small_circuit();
    let out = ig_match(&hg, &IgMatchOptions::default()).unwrap();
    let s = &out.result.stats;
    assert!(
        s.cut_nets <= 6,
        "cut {} too large for planted cut 3",
        s.cut_nets
    );
    let small = s.left.min(s.right);
    assert!(small >= 5, "degenerate side {small}");
}

#[test]
fn spectral_methods_beat_random_partition() {
    let hg = small_circuit();
    let igm = ig_match(&hg, &IgMatchOptions::default()).unwrap();
    // a "random" balanced split by module index parity
    let random = Bipartition::from_left_set(
        hg.num_modules(),
        (0..hg.num_modules() as u32).step_by(2).map(ModuleId),
    );
    assert!(igm.result.ratio() < random.ratio_cut(&hg) / 2.0);
}

#[test]
fn fm_improves_spectral_seed() {
    // the paper suggests iterative postprocessing of spectral output (§5);
    // FM from the EIG1 partition must never worsen the cut
    let hg = small_circuit();
    let e1 = eig1(&hg, &Eig1Options::default()).unwrap();
    let fm = fm_bisect(
        &hg,
        &e1.partition,
        &FmOptions {
            balance_tolerance: 1.0, // unconstrained
            ..Default::default()
        },
    );
    assert!(fm.cut_nets <= e1.stats.cut_nets);
}

#[test]
fn suite_roundtrips_through_hgr() {
    let spec = &mcnc_specs()[2]; // Prim1, smallest full benchmark
    let hg = generate(&spec.config);
    let text = to_hgr_string(&hg);
    let back = parse_hgr(&text).unwrap();
    assert_eq!(hg, back);
}

#[test]
fn full_suite_generates_deterministically() {
    for spec in mcnc_specs() {
        let a = generate(&spec.config);
        let b = generate(&spec.config);
        assert_eq!(a, b, "{} not deterministic", spec.name);
        assert_eq!(a.num_modules(), spec.config.modules, "{}", spec.name);
        assert!(a.num_nets() >= spec.config.nets, "{}", spec.name);
    }
}

#[test]
fn table1_cut_histogram_consistent() {
    let hg = small_circuit();
    let out = ig_match(&hg, &IgMatchOptions::default()).unwrap();
    let table = CutBySize::compute(&hg, &out.result.partition);
    assert_eq!(table.total_cut(), out.result.stats.cut_nets);
    let total_nets: usize = table.rows().iter().map(|r| r.nets).sum();
    assert_eq!(total_nets, hg.num_nets());
}

#[test]
fn deterministic_end_to_end() {
    let hg = small_circuit();
    let a = ig_match(&hg, &IgMatchOptions::default()).unwrap();
    let b = ig_match(&hg, &IgMatchOptions::default()).unwrap();
    assert_eq!(a.result.partition, b.result.partition);
    assert_eq!(a.matching_size, b.matching_size);
}

#[test]
fn refinement_never_worse_on_generated_circuit() {
    let hg = small_circuit();
    let plain = ig_match(&hg, &IgMatchOptions::default()).unwrap();
    let refined = ig_match(
        &hg,
        &IgMatchOptions {
            refine_free_modules: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(refined.result.ratio() <= plain.result.ratio() + 1e-12);
}
