//! Integration tests for the resilient partitioning pipeline: every
//! fallback stage is forced to fire via deterministic fault injection
//! (the root crate's dev-dependencies enable `np-core/fault-inject`),
//! budgets are honored end to end, and the `np-part` binary never panics
//! on malformed input.

use ig_match_repro::core::robust::{FaultKind, FaultPlan};
use ig_match_repro::netlist::generate::{generate, GeneratorConfig};
use ig_match_repro::{
    robust_partition, Budget, FallbackStage, Hypergraph, PartitionError, RobustOptions,
};
use std::time::{Duration, Instant};

fn circuit() -> Hypergraph {
    generate(&GeneratorConfig::new(200, 220, 0xFA117).with_satellite(0.12, 3))
}

fn opts_with(faults: FaultPlan) -> RobustOptions {
    RobustOptions {
        faults,
        ..Default::default()
    }
}

#[test]
fn no_faults_first_stage_wins() {
    let out = robust_partition(&circuit(), &RobustOptions::default()).unwrap();
    assert_eq!(out.diagnostics.winning_stage, Some(FallbackStage::IgMatch));
    assert_eq!(out.diagnostics.attempts.len(), 1);
    let s = &out.result.stats;
    assert!(s.left > 0 && s.right > 0 && s.ratio().is_finite());
}

#[test]
fn primary_fault_reseeded_lanczos_wins() {
    let plan = FaultPlan::new().with(FallbackStage::IgMatch, FaultKind::ForceNoConvergence);
    let out = robust_partition(&circuit(), &opts_with(plan)).unwrap();
    assert_eq!(
        out.diagnostics.winning_stage,
        Some(FallbackStage::ReseededLanczos)
    );
    assert_eq!(out.diagnostics.attempts.len(), 2);
    assert!(matches!(
        out.diagnostics.attempts[0].error,
        Some(PartitionError::Eigen(_))
    ));
}

#[test]
fn lanczos_faults_dense_eigensolve_wins() {
    let plan = FaultPlan::new()
        .with(FallbackStage::IgMatch, FaultKind::ForceNoConvergence)
        .with(
            FallbackStage::ReseededLanczos,
            FaultKind::ForceNoConvergence,
        );
    let out = robust_partition(&circuit(), &opts_with(plan)).unwrap();
    assert_eq!(
        out.diagnostics.winning_stage,
        Some(FallbackStage::DenseEigensolve)
    );
    // 1 primary + every reseed attempt + the dense win
    let reseeds = RobustOptions::default().reseed_attempts;
    assert_eq!(out.diagnostics.attempts.len(), reseeds + 2);
    for a in &out.diagnostics.attempts[..reseeds + 1] {
        assert!(a.error.is_some(), "{a:?}");
    }
}

#[test]
fn all_spectral_ig_faults_clique_eig1_wins() {
    let plan = FaultPlan::new()
        .with(FallbackStage::IgMatch, FaultKind::ForceNoConvergence)
        .with(
            FallbackStage::ReseededLanczos,
            FaultKind::ForceNoConvergence,
        )
        .with(
            FallbackStage::DenseEigensolve,
            FaultKind::ForceNoConvergence,
        );
    let out = robust_partition(&circuit(), &opts_with(plan)).unwrap();
    assert_eq!(
        out.diagnostics.winning_stage,
        Some(FallbackStage::CliqueEig1)
    );
    assert_eq!(out.result.algorithm, "EIG1");
}

#[test]
fn every_eigensolve_faulted_fm_baseline_wins() {
    let plan = FaultPlan::new()
        .with(FallbackStage::IgMatch, FaultKind::ForceNoConvergence)
        .with(
            FallbackStage::ReseededLanczos,
            FaultKind::ForceNoConvergence,
        )
        .with(
            FallbackStage::DenseEigensolve,
            FaultKind::ForceNoConvergence,
        )
        .with(FallbackStage::CliqueEig1, FaultKind::ForceNoConvergence);
    let out = robust_partition(&circuit(), &opts_with(plan)).unwrap();
    assert_eq!(
        out.diagnostics.winning_stage,
        Some(FallbackStage::FmBaseline)
    );
    assert_eq!(out.result.algorithm, "FM");
    let s = &out.result.stats;
    assert!(s.left > 0 && s.right > 0);
    // every earlier link is on record as failed
    let reseeds = RobustOptions::default().reseed_attempts;
    assert_eq!(out.diagnostics.attempts.len(), reseeds + 4);
}

#[test]
fn poisoned_operator_detected_and_survived() {
    // the poison wraps the *real* Lanczos NaN detection, not a shortcut
    let plan = FaultPlan::new().with(FallbackStage::IgMatch, FaultKind::PoisonOperator);
    let out = robust_partition(&circuit(), &opts_with(plan)).unwrap();
    assert_eq!(
        out.diagnostics.winning_stage,
        Some(FallbackStage::ReseededLanczos)
    );
    let err = out.diagnostics.attempts[0].error.as_ref().unwrap();
    assert!(err.to_string().contains("non-finite"), "{err}");
}

#[test]
fn injected_budget_exhaustion_aborts_chain() {
    let plan = FaultPlan::new().with(FallbackStage::IgMatch, FaultKind::ExhaustBudget);
    let fail = robust_partition(&circuit(), &opts_with(plan)).unwrap_err();
    assert!(matches!(fail.error, PartitionError::Budget(_)));
    // fatal: no later stage may run on a spent budget
    assert_eq!(fail.diagnostics.attempts.len(), 1);
    assert_eq!(fail.diagnostics.winning_stage, None);
}

#[test]
fn full_chain_faulted_reports_total_failure() {
    let plan = FaultPlan::new()
        .with(FallbackStage::IgMatch, FaultKind::ForceNoConvergence)
        .with(
            FallbackStage::ReseededLanczos,
            FaultKind::ForceNoConvergence,
        )
        .with(
            FallbackStage::DenseEigensolve,
            FaultKind::ForceNoConvergence,
        )
        .with(FallbackStage::CliqueEig1, FaultKind::ForceNoConvergence)
        .with(FallbackStage::FmBaseline, FaultKind::ForceNoConvergence);
    let fail = robust_partition(&circuit(), &opts_with(plan)).unwrap_err();
    assert_eq!(fail.diagnostics.winning_stage, None);
    let reseeds = RobustOptions::default().reseed_attempts;
    assert_eq!(fail.diagnostics.attempts.len(), reseeds + 4);
    assert!(fail.to_string().contains("no stage succeeded"), "{fail}");
}

#[test]
fn budget_limited_run_returns_within_twice_the_limit() {
    // acceptance criterion: a budget-limited run must come back within
    // 2x the requested wall clock (cooperative checks are per-iteration,
    // so in practice it is far tighter; the bound guards against hangs)
    let hg = generate(&GeneratorConfig::new(600, 650, 0xB1D).with_satellite(0.1, 4));
    let limit = Duration::from_millis(250);
    let opts = RobustOptions {
        budget: Budget::UNLIMITED.with_wall_clock(limit),
        ..Default::default()
    };
    let started = Instant::now();
    let outcome = robust_partition(&hg, &opts);
    let took = started.elapsed();
    assert!(
        took < limit * 2,
        "took {took:.1?} against a {limit:.1?} budget"
    );
    // either answer is acceptable; exhaustion must be structured
    if let Err(fail) = outcome {
        assert!(matches!(fail.error, PartitionError::Budget(_)), "{fail}");
    }
}

#[test]
fn np_part_binary_rejects_malformed_hgr_without_panicking() {
    // drive the real binary over a pile of malformed inputs; a panic or
    // a zero exit status is a failure, a structured error is expected
    let bin = env!("CARGO_BIN_EXE_np-part");
    let dir = std::env::temp_dir();
    let cases: &[(&str, &str)] = &[
        ("empty", ""),
        ("garbage", "not a header\n1 2\n"),
        ("oversized", "1 99999999999999\n1 2\n"),
        ("truncated", "5 4\n1 2\n"),
        ("zero_pin", "1 2\n0 1\n"),
        ("out_of_range", "1 2\n1 9\n"),
    ];
    for (name, text) in cases {
        let path = dir.join(format!("np_part_robust_{name}.hgr"));
        std::fs::write(&path, text).unwrap();
        let out = std::process::Command::new(bin)
            .arg(&path)
            .output()
            .expect("binary should run");
        assert!(!out.status.success(), "{name}: accepted malformed input");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("parse failed") || stderr.contains("cannot open"),
            "{name}: unexpected stderr {stderr}"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn np_part_robust_algorithm_prints_diagnostics() {
    let bin = env!("CARGO_BIN_EXE_np-part");
    let dir = std::env::temp_dir();
    let path = dir.join("np_part_robust_ok.hgr");
    let hg = circuit();
    std::fs::write(&path, ig_match_repro::netlist::io::to_hgr_string(&hg)).unwrap();
    let out = std::process::Command::new(bin)
        .arg(&path)
        .args(["--fallback", "--budget-ms", "60000"])
        .output()
        .expect("binary should run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stderr: {stderr}");
    assert!(
        stderr.contains("solved by"),
        "missing diagnostics: {stderr}"
    );
    assert!(stdout.contains("robust["), "missing label: {stdout}");
    std::fs::remove_file(&path).ok();
}
