//! Property suite for the balanced k-way engine (DESIGN.md §13).
//!
//! Four invariants, checked over random small instances and both k-way
//! routes (recursive bisection and direct multiway spectral):
//!
//! * **balance** — every block's area stays within
//!   `(1+ε)·total/k` and no block is empty;
//! * **fixed modules** — a pinned module is on its block in every
//!   returned partition;
//! * **k = 2 bit-identity** — both routes at `k = 2` with no pins match
//!   the bipartition hybrid pipeline exactly: same labels, same cut
//!   statistics, same metered spend, at 1, 2 and 8 threads;
//! * **oracle agreement** — the reported cut and per-block external
//!   counts equal the brute-force recount in `np_testkit`, which shares
//!   no code with the incremental trackers.

use ig_match_repro::core::engine::stages::{IgMatchStage, RatioRefineStage};
use ig_match_repro::core::engine::{Pipeline, RunContext, Stage};
use ig_match_repro::core::kway::{kway_partition, KwayMethod, KwayOptions};
use ig_match_repro::core::{IgMatchOptions, PartitionError};
use ig_match_repro::netlist::generate::{generate, GeneratorConfig};
use ig_match_repro::netlist::{balance_bound, KwayPartition};
use ig_match_repro::{Budget, BudgetMeter};
use np_testkit::{
    check_cases, kway_reference_cut, kway_reference_externals, pinned_instance, small_hypergraph,
};

const METHODS: [KwayMethod; 2] = [KwayMethod::Recursive, KwayMethod::Direct];

/// Errors a random small instance may legitimately raise: the draw can
/// be too small, too degenerate or genuinely infeasible for the asked
/// `(k, ε)`. Anything else is a bug.
fn acceptable(err: &PartitionError) -> bool {
    matches!(
        err,
        PartitionError::TooSmall { .. }
            | PartitionError::Degenerate
            | PartitionError::InvalidInput { .. }
            | PartitionError::Eigen(_)
    )
}

#[test]
fn every_block_stays_within_the_balance_bound() {
    check_cases(48, 0xBA1A_0ACE, |g| {
        let hg = small_hypergraph(g);
        let n = hg.num_modules();
        let k = g.usize_in(2, (n / 2).clamp(2, 4));
        let epsilon = g.f64_in(0.3, 1.0);
        let opts = KwayOptions {
            k,
            epsilon,
            ..Default::default()
        };
        let bound = balance_bound(n as f64, k, epsilon);
        for method in METHODS {
            match kway_partition(&hg, &opts, method) {
                Ok(out) => {
                    assert_eq!(out.partition.num_blocks(), k);
                    let sizes = out.partition.block_sizes();
                    assert_eq!(sizes.len(), k);
                    for (b, &size) in sizes.iter().enumerate() {
                        assert!(size >= 1, "block {b} is empty ({method:?})");
                        assert!(
                            size as f64 <= bound * (1.0 + 1e-9) + 1e-9,
                            "block {b} holds {size} > bound {bound} ({method:?})"
                        );
                    }
                }
                Err(e) if acceptable(&e) => {}
                Err(e) => panic!("unexpected error from {method:?}: {e}"),
            }
        }
    });
}

#[test]
fn pinned_modules_never_move() {
    check_cases(48, 0xF1D0_0001, |g| {
        let k = g.usize_in(2, 4);
        let (hg, fixed) = pinned_instance(g, k);
        let opts = KwayOptions {
            k,
            epsilon: 1.0,
            fixed: Some(fixed.clone()),
            ..Default::default()
        };
        for method in METHODS {
            match kway_partition(&hg, &opts, method) {
                Ok(out) => {
                    for (m, b) in fixed.pins() {
                        assert_eq!(
                            out.partition.block_of(m),
                            b,
                            "pinned module {m:?} moved off block {b} ({method:?})"
                        );
                    }
                }
                Err(e) if acceptable(&e) => {}
                Err(e) => panic!("unexpected error from {method:?}: {e}"),
            }
        }
    });
}

#[test]
fn reported_cut_matches_the_brute_force_oracle() {
    check_cases(48, 0x0AC1_E000, |g| {
        let hg = small_hypergraph(g);
        let n = hg.num_modules();
        let k = g.usize_in(2, (n / 2).clamp(2, 4));
        let opts = KwayOptions {
            k,
            epsilon: 1.0,
            ..Default::default()
        };
        for method in METHODS {
            match kway_partition(&hg, &opts, method) {
                Ok(out) => {
                    let labels = out.partition.labels();
                    assert_eq!(
                        out.stats.cut_nets,
                        kway_reference_cut(&hg, labels),
                        "reported cut diverges from the oracle ({method:?})"
                    );
                    let (_, external) = kway_reference_externals(&hg, labels, k);
                    assert_eq!(
                        out.stats.external, external,
                        "per-block external counts diverge ({method:?})"
                    );
                }
                Err(e) if acceptable(&e) => {}
                Err(e) => panic!("unexpected error from {method:?}: {e}"),
            }
        }
    });
}

#[test]
fn k2_paths_are_bit_identical_to_the_bipartition_pipeline() {
    let hg = generate(&GeneratorConfig::new(180, 200, 0x2B1D));
    let opts = KwayOptions {
        k: 2,
        // ε = 1.0 keeps the bound at n, never binding, so the fast path
        // returns the pipeline's partition untouched.
        epsilon: 1.0,
        ..Default::default()
    };
    for threads in [1usize, 2, 8] {
        // the reference: the bipartition hybrid pipeline, run directly
        let reference_meter = BudgetMeter::new(&Budget::default());
        let ctx = RunContext::with_meter(&reference_meter)
            .with_seed(opts.seed)
            .with_threads(threads);
        let reference = Pipeline::named("IG-Match+FM")
            .then(IgMatchStage::new(IgMatchOptions::default()))
            .then(RatioRefineStage::new(opts.max_refine_passes, "IG-Match+FM"))
            .run(&hg, None, &ctx)
            .expect("reference pipeline partitions the instance");
        let expected = KwayPartition::from_bipartition(&reference.partition);
        let expected_spend = reference_meter.matvecs_used();

        for method in METHODS {
            let meter = BudgetMeter::new(&Budget::default());
            let ctx = RunContext::with_meter(&meter)
                .with_seed(opts.seed)
                .with_threads(threads);
            let out = ig_match_repro::core::kway::kway_partition_ctx(&hg, &opts, method, &ctx)
                .expect("k-way route partitions the instance");
            assert_eq!(
                out.partition.labels(),
                expected.labels(),
                "{method:?} diverged from the bipartition pipeline at {threads} threads"
            );
            assert_eq!(out.stats.cut_nets, reference.stats.cut_nets);
            assert_eq!(
                meter.matvecs_used(),
                expected_spend,
                "{method:?} metered spend diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn both_methods_are_deterministic() {
    let hg = generate(&GeneratorConfig::new(150, 160, 0xD17));
    let opts = KwayOptions {
        k: 4,
        epsilon: 0.5,
        ..Default::default()
    };
    for method in METHODS {
        let a = kway_partition(&hg, &opts, method).unwrap();
        let b = kway_partition(&hg, &opts, method).unwrap();
        assert_eq!(a.partition, b.partition, "{method:?} is nondeterministic");
        assert_eq!(a.stats, b.stats);
    }
}

#[test]
fn empty_label_vector_yields_zero_blocks() {
    let p = KwayPartition::from_labels(Vec::new());
    assert_eq!(p.num_blocks(), 0);
    assert_eq!(p.len(), 0);
}
