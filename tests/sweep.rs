//! Equivalence suite for the incremental IG-Match sweep (DESIGN.md §11).
//!
//! The sweep engine maintains the net classification and the Phase II
//! completion under O(Δ) updates; these properties pin it to the
//! from-scratch reference pipeline (`SplitMatcher::classify` +
//! `CompletionOracle`) at **every** split — classes, both-orientation
//! `CutStats`, `put_free_left`, loser counts, matching size, partitions
//! and free masks — across random hypergraphs, random orderings, the
//! degenerate-hypergraph distribution and the banded benchmark family.
//!
//! The same checks run as `debug_assert`s inside `SweepState::advance`;
//! this suite keeps them alive in release builds (CI runs it with
//! `cargo test --release --test sweep`).

use ig_match_repro::core::igmatch::{
    ig_match_with_ordering, CompletionOracle, OrientedEval, SplitMatcher, SweepState,
};
use ig_match_repro::core::models::intersection_neighbors;
use ig_match_repro::netlist::{Hypergraph, NetId};
use np_testkit::{banded_hypergraph, check_cases, degenerate_hypergraph, small_hypergraph, Gen};

/// Runs the incremental sweep over `order` and asserts it agrees with the
/// from-scratch reference at every split.
fn assert_sweep_matches_oracle(hg: &Hypergraph, order: &[u32]) {
    let neighbors = intersection_neighbors(hg);
    let mut sweep = SweepState::new(hg, &neighbors);
    let mut matcher = SplitMatcher::new(&neighbors);
    let mut oracle = CompletionOracle::new(hg);
    for (k, &net) in order[..order.len() - 1].iter().enumerate() {
        let eval = sweep.advance(hg, net);
        matcher.move_to_r(net);
        let class = matcher.classify();
        let reference: OrientedEval = oracle.evaluate(hg, &class);

        assert_eq!(eval, reference, "orientation eval diverged at split {k}");
        let inc = eval.candidate();
        let ref_c = reference.candidate();
        assert_eq!(inc.stats, ref_c.stats, "CutStats diverged at split {k}");
        assert_eq!(
            inc.put_free_left, ref_c.put_free_left,
            "orientation choice diverged at split {k}"
        );
        assert_eq!(
            inc.losers, ref_c.losers,
            "loser count diverged at split {k}"
        );
        assert_eq!(
            sweep.matching_size(),
            matcher.matching_size(),
            "matching size diverged at split {k}"
        );
        let classes = class.net_classes(hg.num_nets());
        for (v, &expect) in classes.iter().enumerate() {
            assert_eq!(
                sweep.net_class(v as u32),
                expect,
                "class of net {v} diverged at split {k}"
            );
        }
        for put_free_left in [true, false] {
            assert_eq!(
                sweep.materialize(hg, put_free_left),
                oracle.materialize(hg, put_free_left),
                "materialized partition diverged at split {k}"
            );
        }
        assert_eq!(
            sweep.free_mask(hg),
            oracle.free_mask(hg),
            "free mask diverged at split {k}"
        );
    }
}

/// A pseudo-random permutation of the nets of `hg`.
fn shuffled_order(g: &mut Gen, hg: &Hypergraph) -> Vec<u32> {
    let mut order: Vec<u32> = (0..hg.num_nets() as u32).collect();
    g.rng().shuffle(&mut order);
    order
}

#[test]
fn incremental_sweep_matches_oracle_on_random_instances() {
    check_cases(96, 0x5EE9_0001, |g| {
        let hg = small_hypergraph(g);
        let order = shuffled_order(g, &hg);
        assert_sweep_matches_oracle(&hg, &order);
    });
}

#[test]
fn incremental_sweep_matches_oracle_on_degenerate_instances() {
    check_cases(96, 0x5EE9_0002, |g| {
        let hg = degenerate_hypergraph(g);
        let order = shuffled_order(g, &hg);
        assert_sweep_matches_oracle(&hg, &order);
    });
}

#[test]
fn incremental_sweep_matches_oracle_on_banded_instances() {
    for (seed, modules, nets, band) in [(3u64, 60, 48, 6), (11, 120, 90, 10), (29, 200, 160, 16)] {
        let hg = banded_hypergraph(seed, modules, nets, band);
        // natural (banded) order — the benchmark's sweep order
        let natural: Vec<u32> = (0..hg.num_nets() as u32).collect();
        assert_sweep_matches_oracle(&hg, &natural);
        // and an adversarial shuffle that destroys locality
        let mut g = Gen::new(seed ^ 0x0BAD_C0DE);
        let order = shuffled_order(&mut g, &hg);
        assert_sweep_matches_oracle(&hg, &order);
    }
}

/// The full algorithm over an explicit ordering must agree with a
/// from-scratch best-split search driven entirely by the reference
/// pipeline — same ratio, split rank, matching size, loser count and
/// partition bits.
#[test]
fn full_sweep_agrees_with_from_scratch_best_search() {
    check_cases(64, 0x5EE9_0003, |g| {
        let hg = small_hypergraph(g);
        let order = shuffled_order(g, &hg);
        let order_ids: Vec<NetId> = order.iter().map(|&v| NetId(v)).collect();

        let neighbors = intersection_neighbors(&hg);
        let mut matcher = SplitMatcher::new(&neighbors);
        let mut oracle = CompletionOracle::new(&hg);
        let mut best: Option<(f64, usize, _, usize, usize)> = None;
        for (k, &net) in order[..order.len() - 1].iter().enumerate() {
            matcher.move_to_r(net);
            let class = matcher.classify();
            let cand = oracle.evaluate(&hg, &class).candidate();
            let ratio = cand.stats.ratio();
            if ratio.is_finite() && best.as_ref().is_none_or(|b| ratio < b.0) {
                best = Some((
                    ratio,
                    k,
                    oracle.materialize(&hg, cand.put_free_left),
                    matcher.matching_size(),
                    cand.losers,
                ));
            }
        }

        let out = ig_match_with_ordering(&hg, &order_ids, false);
        match (best, out) {
            (None, Err(_)) => {}
            (Some((ratio, rank, partition, mm, losers)), Ok(out)) => {
                assert_eq!(out.result.split_rank, Some(rank));
                assert_eq!(out.result.partition, partition);
                assert_eq!(out.result.ratio().to_bits(), ratio.to_bits());
                assert_eq!(out.matching_size, mm);
                assert_eq!(out.loser_count, losers);
            }
            (best, out) => panic!(
                "feasibility disagrees: reference {best:?} vs {:?}",
                out.err()
            ),
        }
    });
}
