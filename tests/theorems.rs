//! Property-based verification of the paper's theorems on random
//! hypergraphs.
//!
//! * Theorems 2–3 (König duality): `|MIS| + |MVC| = |L| + |R|` and
//!   `|MVC| = |MM|` in the induced bipartite conflict graph;
//! * Theorems 4–5: IG-Match's loser set covers every conflict edge and
//!   has size `≤ |MM|`; the completed partition cuts `≤ |MM|` nets;
//! * Theorem 1 (Hagen–Kahng bound): the optimal ratio cut of the
//!   clique-model graph is `≥ λ₂/n`;
//! * metric consistency: incremental cut tracking matches from-scratch
//!   evaluation under arbitrary move sequences.

use ig_match_repro::core::igmatch::ig_match_with_ordering;
use ig_match_repro::core::igmatch::SplitMatcher;
use ig_match_repro::core::models::{clique_laplacian, intersection_neighbors};
use ig_match_repro::core::PartitionError;
use ig_match_repro::eigen::{fiedler, LanczosOptions};
use ig_match_repro::netlist::partition::CutTracker;
use ig_match_repro::netlist::{ModuleId, NetId};
use ig_match_repro::{ig_match, Bipartition, IgMatchOptions, Side};
use np_testkit::{check_cases, small_hypergraph};

/// Kuhn's algorithm: reference maximum matching over crossing edges.
fn brute_force_mm(neighbors: &[Vec<u32>], in_r: &[bool]) -> usize {
    fn try_augment(
        x: usize,
        neighbors: &[Vec<u32>],
        in_r: &[bool],
        seen: &mut [bool],
        mate: &mut [usize],
    ) -> bool {
        for &y in &neighbors[x] {
            let y = y as usize;
            if !in_r[y] || seen[y] {
                continue;
            }
            seen[y] = true;
            if mate[y] == usize::MAX || try_augment(mate[y], neighbors, in_r, seen, mate) {
                mate[y] = x;
                return true;
            }
        }
        false
    }
    let n = neighbors.len();
    let mut mate = vec![usize::MAX; n];
    let mut size = 0;
    for x in 0..n {
        if in_r[x] {
            continue;
        }
        let mut seen = vec![false; n];
        if try_augment(x, neighbors, in_r, &mut seen, &mut mate) {
            size += 1;
        }
    }
    size
}

#[test]
fn incremental_matching_is_maximum() {
    check_cases(64, 0x7E01, |g| {
        let hg = small_hypergraph(g);
        let neighbors = intersection_neighbors(&hg);
        let m = hg.num_nets();
        // pseudo-random move order derived from the case seed
        let mut order: Vec<u32> = (0..m as u32).collect();
        g.rng().shuffle(&mut order);
        let mut matcher = SplitMatcher::new(&neighbors);
        let mut in_r = vec![false; m];
        for &v in &order[..m - 1] {
            matcher.move_to_r(v);
            in_r[v as usize] = true;
            assert!(matcher.matching_is_valid());
            assert_eq!(matcher.matching_size(), brute_force_mm(&neighbors, &in_r));
        }
    });
}

#[test]
fn konig_duality_holds() {
    check_cases(64, 0x7E02, |g| {
        let hg = small_hypergraph(g);
        let neighbors = intersection_neighbors(&hg);
        let m = hg.num_nets();
        let mut order: Vec<u32> = (0..m as u32).collect();
        g.rng().shuffle(&mut order);
        let mut matcher = SplitMatcher::new(&neighbors);
        for &v in &order[..m / 2 + 1] {
            matcher.move_to_r(v);
        }
        let mm = matcher.matching_size();
        let side_of: Vec<Side> = (0..m as u32).map(|v| matcher.side_of(v)).collect();
        let c = matcher.classify();
        // MIS = winners + larger B' side; MVC = losers + smaller B' side
        let mis = c.winners_l.len() + c.winners_r.len() + c.bprime_l.len().max(c.bprime_r.len());
        let mvc = c.losers.len() + c.bprime_l.len().min(c.bprime_r.len());
        assert_eq!(mis + mvc, m, "Theorem 2: |MIS| + |MVC| = n");
        // B' sides pair up through the matching, so either orientation
        // gives a cover of size = mm
        assert_eq!(c.bprime_l.len(), c.bprime_r.len());
        assert_eq!(mvc, mm, "Theorem 3: |MVC| = |MM|");

        // cover property (Theorem 4): every crossing edge touches a loser
        // or a B' vertex of the chosen orientation (take B'_R as losers)
        let is_loser: Vec<bool> = {
            let mut f = vec![false; m];
            for &v in c.losers.iter().chain(&c.bprime_r) {
                f[v as usize] = true;
            }
            f
        };
        for v in 0..m as u32 {
            for &u in &neighbors[v as usize] {
                if side_of[v as usize] == Side::Left && side_of[u as usize] == Side::Right {
                    assert!(
                        is_loser[v as usize] || is_loser[u as usize],
                        "crossing edge ({v},{u}) uncovered"
                    );
                }
            }
        }

        // independence (Theorem 2): no crossing edge joins two winners
        let is_winner: Vec<bool> = {
            let mut f = vec![false; m];
            for &v in c.winners_l.iter().chain(&c.winners_r).chain(&c.bprime_l) {
                f[v as usize] = true;
            }
            f
        };
        for v in 0..m as u32 {
            for &u in &neighbors[v as usize] {
                let crossing = side_of[v as usize] != side_of[u as usize];
                assert!(
                    !(crossing && is_winner[v as usize] && is_winner[u as usize]),
                    "independent set violated on edge ({v},{u})"
                );
            }
        }
    });
}

#[test]
fn igmatch_cut_bounded_by_matching() {
    check_cases(64, 0x7E03, |g| {
        let hg = small_hypergraph(g);
        let m = hg.num_nets();
        let mut order: Vec<u32> = (0..m as u32).collect();
        g.rng().shuffle(&mut order);
        let order: Vec<NetId> = order.into_iter().map(NetId).collect();
        match ig_match_with_ordering(&hg, &order, false) {
            Ok(out) => {
                assert!(out.result.stats.cut_nets <= out.loser_count);
                assert!(out.loser_count <= out.matching_size);
                assert_eq!(out.result.stats, out.result.partition.cut_stats(&hg));
            }
            Err(PartitionError::Degenerate) => {} // legal on tiny instances
            Err(e) => panic!("unexpected error {e}"),
        }
    });
}

#[test]
fn cut_tracker_matches_scratch() {
    check_cases(64, 0x7E04, |g| {
        let hg = small_hypergraph(g);
        let moves = g.vec_with(1, 39, |g| (g.usize_in(0, 15) as u32, g.flip()));
        let mut tracker = CutTracker::all_on(&hg, Side::Right);
        for (m, to_left) in moves {
            let m = ModuleId(m % hg.num_modules() as u32);
            let side = if to_left { Side::Left } else { Side::Right };
            tracker.move_module(m, side);
            let scratch = tracker.to_partition().cut_stats(&hg);
            assert_eq!(tracker.stats(), scratch);
        }
    });
}

#[test]
fn hagen_kahng_lower_bound() {
    check_cases(64, 0x7E05, |g| {
        // Theorem 1: optimal ratio cut of the clique-model *graph* is
        // >= lambda_2 / n. Brute-force the optimum over all bipartitions.
        let hg = small_hypergraph(g);
        let n = hg.num_modules();
        if n > 12 {
            return;
        }
        let q = clique_laplacian(&hg);
        let pair = fiedler(&q, &LanczosOptions::default()).unwrap();
        if pair.value <= 1e-9 {
            return; // skip disconnected instances
        }
        let adj = q.adjacency();
        let mut best = f64::INFINITY;
        for mask in 1..(1u32 << n) - 1 {
            let left: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            let mut cut = 0.0;
            for i in 0..n {
                let (cols, vals) = adj.row(i);
                for (&j, &w) in cols.iter().zip(vals) {
                    if (j as usize) > i && left[i] != left[j as usize] {
                        cut += w;
                    }
                }
            }
            let l = left.iter().filter(|&&x| x).count();
            best = best.min(cut / (l as f64 * (n - l) as f64));
        }
        assert!(
            best >= pair.value / n as f64 - 1e-7,
            "optimal ratio cut {best} < lambda2/n = {}",
            pair.value / n as f64
        );
    });
}

#[test]
fn fiedler_orthogonal_to_ones_and_nonnegative() {
    check_cases(64, 0x7E06, |g| {
        let hg = small_hypergraph(g);
        let q = clique_laplacian(&hg);
        let pair = fiedler(&q, &LanczosOptions::default()).unwrap();
        let s: f64 = pair.vector.iter().sum();
        assert!(s.abs() < 1e-6, "sum {s}");
        assert!(pair.value >= -1e-9, "lambda2 {}", pair.value);
    });
}

#[test]
fn igmatch_spectral_valid_on_random_instances() {
    check_cases(64, 0x7E07, |g| {
        let hg = small_hypergraph(g);
        match ig_match(&hg, &IgMatchOptions::default()) {
            Ok(out) => {
                let s = &out.result.stats;
                assert!(s.left > 0 && s.right > 0);
                assert!(s.cut_nets <= out.matching_size);
            }
            Err(PartitionError::Degenerate) | Err(PartitionError::TooSmall { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    });
}

#[test]
fn hgr_roundtrip() {
    check_cases(64, 0x7E08, |g| {
        let hg = small_hypergraph(g);
        let text = ig_match_repro::netlist::io::to_hgr_string(&hg);
        let back = ig_match_repro::netlist::io::parse_hgr(&text).unwrap();
        assert_eq!(hg, back);
    });
}

#[test]
fn random_partition_stats_sane() {
    check_cases(64, 0x7E09, |g| {
        let hg = small_hypergraph(g);
        let mask = g.u64_below(65536) as u32;
        let n = hg.num_modules();
        let left = (0..n as u32)
            .filter(|i| mask & (1 << (i % 16)) != 0)
            .map(ModuleId);
        let p = Bipartition::from_left_set(n, left);
        let s = p.cut_stats(&hg);
        assert_eq!(s.left + s.right, n);
        assert!(s.cut_nets <= hg.num_nets());
    });
}
