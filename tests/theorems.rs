//! Property-based verification of the paper's theorems on random
//! hypergraphs (proptest).
//!
//! * Theorems 2–3 (König duality): `|MIS| + |MVC| = |L| + |R|` and
//!   `|MVC| = |MM|` in the induced bipartite conflict graph;
//! * Theorems 4–5: IG-Match's loser set covers every conflict edge and
//!   has size `≤ |MM|`; the completed partition cuts `≤ |MM|` nets;
//! * Theorem 1 (Hagen–Kahng bound): the optimal ratio cut of the
//!   clique-model graph is `≥ λ₂/n`;
//! * metric consistency: incremental cut tracking matches from-scratch
//!   evaluation under arbitrary move sequences.

use ig_match_repro::core::igmatch::SplitMatcher;
use ig_match_repro::core::models::{clique_laplacian, intersection_neighbors};
use ig_match_repro::core::igmatch::ig_match_with_ordering;
use ig_match_repro::core::PartitionError;
use ig_match_repro::eigen::{fiedler, LanczosOptions};
use ig_match_repro::netlist::partition::CutTracker;
use ig_match_repro::netlist::{Hypergraph, HypergraphBuilder, ModuleId, NetId};
use ig_match_repro::{ig_match, Bipartition, IgMatchOptions, Side};
use proptest::prelude::*;

/// Strategy: a random connected-ish hypergraph with `modules` in 4..=16
/// and a handful of nets of size 2..=5.
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (4usize..=16).prop_flat_map(|n| {
        let net = proptest::collection::vec(0..n as u32, 2..=5);
        proptest::collection::vec(net, 2..=20).prop_filter_map(
            "nets must be non-degenerate after dedup",
            move |nets| {
                let mut b = HypergraphBuilder::new(n);
                let mut added = 0;
                for pins in nets {
                    let mut p: Vec<u32> = pins;
                    p.sort_unstable();
                    p.dedup();
                    if p.len() >= 2 {
                        b.add_net(p.into_iter().map(ModuleId)).ok()?;
                        added += 1;
                    }
                }
                if added >= 2 {
                    b.finish().ok()
                } else {
                    None
                }
            },
        )
    })
}

/// Kuhn's algorithm: reference maximum matching over crossing edges.
fn brute_force_mm(neighbors: &[Vec<u32>], in_r: &[bool]) -> usize {
    fn try_augment(
        x: usize,
        neighbors: &[Vec<u32>],
        in_r: &[bool],
        seen: &mut [bool],
        mate: &mut [usize],
    ) -> bool {
        for &y in &neighbors[x] {
            let y = y as usize;
            if !in_r[y] || seen[y] {
                continue;
            }
            seen[y] = true;
            if mate[y] == usize::MAX || try_augment(mate[y], neighbors, in_r, seen, mate) {
                mate[y] = x;
                return true;
            }
        }
        false
    }
    let n = neighbors.len();
    let mut mate = vec![usize::MAX; n];
    let mut size = 0;
    for x in 0..n {
        if in_r[x] {
            continue;
        }
        let mut seen = vec![false; n];
        if try_augment(x, neighbors, in_r, &mut seen, &mut mate) {
            size += 1;
        }
    }
    size
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_matching_is_maximum(hg in arb_hypergraph(), seed in 0u64..1000) {
        let neighbors = intersection_neighbors(&hg);
        let m = hg.num_nets();
        // pseudo-random move order derived from the seed
        let mut order: Vec<u32> = (0..m as u32).collect();
        let mut rng = ig_match_repro::netlist::rng::Rng64::new(seed);
        rng.shuffle(&mut order);
        let mut matcher = SplitMatcher::new(&neighbors);
        let mut in_r = vec![false; m];
        for &v in &order[..m - 1] {
            matcher.move_to_r(v);
            in_r[v as usize] = true;
            prop_assert!(matcher.matching_is_valid());
            prop_assert_eq!(matcher.matching_size(), brute_force_mm(&neighbors, &in_r));
        }
    }

    #[test]
    fn konig_duality_holds(hg in arb_hypergraph(), seed in 0u64..1000) {
        let neighbors = intersection_neighbors(&hg);
        let m = hg.num_nets();
        let mut order: Vec<u32> = (0..m as u32).collect();
        let mut rng = ig_match_repro::netlist::rng::Rng64::new(seed);
        rng.shuffle(&mut order);
        let mut matcher = SplitMatcher::new(&neighbors);
        for &v in &order[..m / 2 + 1] {
            matcher.move_to_r(v);
        }
        let mm = matcher.matching_size();
        let side_of: Vec<Side> = (0..m as u32).map(|v| matcher.side_of(v)).collect();
        let c = matcher.classify();
        // MIS = winners + larger B' side; MVC = losers + smaller B' side
        let mis = c.winners_l.len() + c.winners_r.len() + c.bprime_l.len().max(c.bprime_r.len());
        let mvc = c.losers.len() + c.bprime_l.len().min(c.bprime_r.len());
        prop_assert_eq!(mis + mvc, m, "Theorem 2: |MIS| + |MVC| = n");
        // B' sides pair up through the matching, so either orientation
        // gives a cover of size = mm
        prop_assert_eq!(c.bprime_l.len(), c.bprime_r.len());
        prop_assert_eq!(mvc, mm, "Theorem 3: |MVC| = |MM|");

        // cover property (Theorem 4): every crossing edge touches a loser
        // or a B' vertex of the chosen orientation (take B'_R as losers)
        let is_loser: Vec<bool> = {
            let mut f = vec![false; m];
            for &v in c.losers.iter().chain(&c.bprime_r) {
                f[v as usize] = true;
            }
            f
        };
        for v in 0..m as u32 {
            for &u in &neighbors[v as usize] {
                if side_of[v as usize] == Side::Left && side_of[u as usize] == Side::Right {
                    prop_assert!(
                        is_loser[v as usize] || is_loser[u as usize],
                        "crossing edge ({v},{u}) uncovered"
                    );
                }
            }
        }

        // independence (Theorem 2): no crossing edge joins two winners
        let is_winner: Vec<bool> = {
            let mut f = vec![false; m];
            for &v in c.winners_l.iter().chain(&c.winners_r).chain(&c.bprime_l) {
                f[v as usize] = true;
            }
            f
        };
        for v in 0..m as u32 {
            for &u in &neighbors[v as usize] {
                let crossing = side_of[v as usize] != side_of[u as usize];
                prop_assert!(
                    !(crossing && is_winner[v as usize] && is_winner[u as usize]),
                    "independent set violated on edge ({v},{u})"
                );
            }
        }
    }

    #[test]
    fn igmatch_cut_bounded_by_matching(hg in arb_hypergraph(), seed in 0u64..1000) {
        let m = hg.num_nets();
        let mut order: Vec<u32> = (0..m as u32).collect();
        let mut rng = ig_match_repro::netlist::rng::Rng64::new(seed);
        rng.shuffle(&mut order);
        let order: Vec<NetId> = order.into_iter().map(NetId).collect();
        match ig_match_with_ordering(&hg, &order, false) {
            Ok(out) => {
                prop_assert!(out.result.stats.cut_nets <= out.loser_count);
                prop_assert!(out.loser_count <= out.matching_size);
                prop_assert_eq!(
                    out.result.stats,
                    out.result.partition.cut_stats(&hg)
                );
            }
            Err(PartitionError::Degenerate) => {} // legal on tiny instances
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    #[test]
    fn cut_tracker_matches_scratch(hg in arb_hypergraph(), moves in proptest::collection::vec((0u32..16, proptest::bool::ANY), 1..40)) {
        let mut tracker = CutTracker::all_on(&hg, Side::Right);
        for (m, to_left) in moves {
            let m = ModuleId(m % hg.num_modules() as u32);
            let side = if to_left { Side::Left } else { Side::Right };
            tracker.move_module(m, side);
            let scratch = tracker.to_partition().cut_stats(&hg);
            prop_assert_eq!(tracker.stats(), scratch);
        }
    }

    #[test]
    fn hagen_kahng_lower_bound(hg in arb_hypergraph()) {
        // Theorem 1: optimal ratio cut of the clique-model *graph* is
        // >= lambda_2 / n. Brute-force the optimum over all bipartitions.
        let n = hg.num_modules();
        prop_assume!(n <= 12);
        let q = clique_laplacian(&hg);
        let pair = fiedler(&q, &LanczosOptions::default()).unwrap();
        prop_assume!(pair.value > 1e-9); // skip disconnected instances
        let adj = q.adjacency();
        let mut best = f64::INFINITY;
        for mask in 1..(1u32 << n) - 1 {
            let left: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            let mut cut = 0.0;
            for i in 0..n {
                let (cols, vals) = adj.row(i);
                for (&j, &w) in cols.iter().zip(vals) {
                    if (j as usize) > i && left[i] != left[j as usize] {
                        cut += w;
                    }
                }
            }
            let l = left.iter().filter(|&&x| x).count();
            best = best.min(cut / (l as f64 * (n - l) as f64));
        }
        prop_assert!(
            best >= pair.value / n as f64 - 1e-7,
            "optimal ratio cut {best} < lambda2/n = {}",
            pair.value / n as f64
        );
    }

    #[test]
    fn fiedler_orthogonal_to_ones_and_nonnegative(hg in arb_hypergraph()) {
        let q = clique_laplacian(&hg);
        let pair = fiedler(&q, &LanczosOptions::default()).unwrap();
        let s: f64 = pair.vector.iter().sum();
        prop_assert!(s.abs() < 1e-6, "sum {s}");
        prop_assert!(pair.value >= -1e-9, "lambda2 {}", pair.value);
    }

    #[test]
    fn igmatch_spectral_valid_on_random_instances(hg in arb_hypergraph()) {
        match ig_match(&hg, &IgMatchOptions::default()) {
            Ok(out) => {
                let s = &out.result.stats;
                prop_assert!(s.left > 0 && s.right > 0);
                prop_assert!(s.cut_nets <= out.matching_size);
            }
            Err(PartitionError::Degenerate) | Err(PartitionError::TooSmall { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    #[test]
    fn hgr_roundtrip(hg in arb_hypergraph()) {
        let text = ig_match_repro::netlist::io::to_hgr_string(&hg);
        let back = ig_match_repro::netlist::io::parse_hgr(&text).unwrap();
        prop_assert_eq!(hg, back);
    }

    #[test]
    fn random_partition_stats_sane(hg in arb_hypergraph(), mask in 0u32..65536) {
        let n = hg.num_modules();
        let left = (0..n as u32).filter(|i| mask & (1 << (i % 16)) != 0).map(ModuleId);
        let p = Bipartition::from_left_set(n, left);
        let s = p.cut_stats(&hg);
        prop_assert_eq!(s.left + s.right, n);
        prop_assert!(s.cut_nets <= hg.num_nets());
    }
}
