//! Cancellation-race property tests for [`BudgetMeter::cancel`].
//!
//! The contract under test: `cancel()` called from *any* thread at *any*
//! moment terminates a metered kernel within one cooperative check — the
//! worker either finishes cleanly first (a valid partition) or surfaces
//! `PartitionError::Budget` with `BudgetResource::Cancelled`. It never
//! hangs, never panics, and never returns a half-built partition. The
//! tests sweep the cancellation delay across the kernel's lifetime so the
//! cancel lands in different phases (eigensolve setup, Lanczos
//! iterations, completion sweep) on different runs.

use ig_match_repro::core::engine::RunContext;
use ig_match_repro::core::{eig1_ctx, ig_match_ctx, Eig1Options, IgMatchOptions, PartitionError};
use ig_match_repro::sparse::{Budget, BudgetMeter, BudgetResource};
use ig_match_repro::Hypergraph;
use np_testkit::banded_hypergraph;
use std::sync::mpsc;
use std::time::Duration;

/// How long we are willing to wait for the worker after cancelling. The
/// kernels check their meter at least once per iteration's work, so even
/// heavily loaded CI should come in orders of magnitude under this.
const COOPERATION_BOUND: Duration = Duration::from_secs(30);

fn instance() -> Hypergraph {
    banded_hypergraph(0xCA9CE1, 220, 300, 8)
}

/// Asserts the worker outcome obeys the contract: a clean finish with a
/// coherent bipartition, or a `Cancelled` budget error.
fn assert_contract(
    hg: &Hypergraph,
    outcome: Result<ig_match_repro::PartitionResult, PartitionError>,
) {
    match outcome {
        Ok(result) => {
            // a finish that raced the cancel must still be fully built:
            // both sides populated and stats consistent with the sides
            let recomputed = result.partition.cut_stats(hg);
            assert_eq!(result.stats.cut_nets, recomputed.cut_nets);
            assert_eq!(result.stats.left, recomputed.left);
            assert_eq!(result.stats.right, recomputed.right);
            assert!(result.stats.left > 0 && result.stats.right > 0);
        }
        Err(PartitionError::Budget(exceeded)) => {
            assert_eq!(exceeded.resource, BudgetResource::Cancelled);
        }
        Err(other) => panic!("cancellation must not surface as {other}"),
    }
}

/// Runs `kernel` on a worker thread under an unlimited meter, cancels
/// from the test thread after `delay_us`, and requires a terminal answer
/// within [`COOPERATION_BOUND`].
fn race_once<F>(delay_us: u64, kernel: F)
where
    F: FnOnce(
            &Hypergraph,
            &RunContext<'_>,
        ) -> Result<ig_match_repro::PartitionResult, PartitionError>
        + Send
        + 'static,
{
    let hg = instance();
    // no wall clock, no matvec cap: cancel() is the only way out
    let meter = BudgetMeter::new(&Budget::default());
    let worker_meter = meter.clone();
    let (tx, rx) = mpsc::channel();
    let worker = {
        let hg = hg.clone();
        std::thread::spawn(move || {
            let ctx = RunContext::with_meter(&worker_meter);
            let _ = tx.send(kernel(&hg, &ctx));
        })
    };
    std::thread::sleep(Duration::from_micros(delay_us));
    meter.cancel();
    let outcome = rx
        .recv_timeout(COOPERATION_BOUND)
        .expect("worker must terminate within one cooperative check of cancel()");
    worker.join().expect("worker must not panic");
    assert_contract(&hg, outcome);
}

#[test]
fn ig_match_terminates_under_cancel_at_any_phase() {
    // sweep the cancel point from "before the eigensolve starts" to
    // "probably finished already" — phases differ run to run, the
    // contract may not
    for delay_us in [0, 50, 200, 800, 3_000, 12_000, 50_000] {
        race_once(delay_us, |hg, ctx| {
            ig_match_ctx(hg, &IgMatchOptions::default(), ctx).map(|out| out.result)
        });
    }
}

#[test]
fn eig1_lanczos_terminates_under_cancel_at_any_phase() {
    for delay_us in [0, 100, 500, 2_000, 8_000, 30_000] {
        race_once(delay_us, |hg, ctx| {
            eig1_ctx(hg, &Eig1Options::default(), ctx)
        });
    }
}

/// Cancel before the worker even starts: the very first meter check must
/// trip, so the worker's lifetime is bounded by its setup code alone.
#[test]
fn cancel_before_start_trips_the_first_check() {
    let hg = instance();
    let meter = BudgetMeter::new(&Budget::default());
    meter.cancel();
    let ctx = RunContext::with_meter(&meter);
    let out = ig_match_ctx(&hg, &IgMatchOptions::default(), &ctx);
    match out {
        Err(PartitionError::Budget(e)) => assert_eq!(e.resource, BudgetResource::Cancelled),
        other => panic!("pre-cancelled meter must trip immediately, got {other:?}"),
    }
}

/// Cancellation observed through a tributary: the service layer hands
/// kernels tributary meters, so a cancel on the root must propagate.
#[test]
fn cancel_propagates_through_tributaries() {
    let hg = instance();
    let root = BudgetMeter::new(&Budget::default());
    let tributary = root.tributary();
    let (tx, rx) = mpsc::channel();
    let worker = {
        let hg = hg.clone();
        std::thread::spawn(move || {
            let ctx = RunContext::with_meter(&tributary);
            let _ = tx.send(ig_match_ctx(&hg, &IgMatchOptions::default(), &ctx).map(|o| o.result));
        })
    };
    std::thread::sleep(Duration::from_micros(400));
    root.cancel();
    let outcome = rx
        .recv_timeout(COOPERATION_BOUND)
        .expect("tributary holder must observe the root cancel");
    worker.join().expect("worker must not panic");
    assert_contract(&hg, outcome);
}
