//! Property tests for the eigensolvers: Lanczos agrees with the dense
//! Jacobi ground truth on arbitrary small weighted graphs, and the
//! tridiagonal QL solver satisfies the defining identities.

use np_eigen::dense::{jacobi_eigen, materialize};
use np_eigen::tridiag::eigh_tridiagonal;
use np_eigen::{fiedler, smallest_deflated_block, BlockLanczosOptions, LanczosOptions};
use np_sparse::{Laplacian, LinearOperator, TripletBuilder};
use np_testkit::{check_cases, Gen};

/// A connected weighted graph on `n` vertices (ring backbone + random
/// chords).
fn arb_graph(g: &mut Gen) -> Laplacian {
    let n = g.usize_in(3, 20);
    let chords = g.vec_with(0, 25, |g| {
        (
            g.usize_in(0, n - 1),
            g.usize_in(0, n - 1),
            g.f64_in(0.1, 3.0),
        )
    });
    let mut b = TripletBuilder::new(n);
    for i in 0..n {
        b.push_sym(i, (i + 1) % n, 1.0);
    }
    for (i, j, w) in chords {
        if i != j {
            b.push_sym(i, j, w);
        }
    }
    Laplacian::from_adjacency(b.into_csr())
}

#[test]
fn fiedler_matches_dense_lambda2() {
    check_cases(48, 0xE101, |g| {
        let q = arb_graph(g);
        let n = q.dim();
        let pair = fiedler(&q, &LanczosOptions::default()).unwrap();
        let dense = jacobi_eigen(&materialize(&q), n);
        // dense.values[0] = 0 (connected: ring backbone)
        assert!(dense.values[0].abs() < 1e-8);
        assert!(
            (pair.value - dense.values[1]).abs() < 1e-6,
            "lanczos {} vs dense {}",
            pair.value,
            dense.values[1]
        );
    });
}

#[test]
fn block_lanczos_agrees_with_classic() {
    check_cases(48, 0xE102, |g| {
        let q = arb_graph(g);
        let n = q.dim();
        let ones = vec![1.0; n];
        let classic = fiedler(&q, &LanczosOptions::default()).unwrap();
        let block = smallest_deflated_block(&q, &[ones], &BlockLanczosOptions::default()).unwrap();
        assert!((classic.value - block.value).abs() < 1e-6);
    });
}

#[test]
fn fiedler_residual_verified() {
    check_cases(48, 0xE103, |g| {
        let q = arb_graph(g);
        let n = q.dim();
        let pair = fiedler(&q, &LanczosOptions::default()).unwrap();
        let mut y = vec![0.0; n];
        q.apply(&pair.vector, &mut y);
        let resid: f64 = y
            .iter()
            .zip(&pair.vector)
            .map(|(a, b)| (a - pair.value * b).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(resid < 1e-6, "residual {resid}");
        let norm: f64 = pair.vector.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    });
}

#[test]
fn tridiagonal_identities() {
    check_cases(96, 0xE104, |g| {
        let diag = g.vec_with(1, 12, |g| g.f64_in(-5.0, 5.0));
        let scale = g.f64_in(0.1, 3.0);
        let n = diag.len();
        let off: Vec<f64> = (0..n.saturating_sub(1))
            .map(|i| scale * ((i as f64).sin()))
            .collect();
        let e = eigh_tridiagonal(&diag, &off).unwrap();
        // trace identity
        let trace: f64 = diag.iter().sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-8);
        // ascending order
        assert!(e.values.windows(2).all(|w| w[0] <= w[1] + 1e-10));
        // residuals
        for (lambda, v) in e.values.iter().zip(&e.vectors) {
            for i in 0..n {
                let mut tv = diag[i] * v[i];
                if i > 0 {
                    tv += off[i - 1] * v[i - 1];
                }
                if i + 1 < n {
                    tv += off[i] * v[i + 1];
                }
                assert!((tv - lambda * v[i]).abs() < 1e-7);
            }
        }
    });
}
