//! Property tests for the eigensolvers: Lanczos agrees with the dense
//! Jacobi ground truth on arbitrary small weighted graphs, and the
//! tridiagonal QL solver satisfies the defining identities.

use np_eigen::dense::{jacobi_eigen, materialize};
use np_eigen::tridiag::eigh_tridiagonal;
use np_eigen::{fiedler, smallest_deflated_block, BlockLanczosOptions, LanczosOptions};
use np_sparse::{Laplacian, LinearOperator, TripletBuilder};
use proptest::prelude::*;

/// Strategy: a connected weighted graph on `n` vertices (ring backbone +
/// random chords).
fn arb_graph() -> impl Strategy<Value = Laplacian> {
    (3usize..=20).prop_flat_map(|n| {
        let chord = (0..n, 0..n, 0.1f64..3.0);
        proptest::collection::vec(chord, 0..25).prop_map(move |chords| {
            let mut b = TripletBuilder::new(n);
            for i in 0..n {
                b.push_sym(i, (i + 1) % n, 1.0);
            }
            for (i, j, w) in chords {
                if i != j {
                    b.push_sym(i, j, w);
                }
            }
            Laplacian::from_adjacency(b.into_csr())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fiedler_matches_dense_lambda2(q in arb_graph()) {
        let n = q.dim();
        let pair = fiedler(&q, &LanczosOptions::default()).unwrap();
        let dense = jacobi_eigen(&materialize(&q), n);
        // dense.values[0] = 0 (connected: ring backbone)
        prop_assert!(dense.values[0].abs() < 1e-8);
        prop_assert!(
            (pair.value - dense.values[1]).abs() < 1e-6,
            "lanczos {} vs dense {}",
            pair.value,
            dense.values[1]
        );
    }

    #[test]
    fn block_lanczos_agrees_with_classic(q in arb_graph()) {
        let n = q.dim();
        let ones = vec![1.0; n];
        let classic = fiedler(&q, &LanczosOptions::default()).unwrap();
        let block = smallest_deflated_block(&q, &[ones], &BlockLanczosOptions::default()).unwrap();
        prop_assert!((classic.value - block.value).abs() < 1e-6);
    }

    #[test]
    fn fiedler_residual_verified(q in arb_graph()) {
        let n = q.dim();
        let pair = fiedler(&q, &LanczosOptions::default()).unwrap();
        let mut y = vec![0.0; n];
        q.apply(&pair.vector, &mut y);
        let resid: f64 = y
            .iter()
            .zip(&pair.vector)
            .map(|(a, b)| (a - pair.value * b).powi(2))
            .sum::<f64>()
            .sqrt();
        prop_assert!(resid < 1e-6, "residual {resid}");
        let norm: f64 = pair.vector.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tridiagonal_identities(diag in proptest::collection::vec(-5.0f64..5.0, 1..=12), scale in 0.1f64..3.0) {
        let n = diag.len();
        let off: Vec<f64> = (0..n.saturating_sub(1)).map(|i| scale * ((i as f64).sin())).collect();
        let e = eigh_tridiagonal(&diag, &off);
        // trace identity
        let trace: f64 = diag.iter().sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8);
        // ascending order
        prop_assert!(e.values.windows(2).all(|w| w[0] <= w[1] + 1e-10));
        // residuals
        for (lambda, v) in e.values.iter().zip(&e.vectors) {
            for i in 0..n {
                let mut tv = diag[i] * v[i];
                if i > 0 {
                    tv += off[i - 1] * v[i - 1];
                }
                if i + 1 < n {
                    tv += off[i] * v[i + 1];
                }
                prop_assert!((tv - lambda * v[i]).abs() < 1e-7);
            }
        }
    }
}
