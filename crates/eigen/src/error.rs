//! Error type for the eigensolvers.

use std::error::Error;
use std::fmt;

/// Error produced by the iterative eigensolvers.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum EigenError {
    /// The Lanczos iteration did not reach the requested residual tolerance.
    NoConvergence {
        /// Total matrix–vector products spent.
        iterations: usize,
        /// Residual norm estimate at the best Ritz pair found.
        residual: f64,
    },
    /// The operator is too small for the requested computation (e.g. a
    /// Fiedler vector of a 1-vertex graph).
    TooSmall {
        /// Dimension of the offending operator.
        dim: usize,
    },
}

impl fmt::Display for EigenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EigenError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "lanczos failed to converge after {iterations} matvecs (residual {residual:.3e})"
            ),
            EigenError::TooSmall { dim } => {
                write!(f, "operator dimension {dim} is too small for this computation")
            }
        }
    }
}

impl Error for EigenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EigenError>();
        let e = EigenError::TooSmall { dim: 1 };
        assert!(e.to_string().contains("too small"));
        let e = EigenError::NoConvergence {
            iterations: 10,
            residual: 0.5,
        };
        assert!(e.to_string().contains("converge"));
    }
}
