//! Error type for the eigensolvers.

use np_sparse::BudgetExceeded;
use std::error::Error;
use std::fmt;

/// Error produced by the iterative eigensolvers.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum EigenError {
    /// The Lanczos iteration did not reach the requested residual tolerance.
    NoConvergence {
        /// Total matrix–vector products spent.
        iterations: usize,
        /// Residual norm estimate at the best Ritz pair found.
        residual: f64,
    },
    /// The operator is too small for the requested computation (e.g. a
    /// Fiedler vector of a 1-vertex graph).
    TooSmall {
        /// Dimension of the offending operator.
        dim: usize,
    },
    /// A non-finite value (NaN or ±∞) was found in solver input or
    /// produced by the operator during iteration.
    NonFinite {
        /// Where the non-finite value was detected.
        stage: &'static str,
    },
    /// A cooperative resource budget was exhausted mid-computation.
    Budget(BudgetExceeded),
}

impl From<BudgetExceeded> for EigenError {
    fn from(e: BudgetExceeded) -> Self {
        EigenError::Budget(e)
    }
}

impl fmt::Display for EigenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EigenError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "lanczos failed to converge after {iterations} matvecs (residual {residual:.3e})"
            ),
            EigenError::TooSmall { dim } => {
                write!(
                    f,
                    "operator dimension {dim} is too small for this computation"
                )
            }
            EigenError::NonFinite { stage } => {
                write!(f, "non-finite value encountered in {stage}")
            }
            EigenError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl Error for EigenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EigenError>();
        let e = EigenError::TooSmall { dim: 1 };
        assert!(e.to_string().contains("too small"));
        let e = EigenError::NoConvergence {
            iterations: 10,
            residual: 0.5,
        };
        assert!(e.to_string().contains("converge"));
    }

    #[test]
    fn non_finite_and_budget_display() {
        let e = EigenError::NonFinite { stage: "lanczos" };
        assert!(e.to_string().contains("non-finite"));
        let meter = np_sparse::BudgetMeter::new(&np_sparse::Budget::default().with_matvecs(1));
        let exceeded = meter.charge(2).unwrap_err();
        let e: EigenError = exceeded.into();
        assert!(matches!(e, EigenError::Budget(_)));
        assert!(e.to_string().contains("budget"));
    }
}
