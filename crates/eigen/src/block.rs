//! Block Lanczos for the smallest deflated eigenpair.
//!
//! The paper uses "the block Lanczos algorithm [Golub–Van Loan]" (§1.1
//! footnote 1). The block variant iterates with `p` vectors at once, which
//! improves convergence when the target eigenvalue is *clustered* —
//! exactly what happens on netlists whose intersection graph has several
//! almost-equally-good natural cuts (near-degenerate `λ₂, λ₃, …`).
//!
//! The implementation mirrors [`lanczos`](crate::lanczos): explicit
//! deflation of known eigenvectors, full reorthogonalization against the
//! whole accumulated basis, verified residuals, and restarts from the best
//! Ritz block. The projected operator is materialized as a dense banded
//! matrix and solved with the Jacobi eigensolver (the basis stays in the
//! low hundreds of vectors).

use crate::dense::try_jacobi_eigen;
use crate::lanczos::{EigenPair, LanczosOptions};
use crate::EigenError;
use np_sparse::vecops::{accumulate_scaled, axpy, dot_hot, norm2, normalize, orthogonalize_fused};
use np_sparse::{BudgetMeter, LinearOperator};

/// Options for [`smallest_deflated_block`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockLanczosOptions {
    /// Vectors per block (`p ≥ 1`; `p = 1` degenerates to classic
    /// Lanczos).
    pub block_size: usize,
    /// Base options: tolerance, seed, restart budget, dense cutoff, and
    /// `max_basis` interpreted as the cap on total basis *vectors* per
    /// restart cycle.
    pub base: LanczosOptions,
}

impl Default for BlockLanczosOptions {
    fn default() -> Self {
        BlockLanczosOptions {
            block_size: 2,
            base: LanczosOptions::default(),
        }
    }
}

use crate::lanczos::splitmix_stream;

/// Modified Gram–Schmidt of `v` against `basis` (twice) and `deflate`,
/// fused into one sweep (same projection order as the unfused loops:
/// deflate, basis, deflate, basis).
fn full_orthogonalize(v: &mut [f64], basis: &[Vec<f64>], deflate: &[Vec<f64>]) {
    orthogonalize_fused(&[deflate, basis, deflate, basis], v);
}

/// Computes the smallest eigenpair of `op` restricted to the orthogonal
/// complement of `deflate`, using block Lanczos with
/// `opts.block_size`-vector blocks.
///
/// Produces the same eigenpair as
/// [`smallest_deflated`](crate::smallest_deflated) (up to sign and
/// tolerance); prefer the block variant when the spectrum near `λ₂` is
/// clustered.
///
/// # Errors
///
/// * [`EigenError::TooSmall`] if the deflated space is empty;
/// * [`EigenError::NoConvergence`] if the tolerance is not met within the
///   restart budget.
///
/// # Panics
///
/// Panics if `opts.block_size == 0`.
pub fn smallest_deflated_block(
    op: &impl LinearOperator,
    deflate: &[Vec<f64>],
    opts: &BlockLanczosOptions,
) -> Result<EigenPair, EigenError> {
    smallest_deflated_block_metered(op, deflate, opts, &BudgetMeter::unlimited())
}

/// [`smallest_deflated_block`] with cooperative budget enforcement: every
/// operator application charges one matvec to `meter`, so a caller
/// computing several deflated eigenvectors (the direct multiway spectral
/// embedding) spends against the same allowance as the rest of its run.
///
/// # Errors
///
/// In addition to the [`smallest_deflated_block`] errors,
/// [`EigenError::Budget`] when `meter` reports a limit hit.
///
/// # Panics
///
/// Panics if `opts.block_size == 0`.
pub fn smallest_deflated_block_metered(
    op: &impl LinearOperator,
    deflate: &[Vec<f64>],
    opts: &BlockLanczosOptions,
    meter: &BudgetMeter,
) -> Result<EigenPair, EigenError> {
    assert!(opts.block_size >= 1, "block size must be at least 1");
    let n = op.dim();
    // orthonormalize the deflation set
    let deflate: Vec<Vec<f64>> = {
        let mut out: Vec<Vec<f64>> = Vec::with_capacity(deflate.len());
        for v in deflate {
            let mut w = v.clone();
            orthogonalize_fused(&[&out], &mut w);
            if normalize(&mut w) > 1e-12 {
                out.push(w);
            }
        }
        out
    };
    if n == 0 || deflate.len() >= n {
        return Err(EigenError::TooSmall { dim: n });
    }
    if n <= opts.base.dense_cutoff || opts.block_size >= n {
        // small instances: fall back to the single-vector path, which has
        // its own dense solver
        return crate::lanczos::smallest_deflated_metered(op, &deflate, &opts.base, meter);
    }

    let p = opts.block_size.min(n - deflate.len()).max(1);
    let mut rand = splitmix_stream(opts.base.seed ^ 0xB10C);
    let mut matvecs = 0usize;
    let mut best: Option<(f64, EigenPair)> = None;
    let mut seed_block: Vec<Vec<f64>> = (0..p).map(|_| (0..n).map(|_| rand()).collect()).collect();

    for _cycle in 0..opts.base.max_restarts.max(1) {
        // orthonormal starting block
        let mut basis: Vec<Vec<f64>> = Vec::new();
        for v in &mut seed_block {
            let mut w = v.clone();
            full_orthogonalize(&mut w, &basis, &deflate);
            if normalize(&mut w) > 1e-10 {
                basis.push(w);
            } else {
                let mut fresh: Vec<f64> = (0..n).map(|_| rand()).collect();
                full_orthogonalize(&mut fresh, &basis, &deflate);
                if normalize(&mut fresh) > 1e-10 {
                    basis.push(fresh);
                }
            }
        }
        if basis.is_empty() {
            seed_block = (0..p).map(|_| (0..n).map(|_| rand()).collect()).collect();
            continue;
        }

        // projected matrix entries t[i][j] = v_iᵀ A v_j, built as we grow
        let mut t: Vec<Vec<f64>> = Vec::new();
        let mut w = vec![0.0f64; n];
        let mut frontier = 0usize; // first vector of the current block
        let mut steps = 0usize;

        let max_vectors = opts.base.max_basis.max(2 * p);
        loop {
            let block_end = basis.len();
            // apply the operator to the current block, project, extend
            let mut new_vectors: Vec<Vec<f64>> = Vec::new();
            for j in frontier..block_end {
                meter.charge(1)?;
                op.apply(&basis[j], &mut w);
                matvecs += 1;
                // record projections against the existing basis
                while t.len() < basis.len() {
                    t.push(vec![0.0; basis.len()]);
                }
                for row in t.iter_mut() {
                    row.resize(basis.len(), 0.0);
                }
                for (i, b) in basis.iter().enumerate() {
                    let c = dot_hot(b, &w);
                    t[i][j] = c;
                    t[j][i] = c;
                }
                let coeffs: Vec<f64> = (0..basis.len()).map(|i| -t[i][j]).collect();
                let mut res = w.clone();
                accumulate_scaled(&coeffs, &basis, &mut res);
                full_orthogonalize(&mut res, &basis, &deflate);
                orthogonalize_fused(&[&new_vectors], &mut res);
                if normalize(&mut res) > 1e-10 {
                    new_vectors.push(res);
                }
            }
            frontier = block_end;

            // solving the projected problem is O(k³); do it only every few
            // block steps, when the basis is saturated, or on stagnation
            let saturated = new_vectors.is_empty() || basis.len() + new_vectors.len() > max_vectors;
            steps += 1;
            if !saturated && !steps.is_multiple_of(4) {
                basis.extend(new_vectors);
                continue;
            }

            // solve the projected problem
            let k = basis.len();
            let mut dense = vec![0.0f64; k * k];
            for i in 0..k {
                for j in 0..k {
                    dense[i * k + j] = t[i][j];
                }
            }
            let eig = try_jacobi_eigen(&dense, k)?;
            let theta = eig.values[0];
            let y = &eig.vectors[0];
            let mut x = vec![0.0f64; n];
            accumulate_scaled(y, &basis, &mut x);
            full_orthogonalize(&mut x, &[], &deflate);
            if normalize(&mut x) > 1e-12 {
                let mut mx = vec![0.0f64; n];
                meter.charge(1)?;
                op.apply(&x, &mut mx);
                matvecs += 1;
                axpy(-theta, &x, &mut mx);
                let resid = norm2(&mx);
                if best.as_ref().is_none_or(|(r, _)| resid < *r) {
                    best = Some((
                        resid,
                        EigenPair {
                            value: theta,
                            vector: x.clone(),
                        },
                    ));
                }
                if resid <= opts.base.tol * theta.abs().max(1.0) {
                    return Ok(best.expect("just set").1);
                }
            }

            if new_vectors.is_empty() || basis.len() + new_vectors.len() > max_vectors {
                break;
            }
            basis.extend(new_vectors);
        }

        // restart: best Ritz vector plus fresh random directions
        seed_block.clear();
        if let Some((_, pair)) = &best {
            seed_block.push(pair.vector.clone());
        }
        while seed_block.len() < p {
            seed_block.push((0..n).map(|_| rand()).collect());
        }
    }

    Err(EigenError::NoConvergence {
        iterations: matvecs,
        residual: best.map(|(r, _)| r).unwrap_or(f64::INFINITY),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanczos::smallest_deflated;
    use np_sparse::{Laplacian, TripletBuilder};

    fn ones(n: usize) -> Vec<f64> {
        vec![1.0; n]
    }

    fn path_laplacian(n: usize) -> Laplacian {
        let mut b = TripletBuilder::new(n);
        for i in 0..n - 1 {
            b.push_sym(i, i + 1, 1.0);
        }
        Laplacian::from_adjacency(b.into_csr())
    }

    #[test]
    fn agrees_with_single_vector_on_path() {
        let n = 100;
        let q = path_laplacian(n);
        let single = smallest_deflated(&q, &[ones(n)], &LanczosOptions::default()).unwrap();
        let block =
            smallest_deflated_block(&q, &[ones(n)], &BlockLanczosOptions::default()).unwrap();
        assert!(
            (single.value - block.value).abs() < 1e-6,
            "single {} vs block {}",
            single.value,
            block.value
        );
    }

    #[test]
    fn handles_clustered_eigenvalues() {
        // three weakly-coupled cliques: λ2 ≈ λ3, the classic block-Lanczos
        // motivation
        let n = 60;
        let mut b = TripletBuilder::new(n);
        for c in 0..3 {
            let base = c * 20;
            for i in 0..20 {
                for j in i + 1..20 {
                    b.push_sym(base + i, base + j, 1.0);
                }
            }
        }
        b.push_sym(0, 20, 1e-4);
        b.push_sym(20, 40, 1e-4);
        let q = Laplacian::from_adjacency(b.into_csr());
        let block = smallest_deflated_block(
            &q,
            &[ones(n)],
            &BlockLanczosOptions {
                block_size: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(block.value < 1e-3, "λ2 = {}", block.value);
        // residual verified by the solver itself; double-check here
        let mut y = vec![0.0; n];
        q.apply(&block.vector, &mut y);
        axpy(-block.value, &block.vector, &mut y);
        assert!(norm2(&y) < 1e-6);
    }

    #[test]
    fn block_size_one_matches_classic() {
        let n = 100;
        let q = path_laplacian(n);
        let classic = smallest_deflated(&q, &[ones(n)], &LanczosOptions::default()).unwrap();
        let block1 = smallest_deflated_block(
            &q,
            &[ones(n)],
            &BlockLanczosOptions {
                block_size: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((classic.value - block1.value).abs() < 1e-6);
    }

    #[test]
    fn small_instance_falls_back_to_dense() {
        let q = path_laplacian(8);
        let pair =
            smallest_deflated_block(&q, &[ones(8)], &BlockLanczosOptions::default()).unwrap();
        let expect = 2.0 - 2.0 * (std::f64::consts::PI / 8.0).cos();
        assert!((pair.value - expect).abs() < 1e-8);
    }

    #[test]
    fn deterministic() {
        let q = path_laplacian(120);
        let a = smallest_deflated_block(&q, &[ones(120)], &BlockLanczosOptions::default()).unwrap();
        let b = smallest_deflated_block(&q, &[ones(120)], &BlockLanczosOptions::default()).unwrap();
        assert_eq!(a.value, b.value);
        assert_eq!(a.vector, b.vector);
    }

    #[test]
    fn deflating_everything_errors() {
        let q = path_laplacian(3);
        let deflate = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        assert!(matches!(
            smallest_deflated_block(&q, &deflate, &BlockLanczosOptions::default()),
            Err(EigenError::TooSmall { dim: 3 })
        ));
    }

    #[test]
    #[should_panic(expected = "block size must be at least 1")]
    fn zero_block_size_panics() {
        let q = path_laplacian(60);
        let _ = smallest_deflated_block(
            &q,
            &[ones(60)],
            &BlockLanczosOptions {
                block_size: 0,
                ..Default::default()
            },
        );
    }
}
