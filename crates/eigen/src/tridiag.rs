//! Symmetric tridiagonal eigenproblem via implicit QL with Wilkinson
//! shifts.
//!
//! Lanczos reduces the big sparse operator to a small symmetric tridiagonal
//! matrix `T_k`; its eigenvalues are the Ritz values and its eigenvectors,
//! mapped back through the Lanczos basis, give the Ritz vectors. `k` stays
//! in the tens-to-hundreds, so the classic dense `O(k³)` QL algorithm
//! (EISPACK `tql2`) is entirely adequate.

use crate::EigenError;

/// Eigendecomposition of a symmetric tridiagonal matrix.
#[derive(Clone, Debug)]
pub struct TridiagEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// `vectors[j]` is the unit eigenvector for `values[j]` (length `n`).
    pub vectors: Vec<Vec<f64>>,
}

/// Computes all eigenvalues and eigenvectors of the symmetric tridiagonal
/// matrix with diagonal `diag` (length `n`) and subdiagonal `off`
/// (length `n − 1`).
///
/// Implicit QL with Wilkinson shifts; eigenpairs are returned sorted by
/// ascending eigenvalue.
///
/// # Errors
///
/// * [`EigenError::NonFinite`] if any input entry is NaN or infinite —
///   Lanczos feeds this solver values computed from operator output, so a
///   poisoned operator surfaces here as a recoverable error;
/// * [`EigenError::NoConvergence`] if the QL iteration exceeds its (very
///   generous) sweep limit, which finite symmetric input never does.
///
/// # Panics
///
/// Panics if `off.len() + 1 != diag.len()` or if `diag` is empty — shape
/// mismatches are caller bugs, not data-dependent conditions.
///
/// # Example
///
/// ```
/// // T = [[2, 1], [1, 2]] has eigenvalues 1 and 3
/// let e = np_eigen::tridiag::eigh_tridiagonal(&[2.0, 2.0], &[1.0])?;
/// assert!((e.values[0] - 1.0).abs() < 1e-12);
/// assert!((e.values[1] - 3.0).abs() < 1e-12);
/// # Ok::<(), np_eigen::EigenError>(())
/// ```
pub fn eigh_tridiagonal(diag: &[f64], off: &[f64]) -> Result<TridiagEigen, EigenError> {
    let n = diag.len();
    assert!(n > 0, "empty tridiagonal matrix");
    assert_eq!(off.len() + 1, n, "subdiagonal length must be n - 1");
    if !diag.iter().chain(off).all(|v| v.is_finite()) {
        return Err(EigenError::NonFinite {
            stage: "tridiagonal input",
        });
    }

    let mut d = diag.to_vec();
    // e[i] couples rows i and i+1; e[n-1] is a zero sentinel
    let mut e: Vec<f64> = off.to_vec();
    e.push(0.0);
    // z is row-major n×n; column j will be the eigenvector of d[j]
    let mut z = vec![0.0f64; n * n];
    for i in 0..n {
        z[i * n + i] = 1.0;
    }

    const EPS: f64 = f64::EPSILON;
    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // find the first decoupled position m >= l
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= EPS * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 64 {
                return Err(EigenError::NoConvergence {
                    iterations: iter,
                    residual: e[l].abs(),
                });
            }
            // Wilkinson shift
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r } else { -r };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // recover from underflow: deflate and restart this l
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // accumulate the rotation into the eigenvector matrix
                for k in 0..n {
                    f = z[k * n + i + 1];
                    z[k * n + i + 1] = s * z[k * n + i] + c * f;
                    z[k * n + i] = c * z[k * n + i] - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    // sort ascending, permuting eigenvector columns alongside (input was
    // verified finite, so total_cmp agrees with the numeric order here)
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].total_cmp(&d[b]));
    let values: Vec<f64> = order.iter().map(|&j| d[j]).collect();
    let vectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&j| (0..n).map(|k| z[k * n + j]).collect())
        .collect();
    Ok(TridiagEigen { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tridiag_matvec(diag: &[f64], off: &[f64], x: &[f64]) -> Vec<f64> {
        let n = diag.len();
        let mut y = vec![0.0; n];
        for i in 0..n {
            y[i] = diag[i] * x[i];
            if i > 0 {
                y[i] += off[i - 1] * x[i - 1];
            }
            if i + 1 < n {
                y[i] += off[i] * x[i + 1];
            }
        }
        y
    }

    fn check_decomposition(diag: &[f64], off: &[f64]) {
        let e = eigh_tridiagonal(diag, off).unwrap();
        let n = diag.len();
        // ascending
        assert!(e.values.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        for (lambda, v) in e.values.iter().zip(&e.vectors) {
            // unit norm
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-10, "norm {norm}");
            // residual ‖Tv − λv‖ small
            let tv = tridiag_matvec(diag, off, v);
            let resid: f64 = tv
                .iter()
                .zip(v)
                .map(|(a, b)| (a - lambda * b).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(resid < 1e-9, "residual {resid} for λ={lambda}");
        }
        // pairwise orthogonality
        for i in 0..n {
            for j in i + 1..n {
                let d: f64 = e.vectors[i]
                    .iter()
                    .zip(&e.vectors[j])
                    .map(|(a, b)| a * b)
                    .sum();
                assert!(d.abs() < 1e-9, "vectors {i},{j} not orthogonal: {d}");
            }
        }
    }

    #[test]
    fn one_by_one() {
        let e = eigh_tridiagonal(&[5.0], &[]).unwrap();
        assert_eq!(e.values, vec![5.0]);
        assert_eq!(e.vectors, vec![vec![1.0]]);
    }

    #[test]
    fn two_by_two_exact() {
        let e = eigh_tridiagonal(&[2.0, 2.0], &[1.0]).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_matrix() {
        let e = eigh_tridiagonal(&[3.0, 1.0, 2.0], &[0.0, 0.0]).unwrap();
        assert_eq!(e.values, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn path_laplacian_eigenvalues() {
        // Laplacian of the path P4: eigenvalues 2 - 2cos(kπ/4), k=0..3
        let diag = [1.0, 2.0, 2.0, 1.0];
        let off = [-1.0, -1.0, -1.0];
        let e = eigh_tridiagonal(&diag, &off).unwrap();
        for (k, ev) in e.values.iter().enumerate() {
            let expect = 2.0 - 2.0 * (std::f64::consts::PI * k as f64 / 4.0).cos();
            assert!((ev - expect).abs() < 1e-10, "k={k}: {ev} vs {expect}");
        }
        check_decomposition(&diag, &off);
    }

    #[test]
    fn random_matrices_satisfy_decomposition() {
        // deterministic pseudo-random tridiagonal matrices
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for n in [2usize, 3, 5, 8, 20, 40] {
            let diag: Vec<f64> = (0..n).map(|_| 4.0 * next()).collect();
            let off: Vec<f64> = (0..n - 1).map(|_| 2.0 * next()).collect();
            check_decomposition(&diag, &off);
        }
    }

    #[test]
    fn trace_preserved() {
        let diag = [1.0, -2.0, 3.5, 0.25];
        let off = [0.5, -1.5, 2.0];
        let e = eigh_tridiagonal(&diag, &off).unwrap();
        let trace: f64 = diag.iter().sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "subdiagonal length")]
    fn wrong_off_length_panics() {
        let _ = eigh_tridiagonal(&[1.0, 2.0], &[1.0, 1.0]);
    }

    #[test]
    fn nan_input_errors() {
        for (diag, off) in [
            (vec![1.0, f64::NAN], vec![0.5]),
            (vec![1.0, 2.0], vec![f64::INFINITY]),
            (vec![f64::NEG_INFINITY, 2.0], vec![0.5]),
        ] {
            assert_eq!(
                eigh_tridiagonal(&diag, &off).unwrap_err(),
                EigenError::NonFinite {
                    stage: "tridiagonal input"
                }
            );
        }
    }
}
