//! Lanczos iteration for the smallest eigenpair of a deflated symmetric
//! operator.
//!
//! The paper computes the second eigenvector of `Q' = D' − A'` with "an
//! existing Lanczos implementation", exploiting that netlist-derived
//! matrices are sparse (§1.1 footnote 1). This module implements the same
//! computation from scratch:
//!
//! * the known nullvector (all-ones for a connected Laplacian) is
//!   **deflated explicitly** — every working vector is kept orthogonal to
//!   it, so the smallest Ritz value of the deflated operator is exactly
//!   `λ₂`;
//! * **full reorthogonalization** against the whole Lanczos basis keeps the
//!   computed basis orthonormal. This is the textbook cure for the loss of
//!   orthogonality that plagues plain Lanczos and plays the role of the
//!   paper's block variant (which exists to handle clustered eigenvalues);
//! * **restarting**: if the basis hits its size cap without converging, the
//!   iteration restarts from the best current Ritz vector, preserving
//!   progress with bounded memory.
//!
//! Convergence is declared when the *verified* residual
//! `‖M x − θ x‖ ≤ tol · max(1, |θ|)`, measured with a fresh matvec — not
//! just the cheap `β·|y_k|` estimate.

use crate::dense::{materialize, try_jacobi_eigen};
use crate::tridiag::eigh_tridiagonal;
use crate::EigenError;
use np_sparse::vecops::{
    accumulate_scaled, axpy, axpy2, dot_hot, norm2, norm2_hot, normalize, orthogonalize_fused,
};
use np_sparse::{BudgetMeter, LinearOperator};

/// An eigenvalue/eigenvector pair.
#[derive(Clone, Debug, PartialEq)]
pub struct EigenPair {
    /// The eigenvalue.
    pub value: f64,
    /// The unit-norm eigenvector.
    pub vector: Vec<f64>,
}

/// Options controlling the Lanczos iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LanczosOptions {
    /// Maximum Lanczos basis size per restart cycle.
    pub max_basis: usize,
    /// Relative residual tolerance: converged when
    /// `‖Mx − θx‖ ≤ tol · max(1, |θ|)`.
    pub tol: f64,
    /// Seed for the (deterministic) random start vector.
    pub seed: u64,
    /// Number of restart cycles before giving up.
    pub max_restarts: usize,
    /// Operators of dimension `≤ dense_cutoff` are solved directly with
    /// the dense Jacobi solver instead of Lanczos.
    pub dense_cutoff: usize,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            max_basis: 250,
            tol: 1e-8,
            seed: 0x1AC2_05D1_7E57_BEEF,
            max_restarts: 10,
            dense_cutoff: 48,
        }
    }
}

/// SplitMix64 — the crate's single deterministic stream for start
/// vectors (shared with the block solver so both draw bit-identical
/// sequences for a given seed).
pub(crate) fn splitmix_stream(seed: u64) -> impl FnMut() -> f64 {
    let mut s = seed;
    move || {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 11) as f64) * (1.0 / (1u64 << 53) as f64) - 0.5
    }
}

/// Orthonormalizes `vectors` by modified Gram–Schmidt, dropping
/// numerically dependent members.
fn orthonormalize(vectors: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(vectors.len());
    for v in vectors {
        let mut w = v.clone();
        orthogonalize_fused(&[&basis], &mut w);
        if normalize(&mut w) > 1e-12 {
            basis.push(w);
        }
    }
    basis
}

/// Projects `x` onto the orthogonal complement of the orthonormal set `us`
/// (applied twice for numerical robustness), as one fused sweep.
fn project_out(us: &[Vec<f64>], x: &mut [f64]) {
    orthogonalize_fused(&[us, us], x);
}

/// Computes the smallest eigenpair of `op` restricted to the orthogonal
/// complement of `deflate`.
///
/// `deflate` holds known eigenvectors (or any directions) to exclude; they
/// are orthonormalized internally, so callers may pass unnormalized
/// vectors. For a connected graph Laplacian with `deflate = [ones]`, the
/// result is the Fiedler pair — use the [`fiedler`](crate::fiedler)
/// convenience wrapper for that case.
///
/// Deterministic for fixed `(op, deflate, opts)`.
///
/// # Errors
///
/// * [`EigenError::TooSmall`] if the deflated space is empty;
/// * [`EigenError::NoConvergence`] if the residual tolerance is not met
///   within `max_restarts` restart cycles.
pub fn smallest_deflated(
    op: &impl LinearOperator,
    deflate: &[Vec<f64>],
    opts: &LanczosOptions,
) -> Result<EigenPair, EigenError> {
    smallest_deflated_metered(op, deflate, opts, &BudgetMeter::unlimited())
}

/// [`smallest_deflated`] with cooperative budget enforcement and
/// non-finite detection: every operator application charges one matvec to
/// `meter`, and NaN/∞ values produced by the operator surface as
/// [`EigenError::NonFinite`] instead of corrupting the iteration.
///
/// # Errors
///
/// In addition to the [`smallest_deflated`] errors:
///
/// * [`EigenError::Budget`] when `meter` reports a limit hit (the partial
///   spend is inside the error);
/// * [`EigenError::NonFinite`] if the operator produces NaN or ±∞.
pub fn smallest_deflated_metered(
    op: &impl LinearOperator,
    deflate: &[Vec<f64>],
    opts: &LanczosOptions,
    meter: &BudgetMeter,
) -> Result<EigenPair, EigenError> {
    let n = op.dim();
    let deflate = orthonormalize(deflate);
    if n == 0 || deflate.len() >= n {
        return Err(EigenError::TooSmall { dim: n });
    }
    if n <= opts.dense_cutoff {
        return dense_smallest_deflated(op, &deflate, meter);
    }

    let mut rand = splitmix_stream(opts.seed);
    let mut matvecs = 0usize;
    let mut best: Option<(f64, EigenPair)> = None; // (residual, pair)

    // start vector for the first cycle: random, deflated
    let mut start: Vec<f64> = (0..n).map(|_| rand()).collect();

    for _cycle in 0..opts.max_restarts.max(1) {
        project_out(&deflate, &mut start);
        if normalize(&mut start) <= 1e-12 {
            // degenerate start (can only happen with adversarial deflation);
            // draw a fresh random vector
            start = (0..n).map(|_| rand()).collect();
            project_out(&deflate, &mut start);
            normalize(&mut start);
        }

        let mut basis: Vec<Vec<f64>> = vec![start.clone()];
        let mut alphas: Vec<f64> = Vec::new();
        let mut betas: Vec<f64> = Vec::new();
        let mut w = vec![0.0f64; n];

        for j in 0..opts.max_basis {
            op.apply(&basis[j], &mut w);
            matvecs += 1;
            meter.charge(1)?;
            let alpha = dot_hot(&w, &basis[j]);
            if !alpha.is_finite() {
                return Err(EigenError::NonFinite {
                    stage: "lanczos iteration",
                });
            }
            alphas.push(alpha);
            if j > 0 {
                // both recurrence subtractions in one pass over w
                axpy2(-alpha, &basis[j], -betas[j - 1], &basis[j - 1], &mut w);
            } else {
                axpy(-alpha, &basis[j], &mut w);
            }
            // full reorthogonalization (deflation set twice, then the
            // basis twice), fused into a single m+1-pass sweep
            orthogonalize_fused(&[&deflate, &deflate, &basis, &basis], &mut w);
            let beta = norm2_hot(&w);
            if !beta.is_finite() {
                return Err(EigenError::NonFinite {
                    stage: "lanczos iteration",
                });
            }
            let invariant = beta <= 1e-13;

            let last_step = j + 1 == opts.max_basis;
            let check = invariant || last_step || (j >= 4 && (j + 1).is_multiple_of(5));
            if check {
                let eig = eigh_tridiagonal(&alphas, &betas)?;
                let theta = eig.values[0];
                let y = &eig.vectors[0];
                // assemble the Ritz vector (pairwise-fused axpy passes)
                let mut x = vec![0.0f64; n];
                accumulate_scaled(y, &basis, &mut x);
                project_out(&deflate, &mut x);
                if normalize(&mut x) > 1e-12 {
                    // verified residual
                    let mut mx = vec![0.0f64; n];
                    op.apply(&x, &mut mx);
                    matvecs += 1;
                    meter.charge(1)?;
                    axpy(-theta, &x, &mut mx);
                    let resid = norm2(&mx);
                    if !resid.is_finite() {
                        return Err(EigenError::NonFinite {
                            stage: "lanczos residual",
                        });
                    }
                    let tol = opts.tol * theta.abs().max(1.0);
                    if best.as_ref().is_none_or(|(r, _)| resid < *r) {
                        best = Some((
                            resid,
                            EigenPair {
                                value: theta,
                                vector: x.clone(),
                            },
                        ));
                    }
                    if resid <= tol {
                        return Ok(best.expect("just set").1);
                    }
                    if invariant || last_step {
                        // restart from the best Ritz vector so far
                        start = best.as_ref().expect("nonempty").1.vector.clone();
                        if invariant {
                            // invariant subspace that did not satisfy the
                            // verified tolerance: perturb to escape
                            let mut noise: Vec<f64> = (0..n).map(|_| rand() * 1e-3).collect();
                            project_out(&deflate, &mut noise);
                            axpy(1.0, &noise, &mut start);
                        }
                        break;
                    }
                } else if invariant || last_step {
                    start = (0..n).map(|_| rand()).collect();
                    break;
                }
            }
            if invariant {
                break;
            }
            let mut next = w.clone();
            let scale = 1.0 / beta;
            for v in &mut next {
                *v *= scale;
            }
            betas.push(beta);
            basis.push(next);
        }
    }

    Err(EigenError::NoConvergence {
        iterations: matvecs,
        residual: best.map(|(r, _)| r).unwrap_or(f64::INFINITY),
    })
}

/// Direct dense solve for small operators: materialize, shift the deflated
/// directions to the top of the spectrum, take the smallest eigenpair.
fn dense_smallest_deflated(
    op: &impl LinearOperator,
    deflate: &[Vec<f64>],
    meter: &BudgetMeter,
) -> Result<EigenPair, EigenError> {
    let n = op.dim();
    // materialization applies the operator to each basis vector
    meter.charge(n as u64)?;
    let mut a = materialize(op);
    // sigma strictly above the spectral radius (Gershgorin)
    let sigma = 1.0
        + (0..n)
            .map(|i| (0..n).map(|j| a[i * n + j].abs()).sum::<f64>())
            .fold(0.0f64, f64::max);
    // A' = P A P + sigma * Σ u uᵀ  where P projects out the deflation set.
    // Implemented densely: first form PAP via two projections.
    for u in deflate {
        // A <- (I - u uᵀ) A (I - u uᵀ), then add sigma u uᵀ
        // compute v = A u and w = Aᵀ u = A u (symmetric)
        let mut au = vec![0.0f64; n];
        for i in 0..n {
            au[i] = (0..n).map(|j| a[i * n + j] * u[j]).sum();
        }
        let uau: f64 = (0..n).map(|i| u[i] * au[i]).sum();
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] +=
                    -u[i] * au[j] - au[i] * u[j] + u[i] * u[j] * uau + sigma * u[i] * u[j];
            }
        }
    }
    let eig = try_jacobi_eigen(&a, n)?;
    // smallest eigenpair of the shifted matrix lives in the complement
    let mut vector = eig.vectors[0].clone();
    project_out(deflate, &mut vector);
    normalize(&mut vector);
    Ok(EigenPair {
        value: eig.values[0],
        vector,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::jacobi_eigen;
    use np_sparse::{Budget, CsrMatrix, Laplacian, TripletBuilder};

    fn path_laplacian(n: usize) -> Laplacian {
        let mut b = TripletBuilder::new(n);
        for i in 0..n - 1 {
            b.push_sym(i, i + 1, 1.0);
        }
        Laplacian::from_adjacency(b.into_csr())
    }

    fn ones(n: usize) -> Vec<f64> {
        vec![1.0; n]
    }

    #[test]
    fn path_fiedler_value_small_n_dense_path() {
        // P8: λ2 = 2 - 2cos(π/8)
        let q = path_laplacian(8);
        let pair = smallest_deflated(&q, &[ones(8)], &LanczosOptions::default()).unwrap();
        let expect = 2.0 - 2.0 * (std::f64::consts::PI / 8.0).cos();
        assert!((pair.value - expect).abs() < 1e-8, "{}", pair.value);
    }

    #[test]
    fn path_fiedler_value_large_n_lanczos_path() {
        let n = 200;
        let q = path_laplacian(n);
        let pair = smallest_deflated(&q, &[ones(n)], &LanczosOptions::default()).unwrap();
        let expect = 2.0 - 2.0 * (std::f64::consts::PI / n as f64).cos();
        assert!(
            (pair.value - expect).abs() < 1e-7,
            "{} vs {expect}",
            pair.value
        );
        // eigenvector orthogonal to ones
        let s: f64 = pair.vector.iter().sum();
        assert!(s.abs() < 1e-6);
        // residual verified
        let mut y = vec![0.0; n];
        q.apply(&pair.vector, &mut y);
        axpy(-pair.value, &pair.vector, &mut y);
        assert!(norm2(&y) < 1e-7);
    }

    #[test]
    fn fiedler_vector_monotone_on_path() {
        // the Fiedler vector of a path is cos(π(i+1/2)/n): strictly monotone
        let n = 100;
        let q = path_laplacian(n);
        let pair = smallest_deflated(&q, &[ones(n)], &LanczosOptions::default()).unwrap();
        let v = &pair.vector;
        let increasing = v.windows(2).all(|w| w[1] > w[0]);
        let decreasing = v.windows(2).all(|w| w[1] < w[0]);
        assert!(increasing || decreasing);
    }

    #[test]
    fn matches_dense_ground_truth_on_random_graph() {
        // deterministic random sparse graph, n = 60 (forced Lanczos path)
        let n = 60;
        let mut rand = splitmix_stream(12345);
        let mut b = TripletBuilder::new(n);
        for i in 0..n {
            b.push_sym(i, (i + 1) % n, 1.0); // ring for connectivity
        }
        for _ in 0..3 * n {
            let i = ((rand() + 0.5) * n as f64) as usize % n;
            let j = ((rand() + 0.5) * n as f64) as usize % n;
            if i != j {
                b.push_sym(i, j, 0.5);
            }
        }
        let q = Laplacian::from_adjacency(b.into_csr());
        let opts = LanczosOptions {
            dense_cutoff: 4,
            ..Default::default()
        };
        let pair = smallest_deflated(&q, &[ones(n)], &opts).unwrap();

        let dense = jacobi_eigen(&materialize(&q), n);
        // dense.values[0] ~ 0 (ones); λ2 = dense.values[1]
        assert!(dense.values[0].abs() < 1e-9);
        assert!(
            (pair.value - dense.values[1]).abs() < 1e-6,
            "lanczos {} vs dense {}",
            pair.value,
            dense.values[1]
        );
    }

    #[test]
    fn disconnected_graph_lambda2_zero() {
        // two disjoint triangles: λ2 = 0, vector separates components
        let mut b = TripletBuilder::new(6);
        for &(i, j) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.push_sym(i, j, 1.0);
        }
        let q = Laplacian::from_adjacency(b.into_csr());
        let pair = smallest_deflated(&q, &[ones(6)], &LanczosOptions::default()).unwrap();
        assert!(pair.value.abs() < 1e-8);
        let sign = |x: f64| x > 0.0;
        assert_eq!(sign(pair.vector[0]), sign(pair.vector[1]));
        assert_eq!(sign(pair.vector[0]), sign(pair.vector[2]));
        assert_ne!(sign(pair.vector[0]), sign(pair.vector[3]));
    }

    #[test]
    fn deflating_everything_errors() {
        let q = path_laplacian(3);
        let deflate = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        assert!(matches!(
            smallest_deflated(&q, &deflate, &LanczosOptions::default()),
            Err(EigenError::TooSmall { dim: 3 })
        ));
    }

    #[test]
    fn no_deflation_finds_global_smallest() {
        // Laplacian without deflation: smallest eigenvalue is 0
        let q = path_laplacian(100);
        let pair = smallest_deflated(&q, &[], &LanczosOptions::default()).unwrap();
        assert!(pair.value.abs() < 1e-7, "{}", pair.value);
    }

    #[test]
    fn deterministic_across_calls() {
        let q = path_laplacian(120);
        let a = smallest_deflated(&q, &[ones(120)], &LanczosOptions::default()).unwrap();
        let b = smallest_deflated(&q, &[ones(120)], &LanczosOptions::default()).unwrap();
        assert_eq!(a.value, b.value);
        assert_eq!(a.vector, b.vector);
    }

    #[test]
    fn weighted_graph_fiedler() {
        // dumbbell: two K3 with a weak bridge; λ2 is small and the vector
        // splits the dumbbells
        let mut b = TripletBuilder::new(64);
        for base in [0usize, 32] {
            for i in 0..32 {
                for j in i + 1..32 {
                    b.push_sym(base + i, base + j, 1.0);
                }
            }
        }
        b.push_sym(0, 32, 0.01);
        let q = Laplacian::from_adjacency(b.into_csr());
        let pair = smallest_deflated(&q, &[ones(64)], &LanczosOptions::default()).unwrap();
        assert!(pair.value < 0.01, "λ2 = {}", pair.value);
        let left_sign = pair.vector[1] > 0.0;
        assert!((0..32).all(|i| (pair.vector[i] > 0.0) == left_sign || pair.vector[i].abs() < 1e-9));
        assert!(
            (32..64).all(|i| (pair.vector[i] > 0.0) != left_sign || pair.vector[i].abs() < 1e-9)
        );
    }

    #[test]
    fn zero_operator() {
        let z = CsrMatrix::zero(70);
        let pair = smallest_deflated(&z, &[ones(70)], &LanczosOptions::default()).unwrap();
        assert!(pair.value.abs() < 1e-10);
    }

    /// Operator that returns NaN after a set number of applications —
    /// stands in for numerically poisoned input.
    struct PoisonOp {
        inner: Laplacian,
        poison_after: std::cell::Cell<usize>,
    }

    impl LinearOperator for PoisonOp {
        fn dim(&self) -> usize {
            self.inner.dim()
        }
        fn apply(&self, x: &[f64], y: &mut [f64]) {
            self.inner.apply(x, y);
            let left = self.poison_after.get();
            if left == 0 {
                y[0] = f64::NAN;
            } else {
                self.poison_after.set(left - 1);
            }
        }
    }

    #[test]
    fn poisoned_operator_surfaces_non_finite() {
        for poison_after in [0usize, 3, 10] {
            let op = PoisonOp {
                inner: path_laplacian(100),
                poison_after: std::cell::Cell::new(poison_after),
            };
            let err = smallest_deflated(&op, &[ones(100)], &LanczosOptions::default()).unwrap_err();
            assert!(
                matches!(err, EigenError::NonFinite { .. }),
                "poison_after={poison_after}: {err:?}"
            );
        }
    }

    #[test]
    fn matvec_budget_trips_mid_iteration() {
        let q = path_laplacian(300);
        let meter = BudgetMeter::new(&Budget::default().with_matvecs(7));
        let err = smallest_deflated_metered(&q, &[ones(300)], &LanczosOptions::default(), &meter)
            .unwrap_err();
        match err {
            EigenError::Budget(e) => assert!(e.matvecs_used >= 7),
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn dense_path_charges_meter() {
        let q = path_laplacian(8); // below dense_cutoff
        let meter = BudgetMeter::unlimited();
        smallest_deflated_metered(&q, &[ones(8)], &LanczosOptions::default(), &meter).unwrap();
        assert_eq!(meter.matvecs_used(), 8);
    }

    #[test]
    fn threaded_operator_bit_identical_eigenpair() {
        // the row-sharded operator changes how a matvec is executed, not
        // what it computes, so the whole iteration — values, vectors,
        // metered spend — must match serial bit for bit at every thread
        // count
        let n = 300;
        let q = path_laplacian(n);
        let run = |threads: usize| {
            let meter = BudgetMeter::unlimited();
            let op = q.threaded(threads);
            let pair =
                smallest_deflated_metered(&op, &[ones(n)], &LanczosOptions::default(), &meter)
                    .unwrap();
            (pair, meter.matvecs_used())
        };
        let (serial_pair, serial_spend) = run(1);
        for threads in [2usize, 8] {
            let (pair, spend) = run(threads);
            assert_eq!(pair.value.to_bits(), serial_pair.value.to_bits());
            assert_eq!(pair.vector, serial_pair.vector, "threads={threads}");
            assert_eq!(spend, serial_spend, "threads={threads}");
        }
    }

    #[test]
    fn threaded_operator_bit_identical_block_solver() {
        let n = 256;
        let q = path_laplacian(n);
        let opts = crate::BlockLanczosOptions::default();
        let serial = crate::smallest_deflated_block(&q, &[ones(n)], &opts).unwrap();
        for threads in [2usize, 8] {
            let par =
                crate::smallest_deflated_block(&q.threaded(threads), &[ones(n)], &opts).unwrap();
            assert_eq!(par.value.to_bits(), serial.value.to_bits());
            assert_eq!(par.vector, serial.vector, "threads={threads}");
        }
    }

    #[test]
    fn generous_budget_converges_and_reports_spend() {
        let q = path_laplacian(150);
        let meter = BudgetMeter::new(&Budget::default().with_matvecs(1_000_000));
        let pair = smallest_deflated_metered(&q, &[ones(150)], &LanczosOptions::default(), &meter)
            .unwrap();
        let expect = 2.0 - 2.0 * (std::f64::consts::PI / 150.0).cos();
        assert!((pair.value - expect).abs() < 1e-7);
        assert!(meter.matvecs_used() > 0);
    }
}
