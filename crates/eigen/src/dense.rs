//! Dense symmetric eigensolver (cyclic Jacobi).
//!
//! Used as ground truth in tests (Lanczos results are validated against it
//! on small operators) and as a direct solver when an operator is small
//! enough that the iterative machinery is pointless.

use crate::EigenError;
use np_sparse::LinearOperator;

/// Eigendecomposition of a dense symmetric matrix.
#[derive(Clone, Debug)]
pub struct DenseEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// `vectors[j]` is the unit eigenvector for `values[j]`.
    pub vectors: Vec<Vec<f64>>,
}

/// Computes all eigenpairs of the dense symmetric matrix `a` (row-major,
/// `n × n`) with the cyclic Jacobi method.
///
/// Only the lower triangle is read; the matrix is assumed symmetric.
///
/// # Panics
///
/// Panics if `a.len() != n * n` or if the input contains non-finite
/// values. Use [`try_jacobi_eigen`] when the matrix entries come from
/// untrusted or numerically suspect sources.
///
/// # Example
///
/// ```
/// let e = np_eigen::dense::jacobi_eigen(&[2.0, 1.0, 1.0, 2.0], 2);
/// assert!((e.values[0] - 1.0).abs() < 1e-12);
/// assert!((e.values[1] - 3.0).abs() < 1e-12);
/// ```
pub fn jacobi_eigen(a: &[f64], n: usize) -> DenseEigen {
    try_jacobi_eigen(a, n).expect("non-finite input to jacobi_eigen")
}

/// Fallible variant of [`jacobi_eigen`]: returns
/// [`EigenError::NonFinite`] for NaN/∞ entries and
/// [`EigenError::NoConvergence`] if the sweep limit is exceeded, instead
/// of panicking.
///
/// # Panics
///
/// Panics if `a.len() != n * n` (a shape mismatch is a caller bug).
pub fn try_jacobi_eigen(a: &[f64], n: usize) -> Result<DenseEigen, EigenError> {
    assert_eq!(a.len(), n * n, "matrix buffer must be n*n");
    if n == 0 {
        return Ok(DenseEigen {
            values: Vec::new(),
            vectors: Vec::new(),
        });
    }
    if !a.iter().all(|v| v.is_finite()) {
        return Err(EigenError::NonFinite {
            stage: "dense matrix input",
        });
    }
    let mut m = a.to_vec();
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let off = |m: &[f64]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..i {
                s += m[i * n + j] * m[i * n + j];
            }
        }
        s
    };
    let mut sweeps = 0;
    while off(&m) > 1e-24 * (n * n) as f64 {
        sweeps += 1;
        if sweeps > 100 {
            return Err(EigenError::NoConvergence {
                iterations: sweeps,
                residual: off(&m).sqrt(),
            });
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // rotate rows/cols p and q
                for k in 0..n {
                    let akp = m[k * n + p];
                    let akq = m[k * n + q];
                    m[k * n + p] = c * akp - s * akq;
                    m[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = m[p * n + k];
                    let aqk = m[q * n + k];
                    m[p * n + k] = c * apk - s * aqk;
                    m[q * n + k] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    // input was verified finite, so total_cmp matches the numeric order
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| m[x * n + x].total_cmp(&m[y * n + y]));
    Ok(DenseEigen {
        values: order.iter().map(|&j| m[j * n + j]).collect(),
        vectors: order
            .iter()
            .map(|&j| (0..n).map(|k| v[k * n + j]).collect())
            .collect(),
    })
}

/// Materializes any [`LinearOperator`] into a dense row-major buffer by
/// applying it to the standard basis. `O(n)` operator applications — for
/// tests and small direct solves only.
pub fn materialize(op: &impl LinearOperator) -> Vec<f64> {
    let n = op.dim();
    let mut a = vec![0.0f64; n * n];
    let mut e = vec![0.0f64; n];
    let mut col = vec![0.0f64; n];
    for j in 0..n {
        e[j] = 1.0;
        op.apply(&e, &mut col);
        for i in 0..n {
            a[i * n + j] = col[i];
        }
        e[j] = 0.0;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_sparse::{Laplacian, TripletBuilder};

    #[test]
    fn two_by_two() {
        let e = jacobi_eigen(&[2.0, 1.0, 1.0, 2.0], 2);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix() {
        let e = jacobi_eigen(&[], 0);
        assert!(e.values.is_empty());
    }

    #[test]
    fn identity_eigenvalues_all_one() {
        let mut a = vec![0.0; 16];
        for i in 0..4 {
            a[i * 4 + i] = 1.0;
        }
        let e = jacobi_eigen(&a, 4);
        for v in e.values {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn residuals_and_orthogonality() {
        // pseudo-random symmetric matrix
        let n = 8;
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let x = next();
                a[i * n + j] = x;
                a[j * n + i] = x;
            }
        }
        let e = jacobi_eigen(&a, n);
        for (lambda, vec_) in e.values.iter().zip(&e.vectors) {
            let mut resid = 0.0;
            for i in 0..n {
                let mut av = 0.0;
                for j in 0..n {
                    av += a[i * n + j] * vec_[j];
                }
                resid += (av - lambda * vec_[i]).powi(2);
            }
            assert!(resid.sqrt() < 1e-9, "residual {}", resid.sqrt());
        }
        for i in 0..n {
            for j in i + 1..n {
                let d: f64 = e.vectors[i]
                    .iter()
                    .zip(&e.vectors[j])
                    .map(|(a, b)| a * b)
                    .sum();
                assert!(d.abs() < 1e-9);
            }
        }
    }

    #[test]
    fn laplacian_smallest_eigenvalue_zero() {
        let mut b = TripletBuilder::new(4);
        b.push_sym(0, 1, 1.0);
        b.push_sym(1, 2, 1.0);
        b.push_sym(2, 3, 1.0);
        b.push_sym(3, 0, 1.0);
        let q = Laplacian::from_adjacency(b.into_csr());
        let a = materialize(&q);
        let e = jacobi_eigen(&a, 4);
        assert!(e.values[0].abs() < 1e-12);
        // cycle C4 eigenvalues: 0, 2, 2, 4
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[3] - 4.0).abs() < 1e-10);
    }

    #[test]
    fn try_variant_rejects_non_finite() {
        let e = try_jacobi_eigen(&[1.0, f64::NAN, f64::NAN, 1.0], 2).unwrap_err();
        assert_eq!(
            e,
            EigenError::NonFinite {
                stage: "dense matrix input"
            }
        );
        let e = try_jacobi_eigen(&[f64::INFINITY], 1).unwrap_err();
        assert!(matches!(e, EigenError::NonFinite { .. }));
    }

    #[test]
    #[should_panic(expected = "non-finite input")]
    fn panicking_variant_still_panics_on_nan() {
        jacobi_eigen(&[f64::NAN], 1);
    }

    #[test]
    fn materialize_roundtrip() {
        let mut b = TripletBuilder::new(3);
        b.push_sym(0, 2, 5.0);
        let m = b.into_csr();
        let a = materialize(&m);
        assert_eq!(a[2], 5.0);
        assert_eq!(a[2 * 3], 5.0);
        assert_eq!(a[4], 0.0); // entry (1,1)
    }
}
