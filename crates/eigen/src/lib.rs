//! Eigensolvers for spectral ratio-cut partitioning.
//!
//! The partitioning pipeline needs one specific eigenpair: the
//! second-smallest eigenvalue `λ₂` of a graph Laplacian `Q = D − A` and its
//! eigenvector (the *Fiedler vector*), whose sorted entries give the linear
//! ordering that drives every algorithm in the paper. The paper uses a
//! block Lanczos code; this crate implements:
//!
//! * [`lanczos`] — single-vector Lanczos with full reorthogonalization and
//!   explicit deflation of known eigenvectors (the all-ones nullvector of a
//!   connected Laplacian), with restarts;
//! * [`tridiag`] — the implicit-QL-with-shifts solver for the small
//!   symmetric tridiagonal systems Lanczos produces;
//! * [`dense`] — a cyclic Jacobi solver used as ground truth in tests and
//!   as a direct solver for small operators;
//! * [`fiedler`] — the high-level entry point: the Fiedler pair of a
//!   graph Laplacian.
//!
//! # Example
//!
//! ```
//! use np_eigen::{fiedler, LanczosOptions};
//! use np_sparse::{Laplacian, TripletBuilder};
//!
//! // two triangles joined by one edge: the Fiedler vector separates them
//! let mut b = TripletBuilder::new(6);
//! for &(i, j) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
//!     b.push_sym(i, j, 1.0);
//! }
//! let q = Laplacian::from_adjacency(b.into_csr());
//! let pair = fiedler(&q, &LanczosOptions::default())?;
//! let split_consistent = (pair.vector[0] > 0.0) == (pair.vector[1] > 0.0);
//! assert!(split_consistent);
//! assert!((pair.vector[0] > 0.0) != (pair.vector[5] > 0.0));
//! # Ok::<(), np_eigen::EigenError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod block;
pub mod dense;
mod error;
pub mod lanczos;
pub mod tridiag;

pub use block::{smallest_deflated_block, smallest_deflated_block_metered, BlockLanczosOptions};
pub use error::EigenError;
pub use lanczos::{smallest_deflated, smallest_deflated_metered, EigenPair, LanczosOptions};

use np_sparse::{BudgetMeter, LinearOperator};

/// Computes the Fiedler pair (`λ₂` and its eigenvector) of a graph
/// Laplacian.
///
/// The all-ones nullvector is deflated analytically, so the smallest
/// eigenvalue seen by the Lanczos iteration *is* `λ₂`. For a disconnected
/// graph `λ₂ = 0` and the returned vector is a (normalized) combination of
/// component indicators orthogonal to all-ones — still a valid ordering
/// vector, which is how the downstream sweep code recovers zero-cut splits.
///
/// Accepts any [`LinearOperator`] that applies a graph Laplacian — the
/// factored [`Laplacian`](np_sparse::Laplacian) itself or its row-sharded
/// [`ThreadedLaplacian`](np_sparse::ThreadedLaplacian) wrapper, whose
/// matvecs are bit-identical to serial, so the computed pair (and the
/// iteration count) is independent of the thread count.
///
/// # Errors
///
/// Returns [`EigenError::NoConvergence`] if the iteration fails to reach
/// the requested tolerance within the configured restarts, and
/// [`EigenError::TooSmall`] for operators of dimension `< 2`.
pub fn fiedler(lap: &impl LinearOperator, opts: &LanczosOptions) -> Result<EigenPair, EigenError> {
    fiedler_metered(lap, opts, &BudgetMeter::unlimited())
}

/// [`fiedler`] with cooperative budget enforcement: every matvec charges
/// `meter` once — regardless of how many threads a sharded operator used
/// to execute it — and exhaustion surfaces as [`EigenError::Budget`] with
/// the partial spend attached. Non-finite operator output is reported as
/// [`EigenError::NonFinite`] instead of corrupting the iteration.
///
/// # Errors
///
/// The [`fiedler`] errors plus [`EigenError::Budget`] and
/// [`EigenError::NonFinite`].
pub fn fiedler_metered(
    lap: &impl LinearOperator,
    opts: &LanczosOptions,
    meter: &BudgetMeter,
) -> Result<EigenPair, EigenError> {
    let n = lap.dim();
    if n < 2 {
        return Err(EigenError::TooSmall { dim: n });
    }
    let ones = vec![1.0 / (n as f64).sqrt(); n];
    lanczos::smallest_deflated_metered(lap, &[ones], opts, meter)
}
