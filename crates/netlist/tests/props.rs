//! Property tests for the netlist substrate: builder invariants,
//! generator guarantees, I/O round trips, and incremental cut tracking.

use np_netlist::components::ModuleComponents;
use np_netlist::generate::{generate, GeneratorConfig};
use np_netlist::io::{parse_hgr, to_hgr_string};
use np_netlist::partition::CutTracker;
use np_netlist::rng::Rng64;
use np_netlist::{Bipartition, HypergraphBuilder, ModuleId, Side};
use np_testkit::{check_cases, Gen};

/// A random string of printable characters (ASCII and a sprinkling of
/// wider Unicode), up to `max_len` chars.
fn arb_text(g: &mut Gen, max_len: usize) -> String {
    let len = g.usize_in(0, max_len);
    (0..len)
        .map(|_| {
            if g.with_probability(0.85) {
                // printable ASCII, including digits and whitespace
                char::from(g.usize_in(0x20, 0x7E) as u8)
            } else if g.flip() {
                '\n'
            } else {
                char::from_u32(g.usize_in(0xA1, 0x2FFF) as u32).unwrap_or('¤')
            }
        })
        .collect()
}

#[test]
fn builder_sorts_and_dedups() {
    check_cases(128, 0x4E01, |g| {
        let pins = g.vec_with(1, 15, |g| g.usize_in(0, 19) as u32);
        let mut b = HypergraphBuilder::new(20);
        let id = b.add_net(pins.iter().copied().map(ModuleId)).unwrap();
        let hg = b.finish().unwrap();
        let stored = hg.pins(id);
        assert!(stored.windows(2).all(|w| w[0] < w[1]));
        let mut expect: Vec<u32> = pins.clone();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(stored.len(), expect.len());
    });
}

#[test]
fn generator_invariants() {
    check_cases(48, 0x4E02, |g| {
        let modules = g.usize_in(10, 199);
        let extra = g.usize_in(0, 49);
        let seed = g.u64_below(500);
        let cfg = GeneratorConfig::new(modules, modules + extra, seed);
        let hg = generate(&cfg);
        assert_eq!(hg.num_modules(), modules);
        assert!(hg.num_nets() >= cfg.nets);
        assert!(ModuleComponents::compute(&hg).is_connected());
        // every net is within bounds and non-trivial
        for n in hg.nets() {
            assert!(hg.net_size(n) >= 2);
        }
    });
}

#[test]
fn generator_with_satellite_invariants() {
    check_cases(24, 0x4E03, |g| {
        let seed = g.u64_below(200);
        let cfg = GeneratorConfig::new(120, 140, seed)
            .with_satellite(0.15, 2)
            .with_global_nets(3, (20, 40));
        let hg = generate(&cfg);
        assert_eq!(hg.num_modules(), 120);
        assert!(ModuleComponents::compute(&hg).is_connected());
        assert!(hg.max_net_size() <= 40);
    });
}

#[test]
fn hgr_roundtrip_random() {
    check_cases(48, 0x4E04, |g| {
        let modules = g.usize_in(5, 59);
        let seed = g.u64_below(300);
        let hg = generate(&GeneratorConfig::new(modules, modules + 5, seed));
        let back = parse_hgr(&to_hgr_string(&hg)).unwrap();
        assert_eq!(hg, back);
    });
}

#[test]
fn cut_tracker_random_walk_consistency() {
    check_cases(96, 0x4E05, |g| {
        let seed = g.u64_below(500);
        let steps = g.usize_in(1, 59);
        let hg = generate(&GeneratorConfig::new(40, 50, seed));
        let mut rng = Rng64::new(seed ^ 0xDEAD);
        let mut tracker = CutTracker::all_on(&hg, Side::Left);
        for _ in 0..steps {
            let m = ModuleId(rng.gen_range(40) as u32);
            let side = if rng.gen_bool(0.5) {
                Side::Left
            } else {
                Side::Right
            };
            tracker.move_module(m, side);
        }
        let scratch = tracker.to_partition().cut_stats(&hg);
        assert_eq!(tracker.stats(), scratch);
    });
}

#[test]
fn gains_sum_rule() {
    check_cases(48, 0x4E06, |g| {
        // moving a module and moving it back restores the exact state
        let seed = g.u64_below(300);
        let hg = generate(&GeneratorConfig::new(30, 40, seed));
        let p = Bipartition::from_left_set(30, (0..15u32).map(ModuleId));
        let mut tracker = CutTracker::from_partition(&hg, &p);
        let before = tracker.stats();
        for m in hg.modules() {
            let side = tracker.side(m);
            tracker.move_module(m, side.flip());
            tracker.move_module(m, side);
        }
        assert_eq!(tracker.stats(), before);
    });
}

#[test]
fn rng_streams_reproducible() {
    check_cases(64, 0x4E07, |g| {
        let seed = g.u64_below(10_000);
        let mut a = Rng64::new(seed);
        let mut b = Rng64::new(seed);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    });
}

#[test]
fn sample_distinct_always_distinct() {
    check_cases(128, 0x4E08, |g| {
        let n = g.usize_in(1, 49);
        let seed = g.u64_below(1000);
        let mut rng = Rng64::new(seed);
        let k = 1 + (seed as usize % n);
        let s = rng.sample_distinct(n, k);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), k);
        assert!(s.iter().all(|&x| x < n));
    });
}

// The text parsers must never panic, whatever bytes arrive — they
// either parse or return a structured error.

#[test]
fn hgr_parser_never_panics() {
    check_cases(256, 0x4E09, |g| {
        let text = arb_text(g, 200);
        let _ = np_netlist::io::parse_hgr(&text);
    });
}

#[test]
fn named_parser_never_panics() {
    check_cases(256, 0x4E0A, |g| {
        let text = arb_text(g, 200);
        let _ = np_netlist::named::NamedNetlist::parse(&text);
    });
}

#[test]
fn hgr_parser_never_panics_on_numeric_soup() {
    check_cases(256, 0x4E0B, |g| {
        let nums = g.vec_with(0, 30, |g| g.usize_in(0, 99));
        let newline_every = g.usize_in(1, 5);
        let mut text = String::new();
        for (i, n) in nums.iter().enumerate() {
            text.push_str(&n.to_string());
            text.push(if (i + 1) % newline_every == 0 {
                '\n'
            } else {
                ' '
            });
        }
        let _ = np_netlist::io::parse_hgr(&text);
    });
}

#[test]
fn hgr_parser_rejects_oversized_headers_without_panicking() {
    // adversarial headers declare counts up to u64 scale; the parser must
    // return an error before attempting the O(count) allocation
    check_cases(128, 0x4E0C, |g| {
        let huge = np_netlist::io::MAX_DECLARED_COUNT as u64 + 1 + g.u64_below(u64::MAX / 2);
        let text = if g.flip() {
            format!("{huge} 4\n1 2\n")
        } else {
            format!("1 {huge}\n1 2\n")
        };
        let err = np_netlist::io::parse_hgr(&text).unwrap_err();
        assert!(
            matches!(err, np_netlist::NetlistError::Parse { .. }),
            "{err}"
        );
    });
}

#[test]
fn hgr_parser_collapses_random_duplicate_pins() {
    check_cases(128, 0x4E0D, |g| {
        let modules = g.usize_in(2, 20);
        // net line with deliberate repetition: each pin drawn with replacement
        let pins = g.vec_with(2, 24, |g| g.usize_in(1, modules));
        let line: Vec<String> = pins.iter().map(|p| p.to_string()).collect();
        let text = format!("1 {modules}\n{}\n", line.join(" "));
        let hg = np_netlist::io::parse_hgr(&text).unwrap();
        let stored = hg.pins(np_netlist::NetId(0));
        let mut expect: Vec<usize> = pins.iter().map(|p| p - 1).collect();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(stored.len(), expect.len());
        assert!(stored.windows(2).all(|w| w[0] < w[1]));
    });
}

#[test]
fn hgr_parser_rejects_truncated_net_sections() {
    check_cases(128, 0x4E0E, |g| {
        let declared = g.usize_in(2, 12);
        let provided = g.usize_in(0, declared - 1);
        let mut text = format!("{declared} 8\n");
        for i in 0..provided {
            text.push_str(&format!("{} {}\n", (i % 8) + 1, ((i + 1) % 8) + 1));
        }
        let err = np_netlist::io::parse_hgr(&text).unwrap_err();
        assert!(
            err.to_string()
                .contains(&format!("declared {declared} nets")),
            "{err}"
        );
    });
}
