//! Property tests for the netlist substrate: builder invariants,
//! generator guarantees, I/O round trips, and incremental cut tracking.

use np_netlist::components::ModuleComponents;
use np_netlist::generate::{generate, GeneratorConfig};
use np_netlist::io::{parse_hgr, to_hgr_string};
use np_netlist::partition::CutTracker;
use np_netlist::rng::Rng64;
use np_netlist::{Bipartition, HypergraphBuilder, ModuleId, Side};
use proptest::prelude::*;

proptest! {
    #[test]
    fn builder_sorts_and_dedups(pins in proptest::collection::vec(0u32..20, 1..=15)) {
        let mut b = HypergraphBuilder::new(20);
        let id = b.add_net(pins.iter().copied().map(ModuleId)).unwrap();
        let hg = b.finish().unwrap();
        let stored = hg.pins(id);
        prop_assert!(stored.windows(2).all(|w| w[0] < w[1]));
        let mut expect: Vec<u32> = pins.clone();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(stored.len(), expect.len());
    }

    #[test]
    fn generator_invariants(modules in 10usize..200, extra in 0usize..50, seed in 0u64..500) {
        let cfg = GeneratorConfig::new(modules, modules + extra, seed);
        let hg = generate(&cfg);
        prop_assert_eq!(hg.num_modules(), modules);
        prop_assert!(hg.num_nets() >= cfg.nets);
        prop_assert!(ModuleComponents::compute(&hg).is_connected());
        // every net is within bounds and non-trivial
        for n in hg.nets() {
            prop_assert!(hg.net_size(n) >= 2);
        }
    }

    #[test]
    fn generator_with_satellite_invariants(seed in 0u64..200) {
        let cfg = GeneratorConfig::new(120, 140, seed)
            .with_satellite(0.15, 2)
            .with_global_nets(3, (20, 40));
        let hg = generate(&cfg);
        prop_assert_eq!(hg.num_modules(), 120);
        prop_assert!(ModuleComponents::compute(&hg).is_connected());
        prop_assert!(hg.max_net_size() <= 40);
    }

    #[test]
    fn hgr_roundtrip_random(modules in 5usize..60, seed in 0u64..300) {
        let hg = generate(&GeneratorConfig::new(modules, modules + 5, seed));
        let back = parse_hgr(&to_hgr_string(&hg)).unwrap();
        prop_assert_eq!(hg, back);
    }

    #[test]
    fn cut_tracker_random_walk_consistency(seed in 0u64..500, steps in 1usize..60) {
        let hg = generate(&GeneratorConfig::new(40, 50, seed));
        let mut rng = Rng64::new(seed ^ 0xDEAD);
        let mut tracker = CutTracker::all_on(&hg, Side::Left);
        for _ in 0..steps {
            let m = ModuleId(rng.gen_range(40) as u32);
            let side = if rng.gen_bool(0.5) { Side::Left } else { Side::Right };
            tracker.move_module(m, side);
        }
        let scratch = tracker.to_partition().cut_stats(&hg);
        prop_assert_eq!(tracker.stats(), scratch);
    }

    #[test]
    fn gains_sum_rule(seed in 0u64..300) {
        // moving a module and moving it back restores the exact state
        let hg = generate(&GeneratorConfig::new(30, 40, seed));
        let p = Bipartition::from_left_set(30, (0..15u32).map(ModuleId));
        let mut tracker = CutTracker::from_partition(&hg, &p);
        let before = tracker.stats();
        for m in hg.modules() {
            let side = tracker.side(m);
            tracker.move_module(m, side.flip());
            tracker.move_module(m, side);
        }
        prop_assert_eq!(tracker.stats(), before);
    }

    #[test]
    fn rng_streams_reproducible(seed in 0u64..10_000) {
        let mut a = Rng64::new(seed);
        let mut b = Rng64::new(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn sample_distinct_always_distinct(n in 1usize..50, seed in 0u64..1000) {
        let mut rng = Rng64::new(seed);
        let k = 1 + (seed as usize % n);
        let s = rng.sample_distinct(n, k);
        let set: std::collections::HashSet<_> = s.iter().collect();
        prop_assert_eq!(set.len(), k);
        prop_assert!(s.iter().all(|&x| x < n));
    }
}

proptest! {
    /// The text parsers must never panic, whatever bytes arrive — they
    /// either parse or return a structured error.
    #[test]
    fn hgr_parser_never_panics(text in "\\PC{0,200}") {
        let _ = np_netlist::io::parse_hgr(&text);
    }

    #[test]
    fn named_parser_never_panics(text in "\\PC{0,200}") {
        let _ = np_netlist::named::NamedNetlist::parse(&text);
    }

    #[test]
    fn hgr_parser_never_panics_on_numeric_soup(
        nums in proptest::collection::vec(0u32..100, 0..30),
        newline_every in 1usize..6,
    ) {
        let mut text = String::new();
        for (i, n) in nums.iter().enumerate() {
            text.push_str(&n.to_string());
            text.push(if (i + 1) % newline_every == 0 { '\n' } else { ' ' });
        }
        let _ = np_netlist::io::parse_hgr(&text);
    }
}
