//! Reading and writing netlists in the hMETIS `.hgr` text format.
//!
//! The format is the de-facto interchange format for hypergraph
//! partitioning benchmarks:
//!
//! ```text
//! % comment lines start with '%'
//! <num_nets> <num_modules>
//! <pin> <pin> ...        % one line per net, pins are 1-indexed
//! ```
//!
//! Only the unweighted variant is supported (the paper uses uniform module
//! weights; see `DESIGN.md` §6). Module weights or net weights in the
//! optional `fmt` field are rejected with a parse error rather than being
//! silently ignored.

use crate::{Hypergraph, HypergraphBuilder, ModuleId, NetlistError};
use std::io::{BufRead, Write};

/// Upper bound on the module / net counts a `.hgr` header may declare.
///
/// The reader allocates `O(num_modules)` up front, so an adversarial
/// header like `1 99999999999999` must be rejected *before* any
/// allocation happens — otherwise a two-line file could exhaust memory.
/// 2²⁴ (≈16.7M) is far beyond every benchmark this workspace targets
/// while keeping the worst-case upfront allocation at tens of megabytes.
pub const MAX_DECLARED_COUNT: usize = 1 << 24;

/// Parses a hypergraph from hMETIS `.hgr` text.
///
/// Blank lines and lines starting with `%` are skipped. Pins are 1-indexed
/// in the file and converted to 0-indexed [`ModuleId`]s.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed input (bad header, bad
/// token, wrong net count, unsupported weight format, or a declared
/// module/net count above [`MAX_DECLARED_COUNT`]), or the underlying
/// builder error for structurally invalid nets. Never panics, whatever
/// bytes arrive.
///
/// # Example
///
/// ```
/// let text = "% tiny\n2 3\n1 2\n2 3\n";
/// let hg = np_netlist::io::read_hgr(text.as_bytes())?;
/// assert_eq!(hg.num_nets(), 2);
/// assert_eq!(hg.num_modules(), 3);
/// # Ok::<(), np_netlist::NetlistError>(())
/// ```
pub fn read_hgr<R: BufRead>(reader: R) -> Result<Hypergraph, NetlistError> {
    let mut lines = reader.lines().enumerate();
    let parse_err = |line: usize, message: String| NetlistError::Parse { line, message };

    // header
    let (header_line_no, header) = loop {
        match lines.next() {
            Some((i, Ok(line))) => {
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break (i + 1, t.to_string());
            }
            Some((i, Err(e))) => return Err(parse_err(i + 1, format!("read failure: {e}"))),
            None => return Err(parse_err(0, "missing header line".into())),
        }
    };
    let mut parts = header.split_whitespace();
    let num_nets: usize = parts
        .next()
        .ok_or_else(|| parse_err(header_line_no, "missing net count".into()))?
        .parse()
        .map_err(|_| parse_err(header_line_no, "net count is not a number".into()))?;
    let num_modules: usize = parts
        .next()
        .ok_or_else(|| parse_err(header_line_no, "missing module count".into()))?
        .parse()
        .map_err(|_| parse_err(header_line_no, "module count is not a number".into()))?;
    if let Some(fmt) = parts.next() {
        if fmt != "0" {
            return Err(parse_err(
                header_line_no,
                format!("weighted format '{fmt}' is not supported"),
            ));
        }
    }
    if num_nets > MAX_DECLARED_COUNT {
        return Err(parse_err(
            header_line_no,
            format!(
                "declared net count {num_nets} exceeds the supported maximum {MAX_DECLARED_COUNT}"
            ),
        ));
    }
    if num_modules > MAX_DECLARED_COUNT {
        return Err(parse_err(
            header_line_no,
            format!(
                "declared module count {num_modules} exceeds the supported maximum {MAX_DECLARED_COUNT}"
            ),
        ));
    }

    let mut builder = HypergraphBuilder::try_new(num_modules)?;
    let mut nets_read = 0usize;
    for (i, line) in lines {
        let line = line.map_err(|e| parse_err(i + 1, format!("read failure: {e}")))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        if nets_read == num_nets {
            return Err(parse_err(
                i + 1,
                format!("more than the declared {num_nets} nets"),
            ));
        }
        let mut pins = Vec::new();
        for tok in t.split_whitespace() {
            let v: u32 = tok
                .parse()
                .map_err(|_| parse_err(i + 1, format!("bad pin token '{tok}'")))?;
            if v == 0 {
                return Err(parse_err(i + 1, "pins are 1-indexed; got 0".into()));
            }
            pins.push(ModuleId(v - 1));
        }
        builder.add_net(pins)?;
        nets_read += 1;
    }
    if nets_read != num_nets {
        return Err(parse_err(
            0,
            format!("declared {num_nets} nets but found {nets_read}"),
        ));
    }
    builder.finish()
}

/// Parses a hypergraph from an `.hgr` string.
///
/// Convenience wrapper over [`read_hgr`].
///
/// # Errors
///
/// Same as [`read_hgr`].
pub fn parse_hgr(text: &str) -> Result<Hypergraph, NetlistError> {
    read_hgr(text.as_bytes())
}

/// Writes a hypergraph in hMETIS `.hgr` format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
///
/// # Example
///
/// ```
/// let hg = np_netlist::hypergraph_from_nets(3, &[vec![0, 1], vec![1, 2]]);
/// let mut buf = Vec::new();
/// np_netlist::io::write_hgr(&hg, &mut buf)?;
/// let round = np_netlist::io::read_hgr(&buf[..])?;
/// assert_eq!(hg, round);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_hgr<W: Write>(hg: &Hypergraph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "{} {}", hg.num_nets(), hg.num_modules())?;
    let mut line = String::new();
    for net in hg.nets() {
        line.clear();
        for (i, m) in hg.pins(net).iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&(m.0 + 1).to_string());
        }
        writeln!(writer, "{line}")?;
    }
    Ok(())
}

/// Serializes a hypergraph to an `.hgr` string.
pub fn to_hgr_string(hg: &Hypergraph) -> String {
    let mut buf = Vec::new();
    write_hgr(hg, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("hgr output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph_from_nets;

    #[test]
    fn roundtrip_preserves_structure() {
        let hg = hypergraph_from_nets(
            5,
            &[vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![0, 4], vec![1]],
        );
        let text = to_hgr_string(&hg);
        let back = parse_hgr(&text).unwrap();
        assert_eq!(hg, back);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "% header comment\n\n2 2\n% net one\n1 2\n\n2 1\n";
        let hg = parse_hgr(text).unwrap();
        assert_eq!(hg.num_nets(), 2);
        // second net "2 1" is sorted+deduped to {0,1}
        assert_eq!(hg.pins(crate::NetId(1)), &[ModuleId(0), ModuleId(1)]);
    }

    #[test]
    fn rejects_zero_pin_index() {
        let err = parse_hgr("1 2\n0 1\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_missing_nets() {
        let err = parse_hgr("3 2\n1 2\n").unwrap_err();
        assert!(err.to_string().contains("declared 3 nets"), "{err}");
    }

    #[test]
    fn rejects_extra_nets() {
        let err = parse_hgr("1 2\n1 2\n2 1\n").unwrap_err();
        assert!(err.to_string().contains("more than the declared"), "{err}");
    }

    #[test]
    fn rejects_weighted_format() {
        let err = parse_hgr("1 2 11\n1 2\n").unwrap_err();
        assert!(err.to_string().contains("not supported"), "{err}");
    }

    #[test]
    fn rejects_garbage_header() {
        assert!(parse_hgr("nets modules\n").is_err());
        assert!(parse_hgr("").is_err());
        assert!(parse_hgr("5\n").is_err());
    }

    #[test]
    fn rejects_out_of_range_pin() {
        let err = parse_hgr("1 2\n1 3\n").unwrap_err();
        assert_eq!(
            err,
            NetlistError::ModuleOutOfRange {
                module: 2,
                num_modules: 2
            }
        );
    }

    #[test]
    fn fmt_zero_accepted() {
        let hg = parse_hgr("1 2 0\n1 2\n").unwrap();
        assert_eq!(hg.num_nets(), 1);
    }

    #[test]
    fn rejects_oversized_declared_counts_without_allocating() {
        // would panic in HypergraphBuilder::new before the cap existed
        let err = parse_hgr("1 99999999999999\n1 2\n").unwrap_err();
        assert!(err.to_string().contains("module count"), "{err}");
        // u32-representable but allocation-hostile module count
        let err = parse_hgr("1 4294967295\n1 2\n").unwrap_err();
        assert!(err.to_string().contains("supported maximum"), "{err}");
        let err = parse_hgr("99999999999999 2\n1 2\n").unwrap_err();
        assert!(err.to_string().contains("net count"), "{err}");
    }

    #[test]
    fn duplicate_pins_in_net_line_collapse() {
        let hg = parse_hgr("1 3\n2 2 2 1\n").unwrap();
        assert_eq!(hg.pins(crate::NetId(0)), &[ModuleId(0), ModuleId(1)]);
    }

    #[test]
    fn truncated_net_line_reports_shortfall() {
        // header declares 2 nets, file ends after 1
        let err = parse_hgr("2 3\n1 2\n").unwrap_err();
        assert!(err.to_string().contains("declared 2 nets"), "{err}");
    }
}
