//! The immutable netlist hypergraph.

use crate::{ModuleId, NetId};

/// A circuit netlist represented as a hypergraph.
///
/// Vertices are modules and hyperedges are signal nets. The structure stores
/// both incidence directions in compressed (CSR-like) form:
///
/// * net → pins: [`Hypergraph::pins`] returns the modules contained in a net;
/// * module → nets: [`Hypergraph::nets_of`] returns the nets incident to a
///   module.
///
/// A `Hypergraph` is immutable once built; use
/// [`HypergraphBuilder`](crate::HypergraphBuilder) to construct one.
/// Pin lists are sorted and duplicate-free, which makes set operations on
/// them (intersection of two nets, membership tests) cheap.
///
/// # Example
///
/// ```
/// use np_netlist::{HypergraphBuilder, ModuleId, NetId};
///
/// # fn main() -> Result<(), np_netlist::NetlistError> {
/// let mut b = HypergraphBuilder::new(3);
/// b.add_net([ModuleId(0), ModuleId(1)])?;
/// b.add_net([ModuleId(0), ModuleId(2)])?;
/// let hg = b.finish()?;
/// assert_eq!(hg.pins(NetId(0)), &[ModuleId(0), ModuleId(1)]);
/// assert_eq!(hg.nets_of(ModuleId(0)), &[NetId(0), NetId(1)]);
/// assert_eq!(hg.degree(ModuleId(0)), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hypergraph {
    pub(crate) net_offsets: Vec<u32>,
    pub(crate) net_pins: Vec<ModuleId>,
    pub(crate) module_offsets: Vec<u32>,
    pub(crate) module_nets: Vec<NetId>,
}

impl Hypergraph {
    /// Number of modules (hypergraph vertices).
    #[inline]
    pub fn num_modules(&self) -> usize {
        self.module_offsets.len() - 1
    }

    /// Number of signal nets (hyperedges).
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.net_offsets.len() - 1
    }

    /// Total number of pins (sum of net sizes).
    #[inline]
    pub fn num_pins(&self) -> usize {
        self.net_pins.len()
    }

    /// The modules connected by net `net`, sorted and duplicate-free.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[inline]
    pub fn pins(&self, net: NetId) -> &[ModuleId] {
        let lo = self.net_offsets[net.index()] as usize;
        let hi = self.net_offsets[net.index() + 1] as usize;
        &self.net_pins[lo..hi]
    }

    /// The nets incident to module `module`, sorted and duplicate-free.
    ///
    /// # Panics
    ///
    /// Panics if `module` is out of range.
    #[inline]
    pub fn nets_of(&self, module: ModuleId) -> &[NetId] {
        let lo = self.module_offsets[module.index()] as usize;
        let hi = self.module_offsets[module.index() + 1] as usize;
        &self.module_nets[lo..hi]
    }

    /// Number of pins of net `net` (the net's *size*, `k` for a k-pin net).
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[inline]
    pub fn net_size(&self, net: NetId) -> usize {
        (self.net_offsets[net.index() + 1] - self.net_offsets[net.index()]) as usize
    }

    /// Number of nets incident to `module` (the module's *degree*).
    ///
    /// # Panics
    ///
    /// Panics if `module` is out of range.
    #[inline]
    pub fn degree(&self, module: ModuleId) -> usize {
        (self.module_offsets[module.index() + 1] - self.module_offsets[module.index()]) as usize
    }

    /// Iterator over all net identifiers, in index order.
    pub fn nets(&self) -> impl ExactSizeIterator<Item = NetId> + Clone {
        (0..self.num_nets() as u32).map(NetId)
    }

    /// Iterator over all module identifiers, in index order.
    pub fn modules(&self) -> impl ExactSizeIterator<Item = ModuleId> + Clone {
        (0..self.num_modules() as u32).map(ModuleId)
    }

    /// Returns `true` if `module` is a pin of `net`.
    ///
    /// Runs in `O(log k)` for a k-pin net (pin lists are sorted).
    ///
    /// # Example
    ///
    /// ```
    /// use np_netlist::{HypergraphBuilder, ModuleId, NetId};
    /// # fn main() -> Result<(), np_netlist::NetlistError> {
    /// let mut b = HypergraphBuilder::new(3);
    /// b.add_net([ModuleId(0), ModuleId(2)])?;
    /// let hg = b.finish()?;
    /// assert!(hg.contains_pin(NetId(0), ModuleId(2)));
    /// assert!(!hg.contains_pin(NetId(0), ModuleId(1)));
    /// # Ok(())
    /// # }
    /// ```
    pub fn contains_pin(&self, net: NetId, module: ModuleId) -> bool {
        self.pins(net).binary_search(&module).is_ok()
    }

    /// Modules shared by nets `a` and `b`, in sorted order.
    ///
    /// This is the fundamental primitive behind the intersection graph
    /// (paper Section 2.2): two nets are adjacent in the dual exactly when
    /// this intersection is non-empty. Runs in `O(|a| + |b|)`.
    pub fn shared_modules(&self, a: NetId, b: NetId) -> Vec<ModuleId> {
        let (pa, pb) = (self.pins(a), self.pins(b));
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < pa.len() && j < pb.len() {
            match pa[i].cmp(&pb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(pa[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// The largest net size in the netlist, or 0 if there are no nets.
    pub fn max_net_size(&self) -> usize {
        self.nets().map(|n| self.net_size(n)).max().unwrap_or(0)
    }

    /// Average net size (pins per net); 0.0 if there are no nets.
    pub fn avg_net_size(&self) -> f64 {
        if self.num_nets() == 0 {
            0.0
        } else {
            self.num_pins() as f64 / self.num_nets() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn tiny() -> Hypergraph {
        // nets: {0,1}, {1,2,3}, {0,3}
        let mut b = HypergraphBuilder::new(4);
        b.add_net([ModuleId(0), ModuleId(1)]).unwrap();
        b.add_net([ModuleId(1), ModuleId(2), ModuleId(3)]).unwrap();
        b.add_net([ModuleId(0), ModuleId(3)]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn counts() {
        let hg = tiny();
        assert_eq!(hg.num_modules(), 4);
        assert_eq!(hg.num_nets(), 3);
        assert_eq!(hg.num_pins(), 7);
    }

    #[test]
    fn pin_lists_sorted() {
        let hg = tiny();
        for n in hg.nets() {
            let p = hg.pins(n);
            assert!(p.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn reverse_index_consistent() {
        let hg = tiny();
        for m in hg.modules() {
            for &n in hg.nets_of(m) {
                assert!(hg.contains_pin(n, m), "module {m} not in pins of {n}");
            }
        }
        for n in hg.nets() {
            for &m in hg.pins(n) {
                assert!(hg.nets_of(m).contains(&n));
            }
        }
    }

    #[test]
    fn degrees_and_sizes() {
        let hg = tiny();
        assert_eq!(hg.net_size(NetId(1)), 3);
        assert_eq!(hg.degree(ModuleId(1)), 2);
        assert_eq!(hg.degree(ModuleId(2)), 1);
        assert_eq!(hg.max_net_size(), 3);
        assert!((hg.avg_net_size() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn shared_modules_intersection() {
        let hg = tiny();
        assert_eq!(hg.shared_modules(NetId(0), NetId(1)), vec![ModuleId(1)]);
        assert_eq!(hg.shared_modules(NetId(0), NetId(2)), vec![ModuleId(0)]);
        assert_eq!(hg.shared_modules(NetId(1), NetId(2)), vec![ModuleId(3)]);
        assert_eq!(hg.shared_modules(NetId(0), NetId(0)).len(), 2);
    }

    #[test]
    fn iterators_cover_everything() {
        let hg = tiny();
        assert_eq!(hg.nets().count(), 3);
        assert_eq!(hg.modules().count(), 4);
    }
}
