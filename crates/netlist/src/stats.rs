//! Netlist statistics: net-size histograms and cut-by-size tables.
//!
//! Paper Table 1 tabulates, for a locally minimum ratio cut of Primary2,
//! how many nets of each size exist and how many are cut — the observation
//! that cut probability does *not* grow monotonically with net size is the
//! paper's motivation for treating nets as first-class partitioning
//! objects. [`CutBySize`] regenerates that table for any partition.

use crate::{Bipartition, Hypergraph};
use std::collections::BTreeMap;
use std::fmt;

/// Histogram of net sizes.
///
/// # Example
///
/// ```
/// use np_netlist::{hypergraph_from_nets, stats::NetSizeHistogram};
/// let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![0, 1, 2], vec![2, 3]]);
/// let h = NetSizeHistogram::of(&hg);
/// assert_eq!(h.count(2), 2);
/// assert_eq!(h.count(3), 1);
/// assert_eq!(h.count(9), 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetSizeHistogram {
    counts: BTreeMap<usize, usize>,
}

impl NetSizeHistogram {
    /// Computes the histogram of `hg`'s net sizes.
    pub fn of(hg: &Hypergraph) -> Self {
        let mut counts = BTreeMap::new();
        for net in hg.nets() {
            *counts.entry(hg.net_size(net)).or_insert(0) += 1;
        }
        NetSizeHistogram { counts }
    }

    /// Number of nets with exactly `size` pins.
    pub fn count(&self, size: usize) -> usize {
        self.counts.get(&size).copied().unwrap_or(0)
    }

    /// Iterator over `(size, count)` pairs in increasing size order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.counts.iter().map(|(&s, &c)| (s, c))
    }

    /// Total number of nets counted.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }
}

/// One row of a cut-by-net-size table (paper Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CutBySizeRow {
    /// Net size (number of pins).
    pub size: usize,
    /// Number of nets of this size.
    pub nets: usize,
    /// Number of those nets cut by the partition.
    pub cut: usize,
}

impl CutBySizeRow {
    /// Empirical cut probability for this size class.
    pub fn cut_fraction(&self) -> f64 {
        if self.nets == 0 {
            0.0
        } else {
            self.cut as f64 / self.nets as f64
        }
    }
}

/// Cut statistics broken down by net size, in the format of paper Table 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CutBySize {
    rows: Vec<CutBySizeRow>,
}

impl CutBySize {
    /// Tabulates, for each net size occurring in `hg`, how many nets exist
    /// and how many are cut by `partition`.
    ///
    /// # Panics
    ///
    /// Panics if `partition.len() != hg.num_modules()`.
    ///
    /// # Example
    ///
    /// ```
    /// use np_netlist::stats::CutBySize;
    /// use np_netlist::{hypergraph_from_nets, Bipartition, ModuleId};
    ///
    /// let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![1, 2], vec![0, 1, 2, 3]]);
    /// let p = Bipartition::from_left_set(4, [ModuleId(0), ModuleId(1)]);
    /// let t = CutBySize::compute(&hg, &p);
    /// let rows: Vec<_> = t.rows().to_vec();
    /// assert_eq!(rows[0].size, 2);
    /// assert_eq!(rows[0].nets, 2);
    /// assert_eq!(rows[0].cut, 1); // {1,2} is cut
    /// assert_eq!(rows[1].size, 4);
    /// assert_eq!(rows[1].cut, 1);
    /// ```
    pub fn compute(hg: &Hypergraph, partition: &Bipartition) -> Self {
        assert_eq!(partition.len(), hg.num_modules());
        let mut by_size: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
        for net in hg.nets() {
            let size = hg.net_size(net);
            let entry = by_size.entry(size).or_insert((0, 0));
            entry.0 += 1;
            let pins = hg.pins(net);
            let first = partition.side(pins[0]);
            if pins[1..].iter().any(|&m| partition.side(m) != first) {
                entry.1 += 1;
            }
        }
        CutBySize {
            rows: by_size
                .into_iter()
                .map(|(size, (nets, cut))| CutBySizeRow { size, nets, cut })
                .collect(),
        }
    }

    /// The table rows in increasing net-size order.
    pub fn rows(&self) -> &[CutBySizeRow] {
        &self.rows
    }

    /// Total cut nets across all sizes.
    pub fn total_cut(&self) -> usize {
        self.rows.iter().map(|r| r.cut).sum()
    }

    /// Returns `true` if the empirical cut probability is monotonically
    /// nondecreasing in net size (the "intuitive" random-partition model the
    /// paper refutes; only size classes with at least `min_nets` samples are
    /// considered).
    pub fn cut_probability_monotone(&self, min_nets: usize) -> bool {
        let mut last = 0.0f64;
        for r in &self.rows {
            if r.nets < min_nets {
                continue;
            }
            let f = r.cut_fraction();
            if f + 1e-12 < last {
                return false;
            }
            last = f;
        }
        true
    }
}

impl fmt::Display for CutBySize {
    /// Renders in the three-column layout of paper Table 1.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>8} {:>14} {:>11}",
            "Net Size", "Number of Nets", "Number Cut"
        )?;
        for r in &self.rows {
            writeln!(f, "{:>8} {:>14} {:>11}", r.size, r.nets, r.cut)?;
        }
        Ok(())
    }
}

/// Summary statistics of a hypergraph, for benchmark reporting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetlistSummary {
    /// Number of modules.
    pub modules: usize,
    /// Number of nets.
    pub nets: usize,
    /// Number of pins.
    pub pins: usize,
    /// Largest net size.
    pub max_net_size: usize,
    /// Mean net size.
    pub avg_net_size: f64,
    /// Largest module degree.
    pub max_degree: usize,
    /// Mean module degree.
    pub avg_degree: f64,
}

impl NetlistSummary {
    /// Computes summary statistics for `hg`.
    pub fn of(hg: &Hypergraph) -> Self {
        let max_degree = hg.modules().map(|m| hg.degree(m)).max().unwrap_or(0);
        NetlistSummary {
            modules: hg.num_modules(),
            nets: hg.num_nets(),
            pins: hg.num_pins(),
            max_net_size: hg.max_net_size(),
            avg_net_size: hg.avg_net_size(),
            max_degree,
            avg_degree: if hg.num_modules() == 0 {
                0.0
            } else {
                hg.num_pins() as f64 / hg.num_modules() as f64
            },
        }
    }
}

impl fmt::Display for NetlistSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "modules={} nets={} pins={} net-size(avg={:.2},max={}) degree(avg={:.2},max={})",
            self.modules,
            self.nets,
            self.pins,
            self.avg_net_size,
            self.max_net_size,
            self.avg_degree,
            self.max_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hypergraph_from_nets, ModuleId};

    #[test]
    fn histogram_counts() {
        let hg = hypergraph_from_nets(5, &[vec![0, 1], vec![1, 2], vec![0, 1, 2, 3, 4]]);
        let h = NetSizeHistogram::of(&hg);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.total(), 3);
        assert_eq!(h.iter().collect::<Vec<_>>(), vec![(2, 2), (5, 1)]);
    }

    #[test]
    fn cut_by_size_totals_match_cut_stats() {
        let hg = hypergraph_from_nets(
            6,
            &[
                vec![0, 1],
                vec![1, 2, 3],
                vec![3, 4],
                vec![4, 5],
                vec![0, 5],
            ],
        );
        let p = Bipartition::from_left_set(6, [ModuleId(0), ModuleId(1), ModuleId(2)]);
        let t = CutBySize::compute(&hg, &p);
        assert_eq!(t.total_cut(), p.cut_stats(&hg).cut_nets);
    }

    #[test]
    fn monotone_detector() {
        // all 2-pin nets cut, the 3-pin net uncut -> non-monotone
        let hg = hypergraph_from_nets(5, &[vec![0, 2], vec![1, 3], vec![0, 1, 4]]);
        let p = Bipartition::from_left_set(5, [ModuleId(0), ModuleId(1), ModuleId(4)]);
        let t = CutBySize::compute(&hg, &p);
        assert!(!t.cut_probability_monotone(1));
        assert!(t.cut_probability_monotone(2)); // too few samples per class
    }

    #[test]
    fn display_layout_contains_header() {
        let hg = hypergraph_from_nets(3, &[vec![0, 1], vec![1, 2]]);
        let p = Bipartition::from_left_set(3, [ModuleId(0)]);
        let s = CutBySize::compute(&hg, &p).to_string();
        assert!(s.contains("Net Size"));
        assert!(s.contains("Number Cut"));
    }

    #[test]
    fn summary_statistics() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1, 2], vec![2, 3]]);
        let s = NetlistSummary::of(&hg);
        assert_eq!(s.modules, 4);
        assert_eq!(s.nets, 2);
        assert_eq!(s.pins, 5);
        assert_eq!(s.max_net_size, 3);
        assert_eq!(s.max_degree, 2);
        assert!((s.avg_net_size - 2.5).abs() < 1e-12);
        assert!((s.avg_degree - 1.25).abs() < 1e-12);
    }
}
