//! A tiny deterministic PRNG (SplitMix64 seeding + xoshiro256**).
//!
//! The benchmark generator and the randomized baselines must be
//! bit-reproducible across platforms and library versions so that the
//! experiment tables in `EXPERIMENTS.md` can be regenerated exactly. The
//! `rand` crate does not guarantee stream stability across versions for its
//! standard generators, so we carry our own ~60-line generator instead.
//!
//! This is *not* a cryptographic generator; it is used only for workload
//! synthesis and heuristic restarts.

/// The SplitMix64 / golden-ratio increment, `2^64 / φ`.
///
/// Used both inside [`Rng64::new`]'s state expansion and by
/// [`derive_seed`] to decorrelate numbered sub-streams.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the seed of the `stream`-th decorrelated sub-stream of `base`.
///
/// Striding the seed by the golden-ratio increment keeps consecutive
/// streams far apart in SplitMix64's state space, so `Rng64::new(base)`
/// and `Rng64::new(derive_seed(base, 1))` produce unrelated sequences.
/// `stream == 0` returns `base` unchanged, so stream 0 is always the
/// "primary" generator.
///
/// # Example
///
/// ```
/// use np_netlist::rng::derive_seed;
/// assert_eq!(derive_seed(42, 0), 42);
/// assert_ne!(derive_seed(42, 1), derive_seed(42, 2));
/// ```
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    base.wrapping_add(GOLDEN_GAMMA.wrapping_mul(stream))
}

/// Deterministic 64-bit PRNG (xoshiro256\*\* seeded via SplitMix64).
///
/// # Example
///
/// ```
/// use np_netlist::rng::Rng64;
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let x = a.gen_range(10);
/// assert!(x < 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng64 {
    state: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state; this is
        // the initialization recommended by the xoshiro authors.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(GOLDEN_GAMMA);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng64 {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        let s2 = s2 ^ t;
        let s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_range bound must be positive");
        // 128-bit multiply avoids modulo bias well below 2^64 bounds.
        let x = self.next_u64() as u128;
        ((x * bound as u128) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct values from `[0, n)` (Floyd's algorithm),
    /// returned in unspecified order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        for j in n - k..n {
            let t = self.gen_range(j + 1);
            let v = if chosen.contains(&t) { j } else { t };
            chosen.insert(v);
            out.push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = Rng64::new(3);
        for _ in 0..1000 {
            assert!(r.gen_range(17) < 17);
        }
        assert_eq!(r.gen_range(1), 0);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Rng64::new(11);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut r = Rng64::new(5);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[r.gen_range(4)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "skewed count {c}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng64::new(9);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_has_no_repeats() {
        let mut r = Rng64::new(13);
        for _ in 0..50 {
            let s = r.sample_distinct(20, 8);
            assert_eq!(s.len(), 8);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), 8);
            assert!(s.iter().all(|&x| x < 20));
        }
    }

    #[test]
    fn sample_distinct_full_range() {
        let mut r = Rng64::new(17);
        let mut s = r.sample_distinct(5, 5);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_panics() {
        Rng64::new(0).gen_range(0);
    }

    #[test]
    fn derive_seed_stream_zero_is_identity() {
        for base in [0u64, 1, 42, u64::MAX] {
            assert_eq!(derive_seed(base, 0), base);
        }
    }

    #[test]
    fn derive_seed_streams_decorrelate() {
        // consecutive streams must not share an Rng64 prefix
        let a: Vec<u64> = {
            let mut r = Rng64::new(derive_seed(7, 1));
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::new(derive_seed(7, 2));
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn derive_seed_matches_golden_stride() {
        // the robust fallback chain relies on this exact formula for its
        // reseeded Lanczos attempts; it must stay bit-stable
        assert_eq!(
            derive_seed(0x1AC2_05D1_7E57_BEEF, 3),
            0x1AC2_05D1_7E57_BEEFu64.wrapping_add(GOLDEN_GAMMA.wrapping_mul(3))
        );
    }
}
