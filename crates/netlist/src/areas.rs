//! Module areas and the area-weighted ratio cut.
//!
//! The paper's tables report block *areas*, and the RCut1.0 program it
//! compares against optimizes an area-weighted ratio cut, while "the
//! spectral approach cannot take module areas (weights) into
//! consideration ... this has not been a significant disadvantage in
//! practice" (§4). This module supplies the area-weighted metric so that
//! claim can be tested: assign areas, partition with the (area-oblivious)
//! spectral methods, and score both ways.

use crate::kway::KwayPartition;
use crate::{Bipartition, Hypergraph, ModuleId, Side};
use std::fmt;

/// Per-module areas (cell sizes). All areas must be positive and finite.
#[derive(Clone, Debug, PartialEq)]
pub struct ModuleAreas {
    areas: Vec<f64>,
}

impl ModuleAreas {
    /// Wraps an explicit area vector.
    ///
    /// # Panics
    ///
    /// Panics if any area is non-positive or non-finite.
    pub fn new(areas: Vec<f64>) -> Self {
        assert!(
            areas.iter().all(|a| a.is_finite() && *a > 0.0),
            "module areas must be positive and finite"
        );
        ModuleAreas { areas }
    }

    /// Uniform areas (every module has area 1), the paper's setting for
    /// test/hardware-simulation applications.
    pub fn uniform(num_modules: usize) -> Self {
        ModuleAreas {
            areas: vec![1.0; num_modules],
        }
    }

    /// Number of modules covered.
    pub fn len(&self) -> usize {
        self.areas.len()
    }

    /// Returns `true` if no modules are covered.
    pub fn is_empty(&self) -> bool {
        self.areas.is_empty()
    }

    /// Area of module `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn area(&self, m: ModuleId) -> f64 {
        self.areas[m.index()]
    }

    /// Total area.
    pub fn total(&self) -> f64 {
        self.areas.iter().sum()
    }

    /// The raw area slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.areas
    }
}

/// Cut statistics of a bipartition under module areas.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaCutStats {
    /// Number of nets with pins on both sides.
    pub cut_nets: usize,
    /// Total area of the left block.
    pub left_area: f64,
    /// Total area of the right block.
    pub right_area: f64,
}

impl AreaCutStats {
    /// The area-weighted ratio cut `cut / (area(U) · area(W))`, or `+∞`
    /// when a side is empty.
    pub fn ratio(&self) -> f64 {
        if self.left_area <= 0.0 || self.right_area <= 0.0 {
            f64::INFINITY
        } else {
            self.cut_nets as f64 / (self.left_area * self.right_area)
        }
    }

    /// Paper-style `a:b` area report, smaller side first, rounded.
    pub fn areas(&self) -> String {
        let (a, b) = if self.left_area <= self.right_area {
            (self.left_area, self.right_area)
        } else {
            (self.right_area, self.left_area)
        };
        format!("{:.0}:{:.0}", a, b)
    }
}

impl fmt::Display for AreaCutStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cut={} areas={} ratio={:.3e}",
            self.cut_nets,
            self.areas(),
            self.ratio()
        )
    }
}

/// Scores `partition` against `hg` under module areas in `O(pins)`.
///
/// # Panics
///
/// Panics if the sizes of `hg`, `partition` and `areas` disagree.
pub fn area_cut_stats(
    hg: &Hypergraph,
    partition: &Bipartition,
    areas: &ModuleAreas,
) -> AreaCutStats {
    assert_eq!(partition.len(), hg.num_modules(), "partition size mismatch");
    assert_eq!(areas.len(), hg.num_modules(), "area vector size mismatch");
    let cut_nets = partition.cut_stats(hg).cut_nets;
    let mut left_area = 0.0;
    let mut right_area = 0.0;
    for m in hg.modules() {
        match partition.side(m) {
            Side::Left => left_area += areas.area(m),
            Side::Right => right_area += areas.area(m),
        }
    }
    AreaCutStats {
        cut_nets,
        left_area,
        right_area,
    }
}

/// Cut statistics of a k-way partition under module areas.
#[derive(Clone, Debug, PartialEq)]
pub struct KwayAreaCutStats {
    /// Number of nets spanning more than one block.
    pub cut_nets: usize,
    /// Total area of each block, indexed by label.
    pub block_areas: Vec<f64>,
    /// Per-block external-net counts.
    pub external: Vec<usize>,
}

impl KwayAreaCutStats {
    /// The area-weighted k-way ratio cut `Σ_b external(b) / area(b)`, or
    /// `+∞` when any block has zero area (including the 0-block empty
    /// partition).
    pub fn ratio(&self) -> f64 {
        if self.block_areas.is_empty() {
            return f64::INFINITY;
        }
        let mut r = 0.0f64;
        for (&e, &a) in self.external.iter().zip(&self.block_areas) {
            if a <= 0.0 {
                return f64::INFINITY;
            }
            r += e as f64 / a;
        }
        r
    }

    /// The largest block area (0.0 for the empty partition).
    pub fn max_block_area(&self) -> f64 {
        self.block_areas.iter().copied().fold(0.0, f64::max)
    }
}

impl fmt::Display for KwayAreaCutStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cut={} k={} max_area={:.0} kratio={:.3e}",
            self.cut_nets,
            self.block_areas.len(),
            self.max_block_area(),
            self.ratio()
        )
    }
}

/// Scores a k-way `partition` against `hg` under module areas in
/// `O(pins + nets·k)`.
///
/// # Panics
///
/// Panics if the sizes of `hg`, `partition` and `areas` disagree.
pub fn kway_area_cut_stats(
    hg: &Hypergraph,
    partition: &KwayPartition,
    areas: &ModuleAreas,
) -> KwayAreaCutStats {
    assert_eq!(partition.len(), hg.num_modules(), "partition size mismatch");
    assert_eq!(areas.len(), hg.num_modules(), "area vector size mismatch");
    KwayAreaCutStats {
        cut_nets: partition.crossing_nets(hg),
        block_areas: partition.block_areas(areas),
        external: partition.external_nets_per_block(hg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph_from_nets;

    #[test]
    fn uniform_areas_match_count_metric() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let p = Bipartition::from_left_set(4, [ModuleId(0), ModuleId(1)]);
        let a = area_cut_stats(&hg, &p, &ModuleAreas::uniform(4));
        let s = p.cut_stats(&hg);
        assert_eq!(a.cut_nets, s.cut_nets);
        assert!((a.ratio() - s.ratio()).abs() < 1e-12);
        assert_eq!(a.areas(), "2:2");
    }

    #[test]
    fn heavy_module_shifts_ratio() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let p = Bipartition::from_left_set(4, [ModuleId(0)]);
        let areas = ModuleAreas::new(vec![10.0, 1.0, 1.0, 1.0]);
        let a = area_cut_stats(&hg, &p, &areas);
        // left area 10, right 3: ratio 1/30 beats the count ratio 1/3
        assert!((a.ratio() - 1.0 / 30.0).abs() < 1e-12);
        assert_eq!(a.areas(), "3:10");
    }

    #[test]
    fn empty_side_is_infinite() {
        let hg = hypergraph_from_nets(2, &[vec![0, 1]]);
        let p = Bipartition::uniform(2, Side::Left);
        let a = area_cut_stats(&hg, &p, &ModuleAreas::uniform(2));
        assert_eq!(a.ratio(), f64::INFINITY);
    }

    #[test]
    fn total_and_accessors() {
        let areas = ModuleAreas::new(vec![1.5, 2.5]);
        assert_eq!(areas.total(), 4.0);
        assert_eq!(areas.area(ModuleId(1)), 2.5);
        assert_eq!(areas.len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_nonpositive_area() {
        ModuleAreas::new(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_nan_area() {
        ModuleAreas::new(vec![f64::NAN]);
    }

    #[test]
    fn kway_area_stats_match_uniform_counts() {
        let hg = hypergraph_from_nets(6, &[vec![0, 1], vec![2, 3], vec![4, 5], vec![1, 2]]);
        let p = KwayPartition::from_labels(vec![0, 0, 1, 1, 2, 2]);
        let a = kway_area_cut_stats(&hg, &p, &ModuleAreas::uniform(6));
        let s = p.cut_stats(&hg);
        assert_eq!(a.cut_nets, s.cut_nets);
        assert_eq!(a.external, s.external);
        assert!((a.ratio() - s.ratio()).abs() < 1e-12);
        assert_eq!(a.max_block_area(), 2.0);
    }

    #[test]
    fn kway_heavy_block_lowers_its_term() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let p = KwayPartition::from_labels(vec![0, 0, 1, 1]);
        let heavy = kway_area_cut_stats(&hg, &p, &ModuleAreas::new(vec![10.0, 10.0, 1.0, 1.0]));
        // block 0 has area 20, block 1 area 2: 1/20 + 1/2
        assert!((heavy.ratio() - (0.05 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn kway_empty_partition_ratio_infinite() {
        let stats = KwayAreaCutStats {
            cut_nets: 0,
            block_areas: vec![],
            external: vec![],
        };
        assert_eq!(stats.ratio(), f64::INFINITY);
        assert_eq!(stats.max_block_area(), 0.0);
    }
}
