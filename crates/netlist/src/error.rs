//! Error type for netlist construction and I/O.

use std::error::Error;
use std::fmt;

/// Error produced while building, validating, or parsing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net referenced a module index `module` that is `>= num_modules`.
    ModuleOutOfRange {
        /// The offending module index.
        module: u32,
        /// Number of modules declared for the hypergraph.
        num_modules: u32,
    },
    /// A net had no pins after deduplication.
    EmptyNet {
        /// Index (creation order) of the offending net.
        net: u32,
    },
    /// The declared number of modules was zero.
    NoModules,
    /// The declared number of modules exceeds what the representation can
    /// index (`u32::MAX`).
    TooManyModules {
        /// The declared module count.
        count: usize,
    },
    /// A text-format parse failed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ModuleOutOfRange {
                module,
                num_modules,
            } => write!(
                f,
                "net references module {module} but the hypergraph has only {num_modules} modules"
            ),
            NetlistError::EmptyNet { net } => {
                write!(f, "net {net} has no pins")
            }
            NetlistError::NoModules => write!(f, "hypergraph must have at least one module"),
            NetlistError::TooManyModules { count } => {
                write!(f, "module count {count} exceeds the representable maximum")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let msgs = [
            NetlistError::ModuleOutOfRange {
                module: 9,
                num_modules: 4,
            }
            .to_string(),
            NetlistError::EmptyNet { net: 2 }.to_string(),
            NetlistError::NoModules.to_string(),
            NetlistError::Parse {
                line: 3,
                message: "bad token".into(),
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "message ends with punctuation: {m}");
            assert!(m.chars().next().unwrap().is_lowercase() || m.starts_with("net"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
