//! Strongly typed identifiers for modules and nets.

use std::fmt;

/// Identifier of a module (cell) in a [`Hypergraph`](crate::Hypergraph).
///
/// Modules are numbered densely from `0` to `num_modules() - 1`. The inner
/// index is public because the identifier is nothing more than a typed
/// index; the newtype exists to prevent accidentally using a module index
/// where a net index is expected and vice versa.
///
/// # Example
///
/// ```
/// use np_netlist::ModuleId;
/// let m = ModuleId(3);
/// assert_eq!(m.index(), 3);
/// assert_eq!(format!("{m}"), "m3");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ModuleId(pub u32);

/// Identifier of a signal net in a [`Hypergraph`](crate::Hypergraph).
///
/// Nets are numbered densely from `0` to `num_nets() - 1`.
///
/// # Example
///
/// ```
/// use np_netlist::NetId;
/// let n = NetId(7);
/// assert_eq!(n.index(), 7);
/// assert_eq!(format!("{n}"), "n7");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NetId(pub u32);

impl ModuleId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an identifier from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ModuleId(u32::try_from(index).expect("module index exceeds u32::MAX"))
    }
}

impl NetId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an identifier from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NetId(u32::try_from(index).expect("net index exceeds u32::MAX"))
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for ModuleId {
    fn from(v: u32) -> Self {
        ModuleId(v)
    }
}

impl From<u32> for NetId {
    fn from(v: u32) -> Self {
        NetId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_id_roundtrip() {
        let m = ModuleId::from_index(42);
        assert_eq!(m, ModuleId(42));
        assert_eq!(m.index(), 42);
    }

    #[test]
    fn net_id_roundtrip() {
        let n = NetId::from_index(7);
        assert_eq!(n, NetId(7));
        assert_eq!(n.index(), 7);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ModuleId(0).to_string(), "m0");
        assert_eq!(NetId(12).to_string(), "n12");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ModuleId(1) < ModuleId(2));
        assert!(NetId(3) > NetId(0));
    }

    #[test]
    #[should_panic(expected = "module index exceeds u32::MAX")]
    fn module_id_overflow_panics() {
        let _ = ModuleId::from_index(usize::MAX);
    }
}
