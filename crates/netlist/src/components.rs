//! Connectivity of the netlist hypergraph.
//!
//! Two modules are connected when some net contains both. Component
//! structure matters to the spectral pipeline: the Laplacian of a
//! disconnected (intersection) graph has a multi-dimensional nullspace, so
//! λ₂ = 0 and the Fiedler vector degenerates into a component indicator.
//! The partitioners detect this case up front (see `np-core`).

use crate::{Hypergraph, ModuleId};

/// Connected-component labelling of the modules of a hypergraph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModuleComponents {
    labels: Vec<u32>,
    count: usize,
}

impl ModuleComponents {
    /// Computes connected components by BFS over the module–net incidence
    /// in `O(modules + pins)`.
    ///
    /// # Example
    ///
    /// ```
    /// use np_netlist::components::ModuleComponents;
    /// use np_netlist::hypergraph_from_nets;
    ///
    /// let hg = hypergraph_from_nets(5, &[vec![0, 1], vec![1, 2], vec![3, 4]]);
    /// let cc = ModuleComponents::compute(&hg);
    /// assert_eq!(cc.count(), 2);
    /// ```
    pub fn compute(hg: &Hypergraph) -> Self {
        const UNSEEN: u32 = u32::MAX;
        let mut labels = vec![UNSEEN; hg.num_modules()];
        let mut net_seen = vec![false; hg.num_nets()];
        let mut count = 0u32;
        let mut queue = Vec::new();
        for start in hg.modules() {
            if labels[start.index()] != UNSEEN {
                continue;
            }
            labels[start.index()] = count;
            queue.push(start);
            while let Some(m) = queue.pop() {
                for &net in hg.nets_of(m) {
                    if net_seen[net.index()] {
                        continue;
                    }
                    net_seen[net.index()] = true;
                    for &other in hg.pins(net) {
                        if labels[other.index()] == UNSEEN {
                            labels[other.index()] = count;
                            queue.push(other);
                        }
                    }
                }
            }
            count += 1;
        }
        ModuleComponents {
            labels,
            count: count as usize,
        }
    }

    /// Number of connected components (isolated modules each count as one).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Component label of `module` (in `0..count()`).
    ///
    /// # Panics
    ///
    /// Panics if `module` is out of range.
    pub fn label(&self, module: ModuleId) -> usize {
        self.labels[module.index()] as usize
    }

    /// Returns `true` if the whole module set is one component.
    pub fn is_connected(&self) -> bool {
        self.count <= 1
    }

    /// Sizes of each component, indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph_from_nets;

    #[test]
    fn connected_chain() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let cc = ModuleComponents::compute(&hg);
        assert!(cc.is_connected());
        assert_eq!(cc.sizes(), vec![4]);
    }

    #[test]
    fn two_islands() {
        let hg = hypergraph_from_nets(6, &[vec![0, 1, 2], vec![3, 4], vec![4, 5]]);
        let cc = ModuleComponents::compute(&hg);
        assert_eq!(cc.count(), 2);
        assert_eq!(cc.label(ModuleId(0)), cc.label(ModuleId(2)));
        assert_ne!(cc.label(ModuleId(0)), cc.label(ModuleId(5)));
        let mut sizes = cc.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 3]);
    }

    #[test]
    fn isolated_module_is_own_component() {
        let hg = hypergraph_from_nets(3, &[vec![0, 1]]);
        let cc = ModuleComponents::compute(&hg);
        assert_eq!(cc.count(), 2);
        assert_eq!(cc.sizes().iter().sum::<usize>(), 3);
    }

    #[test]
    fn wide_net_connects_everything() {
        let hg = hypergraph_from_nets(10, &[vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]]);
        assert!(ModuleComponents::compute(&hg).is_connected());
    }

    #[test]
    fn labels_are_dense() {
        let hg = hypergraph_from_nets(5, &[vec![0], vec![1, 2], vec![3, 4]]);
        let cc = ModuleComponents::compute(&hg);
        let mut seen = vec![false; cc.count()];
        for m in hg.modules() {
            seen[cc.label(m)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
