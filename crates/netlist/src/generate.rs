//! Deterministic synthetic benchmark circuits.
//!
//! The paper evaluates on the MCNC Primary/Test layout benchmarks plus two
//! industry circuits. Those netlists are not redistributable here, so this
//! module synthesizes stand-ins with the properties the algorithms actually
//! exploit (see `DESIGN.md` §4):
//!
//! * **hierarchy** — real netlists reflect the designer's functional
//!   decomposition, which is exactly why "nets themselves may very well
//!   contain useful partitioning information" (paper §2.2). The generator
//!   places modules in a binary cluster tree and draws most nets inside
//!   small clusters, escalating to enclosing clusters with geometrically
//!   decreasing probability;
//! * **net-size mix** — dominated by 2–3-pin nets with a thin tail of wide
//!   buses/clock nets (patterned on paper Table 1 for Primary2). The wide
//!   tail is what makes the clique model dense and the intersection graph
//!   comparatively sparse (paper §1.2);
//! * **natural cuts** — optionally a *satellite* block coupled to the main
//!   circuit by only a few nets, reproducing the very unbalanced optimal
//!   ratio cuts the paper reports for e.g. Test04/Test05 (areas `73:1442`,
//!   `105:2490`).
//!
//! Everything is driven by [`Rng64`], so a `(config, seed)` pair always
//! yields the identical hypergraph on every platform.

use crate::components::ModuleComponents;
use crate::rng::Rng64;
use crate::{Hypergraph, HypergraphBuilder, ModuleId};

/// A small, loosely coupled sub-circuit attached to the main circuit.
///
/// Creates a "natural" partition whose smaller side is roughly
/// `fraction · modules` and whose cut is roughly `coupling_nets`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SatelliteSpec {
    /// Fraction of all modules placed in the satellite (`0 < fraction < 1`).
    pub fraction: f64,
    /// Number of nets that span the satellite/main boundary.
    pub coupling_nets: usize,
    /// Inclusive pin-count range of the coupling nets. 2-pin couplers keep
    /// the boundary crisp; wider straddling nets (e.g. `(3, 8)`) blur the
    /// module-level (clique) spectral signal while staying easy for
    /// net-dual methods to classify as losers — the differentiation
    /// mechanism the paper attributes to completion optimality.
    pub coupling_size_range: (usize, usize),
}

/// Configuration for the synthetic netlist generator.
///
/// # Example
///
/// ```
/// use np_netlist::generate::{generate, GeneratorConfig};
///
/// let cfg = GeneratorConfig::new(200, 220, 42);
/// let hg = generate(&cfg);
/// assert_eq!(hg.num_modules(), 200);
/// assert!(hg.num_nets() >= 220); // connectivity repair may add a few nets
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct GeneratorConfig {
    /// Number of modules.
    pub modules: usize,
    /// Number of nets to generate (connectivity repair may add a handful of
    /// extra 2-pin nets, see [`generate`]).
    pub nets: usize,
    /// PRNG seed; same config + seed ⇒ identical netlist.
    pub seed: u64,
    /// Probability that a net stays at its current cluster level rather
    /// than escalating to the parent cluster. Higher ⇒ more local nets and
    /// crisper hierarchy. Typical: `0.6..0.8`.
    pub locality: f64,
    /// Fraction of nets drawn as wide global nets (clock/bus style).
    pub wide_net_frac: f64,
    /// Inclusive size range for wide nets.
    pub wide_size_range: (usize, usize),
    /// Number of very wide *global* nets (clock/reset/scan style) spanning
    /// the whole main block. These dominate the clique-model nonzero count
    /// (a k-pin net contributes `C(k,2)` clique edges) and are what makes
    /// the intersection graph an order of magnitude sparser on circuits
    /// like the paper's Test05.
    pub global_nets: usize,
    /// Inclusive size range for global nets.
    pub global_size_range: (usize, usize),
    /// Optional loosely coupled satellite block. Global nets avoid the
    /// satellite so they do not blur its natural cut.
    pub satellite: Option<SatelliteSpec>,
    /// Fraction of modules designated as *hub* modules (buffered control
    /// or power-distribution cells that appear on many otherwise unrelated
    /// nets). Hubs glue the clique-model graph together — every net
    /// through a hub adds undiscounted module-module edges — while the
    /// intersection-graph weighting discounts hub-mediated overlaps by
    /// `1/(d_k − 1)` (paper §2.2). Default `0.0`.
    pub hub_frac: f64,
    /// Probability that a generated net picks up one random hub pin.
    pub hub_prob: f64,
    /// When `true`, nets that escalate above the leaf level (cross-cluster
    /// nets) draw their sizes from a medium bus-like distribution (5–16
    /// pins) instead of the globally 2-pin-dominated mix. Wide crossing
    /// nets smear the clique-model graph across cluster boundaries while
    /// remaining single vertices of the intersection graph — the regime
    /// where the paper's net-dual methods pull ahead of EIG1.
    pub wide_crossings: bool,
}

impl GeneratorConfig {
    /// A reasonable default configuration for a circuit with the given
    /// module/net counts: locality 0.7, 1.5% wide nets of size 12–33, no
    /// satellite.
    pub fn new(modules: usize, nets: usize, seed: u64) -> Self {
        GeneratorConfig {
            modules,
            nets,
            seed,
            locality: 0.7,
            wide_net_frac: 0.015,
            wide_size_range: (12, 33),
            global_nets: 0,
            global_size_range: (40, 80),
            satellite: None,
            hub_frac: 0.0,
            hub_prob: 0.0,
            wide_crossings: false,
        }
    }

    /// Makes cross-cluster nets bus-like (5–16 pins).
    pub fn with_wide_crossings(mut self) -> Self {
        self.wide_crossings = true;
        self
    }

    /// Designates `frac` of the modules as hubs and attaches a hub pin to
    /// each generated net with probability `prob`.
    pub fn with_hubs(mut self, frac: f64, prob: f64) -> Self {
        self.hub_frac = frac;
        self.hub_prob = prob;
        self
    }

    /// Sets the number and size range of global (clock-style) nets.
    pub fn with_global_nets(mut self, count: usize, size_range: (usize, usize)) -> Self {
        self.global_nets = count;
        self.global_size_range = size_range;
        self
    }

    /// Sets the satellite block specification with 2-pin coupling nets.
    pub fn with_satellite(mut self, fraction: f64, coupling_nets: usize) -> Self {
        self.satellite = Some(SatelliteSpec {
            fraction,
            coupling_nets,
            coupling_size_range: (2, 2),
        });
        self
    }

    /// Sets the satellite block specification with multi-pin straddling
    /// coupling nets of sizes in `size_range`.
    pub fn with_satellite_straddled(
        mut self,
        fraction: f64,
        coupling_nets: usize,
        size_range: (usize, usize),
    ) -> Self {
        self.satellite = Some(SatelliteSpec {
            fraction,
            coupling_nets,
            coupling_size_range: size_range,
        });
        self
    }

    /// Sets the locality parameter.
    pub fn with_locality(mut self, locality: f64) -> Self {
        self.locality = locality;
        self
    }
}

/// Samples a net size from a distribution patterned on paper Table 1
/// (Primary2): ~61% 2-pin, ~12% 3-pin, geometric-ish middle, occasional
/// 9–17-pin control nets.
fn sample_net_size(rng: &mut Rng64) -> usize {
    // cumulative per-mille thresholds for sizes 2..=10, remainder 11..=17
    const CUM: [(usize, u32); 9] = [
        (2, 610),
        (3, 732),
        (4, 800),
        (5, 864),
        (6, 904),
        (7, 922),
        (8, 930),
        (9, 958),
        (10, 965),
    ];
    let roll = rng.gen_range(1000) as u32;
    for &(size, threshold) in &CUM {
        if roll < threshold {
            return size;
        }
    }
    11 + rng.gen_range(7) // 11..=17
}

/// Generates nets inside the module range `[lo, hi)` using a binary cluster
/// hierarchy over that range.
fn gen_part(
    rng: &mut Rng64,
    builder: &mut HypergraphBuilder,
    lo: usize,
    hi: usize,
    nets: usize,
    cfg: &GeneratorConfig,
    hubs: &[ModuleId],
) {
    let size = hi - lo;
    if size == 0 || nets == 0 {
        return;
    }
    // depth so leaf clusters hold ~48 modules
    let mut depth = 0usize;
    while (size >> (depth + 1)) >= 48 {
        depth += 1;
    }
    for _ in 0..nets {
        let wide = rng.gen_bool(cfg.wide_net_frac);
        // choose hierarchy level: leaf with prob `locality`, parent with
        // prob (1-locality)*locality, ...
        let mut level = if wide { 0 } else { depth };
        while level > 0 && !rng.gen_bool(cfg.locality) {
            level -= 1;
        }
        let clusters = 1usize << level;
        let c = rng.gen_range(clusters);
        let c_lo = lo + size * c / clusters;
        let c_hi = lo + size * (c + 1) / clusters;
        let span = c_hi - c_lo;
        let want = if wide {
            let (wlo, whi) = cfg.wide_size_range;
            wlo + rng.gen_range(whi - wlo + 1)
        } else if cfg.wide_crossings && level < depth {
            5 + rng.gen_range(12) // bus-like 5..=16 crossing net
        } else {
            sample_net_size(rng)
        };
        let k = want.clamp(2, span.max(2)).min(span);
        if k < 2 {
            // degenerate cluster; fall back to a 2-pin net over the part
            let a = lo + rng.gen_range(size);
            let mut b = lo + rng.gen_range(size);
            if b == a {
                b = lo + (a - lo + 1) % size;
            }
            let _ = builder.add_net([ModuleId(a as u32), ModuleId(b as u32)]);
            continue;
        }
        let mut pins: Vec<ModuleId> = rng
            .sample_distinct(span, k)
            .into_iter()
            .map(|i| ModuleId((c_lo + i) as u32))
            .collect();
        if !hubs.is_empty() && rng.gen_bool(cfg.hub_prob) {
            pins.push(hubs[rng.gen_range(hubs.len())]);
        }
        builder
            .add_net(pins)
            .expect("generator produced an invalid net");
    }
}

/// Generates a deterministic synthetic netlist from `cfg`.
///
/// The result always has exactly `cfg.modules` modules and at least
/// `cfg.nets` nets: after generation, connected components are detected and
/// bridged with extra 2-pin nets so the hypergraph (and hence its
/// intersection graph) is connected — the spectral machinery assumes a
/// single component (`DESIGN.md` §6).
///
/// # Panics
///
/// Panics if `cfg.modules < 4`, `cfg.nets == 0`, or a satellite fraction is
/// outside `(0, 0.5]`.
pub fn generate(cfg: &GeneratorConfig) -> Hypergraph {
    assert!(cfg.modules >= 4, "need at least 4 modules");
    assert!(cfg.nets > 0, "need at least 1 net");
    let mut rng = Rng64::new(cfg.seed);
    let mut builder = HypergraphBuilder::new(cfg.modules);
    // evenly spaced hub modules across the whole index range
    let hub_count = (cfg.modules as f64 * cfg.hub_frac) as usize;
    let hubs: Vec<ModuleId> = (0..hub_count)
        .map(|i| ModuleId((i * cfg.modules / hub_count.max(1)) as u32))
        .collect();
    let global_nets = cfg.global_nets.min(cfg.nets.saturating_sub(1));
    let regular_nets = cfg.nets - global_nets;

    // the main block starts after the satellite (if any); global nets are
    // drawn from it exclusively
    let main_lo = match cfg.satellite {
        Some(sat) => ((cfg.modules as f64 * sat.fraction) as usize).max(2),
        None => 0,
    };

    match cfg.satellite {
        None => gen_part(
            &mut rng,
            &mut builder,
            0,
            cfg.modules,
            regular_nets,
            cfg,
            &hubs,
        ),
        Some(sat) => {
            assert!(
                sat.fraction > 0.0 && sat.fraction <= 0.5,
                "satellite fraction must be in (0, 0.5]"
            );
            let sat_modules = main_lo;
            let sat_nets = (((regular_nets - sat.coupling_nets) as f64) * sat.fraction) as usize;
            let main_nets = regular_nets - sat.coupling_nets - sat_nets;
            // satellite occupies [0, sat_modules)
            gen_part(&mut rng, &mut builder, 0, sat_modules, sat_nets, cfg, &hubs);
            gen_part(
                &mut rng,
                &mut builder,
                sat_modules,
                cfg.modules,
                main_nets,
                cfg,
                &hubs,
            );
            let (clo, chi) = sat.coupling_size_range;
            for _ in 0..sat.coupling_nets {
                // a straddling net: at least one pin on each side, the
                // rest split roughly evenly
                let lo = clo.max(2);
                let hi = chi.max(lo);
                let k = (lo + rng.gen_range(hi - lo + 1)).clamp(2, cfg.modules);
                let sat_pins = (k / 2).clamp(1, sat_modules);
                let main_pins = (k - sat_pins).clamp(1, cfg.modules - sat_modules);
                let mut pins: Vec<ModuleId> = rng
                    .sample_distinct(sat_modules, sat_pins)
                    .into_iter()
                    .map(|i| ModuleId(i as u32))
                    .collect();
                pins.extend(
                    rng.sample_distinct(cfg.modules - sat_modules, main_pins)
                        .into_iter()
                        .map(|i| ModuleId((sat_modules + i) as u32)),
                );
                builder.add_net(pins).expect("coupling net invalid");
            }
        }
    }

    // global clock/bus-style nets over the main block
    let main_span = cfg.modules - main_lo;
    for _ in 0..global_nets {
        let (glo, ghi) = cfg.global_size_range;
        let want = glo + rng.gen_range(ghi.saturating_sub(glo) + 1);
        let k = want.clamp(2, main_span);
        let pins = rng
            .sample_distinct(main_span, k)
            .into_iter()
            .map(|i| ModuleId((main_lo + i) as u32));
        builder.add_net(pins).expect("global net invalid");
    }

    // connectivity repair: bridge every component to component 0 with a
    // 2-pin net between deterministic representatives
    let hg = builder
        .finish()
        .expect("generator built invalid hypergraph");
    let cc = ModuleComponents::compute(&hg);
    if cc.is_connected() {
        return hg;
    }
    let mut representative = vec![None; cc.count()];
    for m in hg.modules() {
        let l = cc.label(m);
        if representative[l].is_none() {
            representative[l] = Some(m);
        }
    }
    let mut builder = HypergraphBuilder::new(cfg.modules);
    for net in hg.nets() {
        builder
            .add_net(hg.pins(net).iter().copied())
            .expect("copying valid net");
    }
    let anchor = representative[0].expect("component 0 nonempty");
    for rep in representative.into_iter().skip(1).flatten() {
        builder.add_net([anchor, rep]).expect("bridge net invalid");
    }
    builder.finish().expect("bridged hypergraph invalid")
}

/// A named benchmark circuit.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Short name, matching the paper's tables (`bm1`, `Prim2`, ...).
    pub name: String,
    /// The netlist.
    pub hypergraph: Hypergraph,
}

/// Specification of one synthetic MCNC stand-in.
#[derive(Clone, Debug)]
pub struct BenchmarkSpec {
    /// Name used in the paper's tables.
    pub name: &'static str,
    /// Generator configuration.
    pub config: GeneratorConfig,
}

/// Specifications of the nine-circuit suite from paper Tables 2 and 3.
///
/// Module counts match the "Number of elements" column exactly; net counts
/// follow the published MCNC sizes. Satellite parameters are tuned so the
/// suite spans the same qualitative range as the paper: some circuits with
/// tiny natural blocks (`bm1`, `Test04`, `Test05`) and some with
/// near-balanced natural cuts (`Prim2`, `Test03`, `19ks`).
pub fn mcnc_specs() -> Vec<BenchmarkSpec> {
    #[allow(clippy::too_many_arguments)]
    fn spec(
        name: &'static str,
        modules: usize,
        nets: usize,
        seed: u64,
        locality: f64,
        satellite: Option<(f64, usize, (usize, usize))>,
        global: (usize, (usize, usize)),
    ) -> BenchmarkSpec {
        let mut config = GeneratorConfig::new(modules, nets, seed)
            .with_locality(locality)
            .with_global_nets(global.0, global.1);
        if let Some((f, c, sz)) = satellite {
            config = config.with_satellite_straddled(f, c, sz);
        }
        BenchmarkSpec { name, config }
    }
    // Straddled (multi-pin) coupling nets blur the block boundaries the
    // way real inter-block buses do; they are what differentiates the
    // completion strategies (IG-Match vs IG-Vote) on this suite.
    vec![
        spec(
            "bm1",
            882,
            903,
            0xB001,
            0.72,
            Some((0.024, 1, (2, 2))),
            (2, (30, 55)),
        ),
        spec(
            "19ks",
            2844,
            3282,
            0x19C5,
            0.66,
            Some((0.23, 60, (3, 8))),
            (8, (50, 90)),
        ),
        spec(
            "Prim1",
            833,
            902,
            0x0901,
            0.70,
            Some((0.18, 12, (3, 8))),
            (3, (25, 45)),
        ),
        // Prim2's widest nets stay at 37 pins, matching paper Table 1
        spec(
            "Prim2",
            3014,
            3029,
            0x0902,
            0.68,
            Some((0.25, 55, (3, 8))),
            (5, (34, 37)),
        ),
        spec(
            "Test02",
            1663,
            1720,
            0x7E02,
            0.71,
            Some((0.13, 30, (4, 10))),
            (8, (40, 80)),
        ),
        spec(
            "Test03",
            1607,
            1618,
            0x7E03,
            0.67,
            Some((0.49, 45, (3, 8))),
            (6, (40, 70)),
        ),
        spec(
            "Test04",
            1515,
            1658,
            0x7E04,
            0.72,
            Some((0.05, 5, (2, 2))),
            (10, (50, 90)),
        ),
        // Test05 carries the heavy clock-net tail behind the paper's
        // ">10x sparser" observation (19,935 vs 219,811 nonzeros)
        spec(
            "Test05",
            2595,
            2750,
            0x7E05,
            0.73,
            Some((0.04, 7, (2, 2))),
            (30, (100, 200)),
        ),
        spec(
            "Test06",
            1752,
            1541,
            0x7E06,
            0.70,
            Some((0.08, 14, (3, 6))),
            (8, (40, 80)),
        ),
    ]
}

/// Generates the full nine-circuit suite of paper Tables 2/3.
///
/// Deterministic: repeated calls return identical netlists.
///
/// # Example
///
/// ```
/// let suite = np_netlist::generate::mcnc_suite();
/// assert_eq!(suite.len(), 9);
/// assert_eq!(suite[3].name, "Prim2");
/// assert_eq!(suite[3].hypergraph.num_modules(), 3014);
/// ```
pub fn mcnc_suite() -> Vec<Benchmark> {
    mcnc_specs()
        .into_iter()
        .map(|s| Benchmark {
            name: s.name.to_string(),
            hypergraph: generate(&s.config),
        })
        .collect()
}

/// Returns one suite benchmark by (case-insensitive) name.
pub fn mcnc_benchmark(name: &str) -> Option<Benchmark> {
    mcnc_specs()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
        .map(|s| Benchmark {
            name: s.name.to_string(),
            hypergraph: generate(&s.config),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let cfg = GeneratorConfig::new(300, 320, 7);
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn different_seed_different_netlist() {
        let a = generate(&GeneratorConfig::new(300, 320, 1));
        let b = generate(&GeneratorConfig::new(300, 320, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn result_is_connected() {
        for seed in 0..5 {
            let hg = generate(&GeneratorConfig::new(257, 260, seed));
            assert!(ModuleComponents::compute(&hg).is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn satellite_config_connected_and_sized() {
        let cfg = GeneratorConfig::new(500, 520, 3).with_satellite(0.1, 3);
        let hg = generate(&cfg);
        assert_eq!(hg.num_modules(), 500);
        assert!(ModuleComponents::compute(&hg).is_connected());
    }

    #[test]
    fn net_sizes_mostly_small_with_wide_tail() {
        let hg = generate(&GeneratorConfig::new(2000, 2100, 11));
        let sizes: Vec<usize> = hg.nets().map(|n| hg.net_size(n)).collect();
        let two_pin = sizes.iter().filter(|&&s| s == 2).count();
        let wide = sizes.iter().filter(|&&s| s >= 12).count();
        assert!(
            two_pin as f64 > 0.45 * sizes.len() as f64,
            "too few 2-pin nets: {two_pin}/{}",
            sizes.len()
        );
        assert!(wide > 0, "expected some wide nets");
        assert!(*sizes.iter().max().unwrap() <= 33);
    }

    #[test]
    fn suite_module_counts_match_paper() {
        let expected = [
            ("bm1", 882),
            ("19ks", 2844),
            ("Prim1", 833),
            ("Prim2", 3014),
            ("Test02", 1663),
            ("Test03", 1607),
            ("Test04", 1515),
            ("Test05", 2595),
            ("Test06", 1752),
        ];
        for (spec, (name, modules)) in mcnc_specs().iter().zip(expected) {
            assert_eq!(spec.name, name);
            assert_eq!(spec.config.modules, modules, "{name}");
        }
    }

    #[test]
    fn mcnc_benchmark_lookup() {
        assert!(mcnc_benchmark("prim2").is_some());
        assert!(mcnc_benchmark("PRIM2").is_some());
        assert!(mcnc_benchmark("nope").is_none());
    }

    #[test]
    fn all_modules_have_degree_at_least_zero_and_most_positive() {
        let hg = generate(&GeneratorConfig::new(1000, 1100, 23));
        let isolated = hg.modules().filter(|&m| hg.degree(m) == 0).count();
        assert_eq!(isolated, 0, "connectivity repair should absorb isolates");
    }

    #[test]
    fn net_size_sampler_in_range() {
        let mut rng = Rng64::new(1);
        for _ in 0..10_000 {
            let s = sample_net_size(&mut rng);
            assert!((2..=17).contains(&s));
        }
    }
}
