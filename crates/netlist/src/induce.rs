//! Induced sub-hypergraphs.
//!
//! Hierarchical (divide-and-conquer) partitioning repeatedly restricts the
//! netlist to one block and recurses — the workflow motivating the paper's
//! introduction. [`induced_subhypergraph`] extracts the sub-netlist on a
//! module subset, keeping the nets with at least two pins inside it.

use crate::{Hypergraph, HypergraphBuilder, ModuleId, NetId};

/// The result of restricting a hypergraph to a module subset.
#[derive(Clone, Debug)]
pub struct InducedSubhypergraph {
    /// The sub-netlist over the local module numbering `0..subset.len()`.
    pub hypergraph: Hypergraph,
    /// `module_map[local]` = original module id.
    pub module_map: Vec<ModuleId>,
    /// `net_map[local]` = original net id, for the nets that survived
    /// (had ≥ 2 pins inside the subset).
    pub net_map: Vec<NetId>,
}

/// Restricts `hg` to `modules`, dropping nets with fewer than two pins
/// inside the subset (such nets can never be cut by a partition of the
/// subset). Runs in `O(Σ degree)` over the subset.
///
/// # Panics
///
/// Panics if `modules` is empty or contains duplicates or out-of-range
/// ids.
///
/// # Example
///
/// ```
/// use np_netlist::induce::induced_subhypergraph;
/// use np_netlist::{hypergraph_from_nets, ModuleId};
///
/// let hg = hypergraph_from_nets(5, &[vec![0, 1, 2], vec![2, 3], vec![3, 4]]);
/// let sub = induced_subhypergraph(&hg, &[ModuleId(0), ModuleId(1), ModuleId(2)]);
/// assert_eq!(sub.hypergraph.num_modules(), 3);
/// assert_eq!(sub.hypergraph.num_nets(), 1); // only {0,1,2} survives
/// ```
pub fn induced_subhypergraph(hg: &Hypergraph, modules: &[ModuleId]) -> InducedSubhypergraph {
    assert!(!modules.is_empty(), "module subset must be non-empty");
    const ABSENT: u32 = u32::MAX;
    let mut local_of = vec![ABSENT; hg.num_modules()];
    for (i, m) in modules.iter().enumerate() {
        assert!(
            local_of[m.index()] == ABSENT,
            "duplicate module {m} in subset"
        );
        local_of[m.index()] = i as u32;
    }
    let mut seen = vec![false; hg.num_nets()];
    let mut builder = HypergraphBuilder::new(modules.len());
    let mut net_map = Vec::new();
    let mut pins = Vec::new();
    for &m in modules {
        for &net in hg.nets_of(m) {
            if seen[net.index()] {
                continue;
            }
            seen[net.index()] = true;
            pins.clear();
            pins.extend(
                hg.pins(net)
                    .iter()
                    .filter(|p| local_of[p.index()] != ABSENT)
                    .map(|p| ModuleId(local_of[p.index()])),
            );
            if pins.len() >= 2 {
                builder
                    .add_net(pins.iter().copied())
                    .expect("induced net is valid");
                net_map.push(net);
            }
        }
    }
    InducedSubhypergraph {
        hypergraph: builder.finish().expect("non-empty module subset"),
        module_map: modules.to_vec(),
        net_map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph_from_nets;

    #[test]
    fn keeps_internal_nets_only() {
        let hg = hypergraph_from_nets(6, &[vec![0, 1], vec![1, 2], vec![2, 3], vec![4, 5]]);
        let sub = induced_subhypergraph(&hg, &[ModuleId(0), ModuleId(1), ModuleId(2)]);
        assert_eq!(sub.hypergraph.num_nets(), 2);
        assert_eq!(sub.net_map, vec![NetId(0), NetId(1)]);
    }

    #[test]
    fn multi_pin_net_truncated_to_subset() {
        let hg = hypergraph_from_nets(5, &[vec![0, 1, 2, 3, 4]]);
        let sub = induced_subhypergraph(&hg, &[ModuleId(1), ModuleId(3), ModuleId(4)]);
        assert_eq!(sub.hypergraph.num_nets(), 1);
        assert_eq!(sub.hypergraph.net_size(NetId(0)), 3);
    }

    #[test]
    fn module_map_roundtrip() {
        let hg = hypergraph_from_nets(4, &[vec![0, 3], vec![1, 2]]);
        let subset = [ModuleId(3), ModuleId(0)];
        let sub = induced_subhypergraph(&hg, &subset);
        assert_eq!(sub.module_map, subset);
        // local net {0,1} corresponds to original {0,3}
        assert_eq!(sub.hypergraph.num_nets(), 1);
        let locals = sub.hypergraph.pins(NetId(0));
        let originals: Vec<ModuleId> = locals.iter().map(|l| sub.module_map[l.index()]).collect();
        assert_eq!(originals, vec![ModuleId(3), ModuleId(0)]);
    }

    #[test]
    fn net_with_one_pin_inside_dropped() {
        let hg = hypergraph_from_nets(3, &[vec![0, 2], vec![0, 1]]);
        let sub = induced_subhypergraph(&hg, &[ModuleId(0), ModuleId(1)]);
        assert_eq!(sub.hypergraph.num_nets(), 1);
        assert_eq!(sub.net_map, vec![NetId(1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate module")]
    fn duplicate_subset_panics() {
        let hg = hypergraph_from_nets(3, &[vec![0, 1]]);
        induced_subhypergraph(&hg, &[ModuleId(0), ModuleId(0)]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_subset_panics() {
        let hg = hypergraph_from_nets(3, &[vec![0, 1]]);
        induced_subhypergraph(&hg, &[]);
    }
}
