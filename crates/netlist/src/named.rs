//! Named netlists: module/net names over a [`Hypergraph`], with a simple
//! line-oriented text format.
//!
//! Real design flows identify cells and signals by name; the `.hgr`
//! interchange format strips that. This module carries the names through
//! partitioning. The text format is:
//!
//! ```text
//! # comment
//! net <net-name> <module> <module> ...
//! ```
//!
//! Modules are declared implicitly by first use; names may contain any
//! non-whitespace characters. Net and module namespaces are independent.

use crate::{Hypergraph, HypergraphBuilder, ModuleId, NetId, NetlistError};
use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, Write};

/// A hypergraph plus module and net names.
///
/// # Example
///
/// ```
/// use np_netlist::named::NamedNetlist;
///
/// let text = "net CLK ff1 ff2 ff3\nnet D ff1 comb1\n";
/// let nl = NamedNetlist::parse(text)?;
/// assert_eq!(nl.hypergraph().num_modules(), 4);
/// let clk = nl.net_by_name("CLK").unwrap();
/// assert_eq!(nl.hypergraph().net_size(clk), 3);
/// let ff1 = nl.module_by_name("ff1").unwrap();
/// assert_eq!(nl.hypergraph().degree(ff1), 2);
/// # Ok::<(), np_netlist::NetlistError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct NamedNetlist {
    hypergraph: Hypergraph,
    module_names: Vec<String>,
    net_names: Vec<String>,
    module_index: HashMap<String, u32>,
    net_index: HashMap<String, u32>,
}

impl NamedNetlist {
    /// Parses the `net <name> <pins...>` text format.
    ///
    /// Module indices are assigned in order of first occurrence, so
    /// parsing the output of [`write`](Self::write) reproduces the
    /// netlist up to renumbering (an isomorphism); use names, not raw
    /// ids, to correlate across a round trip.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Parse`] on malformed lines (missing net name, no
    /// pins, duplicate net names) and builder errors for structurally
    /// invalid nets.
    pub fn parse(text: &str) -> Result<NamedNetlist, NetlistError> {
        Self::read(text.as_bytes())
    }

    /// Reads the text format from any [`BufRead`] source.
    ///
    /// # Errors
    ///
    /// Same as [`parse`](Self::parse), plus I/O failures surfaced as parse
    /// errors with the offending line number.
    pub fn read<R: BufRead>(reader: R) -> Result<NamedNetlist, NetlistError> {
        let parse_err = |line: usize, message: String| NetlistError::Parse { line, message };
        let mut module_names: Vec<String> = Vec::new();
        let mut module_index: HashMap<String, u32> = HashMap::new();
        let mut net_names: Vec<String> = Vec::new();
        let mut net_index: HashMap<String, u32> = HashMap::new();
        let mut nets: Vec<Vec<u32>> = Vec::new();

        for (i, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| parse_err(i + 1, format!("read failure: {e}")))?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let mut tokens = t.split_whitespace();
            match tokens.next() {
                Some("net") => {
                    let name = tokens
                        .next()
                        .ok_or_else(|| parse_err(i + 1, "net line missing a name".into()))?;
                    if net_index.contains_key(name) {
                        return Err(parse_err(i + 1, format!("duplicate net name '{name}'")));
                    }
                    let mut pins = Vec::new();
                    for tok in tokens {
                        let id = *module_index.entry(tok.to_string()).or_insert_with(|| {
                            module_names.push(tok.to_string());
                            (module_names.len() - 1) as u32
                        });
                        pins.push(id);
                    }
                    if pins.is_empty() {
                        return Err(parse_err(i + 1, format!("net '{name}' has no pins")));
                    }
                    net_index.insert(name.to_string(), nets.len() as u32);
                    net_names.push(name.to_string());
                    nets.push(pins);
                }
                Some(other) => {
                    return Err(parse_err(
                        i + 1,
                        format!("expected 'net' or comment, found '{other}'"),
                    ))
                }
                None => continue,
            }
        }
        if module_names.is_empty() {
            return Err(NetlistError::NoModules);
        }
        let mut builder = HypergraphBuilder::new(module_names.len());
        for pins in nets {
            builder.add_net(pins.into_iter().map(ModuleId))?;
        }
        Ok(NamedNetlist {
            hypergraph: builder.finish()?,
            module_names,
            net_names,
            module_index,
            net_index,
        })
    }

    /// Wraps an existing hypergraph with generated names
    /// (`m0, m1, …` / `n0, n1, …`).
    pub fn from_hypergraph(hg: Hypergraph) -> NamedNetlist {
        let module_names: Vec<String> = (0..hg.num_modules()).map(|i| format!("m{i}")).collect();
        let net_names: Vec<String> = (0..hg.num_nets()).map(|i| format!("n{i}")).collect();
        let module_index = module_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
        let net_index = net_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
        NamedNetlist {
            hypergraph: hg,
            module_names,
            net_names,
            module_index,
            net_index,
        }
    }

    /// The underlying hypergraph.
    pub fn hypergraph(&self) -> &Hypergraph {
        &self.hypergraph
    }

    /// Name of module `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn module_name(&self, m: ModuleId) -> &str {
        &self.module_names[m.index()]
    }

    /// Name of net `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn net_name(&self, n: NetId) -> &str {
        &self.net_names[n.index()]
    }

    /// Looks up a module by name.
    pub fn module_by_name(&self, name: &str) -> Option<ModuleId> {
        self.module_index.get(name).map(|&i| ModuleId(i))
    }

    /// Looks up a net by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.net_index.get(name).map(|&i| NetId(i))
    }

    /// Writes the text format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn write<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        for net in self.hypergraph.nets() {
            write!(writer, "net {}", self.net_name(net))?;
            for &m in self.hypergraph.pins(net) {
                write!(writer, " {}", self.module_name(m))?;
            }
            writeln!(writer)?;
        }
        Ok(())
    }
}

impl fmt::Display for NamedNetlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = Vec::new();
        self.write(&mut buf).expect("writing to a Vec cannot fail");
        f.write_str(&String::from_utf8(buf).expect("named netlist text is UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_lookup() {
        let nl = NamedNetlist::parse("# test\nnet CLK a b c\nnet D a q\n").unwrap();
        assert_eq!(nl.hypergraph().num_modules(), 4);
        assert_eq!(nl.hypergraph().num_nets(), 2);
        assert_eq!(nl.module_name(nl.module_by_name("q").unwrap()), "q");
        assert_eq!(nl.net_name(nl.net_by_name("D").unwrap()), "D");
        assert!(nl.module_by_name("nope").is_none());
    }

    #[test]
    fn roundtrip() {
        let src = "net CLK ff1 ff2 ff3\nnet D ff1 comb1\nnet Q comb1 ff2\n";
        let nl = NamedNetlist::parse(src).unwrap();
        let text = nl.to_string();
        let back = NamedNetlist::parse(&text).unwrap();
        assert_eq!(nl, back);
    }

    #[test]
    fn duplicate_net_name_rejected() {
        let err = NamedNetlist::parse("net X a b\nnet X c d\n").unwrap_err();
        assert!(err.to_string().contains("duplicate net name"), "{err}");
    }

    #[test]
    fn empty_net_rejected() {
        let err = NamedNetlist::parse("net X\n").unwrap_err();
        assert!(err.to_string().contains("no pins"), "{err}");
    }

    #[test]
    fn garbage_keyword_rejected() {
        let err = NamedNetlist::parse("wire X a b\n").unwrap_err();
        assert!(err.to_string().contains("expected 'net'"), "{err}");
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(
            NamedNetlist::parse("# only comments\n").unwrap_err(),
            NetlistError::NoModules
        );
    }

    #[test]
    fn duplicate_pins_collapsed() {
        let nl = NamedNetlist::parse("net X a b a\n").unwrap();
        assert_eq!(nl.hypergraph().net_size(nl.net_by_name("X").unwrap()), 2);
    }

    #[test]
    fn from_hypergraph_generates_names() {
        let hg = crate::hypergraph_from_nets(3, &[vec![0, 1], vec![1, 2]]);
        let nl = NamedNetlist::from_hypergraph(hg);
        assert_eq!(nl.module_name(ModuleId(2)), "m2");
        assert_eq!(nl.net_name(NetId(0)), "n0");
        assert_eq!(nl.module_by_name("m1"), Some(ModuleId(1)));
        // and it round-trips through text
        let back = NamedNetlist::parse(&nl.to_string()).unwrap();
        assert_eq!(back.hypergraph(), nl.hypergraph());
    }
}
