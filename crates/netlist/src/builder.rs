//! Incremental construction of [`Hypergraph`]s.

use crate::{Hypergraph, ModuleId, NetId, NetlistError};

/// Builder for [`Hypergraph`]; accumulates nets and produces the immutable,
/// doubly-indexed representation.
///
/// Pins passed to [`add_net`](Self::add_net) are sorted and deduplicated
/// (a module can physically connect to a net through several pins, but for
/// partitioning only membership matters — this mirrors the standard netlist
/// hypergraph model of Schweikert–Kernighan).
///
/// # Example
///
/// ```
/// use np_netlist::{HypergraphBuilder, ModuleId};
///
/// # fn main() -> Result<(), np_netlist::NetlistError> {
/// let mut b = HypergraphBuilder::new(3);
/// // duplicate pins are collapsed
/// let id = b.add_net([ModuleId(2), ModuleId(0), ModuleId(2)])?;
/// let hg = b.finish()?;
/// assert_eq!(hg.pins(id), &[ModuleId(0), ModuleId(2)]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct HypergraphBuilder {
    num_modules: u32,
    net_offsets: Vec<u32>,
    net_pins: Vec<ModuleId>,
}

impl HypergraphBuilder {
    /// Creates a builder for a hypergraph with `num_modules` modules and no
    /// nets yet.
    ///
    /// # Panics
    ///
    /// Panics if `num_modules` exceeds `u32::MAX`. Use
    /// [`try_new`](Self::try_new) when the count comes from untrusted
    /// input.
    pub fn new(num_modules: usize) -> Self {
        Self::try_new(num_modules).expect("module count exceeds u32::MAX")
    }

    /// Fallible variant of [`new`](Self::new) for untrusted module counts.
    ///
    /// # Errors
    ///
    /// [`NetlistError::TooManyModules`] if `num_modules` exceeds
    /// `u32::MAX`.
    pub fn try_new(num_modules: usize) -> Result<Self, NetlistError> {
        let num_modules = u32::try_from(num_modules)
            .map_err(|_| NetlistError::TooManyModules { count: num_modules })?;
        Ok(HypergraphBuilder {
            num_modules,
            net_offsets: vec![0],
            net_pins: Vec::new(),
        })
    }

    /// Number of modules declared for the hypergraph under construction.
    pub fn num_modules(&self) -> usize {
        self.num_modules as usize
    }

    /// Number of nets added so far.
    pub fn num_nets(&self) -> usize {
        self.net_offsets.len() - 1
    }

    /// Adds a net connecting the given pins and returns its [`NetId`].
    ///
    /// Pins are sorted and deduplicated. Single-pin nets are accepted (they
    /// occur in real netlists as dangling or power stubs) but contribute
    /// nothing to any cut; see [`Hypergraph`] users for how they are treated.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::EmptyNet`] if `pins` is empty;
    /// * [`NetlistError::ModuleOutOfRange`] if a pin references a module
    ///   index `>= num_modules`.
    pub fn add_net<I>(&mut self, pins: I) -> Result<NetId, NetlistError>
    where
        I: IntoIterator<Item = ModuleId>,
    {
        let start = self.net_pins.len();
        self.net_pins.extend(pins);
        let slice = &mut self.net_pins[start..];
        for &m in slice.iter() {
            if m.0 >= self.num_modules {
                let module = m.0;
                self.net_pins.truncate(start);
                return Err(NetlistError::ModuleOutOfRange {
                    module,
                    num_modules: self.num_modules,
                });
            }
        }
        slice.sort_unstable();
        // in-place dedup of the tail
        let mut write = start;
        for read in start..self.net_pins.len() {
            if write == start || self.net_pins[read] != self.net_pins[write - 1] {
                self.net_pins[write] = self.net_pins[read];
                write += 1;
            }
        }
        self.net_pins.truncate(write);
        if self.net_pins.len() == start {
            return Err(NetlistError::EmptyNet {
                net: (self.net_offsets.len() - 1) as u32,
            });
        }
        self.net_offsets.push(self.net_pins.len() as u32);
        Ok(NetId((self.net_offsets.len() - 2) as u32))
    }

    /// Finalizes the builder into an immutable [`Hypergraph`], computing the
    /// module → nets reverse index.
    ///
    /// # Errors
    ///
    /// [`NetlistError::NoModules`] if the builder was created with zero
    /// modules.
    pub fn finish(self) -> Result<Hypergraph, NetlistError> {
        if self.num_modules == 0 {
            return Err(NetlistError::NoModules);
        }
        let n = self.num_modules as usize;
        // counting sort of pins by module to build the reverse CSR index
        let mut module_offsets = vec![0u32; n + 1];
        for &m in &self.net_pins {
            module_offsets[m.index() + 1] += 1;
        }
        for i in 0..n {
            module_offsets[i + 1] += module_offsets[i];
        }
        let mut cursor = module_offsets.clone();
        let mut module_nets = vec![NetId(0); self.net_pins.len()];
        for net in 0..self.net_offsets.len() - 1 {
            let lo = self.net_offsets[net] as usize;
            let hi = self.net_offsets[net + 1] as usize;
            for &m in &self.net_pins[lo..hi] {
                let c = &mut cursor[m.index()];
                module_nets[*c as usize] = NetId(net as u32);
                *c += 1;
            }
        }
        // nets were visited in increasing index order, so each module's net
        // list is already sorted
        Ok(Hypergraph {
            net_offsets: self.net_offsets,
            net_pins: self.net_pins,
            module_offsets,
            module_nets,
        })
    }
}

/// Convenience: builds a hypergraph from explicit pin lists.
///
/// Intended for tests and examples; panics on invalid input rather than
/// returning errors.
///
/// # Panics
///
/// Panics if any net is empty or references a module `>= num_modules`.
///
/// # Example
///
/// ```
/// let hg = np_netlist::hypergraph_from_nets(4, &[vec![0, 1], vec![1, 2, 3]]);
/// assert_eq!(hg.num_nets(), 2);
/// ```
pub fn hypergraph_from_nets(num_modules: usize, nets: &[Vec<u32>]) -> Hypergraph {
    let mut b = HypergraphBuilder::new(num_modules);
    for net in nets {
        b.add_net(net.iter().copied().map(ModuleId))
            .expect("invalid net in hypergraph_from_nets");
    }
    b.finish().expect("invalid hypergraph_from_nets input")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range_pin() {
        let mut b = HypergraphBuilder::new(2);
        let err = b.add_net([ModuleId(0), ModuleId(5)]).unwrap_err();
        assert_eq!(
            err,
            NetlistError::ModuleOutOfRange {
                module: 5,
                num_modules: 2
            }
        );
        // builder still usable, failed net left no residue
        b.add_net([ModuleId(0), ModuleId(1)]).unwrap();
        let hg = b.finish().unwrap();
        assert_eq!(hg.num_nets(), 1);
        assert_eq!(hg.num_pins(), 2);
    }

    #[test]
    fn rejects_empty_net() {
        let mut b = HypergraphBuilder::new(2);
        let err = b.add_net(std::iter::empty()).unwrap_err();
        assert_eq!(err, NetlistError::EmptyNet { net: 0 });
    }

    #[test]
    fn rejects_zero_modules() {
        let b = HypergraphBuilder::new(0);
        assert_eq!(b.finish().unwrap_err(), NetlistError::NoModules);
    }

    #[test]
    fn try_new_rejects_unindexable_module_count() {
        let err = HypergraphBuilder::try_new(u32::MAX as usize + 1).unwrap_err();
        assert_eq!(
            err,
            NetlistError::TooManyModules {
                count: u32::MAX as usize + 1
            }
        );
        assert!(HypergraphBuilder::try_new(16).is_ok());
    }

    #[test]
    fn dedups_and_sorts_pins() {
        let mut b = HypergraphBuilder::new(5);
        let id = b
            .add_net([ModuleId(4), ModuleId(1), ModuleId(4), ModuleId(1)])
            .unwrap();
        let hg = b.finish().unwrap();
        assert_eq!(hg.pins(id), &[ModuleId(1), ModuleId(4)]);
    }

    #[test]
    fn single_pin_net_allowed() {
        let mut b = HypergraphBuilder::new(1);
        b.add_net([ModuleId(0)]).unwrap();
        let hg = b.finish().unwrap();
        assert_eq!(hg.net_size(NetId(0)), 1);
    }

    #[test]
    fn net_ids_are_sequential() {
        let mut b = HypergraphBuilder::new(3);
        let a = b.add_net([ModuleId(0)]).unwrap();
        let c = b.add_net([ModuleId(1), ModuleId(2)]).unwrap();
        assert_eq!(a, NetId(0));
        assert_eq!(c, NetId(1));
    }

    #[test]
    fn module_net_lists_sorted() {
        let hg = hypergraph_from_nets(3, &[vec![2, 0], vec![0, 1], vec![0, 2], vec![1, 2]]);
        for m in hg.modules() {
            let nets = hg.nets_of(m);
            assert!(nets.windows(2).all(|w| w[0] < w[1]), "unsorted for {m}");
        }
    }

    #[test]
    fn isolated_module_has_empty_net_list() {
        let hg = hypergraph_from_nets(3, &[vec![0, 1]]);
        assert!(hg.nets_of(ModuleId(2)).is_empty());
        assert_eq!(hg.degree(ModuleId(2)), 0);
    }
}
