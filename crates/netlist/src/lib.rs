//! Circuit netlist hypergraphs and supporting utilities.
//!
//! A circuit netlist is modelled as a hypergraph `H = (V, E')`: vertices are
//! *modules* (cells, gates, pads) and hyperedges are *signal nets*, each net
//! being the set of modules it connects (its *pins*). This crate provides:
//!
//! * [`Hypergraph`] — a compact, immutable, doubly-indexed (net → pins and
//!   module → nets) representation, built through [`HypergraphBuilder`];
//! * [`partition`] — bipartitions of the module set, cut and ratio-cut
//!   metrics, and an incremental [`partition::CutTracker`];
//! * [`io`] — reading and writing the hMETIS-compatible `.hgr` text format;
//! * [`generate`] — deterministic synthetic benchmark circuits with
//!   hierarchical structure, including stand-ins for the MCNC suite used in
//!   the paper's evaluation;
//! * [`stats`] — net-size histograms and cut-statistics tables (paper
//!   Table 1);
//! * [`areas`] — module areas and the area-weighted ratio cut;
//! * [`kway`] — balanced k-way partitions, fixed modules and the k-block
//!   [`kway::KwayCutTracker`];
//! * [`named`] — netlists with module/net names and their text format;
//! * [`induce`] — induced sub-hypergraphs for recursive partitioning;
//! * [`components`] — hypergraph connectivity;
//! * [`rng`] — a tiny, fully deterministic PRNG used by the generator and by
//!   randomized baselines.
//!
//! # Example
//!
//! ```
//! use np_netlist::{HypergraphBuilder, ModuleId};
//!
//! # fn main() -> Result<(), np_netlist::NetlistError> {
//! let mut b = HypergraphBuilder::new(4);
//! b.add_net([ModuleId(0), ModuleId(1)])?;
//! b.add_net([ModuleId(1), ModuleId(2), ModuleId(3)])?;
//! let hg = b.finish()?;
//! assert_eq!(hg.num_modules(), 4);
//! assert_eq!(hg.num_nets(), 2);
//! assert_eq!(hg.num_pins(), 5);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod error;
mod hypergraph;
mod ids;

pub mod areas;
pub mod components;
pub mod generate;
pub mod induce;
pub mod io;
pub mod kway;
pub mod named;
pub mod partition;
pub mod rng;
pub mod stats;

pub use builder::{hypergraph_from_nets, HypergraphBuilder};
pub use error::NetlistError;
pub use hypergraph::Hypergraph;
pub use ids::{ModuleId, NetId};
pub use kway::{balance_bound, FixedModules, KwayCutStats, KwayCutTracker, KwayPartition};
pub use partition::{Bipartition, CutStats, Side};
