//! Balanced k-way partitions, fixed modules and incremental k-block cut
//! tracking.
//!
//! The paper's introduction motivates bipartitioning as the engine of
//! hierarchical divide-and-conquer (§1), but the consumers it names —
//! layout synthesis, packaging, hardware simulation — want `k` blocks
//! under *area-balance* constraints, often with some modules pinned to a
//! block (terminals, macros). This module supplies the data model those
//! flows share:
//!
//! * [`KwayPartition`] — a dense block-label assignment generalizing
//!   [`Bipartition`] to `k` blocks;
//! * [`KwayCutStats`] — crossing-net count, per-block sizes and external
//!   nets, and the k-way ratio cut `Σ_b ext(b)/|V_b|` (the
//!   Chan–Schlag–Zien generalization of the paper's 2-block objective);
//! * [`KwayCutTracker`] — per-net per-block pin counts so that moving one
//!   module updates the crossing count in `O(degree)`, generalizing
//!   [`CutTracker`](crate::partition::CutTracker)'s left-pin bookkeeping;
//! * [`FixedModules`] — pre-assignments that partitioners must never
//!   move, with the hMETIS `.fix`-file text format;
//! * [`balance_bound`] — the per-block area capacity `(1+ε)·total/k`.
//!
//! # Balance semantics
//!
//! A k-way partition is *ε-balanced* under module areas when every block
//! `b` satisfies `area(b) ≤ (1+ε)·total/k`. With uniform areas this is
//! the usual module-count bound. Note the bound is only *feasible* when
//! `(1+ε)·total/k` is at least the largest single module area and, for
//! unit areas, at least `⌈n/k⌉`; partitioners report infeasible inputs
//! instead of silently violating the bound.

use crate::areas::ModuleAreas;
use crate::{Bipartition, Hypergraph, ModuleId, NetId, NetlistError, Side};
use std::fmt;

/// The per-block area capacity `(1+ε)·total/k` of an ε-balanced k-way
/// partition.
///
/// # Panics
///
/// Panics if `k == 0` or `epsilon` is negative or non-finite.
pub fn balance_bound(total_area: f64, k: usize, epsilon: f64) -> f64 {
    assert!(k >= 1, "k must be at least 1");
    assert!(
        epsilon.is_finite() && epsilon >= 0.0,
        "epsilon must be finite and non-negative"
    );
    (1.0 + epsilon) * total_area / k as f64
}

/// An assignment of every module to one of `num_blocks` labelled blocks.
///
/// Blocks are labelled `0..num_blocks`; blocks may be empty when the
/// partition was built with an explicit block count
/// ([`with_num_blocks`](KwayPartition::with_num_blocks)), which is what
/// in-progress constructions and fixed-block protocols need. The
/// inferring constructor [`from_labels`](KwayPartition::from_labels)
/// requires dense labels.
///
/// # The empty partition
///
/// `from_labels(vec![])` is accepted and yields the *empty* partition:
/// zero modules **and zero blocks** (`num_blocks() == 0`). Callers that
/// assume at least one block must check [`is_empty`](KwayPartition::is_empty)
/// first; all methods on the empty partition are total (they return empty
/// vectors / zero counts) except the per-module accessors, which panic
/// like any out-of-range index.
///
/// # Example
///
/// ```
/// use np_netlist::{hypergraph_from_nets, KwayPartition};
///
/// let hg = hypergraph_from_nets(6, &[vec![0, 1], vec![2, 3], vec![4, 5], vec![1, 2], vec![3, 4]]);
/// let p = KwayPartition::from_labels(vec![0, 0, 1, 1, 2, 2]);
/// assert_eq!(p.num_blocks(), 3);
/// assert_eq!(p.crossing_nets(&hg), 2);
/// assert_eq!(p.block_sizes(), vec![2, 2, 2]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KwayPartition {
    block_of: Vec<u32>,
    num_blocks: usize,
}

impl KwayPartition {
    /// Builds a k-way partition from an explicit block-label vector,
    /// inferring `num_blocks` as `max label + 1`.
    ///
    /// An empty vector yields the empty partition with `num_blocks() == 0`
    /// (see the type-level docs); callers that require at least one block
    /// must handle that case explicitly.
    ///
    /// # Panics
    ///
    /// Panics if the labels are not dense in `0..num_blocks` (use
    /// [`with_num_blocks`](KwayPartition::with_num_blocks) when empty
    /// blocks are intended).
    pub fn from_labels(block_of: Vec<u32>) -> Self {
        let num_blocks = block_of.iter().map(|&b| b as usize + 1).max().unwrap_or(0);
        let mut seen = vec![false; num_blocks];
        for &b in &block_of {
            seen[b as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "block labels must be dense in 0..num_blocks"
        );
        KwayPartition {
            block_of,
            num_blocks,
        }
    }

    /// Builds a k-way partition with an explicit block count; blocks with
    /// no members are allowed.
    ///
    /// # Panics
    ///
    /// Panics if any label is `>= num_blocks`.
    pub fn with_num_blocks(block_of: Vec<u32>, num_blocks: usize) -> Self {
        assert!(
            block_of.iter().all(|&b| (b as usize) < num_blocks),
            "block label out of range 0..num_blocks"
        );
        KwayPartition {
            block_of,
            num_blocks,
        }
    }

    /// Views a bipartition as a 2-block k-way partition (`Left` → block 0,
    /// `Right` → block 1). The conversion shim of the k=2 fast path.
    pub fn from_bipartition(p: &Bipartition) -> Self {
        let block_of = p
            .sides()
            .iter()
            .map(|&s| match s {
                Side::Left => 0u32,
                Side::Right => 1u32,
            })
            .collect();
        KwayPartition {
            block_of,
            num_blocks: 2,
        }
    }

    /// Converts back to a [`Bipartition`] when this partition has exactly
    /// two blocks (block 0 → `Left`, block 1 → `Right`); `None` otherwise.
    pub fn to_bipartition(&self) -> Option<Bipartition> {
        if self.num_blocks != 2 {
            return None;
        }
        let sides = self
            .block_of
            .iter()
            .map(|&b| if b == 0 { Side::Left } else { Side::Right })
            .collect();
        Some(Bipartition::from_sides(sides))
    }

    /// Number of modules covered by this partition.
    pub fn len(&self) -> usize {
        self.block_of.len()
    }

    /// Returns `true` if the partition covers zero modules.
    pub fn is_empty(&self) -> bool {
        self.block_of.is_empty()
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Block label of `module`.
    ///
    /// # Panics
    ///
    /// Panics if `module` is out of range.
    #[inline]
    pub fn block_of(&self, module: ModuleId) -> usize {
        self.block_of[module.index()] as usize
    }

    /// The underlying label vector.
    pub fn labels(&self) -> &[u32] {
        &self.block_of
    }

    /// Module count of each block, indexed by label.
    pub fn block_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_blocks];
        for &b in &self.block_of {
            sizes[b as usize] += 1;
        }
        sizes
    }

    /// Modules in block `b`, in index order.
    pub fn members(&self, b: usize) -> Vec<ModuleId> {
        self.block_of
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l as usize == b)
            .map(|(i, _)| ModuleId(i as u32))
            .collect()
    }

    /// Total area of each block under `areas`, indexed by label.
    ///
    /// # Panics
    ///
    /// Panics if `areas` covers a different number of modules.
    pub fn block_areas(&self, areas: &ModuleAreas) -> Vec<f64> {
        assert_eq!(areas.len(), self.len(), "area vector size mismatch");
        let mut out = vec![0.0f64; self.num_blocks];
        for (i, &b) in self.block_of.iter().enumerate() {
            out[b as usize] += areas.area(ModuleId(i as u32));
        }
        out
    }

    /// Number of nets spanning more than one block — for hardware
    /// simulation, the count of signals that must be multiplexed between
    /// blocks.
    ///
    /// # Panics
    ///
    /// Panics if `hg` has a different module count.
    pub fn crossing_nets(&self, hg: &Hypergraph) -> usize {
        assert_eq!(hg.num_modules(), self.block_of.len());
        hg.nets()
            .filter(|&n| {
                let pins = hg.pins(n);
                let first = self.block_of[pins[0].index()];
                pins[1..].iter().any(|p| self.block_of[p.index()] != first)
            })
            .count()
    }

    /// Per-block external-net counts: for each block, the number of nets
    /// with at least one pin inside and at least one pin outside it. This
    /// is the "number of inputs to a block" that drives test-vector cost
    /// (§1: "reducing the number of inputs to a block implies that fewer
    /// vectors will be needed to exercise the logic").
    pub fn external_nets_per_block(&self, hg: &Hypergraph) -> Vec<usize> {
        assert_eq!(hg.num_modules(), self.block_of.len());
        let mut counts = vec![0usize; self.num_blocks];
        let mut touched = vec![false; self.num_blocks];
        let mut touched_list: Vec<u32> = Vec::new();
        for net in hg.nets() {
            touched_list.clear();
            for p in hg.pins(net) {
                let b = self.block_of[p.index()];
                if !touched[b as usize] {
                    touched[b as usize] = true;
                    touched_list.push(b);
                }
            }
            if touched_list.len() > 1 {
                for &b in &touched_list {
                    counts[b as usize] += 1;
                }
            }
            for &b in &touched_list {
                touched[b as usize] = false;
            }
        }
        counts
    }

    /// Histogram of net *span* (how many blocks each net touches), indexed
    /// by span; entry `[1]` counts fully internal nets.
    pub fn span_histogram(&self, hg: &Hypergraph) -> Vec<usize> {
        assert_eq!(hg.num_modules(), self.block_of.len());
        let mut hist = vec![0usize; self.num_blocks + 1];
        let mut touched = vec![false; self.num_blocks];
        let mut touched_list: Vec<u32> = Vec::new();
        for net in hg.nets() {
            touched_list.clear();
            for p in hg.pins(net) {
                let b = self.block_of[p.index()];
                if !touched[b as usize] {
                    touched[b as usize] = true;
                    touched_list.push(b);
                }
            }
            hist[touched_list.len()] += 1;
            for &b in &touched_list {
                touched[b as usize] = false;
            }
        }
        hist
    }

    /// Computes exact k-way cut statistics against `hg` from scratch in
    /// `O(pins)`.
    ///
    /// # Panics
    ///
    /// Panics if `hg` has a different module count.
    pub fn cut_stats(&self, hg: &Hypergraph) -> KwayCutStats {
        let external = self.external_nets_per_block(hg);
        KwayCutStats {
            cut_nets: self.crossing_nets(hg),
            block_sizes: self.block_sizes(),
            external,
        }
    }
}

/// Cut statistics of a k-way partition: crossing-net count, per-block
/// module counts and per-block external-net counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KwayCutStats {
    /// Number of nets spanning more than one block.
    pub cut_nets: usize,
    /// Module count of each block, indexed by label.
    pub block_sizes: Vec<usize>,
    /// Per-block external-net counts (nets with pins both inside and
    /// outside the block).
    pub external: Vec<usize>,
}

impl KwayCutStats {
    /// The k-way ratio cut `Σ_b external(b) / |V_b|` (Chan–Schlag–Zien),
    /// or `+∞` when any block is empty. At `k = 2` this equals
    /// `cut · (1/|U| + 1/|W|) = cut · n / (|U|·|W|)` — the paper's 2-block
    /// ratio cut scaled by the constant `n`, so both orderings agree.
    pub fn ratio(&self) -> f64 {
        if self.block_sizes.is_empty() {
            return f64::INFINITY;
        }
        let mut r = 0.0f64;
        for (&e, &s) in self.external.iter().zip(&self.block_sizes) {
            if s == 0 {
                return f64::INFINITY;
            }
            r += e as f64 / s as f64;
        }
        r
    }

    /// The largest block's module count (0 for the empty partition).
    pub fn max_block(&self) -> usize {
        self.block_sizes.iter().copied().max().unwrap_or(0)
    }
}

impl fmt::Display for KwayCutStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cut={} k={} max_block={} kratio={:.3e}",
            self.cut_nets,
            self.block_sizes.len(),
            self.max_block(),
            self.ratio()
        )
    }
}

/// Modules pre-assigned ("pinned") to a block, which partitioners must
/// never move — terminals, pre-placed macros, per-block seeds.
///
/// The text format is the hMETIS/KaHyPar `.fix` convention: one line per
/// module, in module order, containing the block index or `-1` for a
/// free module.
///
/// # Example
///
/// ```
/// use np_netlist::{FixedModules, ModuleId};
///
/// let fixed = FixedModules::parse("0\n-1\n-1\n2\n").unwrap();
/// assert_eq!(fixed.len(), 4);
/// assert_eq!(fixed.block_of(ModuleId(0)), Some(0));
/// assert_eq!(fixed.block_of(ModuleId(1)), None);
/// assert_eq!(fixed.pinned_count(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixedModules {
    pinned: Vec<Option<u32>>,
}

impl FixedModules {
    /// All `num_modules` modules free.
    pub fn free(num_modules: usize) -> Self {
        FixedModules {
            pinned: vec![None; num_modules],
        }
    }

    /// Pins `module` to `block` (builder style; re-pinning overwrites).
    ///
    /// # Panics
    ///
    /// Panics if `module` is out of range.
    pub fn pin(&mut self, module: ModuleId, block: usize) {
        self.pinned[module.index()] = Some(block as u32);
    }

    /// Number of modules covered.
    pub fn len(&self) -> usize {
        self.pinned.len()
    }

    /// Returns `true` if no modules are covered.
    pub fn is_empty(&self) -> bool {
        self.pinned.is_empty()
    }

    /// The pinned block of `module`, or `None` if it is free.
    ///
    /// # Panics
    ///
    /// Panics if `module` is out of range.
    #[inline]
    pub fn block_of(&self, module: ModuleId) -> Option<usize> {
        self.pinned[module.index()].map(|b| b as usize)
    }

    /// Returns `true` if `module` is pinned.
    ///
    /// # Panics
    ///
    /// Panics if `module` is out of range.
    #[inline]
    pub fn is_pinned(&self, module: ModuleId) -> bool {
        self.pinned[module.index()].is_some()
    }

    /// Number of pinned modules.
    pub fn pinned_count(&self) -> usize {
        self.pinned.iter().filter(|p| p.is_some()).count()
    }

    /// The pinned modules and their blocks, in module order.
    pub fn pins(&self) -> impl Iterator<Item = (ModuleId, usize)> + '_ {
        self.pinned
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|b| (ModuleId(i as u32), b as usize)))
    }

    /// Returns `true` if every pinned block index is `< k`.
    pub fn fits_k(&self, k: usize) -> bool {
        self.pinned
            .iter()
            .all(|p| p.is_none_or(|b| (b as usize) < k))
    }

    /// Parses the hMETIS `.fix` text format: one integer per line in
    /// module order, the block index or `-1` for a free module. Blank
    /// lines and `%`-comment lines are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Parse`] on non-integer lines or block
    /// indices below `-1`.
    pub fn parse(text: &str) -> Result<Self, NetlistError> {
        let mut pinned = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('%') {
                continue;
            }
            let v: i64 = line.parse().map_err(|_| NetlistError::Parse {
                line: lineno + 1,
                message: format!("expected a block index or -1, got {line:?}"),
            })?;
            if v < -1 {
                return Err(NetlistError::Parse {
                    line: lineno + 1,
                    message: format!("block index must be >= -1, got {v}"),
                });
            }
            pinned.push(if v < 0 { None } else { Some(v as u32) });
        }
        Ok(FixedModules { pinned })
    }
}

/// Incremental k-way cut bookkeeping for algorithms that move one module
/// at a time (k-way FM/greedy refinement, balance repair).
///
/// Maintains, for every net, the number of its pins in each block and the
/// net's *span* (how many blocks it touches); a net crosses iff its span
/// is `>= 2`. Moving a module updates the crossing count in `O(degree)`.
/// Storage is `O(nets · k)`, the k-block generalization of
/// [`CutTracker`](crate::partition::CutTracker)'s per-net left-pin count.
///
/// # Example
///
/// ```
/// use np_netlist::{hypergraph_from_nets, KwayCutTracker, KwayPartition, ModuleId};
///
/// let hg = hypergraph_from_nets(6, &[vec![0, 1], vec![2, 3], vec![4, 5], vec![1, 2], vec![3, 4]]);
/// let p = KwayPartition::from_labels(vec![0, 0, 1, 1, 2, 2]);
/// let mut t = KwayCutTracker::new(&hg, &p);
/// assert_eq!(t.cut_nets(), 2);
/// assert_eq!(t.gain(ModuleId(2), 0), 0); // uncuts {1,2}, cuts {2,3}
/// t.move_module(ModuleId(2), 0);
/// assert_eq!(t.cut_nets(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct KwayCutTracker<'a> {
    hg: &'a Hypergraph,
    k: usize,
    block_of: Vec<u32>,
    /// Row-major `net × block` pin counts.
    pins_in: Vec<u32>,
    /// Number of blocks each net currently touches.
    span: Vec<u32>,
    cut_nets: usize,
    block_counts: Vec<usize>,
    areas: Option<Vec<f64>>,
    block_areas: Vec<f64>,
    total_area: f64,
}

impl<'a> KwayCutTracker<'a> {
    /// Creates a tracker initialized from an existing partition in
    /// `O(pins)`.
    ///
    /// # Panics
    ///
    /// Panics if sizes disagree or the partition has zero blocks.
    pub fn new(hg: &'a Hypergraph, p: &KwayPartition) -> Self {
        assert_eq!(hg.num_modules(), p.len(), "partition size mismatch");
        let k = p.num_blocks();
        assert!(k >= 1, "tracker needs at least one block");
        let mut pins_in = vec![0u32; hg.num_nets() * k];
        let mut span = vec![0u32; hg.num_nets()];
        let mut cut_nets = 0usize;
        for net in hg.nets() {
            let row = net.index() * k;
            for &m in hg.pins(net) {
                let b = p.block_of(m);
                if pins_in[row + b] == 0 {
                    span[net.index()] += 1;
                }
                pins_in[row + b] += 1;
            }
            if span[net.index()] >= 2 {
                cut_nets += 1;
            }
        }
        KwayCutTracker {
            hg,
            k,
            block_of: p.labels().to_vec(),
            pins_in,
            span,
            cut_nets,
            block_counts: p.block_sizes(),
            areas: None,
            block_areas: vec![0.0; k],
            total_area: 0.0,
        }
    }

    /// Attaches module areas; thereafter
    /// [`block_areas`](Self::block_areas) tracks per-block area totals
    /// incrementally.
    ///
    /// # Panics
    ///
    /// Panics if `areas.len()` differs from the module count.
    pub fn set_areas(&mut self, areas: &ModuleAreas) {
        assert_eq!(
            areas.len(),
            self.hg.num_modules(),
            "area vector size mismatch"
        );
        let v = areas.as_slice().to_vec();
        self.total_area = v.iter().sum();
        let mut block_areas = vec![0.0f64; self.k];
        for (i, &b) in self.block_of.iter().enumerate() {
            block_areas[b as usize] += v[i];
        }
        self.block_areas = block_areas;
        self.areas = Some(v);
    }

    /// Number of blocks.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current number of crossing nets.
    #[inline]
    pub fn cut_nets(&self) -> usize {
        self.cut_nets
    }

    /// Current block of module `m`.
    #[inline]
    pub fn block_of(&self, m: ModuleId) -> usize {
        self.block_of[m.index()] as usize
    }

    /// Number of pins of `net` currently in block `b`.
    #[inline]
    pub fn pins_in(&self, net: NetId, b: usize) -> u32 {
        self.pins_in[net.index() * self.k + b]
    }

    /// Number of blocks `net` currently touches.
    #[inline]
    pub fn span(&self, net: NetId) -> u32 {
        self.span[net.index()]
    }

    /// Returns `true` if `net` currently spans more than one block.
    #[inline]
    pub fn is_cut(&self, net: NetId) -> bool {
        self.span[net.index()] >= 2
    }

    /// Current module count of each block.
    pub fn block_counts(&self) -> &[usize] {
        &self.block_counts
    }

    /// Current area of each block (all zeros until
    /// [`set_areas`](Self::set_areas) is called).
    pub fn block_areas(&self) -> &[f64] {
        &self.block_areas
    }

    /// Total area across all modules (0.0 until
    /// [`set_areas`](Self::set_areas) is called).
    pub fn total_area(&self) -> f64 {
        self.total_area
    }

    /// Area of module `m`, or 1.0 when no areas are attached (unit
    /// weights).
    #[inline]
    pub fn area_of(&self, m: ModuleId) -> f64 {
        match &self.areas {
            Some(v) => v[m.index()],
            None => 1.0,
        }
    }

    /// Moves module `m` to block `to`, updating crossing bookkeeping in
    /// `O(degree(m))`. Moving a module to its current block is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `to >= k()`.
    pub fn move_module(&mut self, m: ModuleId, to: usize) {
        assert!(to < self.k, "target block out of range");
        let from = self.block_of[m.index()] as usize;
        if from == to {
            return;
        }
        self.block_of[m.index()] = to as u32;
        self.block_counts[from] -= 1;
        self.block_counts[to] += 1;
        if let Some(areas) = &self.areas {
            let a = areas[m.index()];
            self.block_areas[from] -= a;
            self.block_areas[to] += a;
        }
        for &net in self.hg.nets_of(m) {
            let row = net.index() * self.k;
            let was_cut = self.span[net.index()] >= 2;
            self.pins_in[row + from] -= 1;
            if self.pins_in[row + from] == 0 {
                self.span[net.index()] -= 1;
            }
            if self.pins_in[row + to] == 0 {
                self.span[net.index()] += 1;
            }
            self.pins_in[row + to] += 1;
            let now_cut = self.span[net.index()] >= 2;
            match (was_cut, now_cut) {
                (false, true) => self.cut_nets += 1,
                (true, false) => self.cut_nets -= 1,
                _ => {}
            }
        }
    }

    /// The crossing-count change that *would* result from moving `m` to
    /// block `to` (positive gain means the cut decreases by that amount).
    /// Returns 0 when `to` is `m`'s current block.
    ///
    /// # Panics
    ///
    /// Panics if `to >= k()`.
    pub fn gain(&self, m: ModuleId, to: usize) -> i64 {
        assert!(to < self.k, "target block out of range");
        let from = self.block_of[m.index()] as usize;
        if from == to {
            return 0;
        }
        let mut g = 0i64;
        for &net in self.hg.nets_of(m) {
            let row = net.index() * self.k;
            let span = self.span[net.index()];
            let from_pins = self.pins_in[row + from];
            let to_pins = self.pins_in[row + to];
            let new_span = span - u32::from(from_pins == 1) + u32::from(to_pins == 0);
            g += i64::from(span >= 2) - i64::from(new_span >= 2);
        }
        g
    }

    /// Current cut statistics; per-block external counts are recomputed
    /// from the pin-count matrix in `O(nets · k)`.
    pub fn stats(&self) -> KwayCutStats {
        let mut external = vec![0usize; self.k];
        for net in self.hg.nets() {
            if self.span[net.index()] < 2 {
                continue;
            }
            let row = net.index() * self.k;
            for (b, ext) in external.iter_mut().enumerate() {
                if self.pins_in[row + b] > 0 {
                    *ext += 1;
                }
            }
        }
        KwayCutStats {
            cut_nets: self.cut_nets,
            block_sizes: self.block_counts.clone(),
            external,
        }
    }

    /// Snapshot of the current assignment as a [`KwayPartition`] (with
    /// this tracker's block count, so empty blocks survive).
    pub fn to_partition(&self) -> KwayPartition {
        KwayPartition::with_num_blocks(self.block_of.clone(), self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph_from_nets;

    fn three_pairs() -> Hypergraph {
        hypergraph_from_nets(
            6,
            &[vec![0, 1], vec![2, 3], vec![4, 5], vec![1, 2], vec![3, 4]],
        )
    }

    #[test]
    fn empty_labels_yield_zero_blocks() {
        // regression: the empty case is explicit — zero modules, zero
        // blocks — and every aggregate method stays total on it
        let p = KwayPartition::from_labels(vec![]);
        assert!(p.is_empty());
        assert_eq!(p.num_blocks(), 0);
        assert_eq!(p.block_sizes(), Vec::<usize>::new());
        assert_eq!(p.labels(), &[] as &[u32]);
        assert_eq!(p.to_bipartition(), None);
        let stats = KwayCutStats {
            cut_nets: 0,
            block_sizes: vec![],
            external: vec![],
        };
        assert_eq!(stats.ratio(), f64::INFINITY);
        assert_eq!(stats.max_block(), 0);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_labels_rejected() {
        KwayPartition::from_labels(vec![0, 2]);
    }

    #[test]
    fn with_num_blocks_allows_empty_blocks() {
        let p = KwayPartition::with_num_blocks(vec![0, 0, 2], 4);
        assert_eq!(p.num_blocks(), 4);
        assert_eq!(p.block_sizes(), vec![2, 0, 1, 0]);
        assert_eq!(p.members(2), vec![ModuleId(2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn with_num_blocks_rejects_overflow_label() {
        KwayPartition::with_num_blocks(vec![0, 3], 3);
    }

    #[test]
    fn bipartition_round_trip() {
        let p = Bipartition::from_left_set(4, [ModuleId(1), ModuleId(2)]);
        let k = KwayPartition::from_bipartition(&p);
        assert_eq!(k.num_blocks(), 2);
        assert_eq!(k.labels(), &[1, 0, 0, 1]);
        assert_eq!(k.to_bipartition().unwrap(), p);
    }

    #[test]
    fn stats_match_hand_computation() {
        let hg = three_pairs();
        let p = KwayPartition::from_labels(vec![0, 0, 1, 1, 2, 2]);
        let s = p.cut_stats(&hg);
        assert_eq!(s.cut_nets, 2);
        assert_eq!(s.block_sizes, vec![2, 2, 2]);
        assert_eq!(s.external, vec![1, 2, 1]);
        assert!((s.ratio() - (0.5 + 1.0 + 0.5)).abs() < 1e-12);
        assert_eq!(s.max_block(), 2);
    }

    #[test]
    fn two_block_ratio_is_scaled_paper_ratio() {
        let hg = three_pairs();
        let bi = Bipartition::from_left_set(6, [ModuleId(0), ModuleId(1), ModuleId(2)]);
        let k = KwayPartition::from_bipartition(&bi);
        let kr = k.cut_stats(&hg).ratio();
        let r2 = bi.cut_stats(&hg).ratio();
        assert!((kr - r2 * 6.0).abs() < 1e-12);
    }

    #[test]
    fn block_areas_accumulate() {
        let p = KwayPartition::from_labels(vec![0, 1, 1, 0]);
        let areas = ModuleAreas::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(p.block_areas(&areas), vec![5.0, 5.0]);
    }

    #[test]
    fn balance_bound_formula() {
        assert!((balance_bound(100.0, 4, 0.1) - 27.5).abs() < 1e-12);
        assert!((balance_bound(10.0, 1, 0.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn balance_bound_rejects_zero_k() {
        balance_bound(1.0, 0, 0.1);
    }

    #[test]
    fn tracker_matches_scratch_on_random_walk() {
        let hg = hypergraph_from_nets(
            6,
            &[
                vec![0, 1, 2],
                vec![2, 3],
                vec![3, 4, 5],
                vec![0, 5],
                vec![1, 4],
            ],
        );
        let p = KwayPartition::with_num_blocks(vec![0, 0, 1, 1, 2, 2], 3);
        let mut t = KwayCutTracker::new(&hg, &p);
        let moves = [(0, 2), (3, 0), (0, 1), (5, 0), (1, 1), (3, 2), (4, 0)];
        for (m, b) in moves {
            t.move_module(ModuleId(m), b);
            let snapshot = t.to_partition();
            assert_eq!(t.cut_nets(), snapshot.crossing_nets(&hg));
            assert_eq!(t.stats(), snapshot.cut_stats(&hg));
            assert_eq!(t.block_counts(), snapshot.block_sizes());
        }
    }

    #[test]
    fn gain_predicts_cut_change() {
        let hg = three_pairs();
        let p = KwayPartition::from_labels(vec![0, 0, 1, 1, 2, 2]);
        let mut t = KwayCutTracker::new(&hg, &p);
        for m in hg.modules() {
            for to in 0..t.k() {
                let g = t.gain(m, to);
                let from = t.block_of(m);
                let before = t.cut_nets() as i64;
                t.move_module(m, to);
                assert_eq!(before - t.cut_nets() as i64, g, "gain mismatch {m} -> {to}");
                t.move_module(m, from);
            }
        }
    }

    #[test]
    fn tracker_areas_track_moves() {
        let hg = three_pairs();
        let p = KwayPartition::from_labels(vec![0, 0, 1, 1, 2, 2]);
        let mut t = KwayCutTracker::new(&hg, &p);
        t.set_areas(&ModuleAreas::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        assert_eq!(t.block_areas(), &[3.0, 7.0, 11.0]);
        assert_eq!(t.total_area(), 21.0);
        t.move_module(ModuleId(3), 0);
        assert_eq!(t.block_areas(), &[7.0, 3.0, 11.0]);
        assert_eq!(t.area_of(ModuleId(5)), 6.0);
    }

    #[test]
    fn tracker_matches_bipartition_tracker_at_k2() {
        let hg = three_pairs();
        let bi = Bipartition::from_left_set(6, [ModuleId(0), ModuleId(3), ModuleId(4)]);
        let bt = crate::partition::CutTracker::from_partition(&hg, &bi);
        let kt = KwayCutTracker::new(&hg, &KwayPartition::from_bipartition(&bi));
        assert_eq!(bt.cut_nets(), kt.cut_nets());
    }

    #[test]
    fn move_to_same_block_is_noop() {
        let hg = three_pairs();
        let p = KwayPartition::from_labels(vec![0, 0, 1, 1, 2, 2]);
        let mut t = KwayCutTracker::new(&hg, &p);
        let before = t.stats();
        t.move_module(ModuleId(2), 1);
        assert_eq!(t.stats(), before);
        assert_eq!(t.gain(ModuleId(2), 1), 0);
    }

    #[test]
    fn fixed_modules_parse_and_query() {
        let f = FixedModules::parse("% header comment\n0\n-1\n\n2\n-1\n").unwrap();
        assert_eq!(f.len(), 4);
        assert_eq!(f.pinned_count(), 2);
        assert!(f.is_pinned(ModuleId(0)));
        assert!(!f.is_pinned(ModuleId(1)));
        assert_eq!(f.block_of(ModuleId(2)), Some(2));
        assert_eq!(
            f.pins().collect::<Vec<_>>(),
            vec![(ModuleId(0), 0), (ModuleId(2), 2)]
        );
        assert!(f.fits_k(3));
        assert!(!f.fits_k(2));
    }

    #[test]
    fn fixed_modules_parse_rejects_garbage() {
        assert!(matches!(
            FixedModules::parse("0\nx\n"),
            Err(NetlistError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            FixedModules::parse("-2\n"),
            Err(NetlistError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn fixed_modules_builder() {
        let mut f = FixedModules::free(3);
        assert!(!f.is_empty());
        assert_eq!(f.pinned_count(), 0);
        f.pin(ModuleId(1), 4);
        assert_eq!(f.block_of(ModuleId(1)), Some(4));
        assert!(f.fits_k(5));
    }
}
