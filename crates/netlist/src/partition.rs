//! Module bipartitions and the ratio-cut metric.
//!
//! The paper optimizes the **ratio cut** objective of Wei and Cheng:
//! for a partition of the module set `V` into disjoint `U` and `W`,
//!
//! ```text
//!               e(U, W)
//!     R(U,W) = ---------
//!              |U| · |W|
//! ```
//!
//! where `e(U, W)` is the number of *nets* with pins on both sides. The
//! numerator captures the min-cut criterion while the denominator favors
//! balanced partitions without imposing a hard bisection constraint.
//!
//! Following Section 4 of the paper ("the spectral approach cannot take
//! module areas into consideration"), modules have uniform weight and the
//! denominator uses module counts.

use crate::{Hypergraph, ModuleId, NetId};
use std::fmt;

/// The side of a bipartition a module is assigned to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// The "left" (`U`) block.
    Left,
    /// The "right" (`W`) block.
    Right,
}

impl Side {
    /// The opposite side.
    #[inline]
    pub fn flip(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Left => write!(f, "L"),
            Side::Right => write!(f, "R"),
        }
    }
}

/// An assignment of every module to one of two sides.
///
/// # Example
///
/// ```
/// use np_netlist::{hypergraph_from_nets, Bipartition, ModuleId, Side};
///
/// let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
/// let p = Bipartition::from_left_set(4, [ModuleId(0), ModuleId(1)]);
/// let stats = p.cut_stats(&hg);
/// assert_eq!(stats.cut_nets, 1); // only net {1,2} crosses
/// assert_eq!((stats.left, stats.right), (2, 2));
/// assert!((p.ratio_cut(&hg) - 1.0 / 4.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bipartition {
    sides: Vec<Side>,
}

impl Bipartition {
    /// Creates a partition with all `num_modules` modules on `side`.
    pub fn uniform(num_modules: usize, side: Side) -> Self {
        Bipartition {
            sides: vec![side; num_modules],
        }
    }

    /// Creates a partition from an explicit side vector.
    pub fn from_sides(sides: Vec<Side>) -> Self {
        Bipartition { sides }
    }

    /// Creates a partition in which exactly the given modules are on the
    /// left and everything else is on the right.
    ///
    /// # Panics
    ///
    /// Panics if a module index is `>= num_modules`.
    pub fn from_left_set<I>(num_modules: usize, left: I) -> Self
    where
        I: IntoIterator<Item = ModuleId>,
    {
        let mut p = Bipartition::uniform(num_modules, Side::Right);
        for m in left {
            p.sides[m.index()] = Side::Left;
        }
        p
    }

    /// Number of modules covered by this partition.
    pub fn len(&self) -> usize {
        self.sides.len()
    }

    /// Returns `true` if the partition covers zero modules.
    pub fn is_empty(&self) -> bool {
        self.sides.is_empty()
    }

    /// The side module `m` is assigned to.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    #[inline]
    pub fn side(&self, m: ModuleId) -> Side {
        self.sides[m.index()]
    }

    /// Assigns module `m` to `side`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    #[inline]
    pub fn set(&mut self, m: ModuleId, side: Side) {
        self.sides[m.index()] = side;
    }

    /// The underlying side vector.
    pub fn sides(&self) -> &[Side] {
        &self.sides
    }

    /// Modules on the given side, in index order.
    pub fn members(&self, side: Side) -> Vec<ModuleId> {
        self.sides
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == side)
            .map(|(i, _)| ModuleId(i as u32))
            .collect()
    }

    /// Number of modules on the given side.
    pub fn count(&self, side: Side) -> usize {
        self.sides.iter().filter(|&&s| s == side).count()
    }

    /// Swaps the two blocks (every module flips side).
    pub fn flip_all(&mut self) {
        for s in &mut self.sides {
            *s = s.flip();
        }
    }

    /// Computes exact cut statistics against `hg` from scratch in
    /// `O(pins)`.
    ///
    /// # Panics
    ///
    /// Panics if `hg.num_modules() != self.len()`.
    pub fn cut_stats(&self, hg: &Hypergraph) -> CutStats {
        assert_eq!(
            hg.num_modules(),
            self.len(),
            "partition size does not match hypergraph"
        );
        let mut cut = 0usize;
        for net in hg.nets() {
            let pins = hg.pins(net);
            let first = self.side(pins[0]);
            if pins[1..].iter().any(|&m| self.side(m) != first) {
                cut += 1;
            }
        }
        CutStats {
            cut_nets: cut,
            left: self.count(Side::Left),
            right: self.count(Side::Right),
        }
    }

    /// The ratio-cut cost `cut / (|U|·|W|)`.
    ///
    /// Returns `f64::INFINITY` when one side is empty (the metric is
    /// undefined there; treating it as +∞ lets sweep loops simply minimize).
    pub fn ratio_cut(&self, hg: &Hypergraph) -> f64 {
        self.cut_stats(hg).ratio()
    }
}

/// Cut statistics of a bipartition: cut-net count and block sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CutStats {
    /// Number of nets with pins on both sides.
    pub cut_nets: usize,
    /// Number of modules in the left block (`|U|`).
    pub left: usize,
    /// Number of modules in the right block (`|W|`).
    pub right: usize,
}

impl CutStats {
    /// The ratio-cut value `cut_nets / (left · right)`, or `+∞` if either
    /// block is empty.
    pub fn ratio(&self) -> f64 {
        if self.left == 0 || self.right == 0 {
            f64::INFINITY
        } else {
            self.cut_nets as f64 / (self.left as f64 * self.right as f64)
        }
    }

    /// Formats the block sizes the way the paper's tables do, e.g. `152:681`.
    pub fn areas(&self) -> String {
        format!(
            "{}:{}",
            self.left.min(self.right),
            self.left.max(self.right)
        )
    }
}

impl fmt::Display for CutStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cut={} areas={} ratio={:.3e}",
            self.cut_nets,
            self.areas(),
            self.ratio()
        )
    }
}

/// Incremental cut bookkeeping for algorithms that move one module at a
/// time (spectral sweeps, Fiduccia–Mattheyses passes, IG-Vote).
///
/// Maintains, for every net, the number of its pins currently on the left
/// side; a net is cut iff `0 < left_pins < size`. Moving a module updates the
/// cut count in `O(degree(m))`, so a full sweep over all modules costs
/// `O(pins)` — this is what makes "try every split point" affordable.
///
/// # Example
///
/// ```
/// use np_netlist::partition::CutTracker;
/// use np_netlist::{hypergraph_from_nets, ModuleId, Side};
///
/// let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
/// let mut t = CutTracker::all_on(&hg, Side::Right);
/// t.move_module(ModuleId(0), Side::Left);
/// assert_eq!(t.cut_nets(), 1);
/// t.move_module(ModuleId(1), Side::Left);
/// assert_eq!(t.cut_nets(), 1);
/// assert_eq!(t.stats().areas(), "2:2");
/// ```
#[derive(Clone, Debug)]
pub struct CutTracker<'a> {
    hg: &'a Hypergraph,
    sides: Vec<Side>,
    left_pins: Vec<u32>,
    cut_nets: usize,
    left_count: usize,
    /// Optional module areas; when set, `left_area`/`area_ratio` track the
    /// area-weighted metric incrementally.
    areas: Option<Vec<f64>>,
    left_area: f64,
    total_area: f64,
}

impl<'a> CutTracker<'a> {
    /// Creates a tracker with every module on `side`.
    pub fn all_on(hg: &'a Hypergraph, side: Side) -> Self {
        let left_pins = match side {
            Side::Left => hg.nets().map(|n| hg.net_size(n) as u32).collect(),
            Side::Right => vec![0; hg.num_nets()],
        };
        let left_count = match side {
            Side::Left => hg.num_modules(),
            Side::Right => 0,
        };
        CutTracker {
            hg,
            sides: vec![side; hg.num_modules()],
            left_pins,
            cut_nets: 0,
            left_count,
            areas: None,
            left_area: 0.0,
            total_area: 0.0,
        }
    }

    /// Creates a tracker initialized from an existing partition in
    /// `O(pins)`.
    pub fn from_partition(hg: &'a Hypergraph, p: &Bipartition) -> Self {
        assert_eq!(hg.num_modules(), p.len());
        let mut left_pins = vec![0u32; hg.num_nets()];
        let mut cut = 0usize;
        for net in hg.nets() {
            let l = hg
                .pins(net)
                .iter()
                .filter(|&&m| p.side(m) == Side::Left)
                .count() as u32;
            left_pins[net.index()] = l;
            if l > 0 && (l as usize) < hg.net_size(net) {
                cut += 1;
            }
        }
        CutTracker {
            hg,
            sides: p.sides().to_vec(),
            left_pins,
            cut_nets: cut,
            left_count: p.count(Side::Left),
            areas: None,
            left_area: 0.0,
            total_area: 0.0,
        }
    }

    /// Attaches module areas; thereafter [`area_ratio`](Self::area_ratio)
    /// and [`left_area`](Self::left_area) track the area-weighted metric
    /// incrementally.
    ///
    /// # Panics
    ///
    /// Panics if `areas.len()` differs from the module count.
    pub fn set_areas(&mut self, areas: &crate::areas::ModuleAreas) {
        assert_eq!(
            areas.len(),
            self.hg.num_modules(),
            "area vector size mismatch"
        );
        let v = areas.as_slice().to_vec();
        self.total_area = v.iter().sum();
        self.left_area = self
            .sides
            .iter()
            .zip(&v)
            .filter(|(s, _)| **s == Side::Left)
            .map(|(_, a)| *a)
            .sum();
        self.areas = Some(v);
    }

    /// Total area currently on the left side (0.0 until
    /// [`set_areas`](Self::set_areas) is called).
    pub fn left_area(&self) -> f64 {
        self.left_area
    }

    /// The area-weighted ratio cut, or `+∞` when a side has zero area.
    ///
    /// # Panics
    ///
    /// Panics if no areas were attached.
    pub fn area_ratio(&self) -> f64 {
        assert!(self.areas.is_some(), "no module areas attached");
        let right = self.total_area - self.left_area;
        if self.left_area <= 0.0 || right <= 0.0 {
            f64::INFINITY
        } else {
            self.cut_nets as f64 / (self.left_area * right)
        }
    }

    /// Current number of cut nets.
    #[inline]
    pub fn cut_nets(&self) -> usize {
        self.cut_nets
    }

    /// Current side of module `m`.
    #[inline]
    pub fn side(&self, m: ModuleId) -> Side {
        self.sides[m.index()]
    }

    /// Number of pins of `net` currently on the left side.
    #[inline]
    pub fn left_pins(&self, net: NetId) -> u32 {
        self.left_pins[net.index()]
    }

    /// Returns `true` if `net` currently has pins on both sides.
    #[inline]
    pub fn is_cut(&self, net: NetId) -> bool {
        let l = self.left_pins[net.index()] as usize;
        l > 0 && l < self.hg.net_size(net)
    }

    /// Current block sizes and cut count.
    pub fn stats(&self) -> CutStats {
        CutStats {
            cut_nets: self.cut_nets,
            left: self.left_count,
            right: self.hg.num_modules() - self.left_count,
        }
    }

    /// Current ratio-cut value.
    pub fn ratio(&self) -> f64 {
        self.stats().ratio()
    }

    /// Moves module `m` to `to`, updating cut bookkeeping in
    /// `O(degree(m))`. Moving a module to its current side is a no-op.
    pub fn move_module(&mut self, m: ModuleId, to: Side) {
        let from = self.sides[m.index()];
        if from == to {
            return;
        }
        self.sides[m.index()] = to;
        match to {
            Side::Left => self.left_count += 1,
            Side::Right => self.left_count -= 1,
        }
        if let Some(areas) = &self.areas {
            match to {
                Side::Left => self.left_area += areas[m.index()],
                Side::Right => self.left_area -= areas[m.index()],
            }
        }
        let delta: i64 = if to == Side::Left { 1 } else { -1 };
        for &net in self.hg.nets_of(m) {
            let size = self.hg.net_size(net) as i64;
            let old = self.left_pins[net.index()] as i64;
            let new = old + delta;
            self.left_pins[net.index()] = new as u32;
            let was_cut = old > 0 && old < size;
            let now_cut = new > 0 && new < size;
            match (was_cut, now_cut) {
                (false, true) => self.cut_nets += 1,
                (true, false) => self.cut_nets -= 1,
                _ => {}
            }
        }
    }

    /// The net-cut change that *would* result from moving `m` to the other
    /// side (the Fiduccia–Mattheyses *gain*, negated: positive gain means
    /// the cut decreases by that amount).
    ///
    /// A net yields +1 gain if `m` is its only pin on its side (moving `m`
    /// uncuts it) and −1 gain if the net is entirely on `m`'s side (moving
    /// `m` cuts it).
    pub fn gain(&self, m: ModuleId) -> i64 {
        let from = self.sides[m.index()];
        let mut g = 0i64;
        for &net in self.hg.nets_of(m) {
            let size = self.hg.net_size(net) as i64;
            if size <= 1 {
                continue;
            }
            let l = self.left_pins[net.index()] as i64;
            let on_my_side = match from {
                Side::Left => l,
                Side::Right => size - l,
            };
            if on_my_side == 1 {
                g += 1;
            } else if on_my_side == size {
                g -= 1;
            }
        }
        g
    }

    /// Snapshot of the current assignment as a [`Bipartition`].
    pub fn to_partition(&self) -> Bipartition {
        Bipartition::from_sides(self.sides.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph_from_nets;

    fn chain() -> Hypergraph {
        hypergraph_from_nets(4, &[vec![0, 1], vec![1, 2], vec![2, 3]])
    }

    #[test]
    fn uniform_partition_cuts_nothing() {
        let hg = chain();
        let p = Bipartition::uniform(4, Side::Left);
        let s = p.cut_stats(&hg);
        assert_eq!(s.cut_nets, 0);
        assert_eq!(s.ratio(), f64::INFINITY);
    }

    #[test]
    fn ratio_cut_matches_hand_computation() {
        let hg = chain();
        let p = Bipartition::from_left_set(4, [ModuleId(0)]);
        let s = p.cut_stats(&hg);
        assert_eq!(s.cut_nets, 1);
        assert!((s.ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn multipin_net_cut_once() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1, 2, 3]]);
        let p = Bipartition::from_left_set(4, [ModuleId(0), ModuleId(1)]);
        assert_eq!(p.cut_stats(&hg).cut_nets, 1);
    }

    #[test]
    fn areas_puts_smaller_side_first() {
        let s = CutStats {
            cut_nets: 3,
            left: 10,
            right: 4,
        };
        assert_eq!(s.areas(), "4:10");
    }

    #[test]
    fn tracker_matches_scratch_on_random_walk() {
        let hg = hypergraph_from_nets(
            6,
            &[
                vec![0, 1, 2],
                vec![2, 3],
                vec![3, 4, 5],
                vec![0, 5],
                vec![1, 4],
            ],
        );
        let mut t = CutTracker::all_on(&hg, Side::Right);
        let moves = [
            (0, Side::Left),
            (3, Side::Left),
            (0, Side::Right),
            (5, Side::Left),
            (1, Side::Left),
            (3, Side::Right),
        ];
        for (m, side) in moves {
            t.move_module(ModuleId(m), side);
            let scratch = t.to_partition().cut_stats(&hg);
            assert_eq!(t.cut_nets(), scratch.cut_nets);
            assert_eq!(t.stats(), scratch);
        }
    }

    #[test]
    fn tracker_from_partition_consistent() {
        let hg = chain();
        let p = Bipartition::from_left_set(4, [ModuleId(1), ModuleId(2)]);
        let t = CutTracker::from_partition(&hg, &p);
        assert_eq!(t.cut_nets(), p.cut_stats(&hg).cut_nets);
        assert_eq!(t.cut_nets(), 2);
    }

    #[test]
    fn gain_predicts_cut_change() {
        let hg = hypergraph_from_nets(5, &[vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![0, 4]]);
        let p = Bipartition::from_left_set(5, [ModuleId(0), ModuleId(1), ModuleId(2)]);
        let mut t = CutTracker::from_partition(&hg, &p);
        for m in hg.modules() {
            let g = t.gain(m);
            let before = t.cut_nets() as i64;
            let orig = t.side(m);
            t.move_module(m, orig.flip());
            let after = t.cut_nets() as i64;
            assert_eq!(before - after, g, "gain mismatch for {m}");
            t.move_module(m, orig); // restore
        }
    }

    #[test]
    fn move_to_same_side_is_noop() {
        let hg = chain();
        let mut t = CutTracker::all_on(&hg, Side::Right);
        t.move_module(ModuleId(2), Side::Right);
        assert_eq!(t.cut_nets(), 0);
        assert_eq!(t.stats().left, 0);
    }

    #[test]
    fn flip_all_preserves_cut() {
        let hg = chain();
        let mut p = Bipartition::from_left_set(4, [ModuleId(0), ModuleId(2)]);
        let before = p.cut_stats(&hg);
        p.flip_all();
        let after = p.cut_stats(&hg);
        assert_eq!(before.cut_nets, after.cut_nets);
        assert_eq!(before.left, after.right);
    }

    #[test]
    fn members_returns_sorted_modules() {
        let p = Bipartition::from_left_set(4, [ModuleId(3), ModuleId(1)]);
        assert_eq!(p.members(Side::Left), vec![ModuleId(1), ModuleId(3)]);
        assert_eq!(p.members(Side::Right), vec![ModuleId(0), ModuleId(2)]);
    }

    #[test]
    fn single_pin_net_never_cut() {
        let hg = hypergraph_from_nets(2, &[vec![0], vec![0, 1]]);
        let mut t = CutTracker::all_on(&hg, Side::Right);
        t.move_module(ModuleId(0), Side::Left);
        assert_eq!(t.cut_nets(), 1); // only the 2-pin net
        assert_eq!(t.gain(ModuleId(0)), 1);
    }
}
