//! Ignored stress probes for the V-cycle on the large band-ladder rungs.
//!
//! Run with `cargo test -p np-multilevel --release -- --ignored --nocapture`
//! to get a phase-by-phase wall breakdown on band-XL; CI skips these.

use np_multilevel::{build_hierarchy, multilevel, MultilevelOptions};
use np_netlist::areas::ModuleAreas;
use np_netlist::FixedModules;
use np_sparse::BudgetMeter;
use np_testkit::band_ladder;
use std::time::Instant;

#[test]
#[ignore = "multi-second stress probe; run manually with --ignored"]
fn band_xl_phase_breakdown() {
    let spec = band_ladder()[3];
    assert_eq!(spec.name, "band-XL");
    let t = Instant::now();
    let hg = spec.build();
    println!("build: {:?}", t.elapsed());

    let opts = MultilevelOptions::default();
    let areas = ModuleAreas::uniform(hg.num_modules());
    let fixed = FixedModules::free(hg.num_modules());
    let t = Instant::now();
    let hier = build_hierarchy(
        &hg,
        &areas,
        &fixed,
        &opts,
        f64::INFINITY,
        &BudgetMeter::unlimited(),
    )
    .unwrap();
    println!("coarsen ({} levels): {:?}", hier.len(), t.elapsed());
    for (i, level) in hier.levels.iter().enumerate() {
        println!(
            "  level {i}: {} modules, {} nets, {} merges, {} nets dropped",
            level.coarse.num_modules(),
            level.coarse.num_nets(),
            level.merges,
            level.dropped_nets
        );
    }

    let t = Instant::now();
    let out = multilevel(&hg, &opts).unwrap();
    println!(
        "full V-cycle: {:?} (cut {}, {} levels refined)",
        t.elapsed(),
        out.result.stats.cut_nets,
        out.refined_levels
    );

    let t = Instant::now();
    let out0 = multilevel(
        &hg,
        &MultilevelOptions {
            refine_passes: 0,
            ..opts
        },
    )
    .unwrap();
    println!(
        "V-cycle, no refinement: {:?} (cut {})",
        t.elapsed(),
        out0.result.stats.cut_nets
    );
}
