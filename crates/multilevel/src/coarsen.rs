//! One level of hypergraph contraction for the V-cycle.
//!
//! The matching rule generalizes `np_core::cluster::coarsen` — the seed
//! heuristic of the workspace — from the plain clique model to the
//! constrained setting the V-cycle needs: connectivity weights are
//! accumulated directly from the nets (`1/(|e|−1)` per shared net, the
//! standard clique-model weight) without materializing the adjacency
//! matrix, oversized nets are excluded from the weights (they carry
//! almost no locality signal and would make matching quadratic), merges
//! that would exceed an area cap are refused, and two modules pinned to
//! *different* blocks are never merged so `FixedModules` survive
//! contraction intact.
//!
//! Contraction keeps duplicate nets: the workspace's hypergraph model is
//! unweighted, so collapsing parallel coarse nets into one would make the
//! coarse cut undercount the flat cut. By retaining them (and dropping
//! only nets that become internal to a single cluster — which no
//! cluster-respecting partition can cut) the unweighted cut of a coarse
//! partition is *exactly* the cut of its flat projection at every level.
//! That identity is the backbone of the uncoarsening invariants in
//! `vcycle` and of the property suite.

use np_netlist::{areas::ModuleAreas, FixedModules, Hypergraph, HypergraphBuilder, ModuleId};

/// Sentinel in [`Level::net_map`] for nets dropped by the contraction.
pub const DROPPED_NET: u32 = u32::MAX;

const UNMATCHED: u32 = u32::MAX;

/// Tuning knobs for one contraction step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoarsenConfig {
    /// Merges producing a cluster heavier than this are refused
    /// (`f64::INFINITY` disables the cap). Singleton modules heavier than
    /// the cap simply stay unmerged; the cap never splits anything.
    pub max_cluster_area: f64,
    /// Nets with more pins than this contribute no matching weight (they
    /// are still contracted). Keeps the weight accumulation linear in the
    /// pin count even in the presence of power/ground-style mega-nets.
    pub max_matching_net_size: usize,
    /// When `true`, a module whose eligible neighbors are all clustered
    /// already may still be *absorbed* into the neighbor cluster it is
    /// most connected to (subject to the same pin and area constraints)
    /// instead of staying a singleton. Strict pair matching (`false`)
    /// reproduces `np_core::cluster::coarsen` exactly but degrades
    /// geometrically on instances whose matching strands many leaves
    /// next to matched hubs; absorption keeps the per-level shrink
    /// factor near 2. Bound `max_cluster_area` when enabling this, or
    /// star-shaped netlists collapse into one mega-cluster.
    pub absorb_unmatched: bool,
}

impl Default for CoarsenConfig {
    fn default() -> Self {
        CoarsenConfig {
            max_cluster_area: f64::INFINITY,
            max_matching_net_size: 64,
            absorb_unmatched: false,
        }
    }
}

/// One contraction step: the coarse hypergraph plus everything needed to
/// project partitions down (`map`) and to keep refining on the coarse
/// side (accumulated `areas`, carried `fixed` pins).
#[derive(Clone, Debug)]
pub struct Level {
    /// The contracted hypergraph (one vertex per cluster).
    pub coarse: Hypergraph,
    /// `map[fine_module]` = coarse module index.
    pub map: Vec<u32>,
    /// `net_map[fine_net]` = coarse net index, or [`DROPPED_NET`] for
    /// nets internal to a single cluster.
    pub net_map: Vec<u32>,
    /// Accumulated coarse module areas (sum of the member areas).
    pub areas: ModuleAreas,
    /// Fixed-block pins projected onto the clusters. Contraction never
    /// merges conflicting pins, so each cluster inherits at most one
    /// block.
    pub fixed: FixedModules,
    /// Number of fine nets dropped as cluster-internal.
    pub dropped_nets: usize,
    /// Number of merges performed (`fine modules − clusters`; the level
    /// shrinks by this much). Under strict matching this equals the
    /// number of matched pairs; with absorption a cluster may account
    /// for several merges.
    pub merges: usize,
}

/// Contracts `hg` by one level of connectivity-weighted matching (plus
/// cluster absorption when [`CoarsenConfig::absorb_unmatched`] is set).
/// Deterministic: modules are visited in index order, ties break toward
/// the smaller neighbor/cluster index, and cluster ids are assigned in
/// founding order — on unconstrained instances (uniform areas, no pins,
/// no caps binding, absorption off) the clustering coincides with the
/// heavy-edge rule of `np_core::cluster::coarsen`.
///
/// # Panics
///
/// Panics if `hg` is empty or if `areas`/`fixed` lengths disagree with
/// the module count — the V-cycle driver constructs them consistently.
pub fn coarsen_level(
    hg: &Hypergraph,
    areas: &ModuleAreas,
    fixed: &FixedModules,
    cfg: &CoarsenConfig,
) -> Level {
    let n = hg.num_modules();
    assert!(n > 0, "cannot coarsen an empty hypergraph");
    assert_eq!(areas.len(), n, "areas length must match module count");
    assert_eq!(fixed.len(), n, "fixed length must match module count");

    // Eager clustering: visit modules in index order; each unclustered
    // module either founds a cluster (alone or with its best unmatched
    // neighbor) or — in absorb mode — joins the neighbor cluster it is
    // most connected to. Cluster ids are founded in index order, which
    // under strict matching reproduces the two-phase id assignment of
    // `np_core::cluster::coarsen` (an eligible pair is always formed at
    // its smaller endpoint's visit, so partners always lie ahead).
    let mut map = vec![UNMATCHED; n];
    let mut cluster_area: Vec<f64> = Vec::new();
    let mut cluster_pin: Vec<Option<usize>> = Vec::new();
    let mut weight = vec![0.0f64; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut cweight = vec![0.0f64; n];
    let mut ctouched: Vec<u32> = Vec::new();
    // running collector for modules with no (weight-eligible) nets: no
    // partition's cut depends on where they go, so in absorb mode they
    // pack together up to the area cap instead of stalling the shrink
    let mut iso_cluster: Option<u32> = None;
    for v in 0..n {
        if map[v] != UNMATCHED {
            continue;
        }
        let mv = ModuleId(v as u32);
        let area_v = areas.area(mv);
        let pin_v = fixed.block_of(mv);
        for &net in hg.nets_of(mv) {
            let pins = hg.pins(net);
            if pins.len() < 2 || pins.len() > cfg.max_matching_net_size {
                continue;
            }
            let w = 1.0 / (pins.len() - 1) as f64;
            for &u in pins {
                let ui = u.index();
                if ui == v {
                    continue;
                }
                if weight[ui] == 0.0 {
                    touched.push(u.0);
                }
                weight[ui] += w;
            }
        }
        if cfg.absorb_unmatched && touched.is_empty() {
            if let Some(c) = iso_cluster {
                let ci = c as usize;
                let pin_ok = !matches!((pin_v, cluster_pin[ci]), (Some(a), Some(b)) if a != b);
                if pin_ok && cluster_area[ci] + area_v <= cfg.max_cluster_area {
                    map[v] = c;
                    cluster_area[ci] += area_v;
                    if cluster_pin[ci].is_none() {
                        cluster_pin[ci] = pin_v;
                    }
                    continue;
                }
            }
            let id = cluster_area.len() as u32;
            map[v] = id;
            cluster_area.push(area_v);
            cluster_pin.push(pin_v);
            iso_cluster = Some(id);
            continue;
        }
        // best unmatched partner; in absorb mode, also fold clustered
        // neighbors' weights into per-cluster totals
        let mut best: Option<(u32, f64)> = None;
        for &u in &touched {
            let ui = u as usize;
            let w = weight[ui];
            if map[ui] != UNMATCHED {
                if cfg.absorb_unmatched {
                    let c = map[ui];
                    if cweight[c as usize] == 0.0 {
                        ctouched.push(c);
                    }
                    cweight[c as usize] += w;
                }
                continue;
            }
            // pinned-to-different-blocks pairs must stay separable
            if let (Some(a), Some(b)) = (pin_v, fixed.block_of(ModuleId(u))) {
                if a != b {
                    continue;
                }
            }
            if area_v + areas.area(ModuleId(u)) > cfg.max_cluster_area {
                continue;
            }
            let better = match best {
                None => true,
                Some((bu, bw)) => w > bw || (w == bw && u < bu),
            };
            if better {
                best = Some((u, w));
            }
        }
        // best cluster to join, by total member connectivity; ties break
        // toward the older cluster (smaller id = smaller founder index)
        let mut join: Option<(u32, f64)> = None;
        for &c in &ctouched {
            let ci = c as usize;
            let w = cweight[ci];
            if let (Some(a), Some(b)) = (pin_v, cluster_pin[ci]) {
                if a != b {
                    continue;
                }
            }
            if cluster_area[ci] + area_v > cfg.max_cluster_area {
                continue;
            }
            let better = match join {
                None => true,
                Some((bc, bw)) => w > bw || (w == bw && c < bc),
            };
            if better {
                join = Some((c, w));
            }
        }
        for &u in &touched {
            weight[u as usize] = 0.0;
        }
        touched.clear();
        for &c in &ctouched {
            cweight[c as usize] = 0.0;
        }
        ctouched.clear();
        // a fresh pair wins weight ties over absorption: it keeps
        // clusters small, and it is the strict rule whenever both apply
        match (best, join) {
            (Some((u, bw)), j) if j.is_none_or(|(_, jw)| bw >= jw) => {
                let id = cluster_area.len() as u32;
                map[v] = id;
                map[u as usize] = id;
                cluster_area.push(area_v + areas.area(ModuleId(u)));
                cluster_pin.push(pin_v.or(fixed.block_of(ModuleId(u))));
            }
            (_, Some((c, _))) => {
                map[v] = c;
                cluster_area[c as usize] += area_v;
                if cluster_pin[c as usize].is_none() {
                    cluster_pin[c as usize] = pin_v;
                }
            }
            // `(Some, None)` always passes the first arm's guard, so
            // this arm only ever founds true singletons
            (_, None) => {
                let id = cluster_area.len() as u32;
                map[v] = id;
                cluster_area.push(area_v);
                cluster_pin.push(pin_v);
            }
        }
    }
    let num_clusters = cluster_area.len();
    let merges = n - num_clusters;

    // project pins onto the clusters (cluster_pin already enforced
    // compatibility during the merge decisions; this rebuilds the
    // projection from the source of truth and cross-checks it)
    let mut coarse_fixed = FixedModules::free(num_clusters);
    for (m, block) in fixed.pins() {
        let c = ModuleId(map[m.index()]);
        debug_assert!(
            coarse_fixed.block_of(c).is_none_or(|b| b == block),
            "matching merged modules pinned to different blocks"
        );
        coarse_fixed.pin(c, block);
    }

    // contract nets; keep duplicates, drop cluster-internal nets
    let mut builder = HypergraphBuilder::new(num_clusters);
    let mut net_map = vec![DROPPED_NET; hg.num_nets()];
    let mut kept = 0u32;
    let mut dropped_nets = 0usize;
    for net in hg.nets() {
        let pins: Vec<ModuleId> = hg
            .pins(net)
            .iter()
            .map(|m| ModuleId(map[m.index()]))
            .collect();
        let first = pins[0];
        if pins[1..].iter().any(|&p| p != first) {
            builder.add_net(pins).expect("contracted net valid");
            net_map[net.index()] = kept;
            kept += 1;
        } else {
            dropped_nets += 1;
        }
    }

    Level {
        coarse: builder.finish().expect("contracted hypergraph valid"),
        map,
        net_map,
        areas: ModuleAreas::new(cluster_area),
        fixed: coarse_fixed,
        dropped_nets,
        merges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::hypergraph_from_nets;

    fn free_uniform(hg: &Hypergraph) -> (ModuleAreas, FixedModules) {
        (
            ModuleAreas::uniform(hg.num_modules()),
            FixedModules::free(hg.num_modules()),
        )
    }

    #[test]
    fn chain_halves_and_preserves_area() {
        let hg = hypergraph_from_nets(
            6,
            &[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 5]],
        );
        let (areas, fixed) = free_uniform(&hg);
        let level = coarsen_level(&hg, &areas, &fixed, &CoarsenConfig::default());
        assert_eq!(level.coarse.num_modules(), 3);
        assert_eq!(level.merges, 3);
        assert!((level.areas.total() - areas.total()).abs() < 1e-12);
        assert!(level
            .areas
            .as_slice()
            .iter()
            .all(|&a| (a - 2.0).abs() < 1e-12));
    }

    #[test]
    fn agrees_with_core_cluster_on_unconstrained_instances() {
        // same heavy-edge rule, so the cluster maps must coincide when no
        // area cap, pin or net-size constraint binds
        for (n, nets) in [
            (
                6usize,
                vec![
                    vec![0u32, 1],
                    vec![1, 2],
                    vec![2, 3],
                    vec![3, 4],
                    vec![4, 5],
                ],
            ),
            (
                8,
                vec![
                    vec![0, 1, 2],
                    vec![2, 3],
                    vec![3, 4, 5],
                    vec![5, 6],
                    vec![6, 7],
                    vec![0, 7],
                ],
            ),
        ] {
            let hg = hypergraph_from_nets(n, &nets);
            let (areas, fixed) = free_uniform(&hg);
            let cfg = CoarsenConfig {
                max_cluster_area: f64::INFINITY,
                max_matching_net_size: usize::MAX,
                absorb_unmatched: false,
            };
            let level = coarsen_level(&hg, &areas, &fixed, &cfg);
            let seed = np_core::cluster::coarsen(&hg);
            assert_eq!(level.map, seed.cluster_of);
        }
    }

    #[test]
    fn duplicates_survive_and_internal_nets_drop() {
        // 0—1 and 2—3 merge; the parallel {0,1} nets and {2,3} drop as
        // cluster-internal, while BOTH parallel {1,2} nets survive — the
        // coarse cut of any partition separating the two clusters stays 2,
        // exactly the flat cut
        let hg = hypergraph_from_nets(
            4,
            &[vec![0, 1], vec![0, 1], vec![1, 2], vec![1, 2], vec![2, 3]],
        );
        let (areas, fixed) = free_uniform(&hg);
        let level = coarsen_level(&hg, &areas, &fixed, &CoarsenConfig::default());
        assert_eq!(level.map, vec![0, 0, 1, 1]);
        assert_eq!(level.dropped_nets, 3);
        assert_eq!(level.net_map[0], DROPPED_NET);
        assert_eq!(level.net_map[1], DROPPED_NET);
        assert_eq!(level.net_map[4], DROPPED_NET);
        assert_eq!(level.coarse.num_nets(), 2, "parallel coarse nets retained");
    }

    #[test]
    fn conflicting_pins_never_merge() {
        // 0 and 1 are each other's only neighbors but pinned apart
        let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![0, 1], vec![2, 3]]);
        let areas = ModuleAreas::uniform(4);
        let mut fixed = FixedModules::free(4);
        fixed.pin(ModuleId(0), 0);
        fixed.pin(ModuleId(1), 1);
        let level = coarsen_level(&hg, &areas, &fixed, &CoarsenConfig::default());
        assert_ne!(level.map[0], level.map[1]);
        assert_eq!(level.fixed.block_of(ModuleId(level.map[0])), Some(0));
        assert_eq!(level.fixed.block_of(ModuleId(level.map[1])), Some(1));
    }

    #[test]
    fn area_cap_blocks_heavy_merges() {
        let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![2, 3]]);
        let areas = ModuleAreas::new(vec![3.0, 3.0, 1.0, 1.0]);
        let fixed = FixedModules::free(4);
        let cfg = CoarsenConfig {
            max_cluster_area: 4.0,
            ..Default::default()
        };
        let level = coarsen_level(&hg, &areas, &fixed, &cfg);
        assert_ne!(level.map[0], level.map[1], "3+3 exceeds the cap");
        assert_eq!(level.map[2], level.map[3], "1+1 fits");
    }

    #[test]
    fn absorption_rescues_stranded_leaves() {
        // star: strict matching pairs {0,1} and strands 2, 3, 4 (their
        // only neighbor is matched); absorption folds them into the hub
        // cluster until the area cap refuses
        let hg = hypergraph_from_nets(5, &[vec![0, 1], vec![0, 2], vec![0, 3], vec![0, 4]]);
        let (areas, fixed) = free_uniform(&hg);
        let strict = coarsen_level(&hg, &areas, &fixed, &CoarsenConfig::default());
        assert_eq!(strict.coarse.num_modules(), 4);
        assert_eq!(strict.merges, 1);
        let absorb = coarsen_level(
            &hg,
            &areas,
            &fixed,
            &CoarsenConfig {
                absorb_unmatched: true,
                ..Default::default()
            },
        );
        assert_eq!(absorb.coarse.num_modules(), 1, "uncapped star collapses");
        assert_eq!(absorb.merges, 4);
        let capped = coarsen_level(
            &hg,
            &areas,
            &fixed,
            &CoarsenConfig {
                absorb_unmatched: true,
                max_cluster_area: 3.0,
                ..Default::default()
            },
        );
        // {0,1} absorbs 2, then the cap refuses 3 and 4 (no other nets
        // connect them)
        assert_eq!(capped.coarse.num_modules(), 3);
        assert_eq!(capped.map[2], capped.map[0]);
        assert_ne!(capped.map[3], capped.map[0]);
    }

    #[test]
    fn isolated_modules_pack_under_absorption() {
        // modules 2..6 touch no net: strict coarsening can never merge
        // them, absorption packs them up to the area cap
        let hg = hypergraph_from_nets(6, &[vec![0, 1]]);
        let (areas, fixed) = free_uniform(&hg);
        let strict = coarsen_level(&hg, &areas, &fixed, &CoarsenConfig::default());
        assert_eq!(strict.coarse.num_modules(), 5);
        let absorb = coarsen_level(
            &hg,
            &areas,
            &fixed,
            &CoarsenConfig {
                absorb_unmatched: true,
                max_cluster_area: 3.0,
                ..Default::default()
            },
        );
        // {0,1} pair; {2,3,4} fill one collector; {5} starts the next
        assert_eq!(absorb.coarse.num_modules(), 3);
        assert_eq!(absorb.map[2], absorb.map[3]);
        assert_eq!(absorb.map[2], absorb.map[4]);
        assert_ne!(absorb.map[5], absorb.map[4]);
        assert!((absorb.areas.total() - areas.total()).abs() < 1e-12);
    }

    #[test]
    fn absorption_respects_pins() {
        // 1 and 2 hang off the pinned hub 0; module 2 is pinned to a
        // different block, so it must stay out of the hub's cluster
        let hg = hypergraph_from_nets(3, &[vec![0, 1], vec![0, 2]]);
        let areas = ModuleAreas::uniform(3);
        let mut fixed = FixedModules::free(3);
        fixed.pin(ModuleId(0), 0);
        fixed.pin(ModuleId(2), 1);
        let level = coarsen_level(
            &hg,
            &areas,
            &fixed,
            &CoarsenConfig {
                absorb_unmatched: true,
                ..Default::default()
            },
        );
        assert_eq!(level.map[0], level.map[1]);
        assert_ne!(level.map[2], level.map[0]);
        assert_eq!(level.fixed.block_of(ModuleId(level.map[0])), Some(0));
        assert_eq!(level.fixed.block_of(ModuleId(level.map[2])), Some(1));
    }

    #[test]
    fn oversized_nets_carry_no_weight_but_still_contract() {
        // the 5-pin net is over the matching cutoff, so only {3,4} pairs;
        // the big net must still appear (contracted) in the coarse graph
        let hg = hypergraph_from_nets(5, &[vec![0, 1, 2, 3, 4], vec![3, 4]]);
        let (areas, fixed) = free_uniform(&hg);
        let cfg = CoarsenConfig {
            max_matching_net_size: 4,
            ..Default::default()
        };
        let level = coarsen_level(&hg, &areas, &fixed, &cfg);
        assert_eq!(level.merges, 1);
        assert_eq!(level.map[3], level.map[4]);
        assert_eq!(
            level.coarse.num_nets(),
            1,
            "{{3,4}} collapses, big net stays"
        );
    }
}
