//! The V-cycle driver: build a coarsening hierarchy, partition the
//! coarsest level with the existing flat machinery, then walk back up —
//! projecting labels one level at a time and refining at each level
//! under the shared cooperative budget.
//!
//! # Level invariants
//!
//! Contraction retains duplicate nets and drops only cluster-internal
//! ones (see [`crate::coarsen`]), so projecting a partition one level
//! down *never changes its cut* — the projection step is exact, and the
//! drivers `debug_assert` this at every level. Refinement can therefore
//! only improve on the coarse solution:
//!
//! * **bipartition route** — the ratio-cut denominator counts vertices,
//!   which differ between levels, so a level-local ratio win is not
//!   automatically a flat win. Each level's refinement is accepted only
//!   if its *flat projection* has a ratio no worse than the best seen, so
//!   the final result is ≥ as good (in flat ratio) as the pure
//!   projection of the coarse partition;
//! * **k-way route** — the objective is the net cut, which *is*
//!   level-invariant, and `kway_refine` only makes strictly improving
//!   feasible moves, so the final cut is ≤ the coarse cut directly.
//!
//! # Budget policy
//!
//! Every phase charges the one [`BudgetMeter`] in the [`RunContext`]:
//! coarsening one unit per level, the coarsest partition through the
//! ordinary stage metering, and refinement one unit per pass per level.
//! If the meter trips *before* a partition exists (coarsening, initial
//! partition) the error propagates. If it trips *during uncoarsening*
//! the driver degrades gracefully: remaining levels are pure projections
//! — exact, just unrefined — and the best-so-far partition is returned
//! as a success with [`MultilevelOutcome::budget_degraded`] set.

use crate::coarsen::{coarsen_level, CoarsenConfig, Level};
use np_baselines::rcut::refine_ratio_cut_metered;
use np_core::engine::stages::{FmStage, IgMatchStage, RatioRefineStage};
use np_core::engine::{FallbackChain, Pipeline, RunContext, StageEvent};
use np_core::kway::refine::{area_cap, enforce_balance, kway_refine};
use np_core::{
    kway_partition_ctx, IgMatchOptions, KwayMethod, KwayOptions, KwayResult, PartitionError,
    PartitionResult, Partitioner,
};
use np_netlist::{
    areas::ModuleAreas, balance_bound, Bipartition, FixedModules, Hypergraph, KwayCutTracker,
    KwayPartition, ModuleId, Side,
};
use np_sparse::BudgetMeter;

/// Options for the multilevel V-cycle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MultilevelOptions {
    /// Coarsening stops once a level has at most this many modules (the
    /// driver clamps it to at least 4, and to at least `8·k` on the
    /// k-way route so the coarsest level stays balanceable).
    pub coarsen_target: usize,
    /// Hard cap on the number of coarsening levels.
    pub max_levels: usize,
    /// Stall guard: a level must shrink the module count below
    /// `min_shrink` times the previous count or coarsening stops (a
    /// matching that finds almost no pairs will never reach the target).
    pub min_shrink: f64,
    /// Nets with more pins than this are excluded from matching weights
    /// (they are still contracted); see [`CoarsenConfig`].
    pub max_matching_net_size: usize,
    /// Refinement passes per uncoarsening level.
    pub refine_passes: usize,
    /// Refinement passes of the *flat* hybrid pipeline used for the
    /// coarsest-level initial partition (and for the whole instance when
    /// no coarsening is needed). Matches the workspace default of 20 so
    /// the zero-level V-cycle is bit-identical to the flat pipeline.
    pub flat_refine_passes: usize,
    /// Options for the IG-Match run on the coarsest level. The Lanczos
    /// seed in here stays authoritative, exactly as for the flat stages.
    pub ig_match: IgMatchOptions,
}

impl Default for MultilevelOptions {
    fn default() -> Self {
        MultilevelOptions {
            coarsen_target: 3000,
            max_levels: 24,
            min_shrink: 0.95,
            max_matching_net_size: 64,
            refine_passes: 4,
            flat_refine_passes: 20,
            ig_match: IgMatchOptions::default(),
        }
    }
}

/// A coarsening hierarchy. `levels[0]` contracts the input hypergraph;
/// `levels[i]` contracts `levels[i-1].coarse`.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// The contraction steps, finest first.
    pub levels: Vec<Level>,
    /// `flat_maps[i][flat_module]` = module index at level `i` — the
    /// composed projection map, maintained so any level's partition can
    /// be evaluated on the flat hypergraph in O(n).
    pub flat_maps: Vec<Vec<u32>>,
}

impl Hierarchy {
    /// Number of coarsening levels (0 = the input was never contracted).
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// `true` when no contraction step was taken.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }
}

/// Builds the coarsening hierarchy for `hg`, carrying `areas` and
/// `fixed` pins through every contraction. Charges `meter` one unit per
/// level. Stops at `opts.coarsen_target` modules, at `opts.max_levels`
/// levels, or when a level shrinks by less than `opts.min_shrink`.
///
/// # Errors
///
/// [`PartitionError::Budget`] when the meter trips mid-coarsening.
pub fn build_hierarchy(
    hg: &Hypergraph,
    areas: &ModuleAreas,
    fixed: &FixedModules,
    opts: &MultilevelOptions,
    max_cluster_area: f64,
    meter: &BudgetMeter,
) -> Result<Hierarchy, PartitionError> {
    let target = opts.coarsen_target.max(4);
    // Absorption keeps the shrink factor near 2 where strict matching
    // strands leaves next to matched hubs, but needs an area cap or
    // star netlists collapse into one mega-cluster: 4x the average
    // cluster area *at the target size* leaves at least target/4
    // clusters while barely constraining the earlier (finer) levels.
    let absorb_cap = 4.0 * areas.total() / target as f64;
    let cfg = CoarsenConfig {
        max_cluster_area: max_cluster_area.min(absorb_cap),
        max_matching_net_size: opts.max_matching_net_size.max(2),
        absorb_unmatched: true,
    };
    let mut levels: Vec<Level> = Vec::new();
    let mut flat_maps: Vec<Vec<u32>> = Vec::new();
    let mut cur_areas = areas.clone();
    let mut cur_fixed = fixed.clone();
    loop {
        let cur_hg: &Hypergraph = levels.last().map_or(hg, |l| &l.coarse);
        let n = cur_hg.num_modules();
        if n <= target || levels.len() >= opts.max_levels {
            break;
        }
        meter.charge(1)?;
        let level = coarsen_level(cur_hg, &cur_areas, &cur_fixed, &cfg);
        let coarse_n = level.coarse.num_modules();
        if coarse_n < 2 || (coarse_n as f64) > opts.min_shrink * n as f64 {
            break; // stalled (or would become unpartitionable): keep what we have
        }
        cur_areas = level.areas.clone();
        cur_fixed = level.fixed.clone();
        let composed = match flat_maps.last() {
            None => level.map.clone(),
            Some(prev) => prev.iter().map(|&c| level.map[c as usize]).collect(),
        };
        flat_maps.push(composed);
        levels.push(level);
    }
    Ok(Hierarchy { levels, flat_maps })
}

/// Outcome of a bipartition V-cycle.
#[derive(Clone, Debug)]
pub struct MultilevelOutcome {
    /// The final flat partition, evaluated on the input hypergraph.
    pub result: PartitionResult,
    /// Number of coarsening levels (0 = flat pipeline, no V-cycle).
    pub levels: usize,
    /// Module count of the coarsest level actually partitioned.
    pub coarsest_modules: usize,
    /// Net cut of the initial (coarsest-level) partition. By the
    /// projection identity this is also the flat cut of the unrefined
    /// projection.
    pub coarse_cut: usize,
    /// Flat ratio of the *pure* projection of the coarsest partition —
    /// the quality floor: `result.ratio() <= projected_ratio` always.
    pub projected_ratio: f64,
    /// Levels whose refinement was run and accepted.
    pub refined_levels: usize,
    /// `true` when the budget tripped during uncoarsening and the
    /// remaining levels fell back to pure projection.
    pub budget_degraded: bool,
}

/// [`multilevel_ctx`] with an unlimited context.
///
/// # Errors
///
/// See [`multilevel_ctx`].
pub fn multilevel(
    hg: &Hypergraph,
    opts: &MultilevelOptions,
) -> Result<MultilevelOutcome, PartitionError> {
    multilevel_ctx(hg, opts, &RunContext::unlimited())
}

/// Runs the full bipartition V-cycle: coarsen to
/// `opts.coarsen_target`, partition the coarsest level with the hybrid
/// IG-Match pipeline (FM as fallback), then project + refine back up.
/// When the instance already fits the target the flat hybrid pipeline
/// runs directly and the outcome reports zero levels — the V-cycle with
/// `coarsen_target >= n` is bit-identical to the flat pipeline, which is
/// the debug-mode oracle contract.
///
/// # Errors
///
/// * [`PartitionError::TooSmall`] for fewer than 2 modules;
/// * any error of the coarsest-level pipeline (both the hybrid pipeline
///   and the FM fallback failed);
/// * [`PartitionError::Budget`] when the meter trips before a partition
///   exists. A meter tripping *after* the initial partition degrades to
///   projection instead of failing.
pub fn multilevel_ctx(
    hg: &Hypergraph,
    opts: &MultilevelOptions,
    ctx: &RunContext<'_>,
) -> Result<MultilevelOutcome, PartitionError> {
    let n = hg.num_modules();
    if n < 2 {
        return Err(PartitionError::TooSmall {
            modules: n,
            nets: hg.num_nets(),
        });
    }
    let areas = ModuleAreas::uniform(n);
    let fixed = FixedModules::free(n);
    let hierarchy = build_hierarchy(hg, &areas, &fixed, opts, f64::INFINITY, ctx.meter())?;

    if hierarchy.is_empty() {
        let result = initial_partition(hg, opts, ctx)?;
        let projected_ratio = result.ratio();
        let coarse_cut = result.stats.cut_nets;
        return Ok(MultilevelOutcome {
            result,
            levels: 0,
            coarsest_modules: n,
            coarse_cut,
            projected_ratio,
            refined_levels: 0,
            budget_degraded: false,
        });
    }

    let last = hierarchy.levels.len() - 1;
    let coarsest_modules = hierarchy.levels[last].coarse.num_modules();
    let coarse = initial_partition(&hierarchy.levels[last].coarse, opts, ctx)?;
    let coarse_cut = coarse.stats.cut_nets;

    // quality floor: the pure projection of the coarsest partition
    let mut labels: Vec<Side> = coarse.partition.sides().to_vec();
    let flat_map = &hierarchy.flat_maps[last];
    let baseline = Bipartition::from_sides((0..n).map(|v| labels[flat_map[v] as usize]).collect());
    let projected_ratio = baseline.cut_stats(hg).ratio();
    let mut best_ratio = projected_ratio;

    let mut refined_levels = 0usize;
    let mut budget_degraded = false;
    let mut current_cut = coarse_cut;
    for idx in (0..hierarchy.levels.len()).rev() {
        let fine_hg = if idx == 0 {
            hg
        } else {
            &hierarchy.levels[idx - 1].coarse
        };
        let map = &hierarchy.levels[idx].map;
        let projected = Bipartition::from_sides(
            (0..fine_hg.num_modules())
                .map(|v| labels[map[v] as usize])
                .collect(),
        );
        debug_assert_eq!(
            projected.cut_stats(fine_hg).cut_nets,
            current_cut,
            "projection must preserve the cut exactly"
        );
        let mut accepted = projected;
        if !budget_degraded {
            match refine_ratio_cut_metered(fine_hg, &accepted, opts.refine_passes, ctx.meter()) {
                Ok((refined, stats)) => {
                    // the level-local ratio counts clusters, not flat
                    // modules — accept only on a flat-projection win
                    let flat_ratio = if idx == 0 {
                        stats.ratio()
                    } else {
                        let fmap = &hierarchy.flat_maps[idx - 1];
                        Bipartition::from_sides(
                            (0..n).map(|v| refined.side(ModuleId(fmap[v]))).collect(),
                        )
                        .cut_stats(hg)
                        .ratio()
                    };
                    if flat_ratio <= best_ratio {
                        best_ratio = flat_ratio;
                        current_cut = stats.cut_nets;
                        accepted = refined;
                        refined_levels += 1;
                    }
                }
                Err(_) => budget_degraded = true,
            }
        }
        labels = accepted.sides().to_vec();
    }

    let result = PartitionResult::evaluate(hg, Bipartition::from_sides(labels), "multilevel", None);
    debug_assert!(
        result.ratio() <= projected_ratio + 1e-9,
        "refined flat ratio must never exceed the pure-projection ratio"
    );
    Ok(MultilevelOutcome {
        result,
        levels: hierarchy.levels.len(),
        coarsest_modules,
        coarse_cut,
        projected_ratio,
        refined_levels,
        budget_degraded,
    })
}

/// The coarsest-level (and flat-path) partitioner: the workspace's hybrid
/// IG-Match pipeline with a purely combinatorial FM fallback for levels
/// too small or too degenerate for the spectral route. Only a spent
/// budget aborts the chain.
fn initial_partition(
    hg: &Hypergraph,
    opts: &MultilevelOptions,
    ctx: &RunContext<'_>,
) -> Result<PartitionResult, PartitionError> {
    let chain = FallbackChain::new()
        .with_fatal(|e| matches!(e, PartitionError::Budget(_)))
        .link(
            "hybrid",
            Pipeline::named("IG-Match+FM")
                .then(IgMatchStage::new(opts.ig_match))
                .then(RatioRefineStage::new(
                    opts.flat_refine_passes,
                    "IG-Match+FM",
                )),
        )
        .link("fm", FmStage::default());
    chain
        .run(hg, ctx)
        .map(|out| out.result)
        .map_err(|f| f.error)
}

/// Outcome of a k-way V-cycle.
#[derive(Clone, Debug)]
pub struct MultilevelKwayOutcome {
    /// The final flat k-way partition (all blocks non-empty, within the
    /// balance bound, pins respected).
    pub result: KwayResult,
    /// Number of coarsening levels (0 = flat k-way, no V-cycle).
    pub levels: usize,
    /// Module count of the coarsest level actually partitioned.
    pub coarsest_modules: usize,
    /// Net cut of the initial (coarsest-level) partition; the final cut
    /// never exceeds it (the k-way objective is level-invariant).
    pub coarse_cut: usize,
    /// Levels whose refinement ran to completion.
    pub refined_levels: usize,
    /// `true` when the budget tripped during uncoarsening.
    pub budget_degraded: bool,
}

/// Runs the k-way V-cycle: coarsen with areas and pins carried (merges
/// are capped at a third of the balance bound so the coarsest level
/// stays feasible), partition the coarsest level with the recursive
/// k-way route, then project + `kway_refine` back up.
///
/// # Errors
///
/// * [`PartitionError::InvalidInput`] for `k < 2`, mismatched
///   `areas`/`fixed` lengths or pins outside `0..k`;
/// * [`PartitionError::TooSmall`] for fewer than `k` modules;
/// * any error of the coarsest-level k-way route;
/// * [`PartitionError::Budget`] when the meter trips before a partition
///   exists (later trips degrade to projection).
pub fn multilevel_kway_ctx(
    hg: &Hypergraph,
    kopts: &KwayOptions,
    mopts: &MultilevelOptions,
    ctx: &RunContext<'_>,
) -> Result<MultilevelKwayOutcome, PartitionError> {
    let n = hg.num_modules();
    let k = kopts.k;
    if k < 2 {
        return Err(PartitionError::InvalidInput {
            reason: "multilevel k-way needs k >= 2",
        });
    }
    if n < k {
        return Err(PartitionError::TooSmall {
            modules: n,
            nets: hg.num_nets(),
        });
    }
    let areas = kopts
        .areas
        .clone()
        .unwrap_or_else(|| ModuleAreas::uniform(n));
    if areas.len() != n {
        return Err(PartitionError::InvalidInput {
            reason: "areas length must match the module count",
        });
    }
    let fixed = kopts.fixed.clone().unwrap_or_else(|| FixedModules::free(n));
    if fixed.len() != n {
        return Err(PartitionError::InvalidInput {
            reason: "fixed length must match the module count",
        });
    }
    if !fixed.fits_k(k) {
        return Err(PartitionError::InvalidInput {
            reason: "a fixed pin names a block outside 0..k",
        });
    }
    let bound = balance_bound(areas.total(), k, kopts.epsilon);

    let mut opts = *mopts;
    opts.coarsen_target = mopts.coarsen_target.max(8 * k);
    let hierarchy = build_hierarchy(hg, &areas, &fixed, &opts, bound / 3.0, ctx.meter())?;

    let (coarsest_hg, coarse_areas, coarse_fixed) = match hierarchy.levels.last() {
        Some(l) => (&l.coarse, l.areas.clone(), l.fixed.clone()),
        None => (hg, areas.clone(), fixed.clone()),
    };
    let coarsest_modules = coarsest_hg.num_modules();
    let coarse_opts = KwayOptions {
        k,
        epsilon: kopts.epsilon,
        areas: Some(coarse_areas),
        fixed: Some(coarse_fixed),
        ig_match: mopts.ig_match,
        max_refine_passes: kopts.max_refine_passes,
        seed: kopts.seed,
    };
    let coarse = kway_partition_ctx(coarsest_hg, &coarse_opts, KwayMethod::Recursive, ctx)?;
    let coarse_cut = coarse.stats.cut_nets;
    if hierarchy.is_empty() {
        return Ok(MultilevelKwayOutcome {
            result: coarse,
            levels: 0,
            coarsest_modules,
            coarse_cut,
            refined_levels: 0,
            budget_degraded: false,
        });
    }

    let cap = area_cap(bound);
    let mut labels: Vec<u32> = coarse.partition.labels().to_vec();
    let mut refined_levels = 0usize;
    let mut budget_degraded = false;
    let mut current_cut = coarse_cut;
    for idx in (0..hierarchy.levels.len()).rev() {
        let fine_hg = if idx == 0 {
            hg
        } else {
            &hierarchy.levels[idx - 1].coarse
        };
        let fine_areas = if idx == 0 {
            &areas
        } else {
            &hierarchy.levels[idx - 1].areas
        };
        let fine_fixed = if idx == 0 {
            &fixed
        } else {
            &hierarchy.levels[idx - 1].fixed
        };
        let map = &hierarchy.levels[idx].map;
        let fine_n = fine_hg.num_modules();
        let projected: Vec<u32> = (0..fine_n).map(|v| labels[map[v] as usize]).collect();
        if budget_degraded {
            labels = projected;
            continue;
        }
        let p = KwayPartition::with_num_blocks(projected.clone(), k);
        let mut tracker = KwayCutTracker::new(fine_hg, &p);
        tracker.set_areas(fine_areas);
        debug_assert_eq!(
            tracker.cut_nets(),
            current_cut,
            "projection must preserve the k-way cut exactly"
        );
        let free: Vec<bool> = (0..fine_n)
            .map(|v| !fine_fixed.is_pinned(ModuleId(v as u32)))
            .collect();
        let step = (|| -> Result<(), PartitionError> {
            // projection preserves block areas and counts exactly, so
            // repair only fires on a genuinely infeasible hand-off
            let needs_repair = tracker.block_counts().contains(&0)
                || tracker.block_areas().iter().any(|&a| a > cap);
            if needs_repair {
                enforce_balance(&mut tracker, &free, bound, ctx.meter())?;
            }
            kway_refine(&mut tracker, &free, bound, mopts.refine_passes, ctx.meter())?;
            Ok(())
        })();
        match step {
            Ok(()) => {
                refined_levels += 1;
                current_cut = tracker.cut_nets();
                labels = tracker.to_partition().labels().to_vec();
            }
            Err(PartitionError::Budget(_)) => {
                budget_degraded = true;
                // keep the tracker's partial moves only if still feasible
                let feasible = tracker.block_counts().iter().all(|&c| c > 0)
                    && tracker.block_areas().iter().all(|&a| a <= cap);
                if feasible {
                    current_cut = tracker.cut_nets();
                    labels = tracker.to_partition().labels().to_vec();
                } else {
                    labels = projected;
                }
            }
            Err(e) => return Err(e),
        }
    }

    let partition = KwayPartition::with_num_blocks(labels, k);
    let result = KwayResult::evaluate(hg, partition, "multilevel-kway");
    debug_assert!(
        result.stats.cut_nets <= coarse_cut,
        "k-way refinement must never worsen the cut"
    );
    Ok(MultilevelKwayOutcome {
        result,
        levels: hierarchy.levels.len(),
        coarsest_modules,
        coarse_cut,
        refined_levels,
        budget_degraded,
    })
}

/// The V-cycle as an engine stage, composable in `Pipeline`s,
/// `FallbackChain`s and `np-runner` portfolios. Reports the level count
/// and coarsest size through [`StageEvent::Detail`] on instrumented
/// runs. When no coarsening is needed the stage is bit-identical to the
/// flat hybrid IG-Match pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MultilevelStage {
    /// V-cycle options.
    pub opts: MultilevelOptions,
}

impl MultilevelStage {
    /// A stage with the given options.
    pub fn new(opts: MultilevelOptions) -> Self {
        MultilevelStage { opts }
    }
}

impl Partitioner for MultilevelStage {
    fn name(&self) -> &'static str {
        "multilevel"
    }

    fn partition(
        &self,
        hg: &Hypergraph,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        let out = multilevel_ctx(hg, &self.opts, ctx)?;
        if ctx.has_events() {
            let message = format!(
                "V-cycle: {} levels, coarsest {} modules, {} levels refined{}",
                out.levels,
                out.coarsest_modules,
                out.refined_levels,
                if out.budget_degraded {
                    " (budget degraded to projection)"
                } else {
                    ""
                }
            );
            ctx.emit(StageEvent::Detail {
                stage: Partitioner::name(self),
                message: &message,
            });
        }
        Ok(out.result)
    }
}
