//! Multilevel V-cycle partitioning — the scale unlock for
//! million-module hypergraphs.
//!
//! Every flat algorithm in the workspace eventually hits the same wall:
//! Lanczos on the full intersection Laplacian. This crate goes around it
//! with the classic multilevel scheme:
//!
//! 1. **coarsen** ([`coarsen`] module) — connectivity-weighted matching
//!    (the heavy-edge rule of `np_core::cluster`, extended with area
//!    caps and `FixedModules` awareness) contracts the hypergraph level
//!    by level until it fits [`MultilevelOptions::coarsen_target`];
//! 2. **initial partition** — the existing hybrid IG-Match pipeline
//!    (or the recursive k-way route) runs on the coarsest level, where
//!    the eigensolve is cheap;
//! 3. **uncoarsen** ([`vcycle`] module) — labels project up one level at
//!    a time (exactly, thanks to duplicate-net retention) and a
//!    refinement pass cleans up at each level under per-level slices of
//!    the shared [`BudgetMeter`](np_sparse::BudgetMeter).
//!
//! The whole V-cycle is exposed as [`MultilevelStage`], an ordinary
//! engine stage that drops into `Pipeline`s, `FallbackChain`s and
//! `np-runner` portfolios. With `coarsen_target >= n` the stage runs
//! zero levels and is bit-identical to the flat hybrid pipeline — the
//! flat pipeline stays available as the debug-mode oracle.
//!
//! # Example
//!
//! ```
//! use np_multilevel::{multilevel, MultilevelOptions};
//! use np_netlist::generate::{generate, GeneratorConfig};
//!
//! let hg = generate(&GeneratorConfig::new(400, 420, 7));
//! let opts = MultilevelOptions {
//!     coarsen_target: 64,
//!     ..Default::default()
//! };
//! let out = multilevel(&hg, &opts)?;
//! assert!(out.levels > 0);
//! assert!(out.result.ratio() <= out.projected_ratio + 1e-9);
//! # Ok::<(), np_core::PartitionError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod coarsen;
pub mod vcycle;

pub use coarsen::{coarsen_level, CoarsenConfig, Level, DROPPED_NET};
pub use vcycle::{
    build_hierarchy, multilevel, multilevel_ctx, multilevel_kway_ctx, Hierarchy,
    MultilevelKwayOutcome, MultilevelOptions, MultilevelOutcome, MultilevelStage,
};

#[cfg(test)]
mod tests {
    use super::*;
    use np_core::engine::stages::{IgMatchStage, RatioRefineStage};
    use np_core::engine::{Pipeline, RunContext, Stage};
    use np_core::KwayOptions;
    use np_netlist::generate::{generate, GeneratorConfig};
    use np_netlist::{FixedModules, ModuleId};
    use np_sparse::{Budget, BudgetMeter};

    fn small_opts(target: usize) -> MultilevelOptions {
        MultilevelOptions {
            coarsen_target: target,
            ..Default::default()
        }
    }

    #[test]
    fn zero_levels_is_bit_identical_to_flat_pipeline() {
        let hg = generate(&GeneratorConfig::new(150, 160, 5));
        let opts = small_opts(10_000);
        let out = multilevel(&hg, &opts).unwrap();
        assert_eq!(out.levels, 0);
        let flat = Pipeline::named("IG-Match+FM")
            .then(IgMatchStage::new(opts.ig_match))
            .then(RatioRefineStage::new(
                opts.flat_refine_passes,
                "IG-Match+FM",
            ))
            .run(&hg, None, &RunContext::unlimited())
            .unwrap();
        assert_eq!(out.result.partition, flat.partition);
        assert_eq!(out.result.stats, flat.stats);
        assert_eq!(out.result.algorithm, flat.algorithm);
    }

    #[test]
    fn vcycle_never_worse_than_pure_projection() {
        let hg = generate(&GeneratorConfig::new(500, 520, 11).with_satellite(0.1, 3));
        let out = multilevel(&hg, &small_opts(50)).unwrap();
        assert!(out.levels > 0);
        assert!(out.coarsest_modules <= 50 || out.levels == 24);
        assert!(out.result.ratio() <= out.projected_ratio + 1e-9);
        assert_eq!(out.result.stats, out.result.partition.cut_stats(&hg));
    }

    #[test]
    fn deterministic_across_runs() {
        let hg = generate(&GeneratorConfig::new(300, 320, 13));
        let a = multilevel(&hg, &small_opts(40)).unwrap();
        let b = multilevel(&hg, &small_opts(40)).unwrap();
        assert_eq!(a.result.partition, b.result.partition);
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.refined_levels, b.refined_levels);
    }

    #[test]
    fn budget_exhaustion_during_uncoarsening_degrades_gracefully() {
        let hg = generate(&GeneratorConfig::new(400, 420, 17));
        // measure the full deterministic spend, then allow one unit less:
        // the trip lands in the last uncoarsening refinement, after a
        // partition exists
        let meter = BudgetMeter::unlimited();
        let ctx = RunContext::with_meter(&meter);
        let full = multilevel_ctx(&hg, &small_opts(30), &ctx).unwrap();
        assert!(!full.budget_degraded);
        let used = meter.matvecs_used();
        assert!(used > 0);
        let tight = BudgetMeter::new(&Budget::default().with_matvecs(used - 1));
        let ctx = RunContext::with_meter(&tight);
        let out = multilevel_ctx(&hg, &small_opts(30), &ctx).unwrap();
        assert!(out.budget_degraded);
        assert!(out.result.ratio() <= out.projected_ratio + 1e-9);
        assert_eq!(out.result.stats, out.result.partition.cut_stats(&hg));
    }

    #[test]
    fn too_small_rejected() {
        let hg = np_netlist::hypergraph_from_nets(1, &[vec![0]]);
        assert!(matches!(
            multilevel(&hg, &MultilevelOptions::default()),
            Err(np_core::PartitionError::TooSmall { .. })
        ));
    }

    #[test]
    fn kway_vcycle_respects_pins_and_coarse_cut() {
        let hg = generate(&GeneratorConfig::new(400, 420, 19));
        let mut fixed = FixedModules::free(400);
        fixed.pin(ModuleId(0), 0);
        fixed.pin(ModuleId(1), 1);
        fixed.pin(ModuleId(2), 2);
        let kopts = KwayOptions {
            k: 3,
            fixed: Some(fixed),
            ..Default::default()
        };
        let out =
            multilevel_kway_ctx(&hg, &kopts, &small_opts(40), &RunContext::unlimited()).unwrap();
        assert!(out.levels > 0);
        assert!(out.result.stats.cut_nets <= out.coarse_cut);
        assert_eq!(out.result.partition.block_of(ModuleId(0)), 0);
        assert_eq!(out.result.partition.block_of(ModuleId(1)), 1);
        assert_eq!(out.result.partition.block_of(ModuleId(2)), 2);
        assert!(out.result.stats.block_sizes.iter().all(|&s| s > 0));
    }

    #[test]
    fn stage_composes_and_reports_details() {
        use np_core::engine::StageEvent;
        use std::sync::Mutex;
        let hg = generate(&GeneratorConfig::new(300, 320, 23));
        let details = Mutex::new(Vec::<String>::new());
        let sink = |e: &StageEvent<'_>| {
            if let StageEvent::Detail { message, .. } = e {
                details.lock().unwrap().push((*message).to_string());
            }
        };
        let ctx = RunContext::unlimited().with_events(&sink);
        let stage = MultilevelStage::new(small_opts(40));
        let result = stage.run(&hg, None, &ctx).unwrap();
        assert_eq!(result.algorithm, "multilevel");
        let details = details.into_inner().unwrap();
        assert!(
            details.iter().any(|d| d.starts_with("V-cycle:")),
            "missing V-cycle detail event in {details:?}"
        );
    }
}
