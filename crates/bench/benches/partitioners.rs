//! Timing bench: end-to-end partitioner comparison (Tables 2/3
//! runtime column) — IG-Match vs IG-Vote vs EIG1 vs one RCut restart.

use bench::bench_case;
use np_baselines::{rcut, RcutOptions};
use np_core::engine::stages::IgMatchStage;
use np_core::{
    eig1, ig_match, ig_vote, Eig1Options, IgMatchOptions, IgVoteOptions, RunContext, Stage,
};
use np_netlist::generate::mcnc_benchmark;

fn main() {
    println!("== partitioners ==");
    let b = mcnc_benchmark("Prim1").expect("suite benchmark");
    let hg = &b.hypergraph;
    let name = &b.name;
    bench_case(&format!("ig_match/{name}"), 10, || {
        ig_match(hg, &IgMatchOptions::default()).unwrap()
    });
    // the same algorithm through the stage engine — measures the
    // Stage/RunContext dispatch overhead (should be noise)
    bench_case(&format!("ig_match_stage/{name}"), 10, || {
        IgMatchStage::new(IgMatchOptions::default())
            .run(hg, None, &RunContext::unlimited())
            .unwrap()
    });
    bench_case(&format!("ig_vote/{name}"), 10, || {
        ig_vote(hg, &IgVoteOptions::default()).unwrap()
    });
    bench_case(&format!("eig1/{name}"), 10, || {
        eig1(hg, &Eig1Options::default()).unwrap()
    });
    bench_case(&format!("rcut_x1/{name}"), 10, || {
        rcut(
            hg,
            &RcutOptions {
                runs: 1,
                ..Default::default()
            },
        )
    });
    bench_case(&format!("rcut_x10/{name}"), 10, || {
        rcut(hg, &RcutOptions::default())
    });
}
