//! Criterion bench: end-to-end partitioner comparison (Tables 2/3
//! runtime column) — IG-Match vs IG-Vote vs EIG1 vs one RCut restart.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use np_baselines::{rcut, RcutOptions};
use np_core::{eig1, ig_match, ig_vote, Eig1Options, IgMatchOptions, IgVoteOptions};
use np_netlist::generate::mcnc_benchmark;

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioners");
    group.sample_size(10);
    let b = mcnc_benchmark("Prim1").expect("suite benchmark");
    let hg = &b.hypergraph;
    group.bench_with_input(BenchmarkId::new("ig_match", &b.name), hg, |bench, hg| {
        bench.iter(|| ig_match(hg, &IgMatchOptions::default()).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("ig_vote", &b.name), hg, |bench, hg| {
        bench.iter(|| ig_vote(hg, &IgVoteOptions::default()).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("eig1", &b.name), hg, |bench, hg| {
        bench.iter(|| eig1(hg, &Eig1Options::default()).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("rcut_x1", &b.name), hg, |bench, hg| {
        bench.iter(|| {
            rcut(
                hg,
                &RcutOptions {
                    runs: 1,
                    ..Default::default()
                },
            )
        })
    });
    group.bench_with_input(BenchmarkId::new("rcut_x10", &b.name), hg, |bench, hg| {
        bench.iter(|| rcut(hg, &RcutOptions::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
