//! Criterion bench: Fiedler-pair computation on the intersection graph vs
//! the clique model — the paper's speed argument for the dual
//! representation (§1.2: "the intersection graph representation also
//! yields speedups ... due to additional sparsity").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use np_core::models::{clique_laplacian, intersection_laplacian, IgWeighting};
use np_eigen::{fiedler, LanczosOptions};
use np_netlist::generate::mcnc_benchmark;

fn bench_eigensolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("fiedler");
    group.sample_size(10);
    for name in ["Prim1", "Test02", "Test05"] {
        let b = mcnc_benchmark(name).expect("suite benchmark");
        let hg = &b.hypergraph;
        let ig = intersection_laplacian(hg, IgWeighting::Paper);
        let clique = clique_laplacian(hg);
        group.bench_with_input(
            BenchmarkId::new("intersection", name),
            &ig,
            |bench, q| bench.iter(|| fiedler(q, &LanczosOptions::default()).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("clique", name), &clique, |bench, q| {
            bench.iter(|| fiedler(q, &LanczosOptions::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eigensolve);
criterion_main!(benches);
