//! Timing bench: Fiedler-pair computation on the intersection graph vs
//! the clique model — the paper's speed argument for the dual
//! representation (§1.2: "the intersection graph representation also
//! yields speedups ... due to additional sparsity").

use bench::bench_case;
use np_core::models::{clique_laplacian, intersection_laplacian, IgWeighting};
use np_eigen::{fiedler, LanczosOptions};
use np_netlist::generate::mcnc_benchmark;

fn main() {
    println!("== fiedler ==");
    for name in ["Prim1", "Test02", "Test05"] {
        let b = mcnc_benchmark(name).expect("suite benchmark");
        let hg = &b.hypergraph;
        let ig = intersection_laplacian(hg, IgWeighting::Paper);
        let clique = clique_laplacian(hg);
        bench_case(&format!("fiedler/intersection/{name}"), 10, || {
            fiedler(&ig, &LanczosOptions::default()).unwrap()
        });
        bench_case(&format!("fiedler/clique/{name}"), 10, || {
            fiedler(&clique, &LanczosOptions::default()).unwrap()
        });
    }
}
