//! Criterion bench: the incremental IG-Match machinery in isolation
//! (Theorem 6's `O(|V|·(|V|+|E|))` full-sweep claim) — matching
//! maintenance + classification + Phase II over all splits, without the
//! eigensolve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use np_core::igmatch::ig_match_with_ordering;
use np_core::igmatch::{SplitClassification, SplitMatcher};
use np_core::models::intersection_neighbors;
use np_netlist::generate::mcnc_benchmark;
use np_netlist::NetId;

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("igmatch_sweep");
    group.sample_size(10);
    for name in ["Prim1", "Prim2"] {
        let b = mcnc_benchmark(name).expect("suite benchmark");
        let hg = b.hypergraph;
        let neighbors = intersection_neighbors(&hg);
        let order: Vec<NetId> = hg.nets().collect();

        // matching maintenance + classification only
        group.bench_with_input(
            BenchmarkId::new("matching_and_classify", name),
            &neighbors,
            |bench, nb| {
                bench.iter(|| {
                    let mut matcher = SplitMatcher::new(nb);
                    let mut class = SplitClassification::default();
                    let mut acc = 0usize;
                    for v in 0..nb.len() as u32 - 1 {
                        matcher.move_to_r(v);
                        matcher.classify_into(&mut class);
                        acc += class.losers.len();
                    }
                    acc
                })
            },
        );

        // the full sweep including Phase II completion
        group.bench_with_input(
            BenchmarkId::new("full_sweep", name),
            &(hg, order),
            |bench, (hg, order)| {
                bench.iter(|| ig_match_with_ordering(hg, order, false).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
