//! Timing bench: the incremental IG-Match machinery in isolation
//! (Theorem 6's `O(|V|·(|V|+|E|))` full-sweep claim) — matching
//! maintenance + classification + Phase II over all splits, without the
//! eigensolve.

use bench::bench_case;
use np_core::igmatch::ig_match_with_ordering;
use np_core::igmatch::{SplitClassification, SplitMatcher};
use np_core::models::intersection_neighbors;
use np_netlist::generate::mcnc_benchmark;
use np_netlist::NetId;

fn main() {
    println!("== igmatch_sweep ==");
    for name in ["Prim1", "Prim2"] {
        let b = mcnc_benchmark(name).expect("suite benchmark");
        let hg = b.hypergraph;
        let neighbors = intersection_neighbors(&hg);
        let order: Vec<NetId> = hg.nets().collect();

        // matching maintenance + classification only
        bench_case(&format!("matching_and_classify/{name}"), 10, || {
            let mut matcher = SplitMatcher::new(&neighbors);
            let mut class = SplitClassification::default();
            let mut acc = 0usize;
            for v in 0..neighbors.len() as u32 - 1 {
                matcher.move_to_r(v);
                matcher.classify_into(&mut class);
                acc += class.losers.len();
            }
            acc
        });

        // the full sweep including Phase II completion
        bench_case(&format!("full_sweep/{name}"), 10, || {
            ig_match_with_ordering(&hg, &order, false).unwrap()
        });
    }
}
