//! Criterion bench: netlist → graph model construction (clique vs
//! intersection graph), and the FM baseline pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use np_baselines::{fm_bisect, FmOptions};
use np_core::models::{clique_adjacency, intersection_adjacency, IgWeighting};
use np_netlist::generate::mcnc_benchmark;
use np_netlist::{Bipartition, ModuleId};

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("models");
    for name in ["Prim2", "Test05"] {
        let b = mcnc_benchmark(name).expect("suite benchmark");
        let hg = b.hypergraph;
        group.bench_with_input(BenchmarkId::new("clique", name), &hg, |bench, hg| {
            bench.iter(|| clique_adjacency(hg))
        });
        group.bench_with_input(
            BenchmarkId::new("intersection", name),
            &hg,
            |bench, hg| bench.iter(|| intersection_adjacency(hg, IgWeighting::Paper)),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("fm");
    group.sample_size(10);
    let b = mcnc_benchmark("Prim1").expect("suite benchmark");
    let hg = b.hypergraph;
    let n = hg.num_modules();
    let start = Bipartition::from_left_set(n, (0..n as u32 / 2).map(ModuleId));
    group.bench_function("fm_bisect/Prim1", |bench| {
        bench.iter(|| fm_bisect(&hg, &start, &FmOptions::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
