//! Timing bench: netlist → graph model construction (clique vs
//! intersection graph), and the FM baseline pass.

use bench::bench_case;
use np_baselines::{fm_bisect, FmOptions};
use np_core::models::{clique_adjacency, intersection_adjacency, IgWeighting};
use np_netlist::generate::mcnc_benchmark;
use np_netlist::{Bipartition, ModuleId};

fn main() {
    println!("== models ==");
    for name in ["Prim2", "Test05"] {
        let b = mcnc_benchmark(name).expect("suite benchmark");
        let hg = b.hypergraph;
        bench_case(&format!("models/clique/{name}"), 20, || {
            clique_adjacency(&hg)
        });
        bench_case(&format!("models/intersection/{name}"), 20, || {
            intersection_adjacency(&hg, IgWeighting::Paper)
        });
    }

    println!("== fm ==");
    let b = mcnc_benchmark("Prim1").expect("suite benchmark");
    let hg = b.hypergraph;
    let n = hg.num_modules();
    let start = Bipartition::from_left_set(n, (0..n as u32 / 2).map(ModuleId));
    bench_case("fm_bisect/Prim1", 10, || {
        fm_bisect(&hg, &start, &FmOptions::default())
    });
}
