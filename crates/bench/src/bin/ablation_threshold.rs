//! Ablation for the §5 thresholding speedup: sparsify the intersection
//! graph before the eigensolve and measure both the eigensolve time and
//! the quality of the final IG-Match partition.
//!
//! The paper's footnote 2 warns that "standard thresholding methods for
//! sparsifying the input ... may actually be discarding useful
//! partitioning information"; this binary quantifies that trade-off.
//!
//! ```text
//! cargo run --release -p bench --bin ablation_threshold
//! ```

use bench::{fmt_ratio, timed};
use np_core::igmatch::ig_match_with_ordering;
use np_core::models::{intersection_adjacency, IgWeighting};
use np_core::ordering::spectral_net_ordering_thresholded;
use np_netlist::generate::mcnc_benchmark;

fn main() {
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "Test", "thresh", "nnz kept", "dropped", "eig time", "ratio cut"
    );
    for name in ["Prim2", "Test05"] {
        let b = mcnc_benchmark(name).expect("suite benchmark");
        let hg = &b.hypergraph;
        // quantiles of the weight distribution as thresholds
        let adj = intersection_adjacency(hg, IgWeighting::Paper);
        let mut weights: Vec<f64> = (0..hg.num_nets())
            .flat_map(|r| adj.row(r).1.to_vec())
            .collect();
        weights.sort_by(|a, b| a.partial_cmp(b).expect("finite weights"));
        let quantile = |q: f64| weights[((weights.len() - 1) as f64 * q) as usize];
        for (label, threshold) in [
            ("0", 0.0),
            ("q25", quantile(0.25)),
            ("q50", quantile(0.50)),
            ("q75", quantile(0.75)),
        ] {
            let ((order, dropped), t_eig) = timed(|| {
                spectral_net_ordering_thresholded(
                    hg,
                    IgWeighting::Paper,
                    threshold,
                    &Default::default(),
                )
                .unwrap_or_else(|e| panic!("eigensolve failed on {name}@{label}: {e}"))
            });
            let out = ig_match_with_ordering(hg, &order, false)
                .unwrap_or_else(|e| panic!("IG-Match failed on {name}@{label}: {e}"));
            println!(
                "{:<8} {:>10} {:>10} {:>10} {:>12.2?} {:>12}",
                name,
                label,
                adj.nnz() - dropped,
                dropped,
                t_eig,
                fmt_ratio(out.result.ratio())
            );
        }
    }
}
