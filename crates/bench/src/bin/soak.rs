//! Soak driver for `np-serve`: runs the mixed-traffic endurance harness
//! (`np_serve::soak`) for minutes and writes the invariant report as
//! `SOAK_report.json`. Exits non-zero if any invariant fails, so CI can
//! gate on it.
//!
//! Build with `--features fault-inject` to include the periodic fault
//! storms (slow / panicking / stuck stages) in the mix; run it with
//! `RUST_TEST_THREADS=1`-style isolation (its own process) so the
//! thread-leak check sees only the harness's threads.
//!
//! ```text
//! cargo run --release -p bench --features fault-inject --bin soak -- \
//!     [--seconds N] [--clients N] [--seed N] [--out PATH] [--no-thread-check]
//! ```

use np_serve::{run_soak, SoakOptions};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str =
    "usage: soak [--seconds N] [--clients N] [--seed N] [--out PATH] [--no-thread-check]";

struct Config {
    opts: SoakOptions,
    out: String,
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Config, String> {
    let mut cfg = Config {
        opts: SoakOptions {
            duration: Duration::from_secs(60),
            clients: 6,
            // the soak owns its process, so the thread-leak check is
            // meaningful here (unlike inside a parallel test runner)
            check_threads: true,
            ..SoakOptions::default()
        },
        out: "SOAK_report.json".into(),
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            iter.next()
                .ok_or(format!("{name} needs a value"))?
                .parse::<u64>()
                .ok()
                .filter(|n| *n >= 1)
                .ok_or(format!("{name} expects a positive number"))
        };
        match arg.as_str() {
            "--seconds" => cfg.opts.duration = Duration::from_secs(num("--seconds")?),
            "--clients" => cfg.opts.clients = num("--clients")? as usize,
            "--seed" => cfg.opts.seed = num("--seed")?,
            "--out" => cfg.out = iter.next().ok_or("--out needs a path")?,
            "--no-thread-check" => cfg.opts.check_threads = false,
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unexpected argument '{other}'\n{USAGE}")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let cfg = match parse_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "soak: {}s, {} clients, seed {:#x}, fault storms {}",
        cfg.opts.duration.as_secs(),
        cfg.opts.clients,
        cfg.opts.seed,
        if cfg!(feature = "fault-inject") {
            "on"
        } else {
            "off (build with --features fault-inject)"
        },
    );
    let report = run_soak(&cfg.opts);
    let json = report.to_json();
    std::fs::write(&cfg.out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", cfg.out));
    println!("{json}");
    eprintln!(
        "soak: sent {}, results {}, shed {}, errors {}, \
         p99 high/normal/low {}/{}/{} us, low completed {}",
        report.sent,
        report.results,
        report.shed,
        report.errors,
        report.p99_us_by_priority[0],
        report.p99_us_by_priority[1],
        report.p99_us_by_priority[2],
        report.low_priority_completed,
    );
    if report.passed() {
        eprintln!("soak: PASS ({:.1?})", report.elapsed);
        ExitCode::SUCCESS
    } else {
        for v in &report.violations {
            eprintln!("soak: VIOLATION: {v}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_and_reject() {
        let cfg = parse_args(
            ["--seconds", "5", "--clients", "3", "--no-thread-check"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(cfg.opts.duration, Duration::from_secs(5));
        assert_eq!(cfg.opts.clients, 3);
        assert!(!cfg.opts.check_threads);
        assert!(parse_args(["--seconds", "0"].iter().map(|s| s.to_string())).is_err());
        assert!(parse_args(["--bogus"].iter().map(|s| s.to_string())).is_err());
    }

    #[test]
    fn defaults_check_threads_in_own_process() {
        let cfg = parse_args(std::iter::empty()).unwrap();
        assert!(cfg.opts.check_threads);
        assert_eq!(cfg.out, "SOAK_report.json");
    }
}
