//! Regenerates the sparsity claim of paper §1.2/§2.1: the intersection
//! graph has up to an order of magnitude fewer nonzeros than the clique
//! model (paper: Test05 has 19,935 vs 219,811).
//!
//! ```text
//! cargo run --release -p bench --bin sparsity
//! ```

use bench::suite;
use np_core::models::{clique_adjacency, intersection_adjacency, IgWeighting};

fn main() {
    println!(
        "{:<8} {:>9} {:>9} {:>14} {:>14} {:>8}",
        "Test", "modules", "nets", "clique nnz", "ig nnz", "ratio"
    );
    let mut worst = 0.0f64;
    let mut best = f64::INFINITY;
    for b in suite() {
        let hg = &b.hypergraph;
        let clique = clique_adjacency(hg);
        let ig = intersection_adjacency(hg, IgWeighting::Paper);
        let ratio = clique.nnz() as f64 / ig.nnz() as f64;
        worst = worst.max(ratio);
        best = best.min(ratio);
        println!(
            "{:<8} {:>9} {:>9} {:>14} {:>14} {:>7.2}x",
            b.name,
            hg.num_modules(),
            hg.num_nets(),
            clique.nnz(),
            ig.nnz(),
            ratio
        );
    }
    println!(
        "\nclique/intersection nonzero ratio ranges {best:.2}x .. {worst:.2}x \
         (paper reports >10x for Test05)"
    );
    println!(
        "note: the ratio is driven by the wide-net tail — every k-pin net \
         contributes C(k,2) clique nonzeros but only its overlaps to the \
         intersection graph"
    );
}
