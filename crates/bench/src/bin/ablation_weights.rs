//! Ablation for the §2.2 robustness claim: "We have tried several
//! approaches [to intersection-graph edge weighting], most of which lead
//! to extremely similar, high-quality partitioning results."
//!
//! Runs IG-Match under every implemented weighting and reports the ratio
//! cuts side by side.
//!
//! ```text
//! cargo run --release -p bench --bin ablation_weights
//! ```

use bench::{fmt_ratio, suite};
use np_core::{ig_match, IgMatchOptions, IgWeighting};

fn main() {
    print!("{:<8}", "Test");
    for w in IgWeighting::ALL {
        print!(" {:>14}", w.name());
    }
    println!();
    let mut sums = [0.0f64; IgWeighting::ALL.len()];
    let mut count = 0usize;
    for b in suite() {
        let hg = &b.hypergraph;
        print!("{:<8}", b.name);
        for (i, w) in IgWeighting::ALL.into_iter().enumerate() {
            let out = ig_match(
                hg,
                &IgMatchOptions {
                    weighting: w,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("IG-Match({}) failed on {}: {e}", w.name(), b.name));
            sums[i] += out.result.ratio().ln();
            print!(" {:>14}", fmt_ratio(out.result.ratio()));
        }
        count += 1;
        println!();
    }
    println!("\ngeometric-mean ratio cut by weighting:");
    for (i, w) in IgWeighting::ALL.into_iter().enumerate() {
        println!(
            "  {:<14} {}",
            w.name(),
            fmt_ratio((sums[i] / count as f64).exp())
        );
    }
}
