//! Regenerates paper Table 3: IG-Match vs the IG-Vote (EIG1-IG) heuristic
//! of Hagen–Kahng on the nine-circuit suite.
//!
//! ```text
//! cargo run --release -p bench --bin table3
//! ```

use bench::{print_comparison, suite, timed, ComparisonRow};
use np_core::{ig_match, ig_vote, IgMatchOptions, IgVoteOptions};

fn main() {
    let mut rows = Vec::new();
    for b in suite() {
        let hg = &b.hypergraph;
        let (igv, t_vote) = timed(|| ig_vote(hg, &IgVoteOptions::default()));
        let igv = igv.unwrap_or_else(|e| panic!("IG-Vote failed on {}: {e}", b.name));
        let (igm, t_match) = timed(|| ig_match(hg, &IgMatchOptions::default()));
        let igm = igm.unwrap_or_else(|e| panic!("IG-Match failed on {}: {e}", b.name));
        eprintln!(
            "{:<8} ig-vote {:>8.2?}  ig-match {:>8.2?}",
            b.name, t_vote, t_match
        );
        rows.push(ComparisonRow {
            name: b.name.clone(),
            elements: hg.num_modules(),
            baseline: igv.stats,
            contender: igm.result.stats,
        });
    }
    let _ = print_comparison(
        "Table 3: IG-Match vs Hagen-Kahng IG-Vote (EIG1-IG)",
        "IG-Vote",
        "IG-Match",
        &rows,
    );
    let dominated = rows
        .iter()
        .filter(|r| r.contender.ratio() <= r.baseline.ratio() + 1e-15)
        .count();
    println!(
        "IG-Match matches or beats IG-Vote on {dominated}/{} circuits \
         (paper: uniform domination)",
        rows.len()
    );
}
