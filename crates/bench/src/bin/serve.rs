//! Load generator for `np-serve`: drives the partition service
//! in-process with a fixed client pool for a fixed duration and reports
//! latency percentiles, throughput and shed rate as `BENCH_serve.json`.
//!
//! In-process (direct `Service::handle_line` calls, no sockets) so the
//! numbers measure the service — admission, tiering, portfolio compute —
//! rather than loopback TCP. The request mix mirrors the integration
//! suite: mostly plain portfolio requests over three netlist sizes, with
//! a slice of tight-deadline requests to exercise the degradation path
//! and a high/normal/low priority mix to exercise weighted-fair
//! admission. Besides the client-side percentiles the report carries
//! the service's own log-bucketed histogram quantiles (overall and per
//! priority class) read from the final `/metrics` snapshot.
//!
//! ```text
//! cargo run --release -p bench --bin serve -- \
//!     [--seconds N] [--clients N] [--workers N] [--queue N] [--out PATH]
//! ```

use bench::{BenchEntry, BenchReport};
use np_netlist::io::to_hgr_string;
use np_serve::{ServeConfig, Service};
use np_testkit::banded_hypergraph;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const USAGE: &str =
    "usage: serve [--seconds N] [--clients N] [--workers N] [--queue N] [--out PATH]";

struct Config {
    seconds: u64,
    clients: usize,
    workers: usize,
    queue: usize,
    out: String,
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Config, String> {
    let mut cfg = Config {
        seconds: 5,
        clients: 8,
        workers: 2,
        queue: 4,
        out: "BENCH_serve.json".into(),
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            iter.next()
                .ok_or(format!("{name} needs a value"))?
                .parse::<u64>()
                .ok()
                .filter(|n| *n >= 1)
                .ok_or(format!("{name} expects a positive number"))
        };
        match arg.as_str() {
            "--seconds" => cfg.seconds = num("--seconds")?,
            "--clients" => cfg.clients = num("--clients")? as usize,
            "--workers" => cfg.workers = num("--workers")? as usize,
            "--queue" => cfg.queue = num("--queue")? as usize,
            "--out" => cfg.out = iter.next().ok_or("--out needs a path")?,
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unexpected argument '{other}'\n{USAGE}")),
        }
    }
    Ok(cfg)
}

/// One client's tally: per-request latencies and terminal-frame counts.
#[derive(Default)]
struct Tally {
    latencies: Vec<Duration>,
    results: u64,
    degraded: u64,
    shed: u64,
    errors: u64,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let cfg = match parse_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    };
    let service = Arc::new(Service::new(ServeConfig {
        workers: cfg.workers,
        queue: cfg.queue,
        max_wall: Duration::from_millis(500),
        ..ServeConfig::default()
    }));
    // three request sizes, pre-rendered once; the cache makes repeat
    // parses cheap, which is also what a steady-state server sees
    let netlists: Vec<String> = [(64usize, 90usize), (160, 220), (320, 440)]
        .iter()
        .map(|&(m, n)| to_hgr_string(&banded_hypergraph(m as u64, m, n, 8)))
        .collect();
    let netlists = Arc::new(netlists);
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let run_for = Duration::from_secs(cfg.seconds);

    let handles: Vec<_> = (0..cfg.clients)
        .map(|client| {
            let service = Arc::clone(&service);
            let netlists = Arc::clone(&netlists);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut tally = Tally::default();
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let hgr = &netlists[(client + n as usize) % netlists.len()];
                    // every 4th request carries a tight deadline to keep
                    // the degradation path on the hot profile
                    let extra = if n % 4 == 3 {
                        r#","deadline_ms":30"#
                    } else {
                        ""
                    };
                    // 1:2:1 high/normal/low mix across the pool
                    let priority = ["high", "normal", "normal", "low"][(client + n as usize) % 4];
                    let line = format!(
                        r#"{{"id":"c{client}-{n}","hgr":{},"restarts":2,"priority":"{priority}"{extra}}}"#,
                        np_serve::json::escape(hgr)
                    );
                    let terminal = Mutex::new(String::new());
                    let t0 = Instant::now();
                    service.handle_line(&line, &|frame: &str| {
                        *terminal.lock().unwrap() = frame.to_string();
                    });
                    tally.latencies.push(t0.elapsed());
                    let frame = terminal.into_inner().unwrap();
                    if frame.contains("\"frame\":\"shed\"") {
                        tally.shed += 1;
                    } else if frame.contains("\"frame\":\"error\"") {
                        tally.errors += 1;
                    } else if frame.contains("\"degraded\":true") {
                        tally.degraded += 1;
                    } else {
                        tally.results += 1;
                    }
                    n += 1;
                }
                tally
            })
        })
        .collect();
    std::thread::sleep(run_for);
    stop.store(true, Ordering::Relaxed);
    let tallies: Vec<Tally> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread must not panic"))
        .collect();
    let elapsed = started.elapsed();

    let mut latencies: Vec<Duration> = tallies.iter().flat_map(|t| t.latencies.clone()).collect();
    latencies.sort_unstable();
    let total: u64 = latencies.len() as u64;
    let (results, degraded, shed, errors) = tallies.iter().fold((0, 0, 0, 0), |acc, t| {
        (
            acc.0 + t.results,
            acc.1 + t.degraded,
            acc.2 + t.shed,
            acc.3 + t.errors,
        )
    });
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let p50 = percentile(&latencies, 0.50);
    let p90 = percentile(&latencies, 0.90);
    let p99 = percentile(&latencies, 0.99);
    let throughput = total as f64 / elapsed.as_secs_f64();
    let shed_rate = if total > 0 {
        shed as f64 / total as f64
    } else {
        0.0
    };

    // the service's own log-bucketed histograms, from the final
    // /metrics snapshot — the numbers a fleet scraper would see
    let metrics =
        np_serve::json::parse(&service.metrics_frame()).expect("/metrics must render valid json");
    let hist_q = |path: &[&str], q: &str| -> usize {
        let mut v = &metrics;
        for key in path {
            v = v
                .get(key)
                .unwrap_or_else(|| panic!("metrics path {path:?}"));
        }
        v.get(q)
            .and_then(np_serve::json::Value::as_u64)
            .unwrap_or_else(|| panic!("metrics path {path:?}.{q}")) as usize
    };

    let mut report = BenchReport::new("serve");
    report.meta("binary", "serve");
    report.meta("mode", "in-process");
    report.push(
        BenchEntry::new()
            .str("name", "load")
            .int("clients", cfg.clients)
            .int("workers", cfg.workers)
            .int("queue", cfg.queue)
            .int("seconds", cfg.seconds as usize)
            .int("requests", total as usize)
            .int("results", results as usize)
            .int("degraded", degraded as usize)
            .int("shed", shed as usize)
            .int("errors", errors as usize)
            .fixed("throughput_rps", throughput)
            .fixed("shed_rate", shed_rate)
            .fixed("p50_ms", ms(p50))
            .fixed("p90_ms", ms(p90))
            .fixed("p99_ms", ms(p99)),
    );
    report.push(
        BenchEntry::new()
            .str("name", "histograms")
            .int("latency_p50_us", hist_q(&["latency"], "p50_us"))
            .int("latency_p90_us", hist_q(&["latency"], "p90_us"))
            .int("latency_p99_us", hist_q(&["latency"], "p99_us"))
            .int("queue_wait_p99_us", hist_q(&["queue_wait"], "p99_us"))
            .int(
                "latency_p99_us_high",
                hist_q(&["latency_by_priority", "high"], "p99_us"),
            )
            .int(
                "latency_p99_us_normal",
                hist_q(&["latency_by_priority", "normal"], "p99_us"),
            )
            .int(
                "latency_p99_us_low",
                hist_q(&["latency_by_priority", "low"], "p99_us"),
            ),
    );
    report.write(&cfg.out);
    println!(
        "{total} requests in {elapsed:.1?}: {throughput:.1} req/s, \
         p50 {p50_ms:.1} ms, p99 {p99_ms:.1} ms, shed {shed} ({shed_pct:.1}%), \
         {results} clean, {degraded} degraded, {errors} errors",
        p50_ms = ms(p50),
        p99_ms = ms(p99),
        shed_pct = shed_rate * 100.0,
    );
    assert_eq!(
        errors, 0,
        "a healthy service sheds or degrades, never errors"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_expected_ranks() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&sorted, 0.0), Duration::from_millis(1));
        assert_eq!(percentile(&sorted, 1.0), Duration::from_millis(100));
        assert_eq!(percentile(&sorted, 0.5), Duration::from_millis(51));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }

    #[test]
    fn args_parse_and_reject() {
        let cfg = parse_args(
            ["--seconds", "2", "--clients", "3", "--out", "x.json"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!((cfg.seconds, cfg.clients), (2, 3));
        assert_eq!(cfg.out, "x.json");
        assert!(parse_args(["--seconds", "0"].iter().map(|s| s.to_string())).is_err());
        assert!(parse_args(["--nope"].iter().map(|s| s.to_string())).is_err());
    }
}
