//! Regenerates the §4 text claim: IG-Match improves ~22% on average over
//! the original EIG1 algorithm (clique net model, no intersection graph).
//!
//! ```text
//! cargo run --release -p bench --bin eig1_compare
//! ```

use bench::{print_comparison, suite, timed, ComparisonRow};
use np_core::{eig1, ig_match, Eig1Options, IgMatchOptions};

fn main() {
    let mut rows = Vec::new();
    for b in suite() {
        let hg = &b.hypergraph;
        let (e1, t_eig1) = timed(|| eig1(hg, &Eig1Options::default()));
        let e1 = e1.unwrap_or_else(|e| panic!("EIG1 failed on {}: {e}", b.name));
        let (igm, t_match) = timed(|| ig_match(hg, &IgMatchOptions::default()));
        let igm = igm.unwrap_or_else(|e| panic!("IG-Match failed on {}: {e}", b.name));
        eprintln!(
            "{:<8} eig1 {:>8.2?}  ig-match {:>8.2?}",
            b.name, t_eig1, t_match
        );
        rows.push(ComparisonRow {
            name: b.name.clone(),
            elements: hg.num_modules(),
            baseline: e1.stats,
            contender: igm.result.stats,
        });
    }
    print_comparison(
        "Section 4 claim: IG-Match vs EIG1 (clique model; paper reports ~22%)",
        "EIG1",
        "IG-Match",
        &rows,
    );
}
