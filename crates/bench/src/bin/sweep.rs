//! Sweep benchmark: from-scratch vs incremental IG-Match sweep on the
//! banded instance family, emitting a JSON record (`BENCH_sweep.json` by
//! default) with both wall times and the speedup per instance. CI runs
//! this to track the delta-maintenance win (DESIGN.md §11); the
//! determinism contract is asserted inline — both sweeps must agree
//! bit-for-bit on the best ratio, the winning split rank, the matching
//! size and the loser count at the winner.
//!
//! The instances come from `np_testkit::banded_hypergraph`, whose natural
//! net order keeps every move local: the incremental sweep pays `O(band)`
//! per split while the from-scratch sweep re-runs the full alternating
//! BFS plus an `O(pins)` completion, so the asymptotic gap grows with the
//! instance — exactly what the record tracks.
//!
//! ```text
//! cargo run --release -p bench --bin sweep [-- OUT.json]
//! ```

use bench::{best_of, BenchEntry, BenchReport};
use np_core::igmatch::{CompletionOracle, SplitClassification, SplitMatcher, SweepState};
use np_core::models::intersection_neighbors;
use np_netlist::Hypergraph;
use np_testkit::banded_hypergraph;

/// Timed repetitions per configuration; the minimum is reported.
const RUNS: usize = 3;

/// `(name, seed, modules, nets, band)` — sized so the from-scratch arm's
/// `O(m)`-per-split cost dominates visibly at the large end while the
/// whole benchmark stays CI-friendly.
const INSTANCES: [(&str, u64, usize, usize, usize); 3] = [
    ("band-S", 17, 1_500, 1_000, 8),
    ("band-M", 17, 4_500, 3_000, 12),
    ("band-L", 17, 12_000, 8_000, 16),
];

/// What both sweep arms must agree on, bit for bit.
#[derive(Debug, PartialEq)]
struct Winner {
    ratio_bits: u64,
    split_rank: usize,
    matching_size: usize,
    loser_count: usize,
}

/// The seed implementation: full alternating-BFS classification plus an
/// `O(pins)` oracle evaluation at every split.
fn from_scratch_sweep(hg: &Hypergraph, neighbors: &[Vec<u32>]) -> Winner {
    let mut matcher = SplitMatcher::new(neighbors);
    let mut class = SplitClassification::default();
    let mut oracle = CompletionOracle::new(hg);
    let mut best: Option<Winner> = None;
    for v in 0..hg.num_nets() as u32 - 1 {
        matcher.move_to_r(v);
        matcher.classify_into(&mut class);
        let cand = oracle.evaluate(hg, &class).candidate();
        let ratio = cand.stats.ratio();
        if ratio.is_finite()
            && best
                .as_ref()
                .is_none_or(|b| ratio < f64::from_bits(b.ratio_bits))
        {
            best = Some(Winner {
                ratio_bits: ratio.to_bits(),
                split_rank: v as usize,
                matching_size: matcher.matching_size(),
                loser_count: cand.losers,
            });
        }
    }
    best.expect("banded instances are non-degenerate")
}

/// The delta-maintained sweep engine.
fn incremental_sweep(hg: &Hypergraph, neighbors: &[Vec<u32>]) -> Winner {
    let mut state = SweepState::new(hg, neighbors);
    let mut best: Option<Winner> = None;
    for v in 0..hg.num_nets() as u32 - 1 {
        let cand = state.advance(hg, v).candidate();
        let ratio = cand.stats.ratio();
        if ratio.is_finite()
            && best
                .as_ref()
                .is_none_or(|b| ratio < f64::from_bits(b.ratio_bits))
        {
            best = Some(Winner {
                ratio_bits: ratio.to_bits(),
                split_rank: v as usize,
                matching_size: state.matching_size(),
                loser_count: cand.losers,
            });
        }
    }
    best.expect("banded instances are non-degenerate")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let mut report = BenchReport::new("sweep");
    report.meta("kernel", "ig-match-sweep");
    for (name, seed, modules, nets, band) in INSTANCES {
        let hg = banded_hypergraph(seed, modules, nets, band);
        let neighbors = intersection_neighbors(&hg);
        let (scratch_winner, scratch) = best_of(RUNS, || from_scratch_sweep(&hg, &neighbors));
        let (inc_winner, inc) = best_of(RUNS, || incremental_sweep(&hg, &neighbors));
        // Determinism contract: same bits from both sweeps.
        assert_eq!(
            scratch_winner, inc_winner,
            "incremental sweep diverged from the from-scratch sweep on {name}"
        );
        let scratch_ms = scratch.as_secs_f64() * 1e3;
        let inc_ms = inc.as_secs_f64() * 1e3;
        let speedup = scratch_ms / inc_ms.max(1e-9);
        // Each sweep step moves one net across the split and re-evaluates,
        // so the sweep's unit of work is `nets - 1` moves per pass.
        let moves = nets - 1;
        let per_sec = moves as f64 / inc.as_secs_f64().max(1e-9);
        println!(
            "{name:<8} {modules:>6} modules {nets:>6} nets: from-scratch {scratch_ms:>9.1} ms  \
             incremental {inc_ms:>9.1} ms  speedup {speedup:>6.1}x  {per_sec:>9.0} moves/s"
        );
        report.push(
            BenchEntry::new()
                .str("name", name)
                .int("modules", modules)
                .int("nets", nets)
                .int("band", band)
                .int("best_split", inc_winner.split_rank)
                .int("matching_size", inc_winner.matching_size)
                .int("loser_count", inc_winner.loser_count)
                .sci("best_ratio", f64::from_bits(inc_winner.ratio_bits))
                .int("sweep_moves", moves)
                .fixed("from_scratch_ms", scratch_ms)
                .fixed("incremental_ms", inc_ms)
                .rate("from_scratch_moves_per_sec", moves, scratch)
                .rate("incremental_moves_per_sec", moves, inc)
                // canonical throughput field: the headline (fast-arm) rate
                // every bench record carries under the same key
                .rate("sweep_moves_per_sec", moves, inc)
                .fixed("speedup", speedup),
        );
    }
    report.write(&out_path);
}
