//! Ablation: single-vector vs block Lanczos (the paper's eigensolver is
//! a block Lanczos code; §1.1 footnote 1) on the suite's intersection
//! graphs.
//!
//! ```text
//! cargo run --release -p bench --bin ablation_block
//! ```

use bench::{suite, timed};
use np_core::models::{intersection_laplacian, IgWeighting};
use np_eigen::{fiedler, smallest_deflated_block, BlockLanczosOptions, LanczosOptions};
use np_sparse::LinearOperator;

fn main() {
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>14}",
        "Test", "single", "block p=2", "block p=4", "|λ2 agree|"
    );
    for b in suite() {
        let hg = &b.hypergraph;
        let q = intersection_laplacian(hg, IgWeighting::Paper);
        let n = q.dim();
        let ones = vec![1.0 / (n as f64).sqrt(); n];
        let (single, t1) = timed(|| fiedler(&q, &LanczosOptions::default()));
        let single = single.unwrap_or_else(|e| panic!("single failed on {}: {e}", b.name));
        let (block2, t2) = timed(|| {
            smallest_deflated_block(
                &q,
                std::slice::from_ref(&ones),
                &BlockLanczosOptions::default(),
            )
        });
        let block2 = block2.unwrap_or_else(|e| panic!("block2 failed on {}: {e}", b.name));
        let (block4, t4) = timed(|| {
            smallest_deflated_block(
                &q,
                std::slice::from_ref(&ones),
                &BlockLanczosOptions {
                    block_size: 4,
                    ..Default::default()
                },
            )
        });
        let block4 = block4.unwrap_or_else(|e| panic!("block4 failed on {}: {e}", b.name));
        let agree = (single.value - block2.value)
            .abs()
            .max((single.value - block4.value).abs());
        println!(
            "{:<8} {:>12.2?} {:>12.2?} {:>12.2?} {:>14.2e}",
            b.name, t1, t2, t4, agree
        );
    }
    println!("\n(all three converge to the same λ2; block sizes trade matvecs for robustness on clustered spectra)");
}
