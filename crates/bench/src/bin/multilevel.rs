//! Multilevel benchmark: flat hybrid pipeline vs the
//! coarsen/partition/uncoarsen V-cycle across the `np-testkit` band
//! ladder, emitting a JSON record (`BENCH_multilevel.json` by default).
//! CI runs this to track the V-cycle's scaling win: at the large rungs
//! the V-cycle must finish instances the flat spectral pipeline cannot
//! complete inside `FLAT_BUDGET_FACTOR` times the V-cycle's own wall,
//! while staying close to flat quality where flat is feasible (the
//! band-S/M closeness is asserted inline).
//!
//! The flat arm *is* the V-cycle with `coarsen_target` above the module
//! count: with zero coarsening levels the entry point is bit-identical
//! to the flat hybrid pipeline (the debug-mode oracle contract of
//! DESIGN.md §14), so one code path serves both arms.
//!
//! ```text
//! cargo run --release -p bench --bin multilevel [-- OUT.json]
//! ```

use bench::{timed, BenchEntry, BenchReport};
use np_core::engine::RunContext;
use np_multilevel::{multilevel_ctx, MultilevelOptions};
use np_sparse::{Budget, BudgetMeter};
use np_testkit::band_ladder;
use std::time::Duration;

/// Largest rung the benchmark attempts; band-XXL (10⁶ modules) exists
/// for stress runs, not for the CI wall-clock budget.
const MAX_MODULES: usize = 200_000;

/// Wall budget granted to the flat arm, as a multiple of the V-cycle's
/// measured wall. Failing to finish within this bound is a *stronger*
/// statement than failing within the same budget.
const FLAT_BUDGET_FACTOR: u32 = 5;

/// Floor on the flat arm's budget so millisecond-scale V-cycle walls on
/// the small rungs don't turn scheduler noise into spurious timeouts.
const FLAT_BUDGET_FLOOR: Duration = Duration::from_secs(2);

/// Rungs at or below this module count must land within 10% of flat
/// quality (the band-S/M acceptance bar).
const QUALITY_BAR_MODULES: usize = 10_000;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_multilevel.json".to_string());
    let mut report = BenchReport::new("multilevel");
    report.meta("kernel", "v-cycle");
    for spec in band_ladder() {
        if spec.modules > MAX_MODULES {
            eprintln!(
                "skipping {} ({} modules > {MAX_MODULES})",
                spec.name, spec.modules
            );
            continue;
        }
        let hg = spec.build();
        let opts = MultilevelOptions::default();
        // Meter the V-cycle arm so the record carries a throughput
        // counter: matvec-equivalents charged across the whole cycle
        // (eigensolve matvecs, coarsening levels, FM passes) per second.
        let vcycle_meter = BudgetMeter::unlimited();
        let (ml, ml_wall) = timed(|| {
            let ctx = RunContext::with_meter(&vcycle_meter);
            multilevel_ctx(&hg, &opts, &ctx).expect("V-cycle")
        });
        let matvecs = vcycle_meter.matvecs_used() as usize;
        let flat_opts = MultilevelOptions {
            coarsen_target: usize::MAX,
            ..opts
        };
        let flat_budget = (ml_wall * FLAT_BUDGET_FACTOR).max(FLAT_BUDGET_FLOOR);
        let budget = Budget::UNLIMITED.with_wall_clock(flat_budget);
        let (flat, flat_wall) = timed(|| {
            let meter = BudgetMeter::new(&budget);
            let ctx = RunContext::with_meter(&meter);
            multilevel_ctx(&hg, &flat_opts, &ctx)
        });
        let ml_ms = ml_wall.as_secs_f64() * 1e3;
        let flat_ms = flat_wall.as_secs_f64() * 1e3;
        let mut entry = BenchEntry::new()
            .str("name", spec.name)
            .int("modules", spec.modules)
            .int("nets", spec.nets)
            .int("levels", ml.levels)
            .int("coarsest_modules", ml.coarsest_modules)
            .int("coarse_cut", ml.coarse_cut)
            .int("vcycle_cut", ml.result.stats.cut_nets)
            .sci("vcycle_ratio", ml.result.ratio())
            .fixed("vcycle_ms", ml_ms)
            .int("matvecs", matvecs)
            // canonical throughput field: the headline (fast-arm) rate
            // every bench record carries under the same key
            .rate("matvecs_per_sec", matvecs, ml_wall)
            .fixed("flat_budget_ms", flat_budget.as_secs_f64() * 1e3)
            .int("flat_completed", flat.is_ok() as usize);
        match flat {
            Ok(f) => {
                let quality_delta =
                    (ml.result.ratio() - f.result.ratio()) / f.result.ratio().max(1e-300);
                if spec.modules <= QUALITY_BAR_MODULES {
                    assert!(
                        quality_delta <= 0.10,
                        "{}: V-cycle ratio {:.3e} is more than 10% above flat {:.3e}",
                        spec.name,
                        ml.result.ratio(),
                        f.result.ratio()
                    );
                }
                println!(
                    "{:<8} {:>7} modules: V-cycle {ml_ms:>9.1} ms ({} levels, cut {})  \
                     flat {flat_ms:>9.1} ms (cut {})  quality delta {:+.1}%",
                    spec.name,
                    spec.modules,
                    ml.levels,
                    ml.result.stats.cut_nets,
                    f.result.stats.cut_nets,
                    quality_delta * 100.0
                );
                entry = entry
                    .int("flat_cut", f.result.stats.cut_nets)
                    .sci("flat_ratio", f.result.ratio())
                    .fixed("flat_ms", flat_ms)
                    .fixed("quality_delta_pct", quality_delta * 100.0)
                    .fixed("wall_speedup", flat_ms / ml_ms.max(1e-9));
            }
            Err(e) => {
                println!(
                    "{:<8} {:>7} modules: V-cycle {ml_ms:>9.1} ms ({} levels, cut {})  \
                     flat DNF within {:.1} ms ({e})",
                    spec.name,
                    spec.modules,
                    ml.levels,
                    ml.result.stats.cut_nets,
                    flat_budget.as_secs_f64() * 1e3
                );
                entry = entry.str("flat_error", &e.to_string());
            }
        }
        report.push(entry);
    }
    report.write(&out_path);
}
