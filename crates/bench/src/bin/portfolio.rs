//! Portfolio benchmark: best-of-16 FM restarts under the `np-runner`
//! executor on the generated benchmark suite, emitting a JSON record
//! (`BENCH_portfolio.json` by default) with the best ratio cut and wall
//! time per circuit. CI runs this to track portfolio quality and
//! latency.
//!
//! ```text
//! cargo run --release -p bench --bin portfolio [-- OUT.json]
//! ```

use bench::{suite, BenchEntry, BenchReport};
use np_baselines::FmOptions;
use np_runner::presets::fm_restarts;
use np_runner::{run_portfolio, PortfolioOptions};
use np_sparse::BudgetMeter;

/// Restart count tracked by the benchmark (ISSUE PR 3, satellite 5).
const RESTARTS: usize = 16;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_portfolio.json".to_string());
    let mut report = BenchReport::new("portfolio");
    report.meta("algorithm", "FM-restart");
    for b in suite() {
        let hg = &b.hypergraph;
        let portfolio = fm_restarts(RESTARTS, &FmOptions::default());
        let opts = PortfolioOptions::default();
        let out = run_portfolio(hg, &portfolio, &opts, &BudgetMeter::unlimited(), None)
            .unwrap_or_else(|e| panic!("portfolio failed on {}: {e}", b.name));
        println!(
            "{:<8} best-of-{RESTARTS} FM: cut={:<4} ratio={:.3e}  winner #{:<2} {} thread(s) {:>8.1} ms",
            b.name,
            out.best.stats.cut_nets,
            out.best.ratio(),
            out.winner,
            out.report.threads,
            out.report.wall.as_secs_f64() * 1e3
        );
        report.push(
            BenchEntry::new()
                .str("name", &b.name)
                .int("modules", hg.num_modules())
                .int("nets", hg.num_nets())
                .int("restarts", RESTARTS)
                .int("threads", out.report.threads)
                .int("best_cut", out.best.stats.cut_nets)
                .sci("best_ratio", out.best.ratio())
                .int("winner", out.winner)
                .fixed("wall_ms", out.report.wall.as_secs_f64() * 1e3),
        );
    }
    report.write(&out_path);
}
