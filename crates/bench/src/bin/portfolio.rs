//! Portfolio benchmark: best-of-16 FM restarts under the `np-runner`
//! executor on the generated benchmark suite, emitting a JSON record
//! (`BENCH_portfolio.json` by default) with the best ratio cut and wall
//! time per circuit. CI runs this to track portfolio quality and
//! latency.
//!
//! ```text
//! cargo run --release -p bench --bin portfolio [-- OUT.json]
//! ```

use bench::suite;
use np_baselines::FmOptions;
use np_runner::presets::fm_restarts;
use np_runner::{run_portfolio, PortfolioOptions};
use np_sparse::BudgetMeter;

/// Restart count tracked by the benchmark (ISSUE PR 3, satellite 5).
const RESTARTS: usize = 16;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_portfolio.json".to_string());
    let mut entries = Vec::new();
    for b in suite() {
        let hg = &b.hypergraph;
        let portfolio = fm_restarts(RESTARTS, &FmOptions::default());
        let opts = PortfolioOptions::default();
        let out = run_portfolio(hg, &portfolio, &opts, &BudgetMeter::unlimited(), None)
            .unwrap_or_else(|e| panic!("portfolio failed on {}: {e}", b.name));
        println!(
            "{:<8} best-of-{RESTARTS} FM: cut={:<4} ratio={:.3e}  winner #{:<2} {} thread(s) {:>8.1} ms",
            b.name,
            out.best.stats.cut_nets,
            out.best.ratio(),
            out.winner,
            out.report.threads,
            out.report.wall.as_secs_f64() * 1e3
        );
        entries.push(format!(
            "    {{\"name\": \"{}\", \"modules\": {}, \"nets\": {}, \"restarts\": {}, \
             \"threads\": {}, \"best_cut\": {}, \"best_ratio\": {:e}, \"winner\": {}, \
             \"wall_ms\": {:.3}}}",
            b.name,
            hg.num_modules(),
            hg.num_nets(),
            RESTARTS,
            out.report.threads,
            out.best.stats.cut_nets,
            out.best.ratio(),
            out.winner,
            out.report.wall.as_secs_f64() * 1e3
        ));
    }
    let json = format!(
        "{{\n  \"schema\": \"bench/portfolio/v1\",\n  \"algorithm\": \"FM-restart\",\n  \
         \"benchmarks\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("written to {out_path}");
}
