//! Ablation for the §3 extension: component-wise reassignment of the free
//! (`V_N`) modules of the winning split — this repository's realization of
//! the paper's "recursive calls to IG-Match to optimally assign modules of
//! B', B'', etc." future-work idea.
//!
//! ```text
//! cargo run --release -p bench --bin ablation_recursive
//! ```

use bench::{fmt_ratio, print_comparison, suite, ComparisonRow};
use np_core::{ig_match, IgMatchOptions};

fn main() {
    let mut rows = Vec::new();
    for b in suite() {
        let hg = &b.hypergraph;
        let plain = ig_match(hg, &IgMatchOptions::default())
            .unwrap_or_else(|e| panic!("IG-Match failed on {}: {e}", b.name));
        let refined = ig_match(
            hg,
            &IgMatchOptions {
                refine_free_modules: true,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("refined IG-Match failed on {}: {e}", b.name));
        assert!(
            refined.result.ratio() <= plain.result.ratio() + 1e-15,
            "{}: refinement worsened the ratio ({} -> {})",
            b.name,
            fmt_ratio(plain.result.ratio()),
            fmt_ratio(refined.result.ratio())
        );
        rows.push(ComparisonRow {
            name: b.name.clone(),
            elements: hg.num_modules(),
            baseline: plain.result.stats,
            contender: refined.result.stats,
        });
    }
    print_comparison(
        "Section 3 extension: IG-Match with free-module component refinement",
        "plain",
        "refined",
        &rows,
    );
    println!("(refinement is guaranteed never to worsen a partition)");
}
