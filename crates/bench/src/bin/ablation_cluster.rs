//! Ablation for the §5 clustering hybrid: coarsen with heavy-edge
//! matching, partition the condensed netlist, project back — trading
//! quality for eigensolve speed on a smaller instance.
//!
//! ```text
//! cargo run --release -p bench --bin ablation_cluster
//! ```

use bench::{fmt_ratio, suite, timed};
use np_core::cluster::{clustered_ig_match, ClusterOptions};
use np_core::{ig_match, IgMatchOptions};

fn main() {
    println!(
        "{:<8} {:>12} {:>10} | {:>12} {:>10} | {:>12} {:>10}",
        "Test", "flat ratio", "time", "1-lvl ratio", "time", "2-lvl ratio", "time"
    );
    for b in suite() {
        let hg = &b.hypergraph;
        let (flat, t_flat) = timed(|| ig_match(hg, &IgMatchOptions::default()));
        let flat = flat.unwrap_or_else(|e| panic!("flat failed on {}: {e}", b.name));
        let (one, t_one) = timed(|| {
            clustered_ig_match(
                hg,
                &ClusterOptions {
                    levels: 1,
                    ..Default::default()
                },
            )
        });
        let one = one.unwrap_or_else(|e| panic!("1-level failed on {}: {e}", b.name));
        let (two, t_two) = timed(|| {
            clustered_ig_match(
                hg,
                &ClusterOptions {
                    levels: 2,
                    ..Default::default()
                },
            )
        });
        let two = two.unwrap_or_else(|e| panic!("2-level failed on {}: {e}", b.name));
        println!(
            "{:<8} {:>12} {:>10.2?} | {:>12} {:>10.2?} | {:>12} {:>10.2?}",
            b.name,
            fmt_ratio(flat.result.ratio()),
            t_flat,
            fmt_ratio(one.ratio()),
            t_one,
            fmt_ratio(two.ratio()),
            t_two
        );
    }
    println!("\n(condensation trades solution quality for time on the smaller instance)");
}
