//! The §4 module-areas discussion: "the spectral approach cannot take
//! module areas (weights) into consideration, \[but\] this has not been a
//! significant disadvantage in practice."
//!
//! We synthesize heterogeneous cell areas (5% macro blocks of area 8–24,
//! standard cells 1–3), partition with the area-oblivious IG-Match, and
//! compare its *area-weighted* ratio cut against the area-aware RCut
//! stand-in given the same areas. The area-aware baseline's best-of-10
//! restart loop runs as an `np-runner` portfolio with a custom objective
//! ([`run_portfolio_scored`]): each attempt is one area-aware RCut start
//! and the reduction minimizes the area-weighted ratio cut.
//!
//! ```text
//! cargo run --release -p bench --bin ablation_areas
//! ```

use bench::{fmt_ratio, suite};
use np_baselines::rcut::rcut_with_areas;
use np_baselines::RcutOptions;
use np_core::{ig_match, IgMatchOptions, PartitionError, PartitionResult, Partitioner, RunContext};
use np_netlist::areas::{area_cut_stats, ModuleAreas};
use np_netlist::rng::{derive_seed, Rng64};
use np_netlist::Hypergraph;
use np_runner::{run_portfolio_scored, Portfolio, PortfolioOptions};
use np_sparse::BudgetMeter;

/// Paper-faithful restart count for the RCut baseline.
const RCUT_RESTARTS: usize = 10;

fn synth_areas(hg: &Hypergraph, seed: u64) -> ModuleAreas {
    let mut rng = Rng64::new(seed);
    let areas = (0..hg.num_modules())
        .map(|_| {
            if rng.gen_bool(0.05) {
                8.0 + rng.gen_range(17) as f64 // macro block
            } else {
                1.0 + rng.gen_range(3) as f64 // standard cell
            }
        })
        .collect();
    ModuleAreas::new(areas)
}

/// One area-aware RCut start, portfolio-schedulable.
struct AreaRcutStage {
    areas: ModuleAreas,
    opts: RcutOptions,
}

impl Partitioner for AreaRcutStage {
    fn name(&self) -> &'static str {
        "RCut-area"
    }

    fn partition(
        &self,
        hg: &Hypergraph,
        _ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        let r = rcut_with_areas(hg, &self.areas, &self.opts);
        Ok(PartitionResult::evaluate(
            hg,
            r.partition,
            "RCut-area",
            None,
        ))
    }
}

fn main() {
    println!(
        "{:<8} | {:>12} {:>10} | {:>12} {:>10}",
        "Test", "IGM areas", "area-ratio", "RCut areas", "area-ratio"
    );
    let mut sum_rel = 0.0;
    let mut count = 0usize;
    let base = RcutOptions::default();
    for b in suite() {
        let hg = &b.hypergraph;
        let areas = synth_areas(hg, 0xA1EA ^ hg.num_modules() as u64);
        let igm = ig_match(hg, &IgMatchOptions::default())
            .unwrap_or_else(|e| panic!("IG-Match failed on {}: {e}", b.name));
        let igm_area = area_cut_stats(hg, &igm.result.partition, &areas);
        let portfolio = {
            let mut p = Portfolio::new();
            for i in 0..RCUT_RESTARTS {
                p = p.attempt(
                    format!("RCut-area#{i}"),
                    AreaRcutStage {
                        areas: areas.clone(),
                        opts: RcutOptions {
                            runs: 1,
                            seed: derive_seed(base.seed, i as u64),
                            ..base
                        },
                    },
                );
            }
            p
        };
        let rc = run_portfolio_scored(
            hg,
            &portfolio,
            &PortfolioOptions::default().with_seed(base.seed),
            &BudgetMeter::unlimited(),
            None,
            &|r: &PartitionResult| area_cut_stats(hg, &r.partition, &areas).ratio(),
        )
        .unwrap_or_else(|e| panic!("area-aware RCut portfolio failed on {}: {e}", b.name));
        let rc_area = area_cut_stats(hg, &rc.best.partition, &areas);
        println!(
            "{:<8} | {:>12} {:>10} | {:>12} {:>10}",
            b.name,
            igm_area.areas(),
            fmt_ratio(igm_area.ratio()),
            rc_area.areas(),
            fmt_ratio(rc_area.ratio())
        );
        sum_rel += (rc_area.ratio() / igm_area.ratio()).ln();
        count += 1;
    }
    let geo = (sum_rel / count as f64).exp();
    println!(
        "\ngeometric mean RCut(area-aware) / IG-Match(area-oblivious) = {geo:.2} \
         (> 1 means the area-oblivious spectral method still wins, \
         matching the paper's 'not a significant disadvantage')"
    );
}
