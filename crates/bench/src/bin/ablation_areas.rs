//! The §4 module-areas discussion: "the spectral approach cannot take
//! module areas (weights) into consideration, \[but\] this has not been a
//! significant disadvantage in practice."
//!
//! We synthesize heterogeneous cell areas (5% macro blocks of area 8–24,
//! standard cells 1–3), partition with the area-oblivious IG-Match, and
//! compare its *area-weighted* ratio cut against the area-aware RCut
//! stand-in given the same areas.
//!
//! ```text
//! cargo run --release -p bench --bin ablation_areas
//! ```

use bench::{fmt_ratio, suite};
use np_baselines::rcut::rcut_with_areas;
use np_baselines::RcutOptions;
use np_core::{ig_match, IgMatchOptions};
use np_netlist::areas::{area_cut_stats, ModuleAreas};
use np_netlist::rng::Rng64;
use np_netlist::Hypergraph;

fn synth_areas(hg: &Hypergraph, seed: u64) -> ModuleAreas {
    let mut rng = Rng64::new(seed);
    let areas = (0..hg.num_modules())
        .map(|_| {
            if rng.gen_bool(0.05) {
                8.0 + rng.gen_range(17) as f64 // macro block
            } else {
                1.0 + rng.gen_range(3) as f64 // standard cell
            }
        })
        .collect();
    ModuleAreas::new(areas)
}

fn main() {
    println!(
        "{:<8} | {:>12} {:>10} | {:>12} {:>10}",
        "Test", "IGM areas", "area-ratio", "RCut areas", "area-ratio"
    );
    let mut sum_rel = 0.0;
    let mut count = 0usize;
    for b in suite() {
        let hg = &b.hypergraph;
        let areas = synth_areas(hg, 0xA1EA ^ hg.num_modules() as u64);
        let igm = ig_match(hg, &IgMatchOptions::default())
            .unwrap_or_else(|e| panic!("IG-Match failed on {}: {e}", b.name));
        let igm_area = area_cut_stats(hg, &igm.result.partition, &areas);
        let rc = rcut_with_areas(hg, &areas, &RcutOptions::default());
        println!(
            "{:<8} | {:>12} {:>10} | {:>12} {:>10}",
            b.name,
            igm_area.areas(),
            fmt_ratio(igm_area.ratio()),
            rc.stats.areas(),
            fmt_ratio(rc.stats.ratio())
        );
        sum_rel += (rc.stats.ratio() / igm_area.ratio()).ln();
        count += 1;
    }
    let geo = (sum_rel / count as f64).exp();
    println!(
        "\ngeometric mean RCut(area-aware) / IG-Match(area-oblivious) = {geo:.2} \
         (> 1 means the area-oblivious spectral method still wins, \
         matching the paper's 'not a significant disadvantage')"
    );
}
