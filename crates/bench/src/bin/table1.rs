//! Regenerates paper Table 1: cut statistics for k-pin nets in a locally
//! minimum ratio cut of the Primary2 stand-in.
//!
//! The paper's point: the probability that a net is cut does *not* grow
//! monotonically with its size, contrary to the random-partition
//! intuition — evidence that nets carry partitioning structure.
//!
//! ```text
//! cargo run --release -p bench --bin table1
//! ```

use np_baselines::{rcut, RcutOptions};
use np_netlist::generate::mcnc_benchmark;
use np_netlist::stats::CutBySize;

fn main() {
    let b = mcnc_benchmark("Prim2").expect("Prim2 exists in the suite");
    let hg = &b.hypergraph;
    // a locally minimum ratio cut, as in the paper (RCut-style optimized
    // partition)
    let rc = rcut(hg, &RcutOptions::default());
    let table = CutBySize::compute(hg, &rc.partition);
    println!(
        "Cut statistics for k-pin nets of {} ({} modules, {} nets), \
         locally-minimum ratio cut ({} nets cut):\n",
        b.name,
        hg.num_modules(),
        hg.num_nets(),
        rc.stats.cut_nets
    );
    print!("{table}");
    println!(
        "\ncut probability monotone in net size (classes with >= 10 nets): {}",
        table.cut_probability_monotone(10)
    );
    println!("(the paper's observation is that this is typically NOT monotone)");
}
