//! Regenerates the §4 CPU-time claim: the spectral computation is
//! competitive with (cheaper than) 10 runs of RCut-style FM optimization.
//! The paper's numbers on a Sun4/60: 83 s for the PrimSC2 eigenvector vs
//! 204 s for 10 runs of RCut1.0 — a ~2.5x advantage; the *relative* claim
//! is what this binary checks.
//!
//! Also reports the eigensolve-speed advantage of the (sparser)
//! intersection graph over the clique model, the paper's other speed
//! argument.
//!
//! ```text
//! cargo run --release -p bench --bin timing
//! ```

use bench::{suite, timed};
use np_baselines::{rcut, RcutOptions};
use np_core::models::{clique_laplacian, intersection_laplacian, IgWeighting};
use np_eigen::{fiedler, LanczosOptions};

fn main() {
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>10}",
        "Test", "IG eig", "clique eig", "RCut x10", "IG/RCut"
    );
    for b in suite() {
        let hg = &b.hypergraph;
        let (ig_pair, t_ig) = timed(|| {
            let q = intersection_laplacian(hg, IgWeighting::Paper);
            fiedler(&q, &LanczosOptions::default())
        });
        ig_pair.unwrap_or_else(|e| panic!("IG eigensolve failed on {}: {e}", b.name));
        let (cl_pair, t_clique) = timed(|| {
            let q = clique_laplacian(hg);
            fiedler(&q, &LanczosOptions::default())
        });
        cl_pair.unwrap_or_else(|e| panic!("clique eigensolve failed on {}: {e}", b.name));
        let (_, t_rcut) = timed(|| rcut(hg, &RcutOptions::default()));
        println!(
            "{:<8} {:>14.2?} {:>14.2?} {:>14.2?} {:>9.2}x",
            b.name,
            t_ig,
            t_clique,
            t_rcut,
            t_ig.as_secs_f64() / t_rcut.as_secs_f64()
        );
    }
    println!(
        "\npaper claim: one spectral solve costs less than 10 FM-style runs \
         (83s vs 204s on PrimSC2/Sun4); values < 1.0x in the last column \
         reproduce it"
    );
}
