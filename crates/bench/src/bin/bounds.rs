//! The Theorem-1 "provability" experiment: the spectral lower bound
//! `λ₂/n` versus the ratio cut IG-Match actually achieves, per circuit —
//! a per-instance optimality certificate no iterative heuristic provides.
//!
//! ```text
//! cargo run --release -p bench --bin bounds
//! ```

use bench::{fmt_ratio, suite};
use np_core::bounds::ratio_cut_lower_bound;
use np_core::{ig_match, IgMatchOptions};

fn main() {
    println!(
        "{:<8} {:>12} {:>12} {:>10}",
        "Test", "λ2/n bound", "IG-Match", "gap"
    );
    for b in suite() {
        let hg = &b.hypergraph;
        let bound = ratio_cut_lower_bound(hg, &Default::default())
            .unwrap_or_else(|e| panic!("bound failed on {}: {e}", b.name));
        let achieved = ig_match(hg, &IgMatchOptions::default())
            .unwrap_or_else(|e| panic!("IG-Match failed on {}: {e}", b.name))
            .result
            .ratio();
        assert!(
            achieved >= bound.bound - 1e-12,
            "{}: Theorem 1 violated",
            b.name
        );
        println!(
            "{:<8} {:>12} {:>12} {:>9.1}x",
            b.name,
            fmt_ratio(bound.bound),
            fmt_ratio(achieved),
            bound.gap(achieved)
        );
    }
    println!(
        "\n(gap = achieved/bound; the bound certifies how far any heuristic can possibly improve)"
    );
}
