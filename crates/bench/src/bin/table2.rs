//! Regenerates paper Table 2: IG-Match vs the RCut1.0 stand-in on the
//! nine-circuit suite.
//!
//! ```text
//! cargo run --release -p bench --bin table2
//! ```

use bench::{print_comparison, suite, timed, ComparisonRow};
use np_baselines::{rcut, RcutOptions};
use np_core::{ig_match, IgMatchOptions};

fn main() {
    let mut rows = Vec::new();
    for b in suite() {
        let hg = &b.hypergraph;
        let (rc, t_rcut) = timed(|| rcut(hg, &RcutOptions::default()));
        let (igm, t_igm) = timed(|| ig_match(hg, &IgMatchOptions::default()));
        let igm = igm.unwrap_or_else(|e| panic!("IG-Match failed on {}: {e}", b.name));
        eprintln!(
            "{:<8} rcut(10 runs) {:>8.2?}  ig-match {:>8.2?}  (mm bound {} >= cut {})",
            b.name, t_rcut, t_igm, igm.matching_size, igm.result.stats.cut_nets
        );
        rows.push(ComparisonRow {
            name: b.name.clone(),
            elements: hg.num_modules(),
            baseline: rc.stats,
            contender: igm.result.stats,
        });
    }
    print_comparison(
        "Table 2: IG-Match vs Wei-Cheng RCut1.0 (stand-in, best of 10 runs)",
        "RCut",
        "IG-Match",
        &rows,
    );
}
