//! Regenerates paper Table 2: IG-Match vs the RCut1.0 stand-in on the
//! nine-circuit suite.
//!
//! The RCut baseline is the paper's best-of-10-random-starts method; it
//! runs as an `np-runner` portfolio of 10 single-start attempts
//! (decorrelated seed streams, parallel workers, deterministic
//! `(score, index)` reduction), so the baseline costs wall-clock time
//! proportional to the *slowest* start instead of the sum.
//!
//! ```text
//! cargo run --release -p bench --bin table2
//! ```

use bench::{print_comparison, suite, timed, ComparisonRow};
use np_baselines::RcutOptions;
use np_core::{ig_match, IgMatchOptions};
use np_runner::presets::rcut_restarts;
use np_runner::{run_portfolio, PortfolioOptions};
use np_sparse::BudgetMeter;

/// Paper-faithful restart count for the RCut1.0 baseline.
const RCUT_RESTARTS: usize = 10;

fn main() {
    let mut rows = Vec::new();
    let rcut_opts = RcutOptions::default();
    let portfolio_opts = PortfolioOptions::default().with_seed(rcut_opts.seed);
    for b in suite() {
        let hg = &b.hypergraph;
        let portfolio = rcut_restarts(RCUT_RESTARTS, rcut_opts.seed, &rcut_opts);
        let (rc, t_rcut) = timed(|| {
            run_portfolio(
                hg,
                &portfolio,
                &portfolio_opts,
                &BudgetMeter::unlimited(),
                None,
            )
        });
        let rc = rc.unwrap_or_else(|e| panic!("RCut portfolio failed on {}: {e}", b.name));
        let (igm, t_igm) = timed(|| ig_match(hg, &IgMatchOptions::default()));
        let igm = igm.unwrap_or_else(|e| panic!("IG-Match failed on {}: {e}", b.name));
        eprintln!(
            "{:<8} rcut({RCUT_RESTARTS} starts, {} threads) {:>8.2?}  ig-match {:>8.2?}  (mm bound {} >= cut {})",
            b.name,
            rc.report.threads,
            t_rcut,
            t_igm,
            igm.matching_size,
            igm.result.stats.cut_nets
        );
        rows.push(ComparisonRow {
            name: b.name.clone(),
            elements: hg.num_modules(),
            baseline: rc.best.stats,
            contender: igm.result.stats,
        });
    }
    print_comparison(
        "Table 2: IG-Match vs Wei-Cheng RCut1.0 (stand-in, best of 10 starts)",
        "RCut",
        "IG-Match",
        &rows,
    );
}
