//! K-way method comparison: recursive bisection vs direct multiway
//! spectral at k ∈ {4, 8, 16}, emitting a JSON record
//! (`BENCH_kway.json` by default) with cut, balance and wall time per
//! `(instance, k, method)` cell. CI runs this to track the k-way engine
//! (DESIGN.md §13) the way `portfolio`/`spectral`/`sweep` track the
//! bipartition stack.
//!
//! Per cell the record carries the number of cut nets, the largest block
//! (against the `(1+ε)·n/k` bound, asserted inline — a record that
//! violates its own balance contract is a bug, not a data point), the
//! k-way ratio cut and the best-of-`RUNS` wall time.
//!
//! ```text
//! cargo run --release -p bench --bin kway [-- OUT.json]
//! ```

use bench::{best_of, BenchEntry, BenchReport};
use np_core::kway::{kway_partition, KwayMethod, KwayOptions};
use np_netlist::generate::{generate, GeneratorConfig};
use np_netlist::{balance_bound, Hypergraph};

/// Timed repetitions per cell; the minimum is reported. One rep: the
/// direct route's deflated eigensolves make every cell seconds-long, so
/// relative timing noise is already small and CI wall time dominates.
const RUNS: usize = 1;

/// Balance slack: every block must stay within `1.25 · n/k` modules.
const EPSILON: f64 = 0.25;

/// Block counts the record tracks.
const KS: [usize; 3] = [4, 8, 16];

/// `(name, modules, nets, seed)` — sized so every `k` has room to
/// balance while the direct route's `min(k−1, 8)` eigensolves stay
/// CI-friendly.
const INSTANCES: [(&str, usize, usize, u64); 3] = [
    ("gen-S", 300, 330, 0x1C5),
    ("gen-M", 700, 770, 0x1C6),
    ("gen-L", 1_400, 1_540, 0x1C7),
];

fn method_name(method: KwayMethod) -> &'static str {
    match method {
        KwayMethod::Recursive => "recursive",
        KwayMethod::Direct => "direct",
    }
}

fn run_cell(hg: &Hypergraph, name: &str, k: usize, method: KwayMethod) -> BenchEntry {
    let opts = KwayOptions {
        k,
        epsilon: EPSILON,
        ..Default::default()
    };
    let (out, wall) = best_of(RUNS, || {
        kway_partition(hg, &opts, method).expect("bench instances are feasible")
    });
    let n = hg.num_modules();
    let bound = balance_bound(n as f64, k, EPSILON);
    let max_block = out.stats.max_block();
    assert!(
        max_block as f64 <= bound * (1.0 + 1e-9) + 1e-9,
        "{name} k={k} {}: block of {max_block} exceeds bound {bound}",
        method_name(method)
    );
    let wall_ms = wall.as_secs_f64() * 1e3;
    println!(
        "{name:<6} k={k:<3} {:<10} cut {:>5}  max_block {max_block:>4} (bound {bound:>7.1})  \
         kratio {:>9.3e}  {wall_ms:>8.1} ms",
        method_name(method),
        out.stats.cut_nets,
        out.stats.ratio()
    );
    BenchEntry::new()
        .str("name", name)
        .int("modules", n)
        .int("nets", hg.num_nets())
        .int("k", k)
        .str("method", method_name(method))
        .int("cut", out.stats.cut_nets)
        .int("max_block", max_block)
        .fixed("bound", bound)
        .sci("kratio", out.stats.ratio())
        .fixed("wall_ms", wall_ms)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kway.json".to_string());
    let mut report = BenchReport::new("kway");
    report.meta("kernel", "kway-partition");
    report.meta("epsilon", &format!("{EPSILON}"));
    for (name, modules, nets, seed) in INSTANCES {
        let hg = generate(&GeneratorConfig::new(modules, nets, seed));
        for k in KS {
            for method in [KwayMethod::Recursive, KwayMethod::Direct] {
                report.push(run_cell(&hg, name, k, method));
            }
        }
    }
    report.write(&out_path);
}
