//! Developer harness: sweep generator parameters and watch how strongly
//! the four algorithms differentiate — used to calibrate the synthetic
//! suite so its difficulty profile resembles the paper's (where the
//! algorithms disagree on most circuits).
//!
//! ```text
//! cargo run --release -p bench --bin suite_explore [modules] [nets]
//! ```

use bench::fmt_ratio;
use np_baselines::{rcut, RcutOptions};
use np_core::{eig1, ig_match, ig_vote, Eig1Options, IgMatchOptions, IgVoteOptions};
use np_netlist::generate::{generate, GeneratorConfig};

fn main() {
    let modules: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1600);
    let nets: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1700);
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10}",
        "config", "RCut", "EIG1", "IG-Vote", "IG-Match"
    );
    for (label, wide, loc, seed) in [
        ("narrow loc=.68 s=1", false, 0.68, 1u64),
        ("widecross loc=.68 s=1", true, 0.68, 1),
        ("widecross loc=.75 s=1", true, 0.75, 1),
        ("widecross loc=.80 s=1", true, 0.80, 1),
        ("widecross loc=.75 s=2", true, 0.75, 2),
        ("widecross loc=.75 s=3", true, 0.75, 3),
        ("widecross loc=.75 s=4", true, 0.75, 4),
        ("widecross loc=.80 s=2", true, 0.80, 2),
        ("widecross loc=.80 s=3", true, 0.80, 3),
    ] {
        let mut cfg = GeneratorConfig::new(modules, nets, seed)
            .with_locality(loc)
            .with_satellite_straddled(0.18, 25, (3, 8))
            .with_global_nets(12, (50, 100));
        if wide {
            cfg = cfg.with_wide_crossings();
        }
        let hg = generate(&cfg);
        let rc = rcut(&hg, &RcutOptions::default());
        let e1 = eig1(&hg, &Eig1Options::default()).expect("eig1");
        let iv = ig_vote(&hg, &IgVoteOptions::default()).expect("igvote");
        let im = ig_match(&hg, &IgMatchOptions::default()).expect("igmatch");
        println!(
            "{:<28} {:>10} {:>10} {:>10} {:>10}",
            label,
            fmt_ratio(rc.ratio()),
            fmt_ratio(e1.ratio()),
            fmt_ratio(iv.ratio()),
            fmt_ratio(im.result.ratio())
        );
    }
}
