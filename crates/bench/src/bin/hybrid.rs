//! Ablation for the §5 post-processing suggestion: IG-Match output
//! polished with ratio-objective FM passes ("the ratio cuts so obtained
//! may optionally be improved by using standard iterative techniques").
//!
//! ```text
//! cargo run --release -p bench --bin hybrid
//! ```

use bench::{print_comparison, suite, ComparisonRow};
use ig_match_repro::hybrid::{ig_match_refined, HybridOptions};
use np_core::{ig_match, IgMatchOptions};

fn main() {
    let mut rows = Vec::new();
    for b in suite() {
        let hg = &b.hypergraph;
        let plain = ig_match(hg, &IgMatchOptions::default())
            .unwrap_or_else(|e| panic!("IG-Match failed on {}: {e}", b.name));
        let refined = ig_match_refined(hg, &HybridOptions::default())
            .unwrap_or_else(|e| panic!("hybrid failed on {}: {e}", b.name));
        assert!(
            refined.ratio() <= plain.result.ratio() + 1e-15,
            "{}: refinement worsened the ratio",
            b.name
        );
        rows.push(ComparisonRow {
            name: b.name.clone(),
            elements: hg.num_modules(),
            baseline: plain.result.stats,
            contender: refined.stats,
        });
    }
    print_comparison(
        "Section 5 hybrid: IG-Match + ratio-FM post-refinement",
        "IG-Match",
        "IGM+FM",
        &rows,
    );
    println!("(the refinement stage is deterministic and can only improve the cut)");
}
