//! Spectral-kernel benchmark: serial per-attempt operator rebuilds vs
//! the shared [`OperatorCache`] plus row-sharded SpMV, on the generated
//! benchmark suite, emitting a JSON record (`BENCH_spectral.json` by
//! default) with both wall times and the speedup per circuit. CI runs
//! this to track the parallel-kernel win; the determinism contract
//! (`DESIGN.md` §10) is asserted inline — both configurations must
//! produce bit-identical Fiedler pairs.
//!
//! ```text
//! cargo run --release -p bench --bin spectral [-- OUT.json]
//! ```

use bench::{best_of, suite, BenchEntry, BenchReport};
use np_core::engine::OperatorCache;
use np_core::models::{clique_laplacian, intersection_laplacian, IgWeighting};
use np_eigen::{fiedler, fiedler_metered, EigenPair, LanczosOptions};
use np_sparse::{resolve_threads, BudgetMeter};
use std::sync::Arc;

/// Attempts per configuration: models a small portfolio where several
/// spectral stages (EIG1 plus an IG stage) each need the same operators.
const ATTEMPTS: usize = 4;

/// Timed repetitions per configuration; the minimum is reported.
const RUNS: usize = 3;

/// One configuration's outcome: the Fiedler pairs of the last attempt
/// (for the bit-identity check) in clique/intersection order.
fn run_serial(hg: &np_netlist::Hypergraph, opts: &LanczosOptions) -> (EigenPair, EigenPair) {
    let mut out = None;
    for _ in 0..ATTEMPTS {
        // The pre-cache behaviour: every attempt rebuilds both operators
        // and solves with the serial kernel.
        let q = clique_laplacian(hg);
        let clique_pair = fiedler(&q, opts).expect("serial clique solve");
        let ig = intersection_laplacian(hg, IgWeighting::Paper);
        let ig_pair = fiedler(&ig, opts).expect("serial intersection solve");
        out = Some((clique_pair, ig_pair));
    }
    out.expect("at least one attempt")
}

fn run_cached(
    hg: &np_netlist::Hypergraph,
    opts: &LanczosOptions,
    threads: usize,
) -> (EigenPair, EigenPair) {
    let cache = Arc::new(OperatorCache::new());
    let mut out = None;
    for _ in 0..ATTEMPTS {
        // One shared cache across attempts: the first attempt builds each
        // operator (sharded over `threads`), the rest reuse the same Arc;
        // every solve shards its matvecs over `threads`.
        let q = cache.clique_laplacian(hg, threads);
        let clique_pair = fiedler(&q.threaded(threads), opts).expect("cached clique solve");
        let ig = cache.intersection_laplacian(hg, IgWeighting::Paper, threads);
        let ig_pair = fiedler(&ig.threaded(threads), opts).expect("cached intersection solve");
        out = Some((clique_pair, ig_pair));
    }
    out.expect("at least one attempt")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_spectral.json".to_string());
    // At least two threads even on a single-core runner: the acceptance
    // bar is "cache + sharded kernels beat per-attempt serial rebuilds at
    // >= 2 threads", and the cache reuse dominates that win.
    let threads = resolve_threads(0).max(2);
    let opts = LanczosOptions::default();
    let mut report = BenchReport::new("spectral");
    report.meta("kernel", "fiedler");
    for b in suite() {
        let hg = &b.hypergraph;
        // Best-of-3 per configuration (like `bench_case`): minimum
        // wall-clock is the standard noise-robust point estimate.
        let (serial_pairs, serial) = best_of(RUNS, || run_serial(hg, &opts));
        let (cached_pairs, cached) = best_of(RUNS, || run_cached(hg, &opts, threads));
        // Determinism contract: same bits from both configurations.
        assert_eq!(
            serial_pairs.0.value.to_bits(),
            cached_pairs.0.value.to_bits(),
            "clique eigenvalue differs on {}",
            b.name
        );
        assert_eq!(serial_pairs.0.vector, cached_pairs.0.vector);
        assert_eq!(
            serial_pairs.1.value.to_bits(),
            cached_pairs.1.value.to_bits(),
            "intersection eigenvalue differs on {}",
            b.name
        );
        assert_eq!(serial_pairs.1.vector, cached_pairs.1.vector);
        // Matvec throughput: both configurations run the same solves
        // (the bit-identity above proves it), so count one attempt's
        // matvecs with a metered re-solve and scale by ATTEMPTS.
        let meter = BudgetMeter::unlimited();
        fiedler_metered(&clique_laplacian(hg), &opts, &meter).expect("metered clique solve");
        fiedler_metered(
            &intersection_laplacian(hg, IgWeighting::Paper),
            &opts,
            &meter,
        )
        .expect("metered intersection solve");
        let matvecs = meter.matvecs_used() as usize * ATTEMPTS;
        let serial_ms = serial.as_secs_f64() * 1e3;
        let cached_ms = cached.as_secs_f64() * 1e3;
        let speedup = serial_ms / cached_ms.max(1e-9);
        let per_sec = matvecs as f64 / cached.as_secs_f64().max(1e-9);
        println!(
            "{:<8} {ATTEMPTS} attempts: serial {serial_ms:>9.1} ms  cached+{threads}t \
             {cached_ms:>9.1} ms  speedup {speedup:>5.2}x  {per_sec:>9.0} matvecs/s",
            b.name
        );
        report.push(
            BenchEntry::new()
                .str("name", &b.name)
                .int("modules", hg.num_modules())
                .int("nets", hg.num_nets())
                .int("attempts", ATTEMPTS)
                .int("threads", threads)
                .int("matvecs", matvecs)
                .fixed("serial_ms", serial_ms)
                .fixed("cached_threaded_ms", cached_ms)
                .rate("serial_matvecs_per_sec", matvecs, serial)
                .rate("cached_matvecs_per_sec", matvecs, cached)
                // canonical throughput field: the headline (fast-arm) rate
                // every bench record carries under the same key
                .rate("matvecs_per_sec", matvecs, cached)
                .fixed("speedup", speedup),
        );
    }
    report.write(&out_path);
}
