//! Kernel-floor micro-bench: the three single-core hot loops of the
//! workspace (CSR SpMV, fused Lanczos vecops, IG-Match sweep BFS),
//! timed criterion-free and emitting a JSON record
//! (`BENCH_kernels.json` by default). CI runs this in release mode to
//! track the kernel speed floor (DESIGN.md §16).
//!
//! Every fused/blocked variant is asserted **bit-identical** to its
//! straight-line reference before it is timed — a fast kernel that
//! drifts from the reference fails the binary, not just the benchmark.
//! The FP-reassociating variants behind the `reassoc-fast` feature are
//! exempt from bit-identity by design and are compared under a relative
//! tolerance instead.
//!
//! ```text
//! cargo run --release -p bench --bin kernels [-- OUT.json]
//! cargo run --release -p bench --features reassoc-fast --bin kernels
//! ```

use bench::{best_of, BenchEntry, BenchReport};
use np_core::igmatch::SweepState;
use np_core::models::{intersection_laplacian, intersection_neighbors, IgWeighting};
use np_sparse::vecops::{axpy, axpy2, axpy_dot, dot, orthogonalize_against, orthogonalize_fused};
use np_sparse::{CsrMatrix, LinearOperator, TripletBuilder};
use np_testkit::banded_hypergraph;
use std::hint::black_box;
use std::time::Duration;

/// Timed repetitions per case; the minimum is reported.
const RUNS: usize = 5;

/// SpMV instance size — at [`CsrMatrix::SPMV_BLOCK_DISPATCH_DIM`] so the
/// dispatch cost model (not just the size floor) decides the path.
const SPMV_DIM: usize = 1 << 17;

/// Half-bandwidth of the SpMV band matrix (17 nonzeros per interior row).
const SPMV_BAND: usize = 8;

/// Matvecs per timed SpMV run.
const SPMV_REPS: usize = 20;

/// Dense-vector length for the vecops cases (plus reps per timed run).
const VEC_N: usize = 1 << 16;
const VEC_REPS: usize = 100;

/// Basis size for the orthogonalization case.
const BASIS_M: usize = 8;

/// Deterministic LCG-filled vector in `[-1, 1)`.
fn rand_vec(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// Symmetric band matrix with `band` off-diagonals per side.
fn band_matrix(n: usize, band: usize) -> CsrMatrix {
    let mut b = TripletBuilder::new(n);
    for i in 0..n {
        b.push(i, i, 2.0 + (i % 7) as f64);
        for d in 1..=band {
            if i + d < n {
                let w = 1.0 / d as f64;
                b.push(i, i + d, w);
                b.push(i + d, i, w);
            }
        }
    }
    b.into_csr()
}

/// Matrix with `per_row` uniformly scattered columns per row — the
/// cache-hostile access pattern the blocked kernel exists for.
fn scatter_matrix(n: usize, per_row: usize) -> CsrMatrix {
    let mut b = TripletBuilder::new(n);
    let mut state = 0x5CA77E2u64;
    for i in 0..n {
        b.push(i, i, 4.0);
        for _ in 0..per_row {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = ((state >> 16) % n as u64) as usize;
            b.push(i, j, 0.25);
        }
    }
    b.into_csr()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let mut report = BenchReport::new("kernels");
    report.meta("kernel", "speed-floor");
    report.meta(
        "fp_mode",
        if cfg!(feature = "reassoc-fast") {
            "reassoc-fast"
        } else {
            "bit-exact"
        },
    );

    // --- CSR SpMV: straight loop vs cache-blocked vs the dispatcher ---
    // Netlist-like rows (~17 nnz) are far below the one-entry-per-block
    // density the blocked kernel needs to amortize its cursor probes, so
    // the cost model must keep both instances on the straight path.
    let x = rand_vec(1, SPMV_DIM);
    for (name, m) in [
        ("spmv_band", band_matrix(SPMV_DIM, SPMV_BAND)),
        ("spmv_scatter", scatter_matrix(SPMV_DIM, 16)),
    ] {
        assert!(
            !m.spmv_prefers_blocked(),
            "{name}: cost model must reject blocking at ~17 nnz/row"
        );
        let mut reference = vec![0.0; SPMV_DIM];
        m.apply_rows_unblocked(0, &x, &mut reference);
        let mut out = vec![f64::NAN; SPMV_DIM];
        m.apply_rows_blocked(0, &x, &mut out, CsrMatrix::SPMV_BLOCK_COLS);
        assert!(
            reference
                .iter()
                .zip(&out)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "{name}: blocked SpMV is not bit-identical to the straight loop"
        );
        let (_, straight) = best_of(RUNS, || {
            let mut out = vec![0.0; SPMV_DIM];
            for _ in 0..SPMV_REPS {
                m.apply_rows_unblocked(0, black_box(&x), &mut out);
            }
            black_box(out)
        });
        let (_, blocked) = best_of(RUNS, || {
            let mut out = vec![0.0; SPMV_DIM];
            for _ in 0..SPMV_REPS {
                m.apply_rows_blocked(0, black_box(&x), &mut out, CsrMatrix::SPMV_BLOCK_COLS);
            }
            black_box(out)
        });
        let (_, dispatch) = best_of(RUNS, || {
            let mut out = vec![0.0; SPMV_DIM];
            for _ in 0..SPMV_REPS {
                m.apply_rows(0, black_box(&x), &mut out);
            }
            black_box(out)
        });
        let straight_ms = straight.as_secs_f64() * 1e3;
        let blocked_ms = blocked.as_secs_f64() * 1e3;
        let dispatch_ms = dispatch.as_secs_f64() * 1e3;
        println!(
            "{name:<16} n={SPMV_DIM:<8} straight {straight_ms:>9.3} ms  blocked \
             {blocked_ms:>9.3} ms  dispatch {dispatch_ms:>9.3} ms"
        );
        report.push(
            BenchEntry::new()
                .str("name", name)
                .int("n", SPMV_DIM)
                .int("nnz", m.nnz())
                .fixed("straight_ms", straight_ms)
                .fixed("blocked_ms", blocked_ms)
                .fixed("dispatch_ms", dispatch_ms)
                .rate("matvecs_per_sec", SPMV_REPS, dispatch),
        );
    }

    // --- Laplacian apply: fused degree/gather loop --------------------
    let hg = banded_hypergraph(17, 6_000, 4_000, 12);
    let lap = intersection_laplacian(&hg, IgWeighting::Paper);
    let lx = rand_vec(2, lap.dim());
    let (_, lap_wall) = best_of(RUNS, || {
        let mut out = vec![0.0; lap.dim()];
        for _ in 0..SPMV_REPS {
            lap.apply(black_box(&lx), &mut out);
        }
        black_box(out)
    });
    report.push(
        BenchEntry::new()
            .str("name", "laplacian_apply")
            .int("n", lap.dim())
            .fixed("wall_ms", lap_wall.as_secs_f64() * 1e3)
            .rate("matvecs_per_sec", SPMV_REPS, lap_wall),
    );

    // --- Fused vecops vs straight-line references ---------------------
    let u = rand_vec(3, VEC_N);
    let v = rand_vec(4, VEC_N);
    let w = rand_vec(5, VEC_N);
    {
        // axpy-then-dot vs fused axpy_dot: same bits out of both.
        let mut a = v.clone();
        axpy(0.37, &u, &mut a);
        let want = dot(&w, &a);
        let mut b = v.clone();
        let got = axpy_dot(0.37, &u, &mut b, &w);
        assert!(
            a.iter().zip(&b).all(|(p, q)| p.to_bits() == q.to_bits())
                && want.to_bits() == got.to_bits(),
            "fused axpy_dot is not bit-identical to axpy + dot"
        );
        // two axpys vs fused axpy2.
        let mut a = v.clone();
        axpy(0.37, &u, &mut a);
        axpy(-0.81, &w, &mut a);
        let mut b = v.clone();
        axpy2(0.37, &u, -0.81, &w, &mut b);
        assert!(
            a.iter().zip(&b).all(|(p, q)| p.to_bits() == q.to_bits()),
            "fused axpy2 is not bit-identical to two axpys"
        );
    }
    let (_, unfused) = best_of(RUNS, || {
        let mut acc = 0.0;
        let mut y = v.clone();
        for _ in 0..VEC_REPS {
            axpy(black_box(0.37), &u, &mut y);
            acc += dot(&w, &y);
        }
        black_box(acc)
    });
    let (_, fused) = best_of(RUNS, || {
        let mut acc = 0.0;
        let mut y = v.clone();
        for _ in 0..VEC_REPS {
            acc += axpy_dot(black_box(0.37), &u, &mut y, &w);
        }
        black_box(acc)
    });
    push_pair(
        &mut report,
        "axpy_dot",
        VEC_N,
        "ops_per_sec",
        VEC_REPS,
        unfused,
        fused,
    );

    // --- Reorthogonalization: sequential sweep vs fused chain ---------
    let basis: Vec<Vec<f64>> = (0..BASIS_M)
        .map(|i| rand_vec(10 + i as u64, VEC_N))
        .collect();
    {
        let mut a = u.clone();
        for bvec in &basis {
            orthogonalize_against(bvec, &mut a);
        }
        let mut b = u.clone();
        orthogonalize_fused(&[&basis], &mut b);
        assert!(
            a.iter().zip(&b).all(|(p, q)| p.to_bits() == q.to_bits()),
            "fused orthogonalization is not bit-identical to the sequential sweep"
        );
    }
    let (_, seq) = best_of(RUNS, || {
        let mut y = u.clone();
        for _ in 0..VEC_REPS / 10 {
            for bvec in black_box(&basis) {
                orthogonalize_against(bvec, &mut y);
            }
        }
        black_box(y)
    });
    let (_, fused_orth) = best_of(RUNS, || {
        let mut y = u.clone();
        for _ in 0..VEC_REPS / 10 {
            orthogonalize_fused(&[black_box(&basis)], &mut y);
        }
        black_box(y)
    });
    push_pair(
        &mut report,
        "orthogonalize",
        VEC_N,
        "ops_per_sec",
        VEC_REPS / 10,
        seq,
        fused_orth,
    );

    // --- reassoc-fast: tolerance-checked, never bit-compared ----------
    #[cfg(feature = "reassoc-fast")]
    {
        use np_sparse::vecops::dot_reassoc;
        let exact = dot(&u, &v);
        let fast = dot_reassoc(&u, &v);
        let scale = u.len() as f64 * f64::EPSILON * 64.0;
        assert!(
            (exact - fast).abs() <= scale * exact.abs().max(1.0),
            "reassociated dot out of tolerance: {exact} vs {fast}"
        );
        let (_, exact_wall) = best_of(RUNS, || {
            let mut acc = 0.0;
            for _ in 0..VEC_REPS {
                acc += dot(black_box(&u), black_box(&v));
            }
            black_box(acc)
        });
        let (_, fast_wall) = best_of(RUNS, || {
            let mut acc = 0.0;
            for _ in 0..VEC_REPS {
                acc += dot_reassoc(black_box(&u), black_box(&v));
            }
            black_box(acc)
        });
        push_pair(
            &mut report,
            "dot_reassoc",
            VEC_N,
            "ops_per_sec",
            VEC_REPS,
            exact_wall,
            fast_wall,
        );
    }

    // --- IG-Match sweep BFS: bitset + flattened adjacency -------------
    let sweep_hg = banded_hypergraph(17, 4_500, 3_000, 12);
    let neighbors = intersection_neighbors(&sweep_hg);
    let moves = sweep_hg.num_nets() - 1;
    let (_, sweep_wall) = best_of(RUNS, || {
        let mut state = SweepState::new(&sweep_hg, &neighbors);
        let mut last = 0usize;
        for v in 0..moves as u32 {
            last = state.advance(&sweep_hg, v).candidate().losers;
        }
        black_box(last)
    });
    report.push(
        BenchEntry::new()
            .str("name", "sweep_bfs")
            .int("n", sweep_hg.num_nets())
            .int("sweep_moves", moves)
            .fixed("wall_ms", sweep_wall.as_secs_f64() * 1e3)
            .rate("sweep_moves_per_sec", moves, sweep_wall),
    );

    report.write(&out_path);
}

/// Records a reference/optimized pair with the shared field shape.
fn push_pair(
    report: &mut BenchReport,
    name: &str,
    n: usize,
    rate_key: &str,
    count: usize,
    reference: Duration,
    optimized: Duration,
) {
    let ref_ms = reference.as_secs_f64() * 1e3;
    let opt_ms = optimized.as_secs_f64() * 1e3;
    let speedup = ref_ms / opt_ms.max(1e-9);
    println!(
        "{name:<16} n={n:<8} reference {ref_ms:>9.3} ms  optimized {opt_ms:>9.3} ms  \
         speedup {speedup:>5.2}x"
    );
    report.push(
        BenchEntry::new()
            .str("name", name)
            .int("n", n)
            .fixed("reference_ms", ref_ms)
            .fixed("optimized_ms", opt_ms)
            .rate(rate_key, count, optimized)
            .fixed("speedup", speedup),
    );
}
