//! Shared machinery for the table-regeneration binaries and timing
//! benches.
//!
//! Every table and figure of the paper's evaluation (§4) has a binary in
//! `src/bin/` that regenerates it against the synthetic MCNC stand-in
//! suite (see `DESIGN.md` §3 for the experiment index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — cut statistics by net size (Primary2) |
//! | `table2` | Table 2 — IG-Match vs RCut1.0 |
//! | `table3` | Table 3 — IG-Match vs IG-Vote |
//! | `eig1_compare` | §4 text — IG-Match vs EIG1 (22% claim) |
//! | `sparsity` | §1.2/§2.1 — intersection-graph vs clique nonzeros |
//! | `timing` | §4 text — spectral vs multi-start FM CPU time |
//! | `ablation_weights` | §2.2 — IG weighting robustness |
//! | `ablation_recursive` | §3 — free-module refinement extension |
//! | `ablation_threshold` | §5 — input sparsification by thresholding |
//! | `ablation_cluster` | §5 — clustering condensation hybrid |
//! | `ablation_block` | §1.1 fn.1 — block vs single-vector Lanczos |
//! | `ablation_areas` | §4 — area-oblivious spectral vs area-aware RCut |
//! | `hybrid` | §5 — IG-Match + ratio-FM post-refinement |
//! | `bounds` | Theorem 1 — per-instance optimality certificates |
//! | `portfolio` | best-of-16 portfolio tracking (`BENCH_portfolio.json`) |
//! | `spectral` | operator cache + sharded SpMV vs serial rebuilds (`BENCH_spectral.json`) |
//! | `suite_explore` | developer harness for calibrating the suite |
//!
//! The best-of-N baselines (`table2`'s RCut1.0, `ablation_areas`'
//! area-aware RCut) run their restart loops as `np-runner` portfolios:
//! every start is an independent attempt on a decorrelated seed stream,
//! executed over a scoped worker pool and reduced deterministically by
//! `(score, attempt index)`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use np_netlist::generate::{mcnc_suite, Benchmark};
use np_netlist::CutStats;
use std::time::{Duration, Instant};

/// One comparison row: a circuit name plus the two contestants' stats.
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// Benchmark name (paper's "Test problem" column).
    pub name: String,
    /// Number of modules (paper's "Number of elements").
    pub elements: usize,
    /// Baseline cut statistics.
    pub baseline: CutStats,
    /// Contender (IG-Match etc.) cut statistics.
    pub contender: CutStats,
}

impl ComparisonRow {
    /// Percent improvement of the contender's ratio cut over the
    /// baseline's, as the paper computes it:
    /// `(baseline − contender) / baseline · 100`.
    pub fn improvement_percent(&self) -> f64 {
        let b = self.baseline.ratio();
        let c = self.contender.ratio();
        if !b.is_finite() || b == 0.0 {
            0.0
        } else {
            (b - c) / b * 100.0
        }
    }
}

/// Formats a ratio the way the paper's tables do (e.g. `5.53e-5`).
pub fn fmt_ratio(r: f64) -> String {
    if r.is_finite() {
        format!("{r:.2e}")
    } else {
        "inf".into()
    }
}

/// Prints a paper-style comparison table and returns the average
/// improvement.
pub fn print_comparison(
    title: &str,
    baseline_name: &str,
    contender_name: &str,
    rows: &[ComparisonRow],
) -> f64 {
    println!("\n=== {title} ===");
    println!(
        "{:<8} {:>9} | {:>11} {:>8} {:>10} | {:>11} {:>8} {:>10} | {:>7}",
        "Test", "elements", "areas", "cut", baseline_name, "areas", "cut", contender_name, "impr %"
    );
    let mut sum = 0.0;
    for r in rows {
        println!(
            "{:<8} {:>9} | {:>11} {:>8} {:>10} | {:>11} {:>8} {:>10} | {:>7.0}",
            r.name,
            r.elements,
            r.baseline.areas(),
            r.baseline.cut_nets,
            fmt_ratio(r.baseline.ratio()),
            r.contender.areas(),
            r.contender.cut_nets,
            fmt_ratio(r.contender.ratio()),
            r.improvement_percent()
        );
        sum += r.improvement_percent();
    }
    let avg = sum / rows.len().max(1) as f64;
    println!("average ratio-cut improvement of {contender_name} over {baseline_name}: {avg:.1}%");
    avg
}

/// The benchmark suite used by all experiment binaries.
pub fn suite() -> Vec<Benchmark> {
    mcnc_suite()
}

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Minimal micro-benchmark runner for the `benches/` targets: one warmup
/// run, then `iters` timed runs, printing the minimum and mean
/// per-iteration wall-clock time. (The build environment has no external
/// benchmarking framework; `cargo bench` drives these harness-free
/// binaries directly.)
pub fn bench_case<T>(label: &str, iters: usize, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        let dt = start.elapsed();
        best = best.min(dt);
        total += dt;
    }
    let mean = total / iters.max(1) as u32;
    println!("{label:<44} min {best:>12.3?}  mean {mean:>12.3?}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_matches_paper_arithmetic() {
        // bm1 row of Table 2: 12.73e-5 -> 5.53e-5 is a 57% improvement
        let row = ComparisonRow {
            name: "bm1".into(),
            elements: 882,
            baseline: CutStats {
                cut_nets: 1,
                left: 9,
                right: 873,
            },
            contender: CutStats {
                cut_nets: 1,
                left: 21,
                right: 861,
            },
        };
        assert!((row.improvement_percent() - 57.0).abs() < 1.0);
    }

    #[test]
    fn fmt_ratio_forms() {
        assert_eq!(fmt_ratio(5.53e-5), "5.53e-5");
        assert_eq!(fmt_ratio(f64::INFINITY), "inf");
    }

    #[test]
    fn negative_improvement_possible() {
        let row = ComparisonRow {
            name: "19ks".into(),
            elements: 2844,
            baseline: CutStats {
                cut_nets: 10,
                left: 100,
                right: 100,
            },
            contender: CutStats {
                cut_nets: 11,
                left: 100,
                right: 100,
            },
        };
        assert!(row.improvement_percent() < 0.0);
    }
}
