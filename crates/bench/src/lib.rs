//! Shared machinery for the table-regeneration binaries and timing
//! benches.
//!
//! Every table and figure of the paper's evaluation (§4) has a binary in
//! `src/bin/` that regenerates it against the synthetic MCNC stand-in
//! suite (see `DESIGN.md` §3 for the experiment index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — cut statistics by net size (Primary2) |
//! | `table2` | Table 2 — IG-Match vs RCut1.0 |
//! | `table3` | Table 3 — IG-Match vs IG-Vote |
//! | `eig1_compare` | §4 text — IG-Match vs EIG1 (22% claim) |
//! | `sparsity` | §1.2/§2.1 — intersection-graph vs clique nonzeros |
//! | `timing` | §4 text — spectral vs multi-start FM CPU time |
//! | `ablation_weights` | §2.2 — IG weighting robustness |
//! | `ablation_recursive` | §3 — free-module refinement extension |
//! | `ablation_threshold` | §5 — input sparsification by thresholding |
//! | `ablation_cluster` | §5 — clustering condensation hybrid |
//! | `ablation_block` | §1.1 fn.1 — block vs single-vector Lanczos |
//! | `ablation_areas` | §4 — area-oblivious spectral vs area-aware RCut |
//! | `hybrid` | §5 — IG-Match + ratio-FM post-refinement |
//! | `bounds` | Theorem 1 — per-instance optimality certificates |
//! | `portfolio` | best-of-16 portfolio tracking (`BENCH_portfolio.json`) |
//! | `spectral` | operator cache + sharded SpMV vs serial rebuilds (`BENCH_spectral.json`) |
//! | `sweep` | incremental vs from-scratch IG-Match sweep (`BENCH_sweep.json`) |
//! | `suite_explore` | developer harness for calibrating the suite |
//!
//! The CI-tracked binaries (`portfolio`, `spectral`, `sweep`) emit their
//! JSON records through the shared [`BenchReport`] harness and take their
//! noise-robust point estimates from [`best_of`], so every record carries
//! the same `{"schema": "bench/<name>/v1", ..., "benchmarks": [...]}`
//! envelope.
//!
//! The best-of-N baselines (`table2`'s RCut1.0, `ablation_areas`'
//! area-aware RCut) run their restart loops as `np-runner` portfolios:
//! every start is an independent attempt on a decorrelated seed stream,
//! executed over a scoped worker pool and reduced deterministically by
//! `(score, attempt index)`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use np_netlist::generate::{mcnc_suite, Benchmark};
use np_netlist::CutStats;
use std::time::{Duration, Instant};

/// One comparison row: a circuit name plus the two contestants' stats.
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// Benchmark name (paper's "Test problem" column).
    pub name: String,
    /// Number of modules (paper's "Number of elements").
    pub elements: usize,
    /// Baseline cut statistics.
    pub baseline: CutStats,
    /// Contender (IG-Match etc.) cut statistics.
    pub contender: CutStats,
}

impl ComparisonRow {
    /// Percent improvement of the contender's ratio cut over the
    /// baseline's, as the paper computes it:
    /// `(baseline − contender) / baseline · 100`.
    pub fn improvement_percent(&self) -> f64 {
        let b = self.baseline.ratio();
        let c = self.contender.ratio();
        if !b.is_finite() || b == 0.0 {
            0.0
        } else {
            (b - c) / b * 100.0
        }
    }
}

/// Formats a ratio the way the paper's tables do (e.g. `5.53e-5`).
pub fn fmt_ratio(r: f64) -> String {
    if r.is_finite() {
        format!("{r:.2e}")
    } else {
        "inf".into()
    }
}

/// Prints a paper-style comparison table and returns the average
/// improvement.
pub fn print_comparison(
    title: &str,
    baseline_name: &str,
    contender_name: &str,
    rows: &[ComparisonRow],
) -> f64 {
    println!("\n=== {title} ===");
    println!(
        "{:<8} {:>9} | {:>11} {:>8} {:>10} | {:>11} {:>8} {:>10} | {:>7}",
        "Test", "elements", "areas", "cut", baseline_name, "areas", "cut", contender_name, "impr %"
    );
    let mut sum = 0.0;
    for r in rows {
        println!(
            "{:<8} {:>9} | {:>11} {:>8} {:>10} | {:>11} {:>8} {:>10} | {:>7.0}",
            r.name,
            r.elements,
            r.baseline.areas(),
            r.baseline.cut_nets,
            fmt_ratio(r.baseline.ratio()),
            r.contender.areas(),
            r.contender.cut_nets,
            fmt_ratio(r.contender.ratio()),
            r.improvement_percent()
        );
        sum += r.improvement_percent();
    }
    let avg = sum / rows.len().max(1) as f64;
    println!("average ratio-cut improvement of {contender_name} over {baseline_name}: {avg:.1}%");
    avg
}

/// The benchmark suite used by all experiment binaries.
pub fn suite() -> Vec<Benchmark> {
    mcnc_suite()
}

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Runs `f` `iters` times and returns the last result together with the
/// **minimum** elapsed wall-clock time — the standard noise-robust point
/// estimate all CI-tracked benchmark binaries report.
pub fn best_of<T>(iters: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    let (mut out, mut best) = timed(&mut f);
    for _ in 1..iters.max(1) {
        let (value, dt) = timed(&mut f);
        if dt < best {
            best = dt;
        }
        out = value;
    }
    (out, best)
}

/// Renders `value` as a JSON string literal, escaping quotes,
/// backslashes and control characters. Benchmark names come from netlist
/// generators today, but nothing stops a caller from passing a path or
/// an error message through [`BenchEntry::str`], so the writer must not
/// trust its input.
pub fn json_str(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One benchmark record of a [`BenchReport`]: an ordered list of
/// key/value fields rendered as a JSON object.
///
/// The build environment has no JSON crate, so values are rendered at
/// insertion time by typed builder methods; string values pass through
/// [`json_str`], while keys are expected to be plain identifiers (no
/// escaping is performed).
#[derive(Clone, Debug, Default)]
pub struct BenchEntry {
    fields: Vec<(String, String)>,
}

impl BenchEntry {
    /// An empty record.
    pub fn new() -> Self {
        BenchEntry::default()
    }

    /// Adds a string field.
    #[must_use]
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields.push((key.into(), json_str(value)));
        self
    }

    /// Adds an integer field.
    #[must_use]
    pub fn int(mut self, key: &str, value: usize) -> Self {
        self.fields.push((key.into(), value.to_string()));
        self
    }

    /// Adds a fixed-point field (three decimals — the convention for
    /// millisecond timings and speedups).
    #[must_use]
    pub fn fixed(mut self, key: &str, value: f64) -> Self {
        self.fields.push((key.into(), format!("{value:.3}")));
        self
    }

    /// Adds a scientific-notation field (the convention for ratio cuts).
    #[must_use]
    pub fn sci(mut self, key: &str, value: f64) -> Self {
        self.fields.push((key.into(), format!("{value:e}")));
        self
    }

    /// Adds a throughput field: `count` events over `wall`, rendered as
    /// events per second. A zero wall records 0 — a rate computed from
    /// an unmeasurably fast run carries no information.
    #[must_use]
    pub fn rate(self, key: &str, count: usize, wall: Duration) -> Self {
        let secs = wall.as_secs_f64();
        let per_sec = if secs > 0.0 { count as f64 / secs } else { 0.0 };
        self.fixed(key, per_sec)
    }

    fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("    {{{}}}", body.join(", "))
    }
}

/// The shared JSON envelope of the CI-tracked benchmark binaries:
/// `{"schema": "bench/<name>/v1", <meta...>, "benchmarks": [<entries>]}`.
///
/// # Example
///
/// ```
/// use bench::{BenchEntry, BenchReport};
///
/// let mut report = BenchReport::new("demo");
/// report.meta("kernel", "noop");
/// report.push(BenchEntry::new().str("name", "bm1").int("modules", 882));
/// assert!(report.to_json().contains("\"schema\": \"bench/demo/v1\""));
/// ```
#[derive(Clone, Debug)]
pub struct BenchReport {
    schema: String,
    meta: Vec<(String, String)>,
    entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// A report for schema `bench/<name>/v1` with no records yet.
    pub fn new(name: &str) -> Self {
        BenchReport {
            schema: format!("bench/{name}/v1"),
            meta: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// Adds a top-level string field after `"schema"` (e.g. the kernel or
    /// algorithm the record tracks).
    pub fn meta(&mut self, key: &str, value: &str) {
        self.meta.push((key.into(), json_str(value)));
    }

    /// Appends one benchmark record.
    pub fn push(&mut self, entry: BenchEntry) {
        self.entries.push(entry);
    }

    /// Renders the full JSON document (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut top = vec![format!("  \"schema\": \"{}\"", self.schema)];
        top.extend(self.meta.iter().map(|(k, v)| format!("  \"{k}\": {v}")));
        let entries: Vec<String> = self.entries.iter().map(BenchEntry::render).collect();
        format!(
            "{{\n{},\n  \"benchmarks\": [\n{}\n  ]\n}}\n",
            top.join(",\n"),
            entries.join(",\n")
        )
    }

    /// Writes the document to `path` and logs the destination, exiting
    /// with a panic on I/O failure (benchmark binaries have no caller to
    /// report to).
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.to_json()).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("written to {path}");
    }
}

/// Minimal micro-benchmark runner for the `benches/` targets: one warmup
/// run, then `iters` timed runs, printing the minimum and mean
/// per-iteration wall-clock time. (The build environment has no external
/// benchmarking framework; `cargo bench` drives these harness-free
/// binaries directly.)
pub fn bench_case<T>(label: &str, iters: usize, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        let dt = start.elapsed();
        best = best.min(dt);
        total += dt;
    }
    let mean = total / iters.max(1) as u32;
    println!("{label:<44} min {best:>12.3?}  mean {mean:>12.3?}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_matches_paper_arithmetic() {
        // bm1 row of Table 2: 12.73e-5 -> 5.53e-5 is a 57% improvement
        let row = ComparisonRow {
            name: "bm1".into(),
            elements: 882,
            baseline: CutStats {
                cut_nets: 1,
                left: 9,
                right: 873,
            },
            contender: CutStats {
                cut_nets: 1,
                left: 21,
                right: 861,
            },
        };
        assert!((row.improvement_percent() - 57.0).abs() < 1.0);
    }

    #[test]
    fn fmt_ratio_forms() {
        assert_eq!(fmt_ratio(5.53e-5), "5.53e-5");
        assert_eq!(fmt_ratio(f64::INFINITY), "inf");
    }

    #[test]
    fn report_envelope_shape() {
        let mut report = BenchReport::new("demo");
        report.meta("algorithm", "noop");
        report.push(
            BenchEntry::new()
                .str("name", "bm1")
                .int("modules", 882)
                .fixed("wall_ms", 1.23456)
                .sci("ratio", 5.53e-5),
        );
        report.push(BenchEntry::new().str("name", "bm2").int("modules", 7));
        assert_eq!(
            report.to_json(),
            "{\n  \"schema\": \"bench/demo/v1\",\n  \"algorithm\": \"noop\",\n  \
             \"benchmarks\": [\n    {\"name\": \"bm1\", \"modules\": 882, \
             \"wall_ms\": 1.235, \"ratio\": 5.53e-5},\n    \
             {\"name\": \"bm2\", \"modules\": 7}\n  ]\n}\n"
        );
    }

    #[test]
    fn rate_fields_are_events_per_second() {
        let entry = BenchEntry::new()
            .rate("moves_per_sec", 500, Duration::from_millis(250))
            .rate("degenerate", 500, Duration::ZERO);
        let rendered = entry.render();
        assert!(
            rendered.contains("\"moves_per_sec\": 2000.000"),
            "{rendered}"
        );
        assert!(rendered.contains("\"degenerate\": 0.000"), "{rendered}");
    }

    #[test]
    fn string_fields_are_escaped() {
        let mut report = BenchReport::new("demo");
        report.meta("host", "ci\\runner \"eu-1\"");
        report.push(BenchEntry::new().str("name", "bm\n\u{1}end"));
        let json = report.to_json();
        assert!(json.contains("\"host\": \"ci\\\\runner \\\"eu-1\\\"\""));
        assert!(json.contains("\"name\": \"bm\\n\\u0001end\""));
        assert!(json.chars().all(|c| c == '\n' || (c as u32) >= 0x20));
    }

    #[test]
    fn best_of_keeps_minimum_and_last_result() {
        let mut runs = 0u32;
        let (last, best) = best_of(5, || {
            runs += 1;
            std::thread::sleep(Duration::from_micros(50));
            runs
        });
        assert_eq!(runs, 5, "exactly `iters` timed runs");
        assert_eq!(last, 5);
        assert!(best >= Duration::from_micros(50));
    }

    #[test]
    fn negative_improvement_possible() {
        let row = ComparisonRow {
            name: "19ks".into(),
            elements: 2844,
            baseline: CutStats {
                cut_nets: 10,
                left: 100,
                right: 100,
            },
            contender: CutStats {
                cut_nets: 11,
                left: 100,
                right: 100,
            },
        };
        assert!(row.improvement_percent() < 0.0);
    }
}
