//! Deterministic property-testing harness for the workspace.
//!
//! The container this repo builds in has no network access, so external
//! property-testing frameworks are unavailable; this crate provides the
//! small subset the test suites actually need, on top of the workspace's
//! own deterministic PRNG ([`np_netlist::rng::Rng64`]):
//!
//! * [`Gen`] — a seeded generator with range/collection helpers;
//! * [`check_cases`] — runs a property over many derived seeds and, on
//!   failure, reports the offending case seed so the run can be replayed
//!   with `Gen::new(seed)` in a scratch test;
//! * [`small_hypergraph`] — arbitrary small hypergraphs (the workhorse
//!   instance distribution for theorem-level properties);
//! * [`degenerate_hypergraph`] — like `small_hypergraph` but guaranteed
//!   to contain single-pin and duplicate-pin nets, for robustness
//!   properties on the graph-model builders;
//! * [`banded_hypergraph`] — scalable banded instances whose natural net
//!   order keeps every sweep move local, for benchmarks that need the
//!   incremental-vs-from-scratch asymptotic gap to be visible;
//! * [`kway_reference_cut`] / [`kway_reference_externals`] — brute-force
//!   k-way cut oracles sharing no code with the incremental trackers;
//! * [`pinned_instance`] — small k-way instances with fixed (terminal)
//!   modules, for the fixed-module invariants.
//!
//! Everything is bit-reproducible across platforms: same seed, same
//! cases, same verdict.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use np_netlist::rng::Rng64;
use np_netlist::{FixedModules, Hypergraph, HypergraphBuilder, ModuleId};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A seeded pseudo-random value generator for property tests.
///
/// # Example
///
/// ```
/// use np_testkit::Gen;
/// let mut g = Gen::new(42);
/// let n = g.usize_in(4, 16);
/// assert!((4..=16).contains(&n));
/// ```
pub struct Gen {
    rng: Rng64,
}

impl Gen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: Rng64::new(seed),
        }
    }

    /// Access to the underlying PRNG.
    pub fn rng(&mut self) -> &mut Rng64 {
        &mut self.rng
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.rng.gen_range(hi - lo + 1)
    }

    /// Uniform `u64` in `[0, bound)`.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        self.rng.gen_range(bound as usize) as u64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.gen_f64() * (hi - lo)
    }

    /// Fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }

    /// `true` with probability `p`.
    pub fn with_probability(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// A vector of `len` values drawn from `f`, with
    /// `len ∈ [len_lo, len_hi]`.
    pub fn vec_with<T>(
        &mut self,
        len_lo: usize,
        len_hi: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(len_lo, len_hi);
        (0..len).map(|_| f(self)).collect()
    }
}

/// Runs `prop` on `cases` generators derived from `base_seed`.
///
/// Each case gets its own [`Gen`] seeded with a value derived from
/// `base_seed` and the case index. If the property panics, the harness
/// reports the failing case seed (so the case can be replayed in
/// isolation with `Gen::new(seed)`) and re-raises the panic.
///
/// # Example
///
/// ```
/// np_testkit::check_cases(32, 0xC0FFEE, |g| {
///     let n = g.usize_in(1, 100);
///     assert!(n >= 1);
/// });
/// ```
pub fn check_cases(cases: usize, base_seed: u64, mut prop: impl FnMut(&mut Gen)) {
    for case in 0..cases as u64 {
        let seed = base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(case);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut g = Gen::new(seed);
            prop(&mut g);
        }));
        if let Err(payload) = result {
            eprintln!("property failed at case {case} (replay with Gen::new({seed:#x}))");
            resume_unwind(payload);
        }
    }
}

/// An arbitrary small hypergraph: 4–16 modules, 2–20 nets of 2–5 pins
/// each (after dedup), connected or not. The workhorse distribution for
/// theorem-level properties.
///
/// Draws are rejected-and-retried until at least two valid nets exist, so
/// the result is always a well-formed instance.
pub fn small_hypergraph(g: &mut Gen) -> Hypergraph {
    loop {
        let n = g.usize_in(4, 16);
        let num_nets = g.usize_in(2, 20);
        let mut b = HypergraphBuilder::new(n);
        let mut added = 0usize;
        for _ in 0..num_nets {
            let mut pins: Vec<u32> = g.vec_with(2, 5, |g| g.usize_in(0, n - 1) as u32);
            pins.sort_unstable();
            pins.dedup();
            if pins.len() >= 2 && b.add_net(pins.into_iter().map(ModuleId)).is_ok() {
                added += 1;
            }
        }
        if added >= 2 {
            if let Ok(hg) = b.finish() {
                return hg;
            }
        }
    }
}

/// An arbitrary *degenerate-friendly* small hypergraph: like
/// [`small_hypergraph`] but raw nets are passed to the builder without
/// pre-cleaning, so the instance may contain single-pin nets and nets
/// whose pin list repeats a module (the builder dedups those to smaller
/// nets, possibly down to one pin). Use this distribution to check that
/// downstream consumers — the graph-model builders in particular — stay
/// finite and well-formed on the degenerate inputs real netlists contain
/// (dangling stubs, power nets, multiply-connected pins).
///
/// At least one genuine (≥ 2 distinct pins) net is always present so the
/// instance is non-trivial, and at least one degenerate net is injected
/// so the property actually exercises the guards.
pub fn degenerate_hypergraph(g: &mut Gen) -> Hypergraph {
    loop {
        let n = g.usize_in(4, 16);
        let num_nets = g.usize_in(2, 20);
        let mut b = HypergraphBuilder::new(n);
        let mut genuine = 0usize;
        for _ in 0..num_nets {
            // Raw pins: no sort, no dedup — lengths down to 1 and repeated
            // modules are all fair game.
            let pins: Vec<ModuleId> = g.vec_with(1, 5, |g| ModuleId(g.usize_in(0, n - 1) as u32));
            let mut distinct: Vec<ModuleId> = pins.clone();
            distinct.sort_unstable();
            distinct.dedup();
            if b.add_net(pins).is_ok() && distinct.len() >= 2 {
                genuine += 1;
            }
        }
        // Guarantee at least one single-pin net and one duplicate-pin net.
        let m = ModuleId(g.usize_in(0, n - 1) as u32);
        let _ = b.add_net([m]);
        let _ = b.add_net([m, m, ModuleId(g.usize_in(0, n - 1) as u32)]);
        if genuine >= 1 {
            if let Ok(hg) = b.finish() {
                return hg;
            }
        }
    }
}

/// Brute-force reference k-way cut: the number of nets whose pins touch
/// more than one block, recomputed from nothing but the raw pin lists.
///
/// This is the oracle the k-way property suites check the incremental
/// machinery (`KwayCutTracker`, `KwayCutStats`) against: it shares no
/// code with the trackers, so agreement is evidence rather than
/// tautology. `labels[m]` is the block of module `m`.
///
/// # Panics
///
/// Panics if `labels` does not cover every module.
pub fn kway_reference_cut(hg: &Hypergraph, labels: &[u32]) -> usize {
    assert_eq!(
        labels.len(),
        hg.num_modules(),
        "one label per module required"
    );
    hg.nets()
        .filter(|&net| {
            let mut pins = hg.pins(net).iter();
            let first = match pins.next() {
                Some(m) => labels[m.index()],
                None => return false,
            };
            pins.any(|m| labels[m.index()] != first)
        })
        .count()
}

/// Like [`kway_reference_cut`] but also returns the per-block external
/// net counts (nets with pins both inside and outside the block), the
/// other half of the k-way ratio-cut objective.
pub fn kway_reference_externals(hg: &Hypergraph, labels: &[u32], k: usize) -> (usize, Vec<usize>) {
    assert_eq!(
        labels.len(),
        hg.num_modules(),
        "one label per module required"
    );
    let mut cut = 0usize;
    let mut external = vec![0usize; k];
    let mut touched = Vec::new();
    for net in hg.nets() {
        touched.clear();
        for m in hg.pins(net) {
            let b = labels[m.index()] as usize;
            if !touched.contains(&b) {
                touched.push(b);
            }
        }
        if touched.len() > 1 {
            cut += 1;
            for &b in &touched {
                external[b] += 1;
            }
        }
    }
    (cut, external)
}

/// An arbitrary small *pinned* k-way instance: a [`small_hypergraph`]
/// big enough for `k` blocks plus a random set of fixed (terminal)
/// modules, each pinned to a random block below `k`.
///
/// The draw leaves at least `k` modules free so every block can be
/// populated; between 1 and `k` modules are pinned (possibly several to
/// the same block — terminals cluster in real floorplans too).
///
/// # Panics
///
/// Panics if `k < 2` or `k > 8` (the [`small_hypergraph`] distribution
/// tops out at 16 modules, so more blocks could not all be populated).
pub fn pinned_instance(g: &mut Gen, k: usize) -> (Hypergraph, FixedModules) {
    assert!(k >= 2, "a pinned instance needs at least 2 blocks");
    assert!(k <= 8, "small instances cannot hold more than 8 blocks");
    let hg = loop {
        let hg = small_hypergraph(g);
        if hg.num_modules() >= 2 * k {
            break hg;
        }
    };
    let n = hg.num_modules();
    let mut fixed = FixedModules::free(n);
    let pins = g.usize_in(1, k);
    for _ in 0..pins {
        let m = ModuleId(g.usize_in(0, n - 1) as u32);
        let b = g.usize_in(0, k - 1);
        fixed.pin(m, b);
    }
    (hg, fixed)
}

/// A deterministic *banded* hypergraph: `nets` nets over `modules`
/// modules, where net `i` draws 2–4 distinct pins from a window of
/// `band` consecutive modules centered at position `i · modules / nets`.
///
/// Consecutive nets in the natural order `0, 1, …, nets − 1` therefore
/// share modules only within overlapping windows, so sweeping that order
/// moves each net into a *local* neighborhood of the intersection graph:
/// the per-move dirty region of the incremental sweep stays `O(band)`
/// while a from-scratch evaluation still pays `O(modules + nets)` per
/// split. This is the instance family the `bench --bin sweep` asymptotic
/// comparison runs on.
///
/// Bit-reproducible: same arguments, same hypergraph.
///
/// # Panics
///
/// Panics if `modules < 2`, `nets < 2` or `band < 2`.
pub fn banded_hypergraph(seed: u64, modules: usize, nets: usize, band: usize) -> Hypergraph {
    assert!(modules >= 2, "need at least 2 modules");
    assert!(nets >= 2, "need at least 2 nets");
    assert!(band >= 2, "band must span at least 2 modules");
    let band = band.min(modules);
    let mut g = Gen::new(seed);
    let mut b = HypergraphBuilder::new(modules);
    for i in 0..nets {
        let center = i * modules / nets;
        let lo = center.min(modules - band);
        let hi = lo + band - 1;
        loop {
            let mut pins: Vec<u32> = g.vec_with(2, 4, |g| g.usize_in(lo, hi) as u32);
            pins.sort_unstable();
            pins.dedup();
            if pins.len() >= 2 {
                b.add_net(pins.into_iter().map(ModuleId))
                    .expect("window pins are in range");
                break;
            }
        }
    }
    b.finish().expect("banded instance has nets")
}

/// One rung of the scalable banded benchmark ladder — see
/// [`band_ladder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BandSpec {
    /// Display name (`"band-S"` … `"band-XXL"`).
    pub name: &'static str,
    /// Generator seed; fixed per rung so every consumer sees the same
    /// instance forever.
    pub seed: u64,
    /// Module count.
    pub modules: usize,
    /// Net count.
    pub nets: usize,
    /// Band width (pin-window size) of [`banded_hypergraph`].
    pub band: usize,
}

impl BandSpec {
    /// Materializes the rung via [`banded_hypergraph`].
    pub fn build(&self) -> Hypergraph {
        banded_hypergraph(self.seed, self.modules, self.nets, self.band)
    }
}

/// The documented `band_xl` ladder: five banded instances from 1.5·10³
/// to 10⁶ modules, all with seed 17.
///
/// The first three rungs (band-S/M/L) are exactly the instances the
/// `bench --bin sweep` asymptotic comparison has always run on; band-XL
/// (1.5·10⁵ modules) and band-XXL (10⁶ modules) extend the family to the
/// scales only the multilevel V-cycle can handle. Every rung is
/// bit-reproducible from its `(seed, modules, nets, band)` tuple, so
/// benchmark numbers are comparable across machines and PRs.
pub fn band_ladder() -> [BandSpec; 5] {
    [
        BandSpec {
            name: "band-S",
            seed: 17,
            modules: 1_500,
            nets: 1_000,
            band: 8,
        },
        BandSpec {
            name: "band-M",
            seed: 17,
            modules: 4_500,
            nets: 3_000,
            band: 12,
        },
        BandSpec {
            name: "band-L",
            seed: 17,
            modules: 12_000,
            nets: 8_000,
            band: 16,
        },
        BandSpec {
            name: "band-XL",
            seed: 17,
            modules: 150_000,
            nets: 110_000,
            band: 24,
        },
        BandSpec {
            name: "band-XXL",
            seed: 17,
            modules: 1_000_000,
            nets: 750_000,
            band: 32,
        },
    ]
}

/// A deterministic two-level *hierarchical* hypergraph: `blocks` groups
/// of `modules_per_block` modules, each wired internally by
/// `intra_nets_per_block` banded 2–4-pin nets, plus `cross_nets` sparse
/// two-pin nets drawn between distinct blocks.
///
/// The planted block structure gives multilevel coarsening a natural
/// cluster hierarchy to discover, and gives property tests instances
/// whose good cuts are block-aligned (the only nets a block-respecting
/// partition can cut are the `cross_nets`).
///
/// Bit-reproducible: same arguments, same hypergraph.
///
/// # Panics
///
/// Panics if `blocks < 2`, `modules_per_block < 2`,
/// `intra_nets_per_block < 1` or `cross_nets < 1`.
pub fn hierarchical_hypergraph(
    seed: u64,
    blocks: usize,
    modules_per_block: usize,
    intra_nets_per_block: usize,
    cross_nets: usize,
) -> Hypergraph {
    assert!(blocks >= 2, "need at least 2 blocks");
    assert!(modules_per_block >= 2, "need at least 2 modules per block");
    assert!(
        intra_nets_per_block >= 1,
        "need at least 1 intra net per block"
    );
    assert!(cross_nets >= 1, "need at least 1 cross net");
    let mpb = modules_per_block;
    let band = 8usize.clamp(2, mpb);
    let mut g = Gen::new(seed);
    let mut b = HypergraphBuilder::new(blocks * mpb);
    for block in 0..blocks {
        let base = block * mpb;
        for i in 0..intra_nets_per_block {
            let center = i * mpb / intra_nets_per_block;
            let lo = base + center.min(mpb - band);
            let hi = lo + band - 1;
            loop {
                let mut pins: Vec<u32> = g.vec_with(2, 4, |g| g.usize_in(lo, hi) as u32);
                pins.sort_unstable();
                pins.dedup();
                if pins.len() >= 2 {
                    b.add_net(pins.into_iter().map(ModuleId))
                        .expect("block-window pins are in range");
                    break;
                }
            }
        }
    }
    for _ in 0..cross_nets {
        let ba = g.usize_in(0, blocks - 1);
        let bb = loop {
            let c = g.usize_in(0, blocks - 1);
            if c != ba {
                break c;
            }
        };
        let ma = (ba * mpb + g.usize_in(0, mpb - 1)) as u32;
        let mb = (bb * mpb + g.usize_in(0, mpb - 1)) as u32;
        b.add_net([ModuleId(ma), ModuleId(mb)])
            .expect("cross pins are in range");
    }
    b.finish().expect("hierarchical instance has nets")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_is_deterministic() {
        let mut a = Gen::new(9);
        let mut b = Gen::new(9);
        for _ in 0..50 {
            assert_eq!(a.usize_in(0, 1000), b.usize_in(0, 1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut g = Gen::new(1);
        for _ in 0..500 {
            let x = g.usize_in(3, 7);
            assert!((3..=7).contains(&x));
            let f = g.f64_in(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn small_hypergraphs_are_valid() {
        check_cases(64, 0x5EED, |g| {
            let hg = small_hypergraph(g);
            assert!((4..=16).contains(&hg.num_modules()));
            assert!(hg.num_nets() >= 2);
            for net in hg.nets() {
                assert!(hg.net_size(net) >= 2);
            }
        });
    }

    #[test]
    fn degenerate_hypergraphs_are_valid_and_degenerate() {
        check_cases(64, 0xDE6E, |g| {
            let hg = degenerate_hypergraph(g);
            assert!((4..=16).contains(&hg.num_modules()));
            // the injected dangling stub guarantees a single-pin net
            assert!(hg.nets().any(|net| hg.net_size(net) == 1));
            // and at least one genuine net survived
            assert!(hg.nets().any(|net| hg.net_size(net) >= 2));
        });
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_panics() {
        Gen::new(0).usize_in(5, 4);
    }

    #[test]
    fn banded_hypergraph_is_deterministic_and_local() {
        let a = banded_hypergraph(7, 100, 80, 8);
        let b = banded_hypergraph(7, 100, 80, 8);
        assert_eq!(a.num_modules(), 100);
        assert_eq!(a.num_nets(), 80);
        for net in a.nets() {
            let pins = a.pins(net);
            assert!(pins.len() >= 2);
            let lo = pins.iter().map(|m| m.index()).min().unwrap();
            let hi = pins.iter().map(|m| m.index()).max().unwrap();
            assert!(hi - lo < 8, "net {net:?} spans beyond its band");
            assert_eq!(pins, b.pins(net));
        }
    }

    #[test]
    fn reference_cut_counts_spanning_nets() {
        // path 0-1, 1-2, 2-3 with labels [0,0,1,1]: only net {1,2} spans
        let mut b = HypergraphBuilder::new(4);
        b.add_net([ModuleId(0), ModuleId(1)]).unwrap();
        b.add_net([ModuleId(1), ModuleId(2)]).unwrap();
        b.add_net([ModuleId(2), ModuleId(3)]).unwrap();
        let hg = b.finish().unwrap();
        assert_eq!(kway_reference_cut(&hg, &[0, 0, 1, 1]), 1);
        assert_eq!(kway_reference_cut(&hg, &[0, 1, 2, 3]), 3);
        assert_eq!(kway_reference_cut(&hg, &[5, 5, 5, 5]), 0);
        let (cut, ext) = kway_reference_externals(&hg, &[0, 0, 1, 1], 2);
        assert_eq!(cut, 1);
        assert_eq!(ext, vec![1, 1]);
        let (cut, ext) = kway_reference_externals(&hg, &[0, 1, 2, 3], 4);
        assert_eq!(cut, 3);
        assert_eq!(ext, vec![1, 2, 2, 1]);
    }

    #[test]
    fn pinned_instances_are_feasible() {
        check_cases(48, 0xF1CED, |g| {
            let k = g.usize_in(2, 8);
            let (hg, fixed) = pinned_instance(g, k);
            assert!(hg.num_modules() >= 2 * k);
            assert_eq!(fixed.len(), hg.num_modules());
            let pinned = fixed.pinned_count();
            assert!((1..=k).contains(&pinned));
            assert!(fixed.fits_k(k));
            assert!(hg.num_modules() - pinned >= k, "every block can fill");
        });
    }

    #[test]
    fn band_ladder_small_rungs_match_documented_shapes() {
        let ladder = band_ladder();
        assert_eq!(ladder.len(), 5);
        // band-S/M/L must stay the historical sweep-bench instances
        assert_eq!(
            (ladder[0].modules, ladder[0].nets, ladder[0].band),
            (1_500, 1_000, 8)
        );
        assert_eq!(
            (ladder[2].modules, ladder[2].nets, ladder[2].band),
            (12_000, 8_000, 16)
        );
        assert!(ladder.iter().all(|s| s.seed == 17));
        // the XL rungs reach the multilevel scales
        assert!(ladder[3].modules >= 100_000);
        assert!(ladder[4].modules >= 1_000_000);
        // building a small rung reproduces banded_hypergraph exactly
        let a = ladder[0].build();
        let b = banded_hypergraph(17, 1_500, 1_000, 8);
        assert_eq!(a.num_pins(), b.num_pins());
        for net in a.nets() {
            assert_eq!(a.pins(net), b.pins(net));
        }
    }

    #[test]
    fn hierarchical_hypergraph_is_deterministic_and_block_local() {
        let a = hierarchical_hypergraph(23, 4, 50, 60, 10);
        let b = hierarchical_hypergraph(23, 4, 50, 60, 10);
        assert_eq!(a.num_modules(), 200);
        assert_eq!(a.num_nets(), 4 * 60 + 10);
        let mut cross = 0usize;
        for net in a.nets() {
            assert_eq!(a.pins(net), b.pins(net));
            let pins = a.pins(net);
            let blocks: Vec<usize> = pins.iter().map(|m| m.index() / 50).collect();
            if blocks.windows(2).any(|w| w[0] != w[1]) {
                cross += 1;
                assert_eq!(pins.len(), 2, "cross nets are two-pin");
            }
        }
        assert_eq!(cross, 10, "exactly the planted cross nets span blocks");
    }

    #[test]
    fn banded_hypergraph_band_is_clamped() {
        let hg = banded_hypergraph(1, 4, 6, 100);
        assert_eq!(hg.num_modules(), 4);
        assert_eq!(hg.num_nets(), 6);
    }
}
