//! Row-sharded parallel application of sparse operators.
//!
//! The Lanczos inner loop is a chain of operator–vector products; on large
//! netlists the SpMV dominates wall-clock, and it parallelizes trivially
//! because output rows are independent. This module shards the row range
//! `0..n` into contiguous blocks, computes each block on its own OS thread
//! (`std::thread::scope`, no pool, no global state), and writes each block
//! into a disjoint `split_at_mut` slice of the output vector.
//!
//! # Determinism contract
//!
//! The sharded matvec is **bit-identical** to the serial one for every
//! thread count and every shard boundary, because each row's dot product
//! is accumulated *sequentially by exactly one thread* — parallelism only
//! distributes whole rows, never a single row's sum, so no floating-point
//! reduction order changes. The equivalence is property-tested at
//! `threads ∈ {1, 2, 8}` here and end-to-end in the workspace's
//! `tests/spectral.rs` suite.
//!
//! # Budget contract
//!
//! Shards perform **no** [`BudgetMeter`](crate::BudgetMeter) traffic. A
//! matvec is one unit of numerical work regardless of how many threads
//! executed it, so the caller charges the meter once per application at
//! its existing checkpoint (the Lanczos loop's `meter.charge(1)`), and
//! cancellation checks stay O(1) per iteration. Charging from inside the
//! shards would both over-report (k shards ≠ k matvecs) and multiply the
//! atomic traffic by the thread count.

use crate::{Laplacian, LinearOperator};

/// Resolves a user-facing thread-count knob: `0` means "all available
/// cores", anything else is clamped to the machine's core count. Always
/// returns `≥ 1`.
///
/// The clamp is a pure performance policy: a CPU-bound kernel gains
/// nothing from more threads than cores — the extra threads only add
/// spawn and scheduling overhead — and by the determinism contract the
/// results are bit-identical at every shard count, so requesting 8
/// threads on a 2-core machine is safely equivalent to requesting 2.
pub fn resolve_threads(requested: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if requested == 0 {
        cores
    } else {
        requested.min(cores)
    }
}

/// Splits `0..n` into at most `shards` contiguous, non-empty, disjoint
/// ranges covering the whole interval, as `(lo, hi)` pairs in order.
///
/// Used both by the threaded matvec (row blocks) and by the sharded graph
/// builders in `np-core` (net/module blocks). The first `n % shards`
/// blocks get one extra element, so block sizes differ by at most one.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.clamp(1, n.max(1));
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut lo = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        if len == 0 {
            break;
        }
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

/// Minimum dimension at which sharding pays for the thread spawns; below
/// it the threaded operator silently runs serially (the result is
/// bit-identical either way).
const MIN_PARALLEL_DIM: usize = 128;

/// A borrowed [`Laplacian`] whose [`apply`](LinearOperator::apply) shards
/// the output rows over `threads` OS threads.
///
/// Output is bit-identical to the serial operator for every thread count
/// (see the [module docs](crate::parallel) for the argument), so the
/// eigensolver's results — values, vectors, iteration counts, metered
/// spend — do not depend on `threads`.
///
/// # Example
///
/// ```
/// use np_sparse::{Laplacian, LinearOperator, TripletBuilder};
///
/// let mut b = TripletBuilder::new(3);
/// b.push_sym(0, 1, 1.0);
/// b.push_sym(1, 2, 1.0);
/// let q = Laplacian::from_adjacency(b.into_csr());
/// let x = [2.0, 0.0, -1.0];
/// let (mut y1, mut y8) = (vec![0.0; 3], vec![0.0; 3]);
/// q.apply(&x, &mut y1);
/// q.threaded(8).apply(&x, &mut y8);
/// assert_eq!(y1, y8);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ThreadedLaplacian<'a> {
    inner: &'a Laplacian,
    threads: usize,
}

impl<'a> ThreadedLaplacian<'a> {
    /// Wraps `inner`, sharding every matvec over `threads` threads
    /// (`0` = all available cores; counts above the core count are
    /// clamped, see [`resolve_threads`]).
    pub fn new(inner: &'a Laplacian, threads: usize) -> Self {
        ThreadedLaplacian {
            inner,
            threads: resolve_threads(threads),
        }
    }

    /// The wrapped operator.
    pub fn inner(&self) -> &'a Laplacian {
        self.inner
    }

    /// The resolved shard count (never 0).
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl LinearOperator for ThreadedLaplacian<'_> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let n = self.inner.dim();
        assert_eq!(x.len(), n, "input vector dimension mismatch");
        assert_eq!(y.len(), n, "output vector dimension mismatch");
        if self.threads <= 1 || n < MIN_PARALLEL_DIM {
            self.inner.apply(x, y);
            return;
        }
        let blocks = shard_ranges(n, self.threads);
        std::thread::scope(|scope| {
            let mut rest = y;
            for &(lo, hi) in &blocks {
                let (block, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                let q = self.inner;
                scope.spawn(move || q.apply_rows(lo, x, block));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Budget, BudgetMeter, TripletBuilder};

    fn ring_laplacian(n: usize, chords: usize) -> Laplacian {
        let mut b = TripletBuilder::new(n);
        for i in 0..n {
            b.push_sym(i, (i + 1) % n, 1.0 + (i % 7) as f64 * 0.25);
        }
        for k in 0..chords {
            let i = (k * 37) % n;
            let j = (k * 61 + 5) % n;
            if i != j {
                b.push_sym(i, j, 0.125 + (k % 3) as f64);
            }
        }
        Laplacian::from_adjacency(b.into_csr())
    }

    fn test_vector(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 2654435761) % 1000) as f64 / 333.0 - 1.5)
            .collect()
    }

    #[test]
    fn shard_ranges_cover_and_are_disjoint() {
        for n in [0usize, 1, 2, 7, 128, 1000] {
            for shards in [1usize, 2, 3, 8, 200] {
                let blocks = shard_ranges(n, shards);
                let mut expect_lo = 0;
                for &(lo, hi) in &blocks {
                    assert_eq!(lo, expect_lo, "gap/overlap at n={n} shards={shards}");
                    assert!(hi > lo, "empty block at n={n} shards={shards}");
                    expect_lo = hi;
                }
                assert_eq!(expect_lo, n, "ranges must cover 0..{n}");
                assert!(blocks.len() <= shards.max(1));
            }
        }
    }

    #[test]
    fn threaded_apply_bit_identical_to_serial() {
        // above and below MIN_PARALLEL_DIM, ragged and even splits
        for n in [16usize, 127, 128, 257, 1024] {
            let q = ring_laplacian(n, n / 2);
            let x = test_vector(n);
            let mut serial = vec![0.0; n];
            q.apply(&x, &mut serial);
            for threads in [1usize, 2, 8] {
                let mut par = vec![0.0; n];
                q.threaded(threads).apply(&x, &mut par);
                assert_eq!(serial, par, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn resolve_threads_zero_means_all_cores_and_clamps() {
        let cores = resolve_threads(0);
        assert!(cores >= 1);
        assert_eq!(resolve_threads(1), 1);
        // literal requests are honoured up to the core count, then clamped
        assert_eq!(resolve_threads(5), 5.min(cores));
        assert_eq!(resolve_threads(usize::MAX), cores);
    }

    #[test]
    fn threaded_metered_spend_matches_serial() {
        // the budget contract: one charge per matvec at the call site,
        // independent of the shard count
        let n = 300;
        let q = ring_laplacian(n, 40);
        let x = test_vector(n);
        let spend_with = |threads: usize| {
            let meter = BudgetMeter::new(&Budget::default().with_matvecs(1000));
            let op = q.threaded(threads);
            let mut y = vec![0.0; n];
            for _ in 0..10 {
                op.apply(&x, &mut y);
                meter.charge(1).unwrap();
            }
            meter.matvecs_used()
        };
        let serial = spend_with(1);
        assert_eq!(serial, 10);
        for threads in [2usize, 8] {
            assert_eq!(spend_with(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn append_merge_matches_serial_build() {
        // the shard/merge determinism contract for graph builders: filling
        // per-shard builders over contiguous chunks and appending them in
        // chunk order yields the same CSR as one serial pass
        let n = 50;
        let pushes: Vec<(usize, usize, f64)> = (0..400)
            .map(|k| ((k * 17) % n, (k * 29 + 3) % n, 0.5 + (k % 5) as f64))
            .collect();
        let mut serial = TripletBuilder::new(n);
        for &(i, j, w) in &pushes {
            serial.push_sym(i, j, w);
        }
        let serial = serial.into_csr();
        for shards in [1usize, 2, 8] {
            let mut merged = TripletBuilder::new(n);
            for (lo, hi) in shard_ranges(pushes.len(), shards) {
                let mut part = TripletBuilder::new(n);
                for &(i, j, w) in &pushes[lo..hi] {
                    part.push_sym(i, j, w);
                }
                merged.append(part);
            }
            assert_eq!(merged.into_csr(), serial, "shards={shards}");
        }
    }

    #[test]
    #[should_panic(expected = "different dimensions")]
    fn append_dimension_mismatch_panics() {
        let mut a = TripletBuilder::new(3);
        a.append(TripletBuilder::new(4));
    }
}
