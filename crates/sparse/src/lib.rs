//! Sparse symmetric matrices and linear operators for spectral partitioning.
//!
//! The spectral methods in this reproduction need exactly one numerical
//! kernel: repeated multiplication of a sparse symmetric operator (a graph
//! Laplacian `Q = D − A`) against dense vectors, inside a Lanczos
//! iteration. This crate provides:
//!
//! * [`CsrMatrix`] — compressed sparse row storage built from (possibly
//!   duplicated) triplets;
//! * [`Laplacian`] — the operator `Q = D − A` kept in factored form
//!   (adjacency + degree vector), so building it never materializes the
//!   diagonal into the sparsity pattern;
//! * [`LinearOperator`] — the abstraction the eigensolver works against;
//! * [`parallel`] — row-sharded multi-threaded matvec
//!   ([`ThreadedLaplacian`]) whose output is bit-identical to the serial
//!   operator for every thread count;
//! * [`vecops`] — the handful of dense-vector kernels (dot, axpy, norms)
//!   Lanczos needs.
//!
//! Netlist graphs are very sparse ("due to hierarchical circuit organization
//! and degree bounds imposed by the technology fanout limits", paper §1.1
//! fn. 1), which is what makes the Lanczos approach practical; the paper's
//! sparsity argument for the intersection graph (§1.2) is measured in terms
//! of the [`CsrMatrix::nnz`] of the two representations.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
mod csr;
mod laplacian;
mod operator;
pub mod parallel;
pub mod vecops;

pub use budget::{Budget, BudgetExceeded, BudgetMeter, BudgetResource};
pub use csr::{CsrMatrix, IndexOverflow, TripletBuilder};
pub use laplacian::Laplacian;
pub use operator::LinearOperator;
pub use parallel::{resolve_threads, shard_ranges, ThreadedLaplacian};
