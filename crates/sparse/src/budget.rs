//! Cooperative resource budgets for the numerical kernels.
//!
//! Long-running stages — Lanczos matvec loops, the IG-Match split sweep,
//! FM passes — periodically *charge* a shared [`BudgetMeter`] and bail
//! out with [`BudgetExceeded`] when the caller's limits are spent. The
//! meter is cheap enough to consult inside inner loops (an atomic add
//! plus, for the wall clock, one `Instant::now` per check) and is `Sync`,
//! so one meter can be threaded through an entire partitioning attempt
//! regardless of how the work is structured.
//!
//! Budgets are *cooperative*: code must call [`BudgetMeter::charge`] /
//! [`BudgetMeter::check`] at its natural checkpoints. All kernels in this
//! workspace do so at per-iteration granularity, which bounds overshoot
//! to a single iteration's work.
//!
//! # Sharing one allowance across threads
//!
//! A meter is a cheap handle over shared state ([`Clone`] just bumps an
//! `Arc`), so a multi-threaded caller — the `np-runner` portfolio
//! executor, a server handling one request on several workers — can hand
//! every thread a clone and all of them observe the *same* deadline,
//! charge the *same* matvec pool, and see the *same*
//! [cancellation flag](BudgetMeter::cancel). [`BudgetMeter::tributary`]
//! additionally gives a handle its own local tally, so per-thread (or
//! per-attempt) spend can be read back exactly even though the pool is
//! global.
//!
//! # Batched charging from sharded kernels
//!
//! A kernel that internally fans one unit of work out over several
//! threads — the row-sharded matvec of [`crate::parallel`] — must *not*
//! charge the meter from its shards: `k` shards would report `k`
//! matvec-equivalents for one actual matvec, over-reporting spend and
//! multiplying the atomic traffic (and cancellation checks) by the shard
//! count. The contract is that shards stay meter-silent and the *caller*
//! charges once per logical unit at its existing per-iteration
//! checkpoint, keeping accounting exact and cancellation checks O(1) per
//! iteration regardless of the thread count.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Resource limits for one partitioning attempt. `None` means unlimited.
///
/// # Example
///
/// ```
/// use np_sparse::{Budget, BudgetMeter};
/// use std::time::Duration;
///
/// let budget = Budget::default().with_matvecs(100);
/// let meter = BudgetMeter::new(&budget);
/// assert!(meter.charge(99).is_ok());
/// assert!(meter.charge(99).is_err());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum wall-clock time for the attempt.
    pub wall_clock: Option<Duration>,
    /// Maximum number of operator–vector products (the unit of numerical
    /// work in this workspace; non-numerical stages charge comparable
    /// units, e.g. one per sweep position or FM pass).
    pub matvecs: Option<u64>,
}

impl Budget {
    /// An unlimited budget.
    pub const UNLIMITED: Budget = Budget {
        wall_clock: None,
        matvecs: None,
    };

    /// Sets the wall-clock limit.
    pub fn with_wall_clock(mut self, limit: Duration) -> Self {
        self.wall_clock = Some(limit);
        self
    }

    /// Sets the matvec limit.
    pub fn with_matvecs(mut self, limit: u64) -> Self {
        self.matvecs = Some(limit);
        self
    }

    /// `true` if neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.wall_clock.is_none() && self.matvecs.is_none()
    }
}

/// Which resource ran out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetResource {
    /// The wall-clock deadline passed.
    WallClock,
    /// The matvec allowance was spent.
    Matvecs,
    /// The run was cooperatively cancelled ([`BudgetMeter::cancel`]) —
    /// e.g. a parallel portfolio already reached its target and asked
    /// in-flight attempts to stop.
    Cancelled,
}

/// Returned when a [`BudgetMeter`] limit is hit, carrying the partial
/// progress made up to that point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BudgetExceeded {
    /// The exhausted resource.
    pub resource: BudgetResource,
    /// Matvec-equivalents charged before exhaustion.
    pub matvecs_used: u64,
    /// Wall-clock time elapsed since the meter was created.
    pub elapsed: Duration,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.resource {
            BudgetResource::WallClock => "wall-clock budget",
            BudgetResource::Matvecs => "matvec budget",
            BudgetResource::Cancelled => "run cancelled",
        };
        write!(
            f,
            "{what} exceeded after {:?} and {} matvecs",
            self.elapsed, self.matvecs_used
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// The state shared by every handle of one metering scope.
#[derive(Debug)]
struct MeterCore {
    started: Instant,
    deadline: Option<Instant>,
    matvec_cap: Option<u64>,
    /// Global matvec pool; every handle of the scope charges it.
    pool: AtomicU64,
    /// Cooperative cancellation flag; once set, every handle trips.
    cancelled: AtomicBool,
}

/// Tracks spending against a [`Budget`]. `Sync`, so one meter can be
/// shared by reference across the whole attempt; additionally a cheap
/// *handle*: [`Clone`] produces a second handle over the same deadline,
/// matvec pool and cancellation flag, so threads can own their handle
/// instead of borrowing (`'static` spawns, async tasks).
///
/// [`tributary`](BudgetMeter::tributary) forks a handle with its own
/// local tally for exact per-worker accounting.
#[derive(Clone, Debug)]
pub struct BudgetMeter {
    core: Arc<MeterCore>,
    /// This handle's own tally (shared with clones, fresh in
    /// tributaries). The pool, not this, is what limits are checked
    /// against.
    local: Arc<AtomicU64>,
}

impl BudgetMeter {
    /// Creates a meter for `budget`, starting the wall clock now.
    pub fn new(budget: &Budget) -> Self {
        let started = Instant::now();
        BudgetMeter {
            core: Arc::new(MeterCore {
                started,
                deadline: budget.wall_clock.map(|d| started + d),
                matvec_cap: budget.matvecs,
                pool: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
            }),
            local: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A meter that never trips (but can still be
    /// [cancelled](BudgetMeter::cancel)).
    pub fn unlimited() -> Self {
        BudgetMeter::new(&Budget::UNLIMITED)
    }

    /// A handle over the same deadline, matvec pool and cancellation flag
    /// but with a *fresh local tally*: charges made through the tributary
    /// count against the shared limits as usual, while
    /// [`local_used`](BudgetMeter::local_used) reads back exactly what
    /// this tributary charged. The `np-runner` portfolio executor gives
    /// each attempt a tributary to report per-attempt spend.
    #[must_use]
    pub fn tributary(&self) -> BudgetMeter {
        BudgetMeter {
            core: Arc::clone(&self.core),
            local: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Charges `n` matvec-equivalents and then checks both limits.
    ///
    /// The counter saturates at `u64::MAX` rather than wrapping, so an
    /// absurd charge can never roll an exhausted meter back under its cap.
    pub fn charge(&self, n: u64) -> Result<(), BudgetExceeded> {
        // fetch_update with a total closure always succeeds
        let _ = self
            .core
            .pool
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
        let _ = self
            .local
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
        self.check()
    }

    /// Checks cancellation and both limits without charging.
    ///
    /// The wall clock is sampled exactly once per check from the same
    /// monotonic [`Instant`] timeline the deadline was derived from, and
    /// that single sample is also used for the reported `elapsed`, so a
    /// tripped check can never report an elapsed time that contradicts
    /// the deadline it tripped on.
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        let used = self.matvecs_used();
        if self.is_cancelled() {
            return Err(self.exceeded(BudgetResource::Cancelled, used));
        }
        if let Some(cap) = self.core.matvec_cap {
            if used >= cap {
                return Err(self.exceeded(BudgetResource::Matvecs, used));
            }
        }
        if let Some(deadline) = self.core.deadline {
            let now = Instant::now();
            if now >= deadline {
                return Err(BudgetExceeded {
                    resource: BudgetResource::WallClock,
                    matvecs_used: used,
                    elapsed: now.duration_since(self.core.started),
                });
            }
        }
        Ok(())
    }

    /// Cooperatively cancels every handle of this metering scope: all
    /// subsequent [`check`](BudgetMeter::check) /
    /// [`charge`](BudgetMeter::charge) calls — on this handle, its
    /// clones and its tributaries — fail with
    /// [`BudgetResource::Cancelled`]. Like exhaustion, cancellation is
    /// permanent for the scope.
    pub fn cancel(&self) {
        self.core.cancelled.store(true, Ordering::Relaxed);
    }

    /// `true` once [`cancel`](BudgetMeter::cancel) has been called on any
    /// handle of this scope.
    pub fn is_cancelled(&self) -> bool {
        self.core.cancelled.load(Ordering::Relaxed)
    }

    /// Matvec-equivalents charged so far against the shared pool (all
    /// handles of the scope combined).
    pub fn matvecs_used(&self) -> u64 {
        self.core.pool.load(Ordering::Relaxed)
    }

    /// Matvec-equivalents charged through *this* handle (and its clones)
    /// since it was created — for the root meter this equals
    /// [`matvecs_used`](BudgetMeter::matvecs_used) unless tributaries
    /// exist.
    pub fn local_used(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }

    /// Wall-clock time since the meter was created.
    pub fn elapsed(&self) -> Duration {
        self.core.started.elapsed()
    }

    fn exceeded(&self, resource: BudgetResource, used: u64) -> BudgetExceeded {
        BudgetExceeded {
            resource,
            matvecs_used: used,
            elapsed: self.elapsed(),
        }
    }
}

impl Default for BudgetMeter {
    fn default() -> Self {
        BudgetMeter::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let m = BudgetMeter::unlimited();
        for _ in 0..1000 {
            m.charge(1_000_000).unwrap();
        }
        assert_eq!(m.matvecs_used(), 1_000_000_000);
    }

    #[test]
    fn matvec_cap_trips_with_diagnostics() {
        let m = BudgetMeter::new(&Budget::default().with_matvecs(10));
        m.charge(5).unwrap();
        let e = m.charge(5).unwrap_err();
        assert_eq!(e.resource, BudgetResource::Matvecs);
        assert_eq!(e.matvecs_used, 10);
    }

    #[test]
    fn elapsed_deadline_trips() {
        let m = BudgetMeter::new(&Budget::default().with_wall_clock(Duration::ZERO));
        let e = m.check().unwrap_err();
        assert_eq!(e.resource, BudgetResource::WallClock);
    }

    #[test]
    fn meter_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<BudgetMeter>();
    }

    #[test]
    fn display_mentions_resource() {
        let m = BudgetMeter::new(&Budget::default().with_matvecs(1));
        let e = m.charge(2).unwrap_err();
        assert!(e.to_string().contains("matvec budget"));
    }

    #[test]
    fn charge_exactly_to_cap_exhausts() {
        // the boundary is inclusive: spending the whole allowance trips
        let m = BudgetMeter::new(&Budget::default().with_matvecs(10));
        let e = m.charge(10).unwrap_err();
        assert_eq!(e.resource, BudgetResource::Matvecs);
        assert_eq!(e.matvecs_used, 10);
    }

    #[test]
    fn charge_to_one_below_cap_survives() {
        let m = BudgetMeter::new(&Budget::default().with_matvecs(10));
        m.charge(9).unwrap();
        m.check().unwrap();
        assert_eq!(m.matvecs_used(), 9);
    }

    #[test]
    fn exhausted_meter_stays_exhausted() {
        let m = BudgetMeter::new(&Budget::default().with_matvecs(3));
        assert!(m.charge(3).is_err());
        for _ in 0..5 {
            assert!(m.check().is_err(), "an exhausted meter must not recover");
            assert!(m.charge(0).is_err());
        }
    }

    #[test]
    fn zero_cap_trips_immediately() {
        let m = BudgetMeter::new(&Budget::default().with_matvecs(0));
        assert!(m.check().is_err());
        assert_eq!(m.matvecs_used(), 0);
    }

    #[test]
    fn charge_saturates_instead_of_wrapping() {
        // a wrapped counter would dip back under the cap and "un-exhaust"
        let m = BudgetMeter::new(&Budget::default().with_matvecs(100));
        assert!(m.charge(u64::MAX).is_err());
        assert!(m.charge(u64::MAX).is_err());
        assert_eq!(m.matvecs_used(), u64::MAX);
    }

    #[test]
    fn wall_clock_error_elapsed_consistent_with_deadline() {
        // the elapsed reported by a wall-clock trip comes from the same
        // Instant sample that beat the deadline, so it can never be
        // shorter than the configured limit
        let limit = Duration::from_millis(1);
        let m = BudgetMeter::new(&Budget::default().with_wall_clock(limit));
        std::thread::sleep(Duration::from_millis(2));
        let e = m.check().unwrap_err();
        assert_eq!(e.resource, BudgetResource::WallClock);
        assert!(
            e.elapsed >= limit,
            "elapsed {:?} < limit {limit:?}",
            e.elapsed
        );
    }

    #[test]
    fn clones_share_pool_deadline_and_cancel() {
        let m = BudgetMeter::new(&Budget::default().with_matvecs(10));
        let h = m.clone();
        m.charge(4).unwrap();
        h.charge(4).unwrap();
        assert_eq!(m.matvecs_used(), 8);
        assert_eq!(h.matvecs_used(), 8);
        assert_eq!(m.local_used(), 8, "clones share the local tally too");
        assert!(h.charge(2).is_err());
        assert!(m.check().is_err(), "exhaustion is visible on every handle");
    }

    #[test]
    fn tributaries_tally_locally_but_charge_the_pool() {
        let root = BudgetMeter::new(&Budget::default().with_matvecs(100));
        let a = root.tributary();
        let b = root.tributary();
        a.charge(7).unwrap();
        b.charge(11).unwrap();
        assert_eq!(a.local_used(), 7);
        assert_eq!(b.local_used(), 11);
        assert_eq!(root.local_used(), 0, "root never charged anything itself");
        assert_eq!(root.matvecs_used(), 18, "the pool sees every tributary");
    }

    #[test]
    fn cancel_trips_every_handle_within_one_check() {
        let root = BudgetMeter::unlimited();
        let trib = root.tributary();
        let clone = root.clone();
        assert!(trib.check().is_ok());
        clone.cancel();
        for h in [&root, &trib, &clone] {
            let e = h.check().unwrap_err();
            assert_eq!(e.resource, BudgetResource::Cancelled);
            assert!(h.is_cancelled());
        }
        assert!(
            root.charge(1).is_err(),
            "cancellation is permanent for the scope"
        );
        assert!(trib.check().unwrap_err().to_string().contains("cancelled"));
    }

    #[test]
    fn tributary_shares_the_deadline_timeline() {
        let root = BudgetMeter::new(&Budget::default().with_wall_clock(Duration::ZERO));
        let trib = root.tributary();
        assert_eq!(
            trib.check().unwrap_err().resource,
            BudgetResource::WallClock
        );
    }
}
