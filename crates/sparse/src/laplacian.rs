//! The graph Laplacian operator `Q = D − A` in factored form.

use crate::{CsrMatrix, LinearOperator};

/// The Laplacian `Q = D − A` of a weighted undirected graph, stored as the
/// adjacency matrix plus its degree vector.
///
/// `Q` is symmetric positive semidefinite; for a connected graph its
/// nullspace is spanned by the all-ones vector and its second-smallest
/// eigenvalue `λ₂` lower-bounds the optimal ratio cut
/// (`c ≥ λ₂ / n`, Hagen–Kahng Theorem 1 as restated in the paper §1.1).
///
/// # Example
///
/// ```
/// use np_sparse::{Laplacian, LinearOperator, TripletBuilder};
///
/// // path graph 0-1-2 with unit weights
/// let mut b = TripletBuilder::new(3);
/// b.push_sym(0, 1, 1.0);
/// b.push_sym(1, 2, 1.0);
/// let q = Laplacian::from_adjacency(b.into_csr());
///
/// // Q · 1 = 0
/// let mut y = vec![0.0; 3];
/// q.apply(&[1.0, 1.0, 1.0], &mut y);
/// assert!(y.iter().all(|v| v.abs() < 1e-15));
/// ```
#[derive(Clone, Debug)]
pub struct Laplacian {
    adjacency: CsrMatrix,
    degrees: Vec<f64>,
}

impl Laplacian {
    /// Builds the Laplacian of the graph with the given (symmetric)
    /// adjacency matrix. Degrees are the adjacency row sums.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `adjacency` is symmetric.
    pub fn from_adjacency(adjacency: CsrMatrix) -> Self {
        debug_assert!(
            adjacency.is_symmetric(1e-9),
            "Laplacian requires a symmetric adjacency matrix"
        );
        let degrees = adjacency.row_sums();
        Laplacian { adjacency, degrees }
    }

    /// The underlying adjacency matrix `A`.
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adjacency
    }

    /// The degree vector `d` (diagonal of `D`).
    pub fn degrees(&self) -> &[f64] {
        &self.degrees
    }

    /// Number of structurally nonzero off-diagonal entries of `A`.
    pub fn nnz(&self) -> usize {
        self.adjacency.nnz()
    }

    /// Computes rows `lo..lo + out.len()` of `(D − A)·x` into `out` — the
    /// per-shard kernel of the row-sharded parallel matvec (see
    /// [`crate::parallel`]). Covering `0..dim()` with disjoint ranges
    /// reproduces [`apply`](LinearOperator::apply) bit for bit, because
    /// each row is still accumulated sequentially by exactly one caller.
    ///
    /// The degree term is **fused into the gather loop**: each output
    /// element is finished as `d[r]·x[r] − Σ A[r,c]·x[c]` while the row is
    /// hot, removing the second streaming pass over `out` the unfused form
    /// needed — bit-identical, since the expression per element is
    /// unchanged. Operators whose adjacency prefers the cache-blocked
    /// kernel ([`CsrMatrix::spmv_prefers_blocked`]) instead use that
    /// kernel plus the separate degree pass (the blocked gather wins
    /// more there than the extra pass costs), which computes the same
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()` or the row range exceeds the operator.
    pub fn apply_rows(&self, lo: usize, x: &[f64], out: &mut [f64]) {
        let n = self.degrees.len();
        if self.adjacency.spmv_prefers_blocked() {
            self.adjacency.apply_rows(lo, x, out);
            for (k, v) in out.iter_mut().enumerate() {
                let r = lo + k;
                *v = self.degrees[r] * x[r] - *v;
            }
        } else {
            assert_eq!(x.len(), n, "input vector dimension mismatch");
            assert!(lo + out.len() <= n, "row range out of bounds");
            for (k, dst) in out.iter_mut().enumerate() {
                let r = lo + k;
                let (cols, vals) = self.adjacency.row(r);
                let mut acc = 0.0;
                for (&c, &v) in cols.iter().zip(vals) {
                    acc += v * x[c as usize];
                }
                *dst = self.degrees[r] * x[r] - acc;
            }
        }
    }

    /// Wraps this Laplacian in a [`ThreadedLaplacian`](crate::ThreadedLaplacian)
    /// that shards every matvec over `threads` OS threads (`0` = all
    /// available cores). The threaded operator's output is bit-identical
    /// to serial [`apply`](LinearOperator::apply) for every thread count.
    pub fn threaded(&self, threads: usize) -> crate::ThreadedLaplacian<'_> {
        crate::ThreadedLaplacian::new(self, threads)
    }

    /// The quadratic form `xᵀQx = ½ Σ_ij A_ij (x_i − x_j)²` (Hall's
    /// placement objective, paper Appendix A). Always `≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        let mut y = vec![0.0; x.len()];
        self.apply(x, &mut y);
        x.iter().zip(&y).map(|(a, b)| a * b).sum()
    }
}

impl LinearOperator for Laplacian {
    fn dim(&self) -> usize {
        self.degrees.len()
    }

    /// Computes `y = (D − A) x` without ever forming `D − A` explicitly,
    /// via the fused [`apply_rows`](Laplacian::apply_rows) kernel.
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(
            y.len(),
            self.degrees.len(),
            "output vector dimension mismatch"
        );
        self.apply_rows(0, x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletBuilder;

    fn path3() -> Laplacian {
        let mut b = TripletBuilder::new(3);
        b.push_sym(0, 1, 1.0);
        b.push_sym(1, 2, 1.0);
        Laplacian::from_adjacency(b.into_csr())
    }

    #[test]
    fn ones_in_nullspace() {
        let q = path3();
        let mut y = vec![0.0; 3];
        q.apply(&[1.0; 3], &mut y);
        assert!(y.iter().all(|v| v.abs() < 1e-15));
    }

    #[test]
    fn matches_explicit_laplacian() {
        // Q(path3) = [[1,-1,0],[-1,2,-1],[0,-1,1]]
        let q = path3();
        let x = [2.0, 0.0, -1.0];
        let mut y = vec![0.0; 3];
        q.apply(&x, &mut y);
        assert_eq!(y, vec![2.0, -1.0, -1.0]); // middle row: -2 + 0 + 1
    }

    #[test]
    fn quadratic_form_nonnegative_and_exact() {
        let q = path3();
        // xᵀQx = (x0-x1)² + (x1-x2)²
        let x = [3.0, 1.0, -2.0];
        let expect = (3.0f64 - 1.0).powi(2) + (1.0f64 + 2.0).powi(2);
        assert!((q.quadratic_form(&x) - expect).abs() < 1e-12);
        assert!(q.quadratic_form(&[0.4, -0.9, 7.0]) >= 0.0);
    }

    #[test]
    fn degrees_are_row_sums() {
        let q = path3();
        assert_eq!(q.degrees(), &[1.0, 2.0, 1.0]);
    }

    #[test]
    fn weighted_graph_degrees() {
        let mut b = TripletBuilder::new(2);
        b.push_sym(0, 1, 2.5);
        let q = Laplacian::from_adjacency(b.into_csr());
        assert_eq!(q.degrees(), &[2.5, 2.5]);
        let mut y = vec![0.0; 2];
        q.apply(&[1.0, -1.0], &mut y);
        assert_eq!(y, vec![5.0, -5.0]);
    }
}
