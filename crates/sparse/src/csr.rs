//! Compressed sparse row matrices built from triplets.
//!
//! Storage uses `u32` row offsets and column indices — half the index
//! footprint of `usize` on 64-bit targets, which matters because SpMV on
//! netlist graphs is memory-bound: the kernel streams `(col_idx, values)`
//! and gathers from `x`, so index bytes are bandwidth. Construction rejects
//! dimensions that would overflow the `u32` index space with a typed
//! [`IndexOverflow`] error instead of silently truncating.

use crate::LinearOperator;
use std::fmt;

/// Error: a matrix dimension would require indices `≥ u32::MAX`, which the
/// `u32`-indexed CSR storage cannot represent without truncation.
///
/// (`u32::MAX` itself is excluded too — downstream code uses it as a
/// sentinel.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexOverflow {
    /// The rejected dimension.
    pub dim: usize,
}

impl fmt::Display for IndexOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix dimension {} exceeds the u32 index space (max {})",
            self.dim,
            u32::MAX
        )
    }
}

impl std::error::Error for IndexOverflow {}

/// Accumulator for matrix entries in coordinate (triplet) form.
///
/// Duplicate `(i, j)` entries are *summed* when converting to CSR, which is
/// exactly the semantics needed when assembling graph adjacency matrices
/// from per-net or per-module contributions (clique model, intersection
/// graph weighting).
///
/// # Example
///
/// ```
/// use np_sparse::TripletBuilder;
///
/// let mut b = TripletBuilder::new(3);
/// b.push_sym(0, 1, 0.5);
/// b.push_sym(0, 1, 0.25); // accumulates
/// b.push_sym(1, 2, 1.0);
/// let m = b.into_csr();
/// assert_eq!(m.nnz(), 4); // (0,1),(1,0),(1,2),(2,1)
/// assert_eq!(m.get(0, 1), 0.75);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TripletBuilder {
    n: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl TripletBuilder {
    /// Creates a builder for an `n × n` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the `u32` index space (see
    /// [`try_new`](TripletBuilder::try_new) for the fallible form).
    pub fn new(n: usize) -> Self {
        Self::try_new(n).expect("matrix dimension overflows the u32 index space")
    }

    /// Creates a builder for an `n × n` matrix, rejecting dimensions whose
    /// indices would not fit the `u32` storage.
    ///
    /// # Errors
    ///
    /// [`IndexOverflow`] if `n > u32::MAX as usize` (indices must stay
    /// `< u32::MAX`; the max value is reserved as a sentinel downstream).
    pub fn try_new(n: usize) -> Result<Self, IndexOverflow> {
        if n > u32::MAX as usize {
            return Err(IndexOverflow { dim: n });
        }
        Ok(TripletBuilder {
            n,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of raw triplets accumulated so far (before duplicate
    /// summing).
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Returns `true` if no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Adds `value` at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "triplet index out of range");
        // `try_new` bounds n, so these can only fire if the invariant is
        // broken — the guard against silent `as u32` truncation.
        debug_assert!(row < u32::MAX as usize, "row index would truncate to u32");
        debug_assert!(
            col < u32::MAX as usize,
            "column index would truncate to u32"
        );
        self.rows.push(row as u32);
        self.cols.push(col as u32);
        self.vals.push(value);
    }

    /// Adds `value` at `(row, col)` *and* `(col, row)`; for diagonal
    /// entries adds the value once.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn push_sym(&mut self, row: usize, col: usize, value: f64) {
        self.push(row, col, value);
        if row != col {
            self.push(col, row, value);
        }
    }

    /// Appends every triplet of `other` to this builder, preserving
    /// `other`'s push order.
    ///
    /// This is the merge step of the sharded parallel graph builders:
    /// each shard accumulates its own builder over a contiguous slice of
    /// the source items, and the shards are appended *in shard order*, so
    /// the merged triplet sequence is identical to what a serial build
    /// over the whole range would have pushed — and therefore
    /// [`into_csr`](TripletBuilder::into_csr) is bit-identical too.
    ///
    /// # Panics
    ///
    /// Panics if the two builders have different dimensions.
    pub fn append(&mut self, other: TripletBuilder) {
        assert_eq!(
            self.n, other.n,
            "cannot append builders of different dimensions"
        );
        self.rows.extend_from_slice(&other.rows);
        self.cols.extend_from_slice(&other.cols);
        self.vals.extend_from_slice(&other.vals);
    }

    /// Converts to CSR, summing duplicates and dropping entries whose
    /// accumulated value is exactly zero.
    pub fn into_csr(self) -> CsrMatrix {
        let n = self.n;
        // counting sort by row
        let mut row_counts = vec![0u32; n + 1];
        for &r in &self.rows {
            row_counts[r as usize + 1] += 1;
        }
        for i in 0..n {
            row_counts[i + 1] += row_counts[i];
        }
        let mut cursor = row_counts.clone();
        let mut cols_sorted = vec![0u32; self.cols.len()];
        let mut vals_sorted = vec![0f64; self.vals.len()];
        for k in 0..self.vals.len() {
            let r = self.rows[k] as usize;
            let slot = cursor[r] as usize;
            cols_sorted[slot] = self.cols[k];
            vals_sorted[slot] = self.vals[k];
            cursor[r] += 1;
        }
        // per-row: sort by column, merge duplicates
        let mut row_offsets = vec![0u32; n + 1];
        let mut col_idx = Vec::with_capacity(self.cols.len());
        let mut values = Vec::with_capacity(self.vals.len());
        for r in 0..n {
            let lo = row_counts[r] as usize;
            let hi = row_counts[r + 1] as usize;
            let mut entries: Vec<(u32, f64)> = cols_sorted[lo..hi]
                .iter()
                .copied()
                .zip(vals_sorted[lo..hi].iter().copied())
                .collect();
            entries.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < entries.len() {
                let c = entries[i].0;
                let mut v = entries[i].1;
                let mut j = i + 1;
                while j < entries.len() && entries[j].0 == c {
                    v += entries[j].1;
                    j += 1;
                }
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
                i = j;
            }
            row_offsets[r + 1] = col_idx.len() as u32;
        }
        CsrMatrix {
            n,
            row_offsets,
            col_idx,
            values,
        }
    }
}

/// A sparse matrix in compressed sparse row format.
///
/// Symmetry is the caller's responsibility (use
/// [`TripletBuilder::push_sym`]); [`CsrMatrix::is_symmetric`] verifies it,
/// and the spectral code debug-asserts it.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_offsets: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// The `n × n` zero matrix.
    pub fn zero(n: usize) -> Self {
        CsrMatrix {
            n,
            row_offsets: vec![0; n + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of stored (structurally nonzero) entries.
    ///
    /// This is the quantity behind the paper's sparsity comparison
    /// ("19935 nonzeros versus 219811 nonzeros" for Test05, §1.2).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The entries of row `r` as parallel `(columns, values)` slices.
    ///
    /// Columns are sorted increasing.
    ///
    /// # Panics
    ///
    /// Panics if `r >= dim()`.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let lo = self.row_offsets[r] as usize;
        let hi = self.row_offsets[r + 1] as usize;
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// The value at `(row, col)`, or `0.0` if not stored.
    ///
    /// `O(log nnz(row))`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (cols, vals) = self.row(row);
        match cols.binary_search(&(col as u32)) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Row sums (the weighted degree vector `d` when the matrix is a graph
    /// adjacency matrix).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.n).map(|r| self.row(r).1.iter().sum()).collect()
    }

    /// Returns a copy with every entry of magnitude `< threshold` removed —
    /// input sparsification by thresholding, one of the eigensolver
    /// speedups suggested in the paper's conclusions ("sparsifying the
    /// input through thresholding").
    ///
    /// Dropping entries symmetrically preserves symmetry.
    ///
    /// # Example
    ///
    /// ```
    /// use np_sparse::TripletBuilder;
    /// let mut b = TripletBuilder::new(2);
    /// b.push_sym(0, 1, 0.25);
    /// b.push_sym(0, 0, 2.0);
    /// let m = b.into_csr().drop_below(0.5);
    /// assert_eq!(m.nnz(), 1);
    /// assert_eq!(m.get(0, 1), 0.0);
    /// ```
    pub fn drop_below(&self, threshold: f64) -> CsrMatrix {
        let mut row_offsets = vec![0u32; self.n + 1];
        let mut col_idx = Vec::with_capacity(self.col_idx.len());
        let mut values = Vec::with_capacity(self.values.len());
        for r in 0..self.n {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if v.abs() >= threshold {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_offsets[r + 1] = col_idx.len() as u32;
        }
        CsrMatrix {
            n: self.n,
            row_offsets,
            col_idx,
            values,
        }
    }

    /// Column-block width of the cache-blocked SpMV path: 16384 columns of
    /// `x` span 128 KiB, sized to sit in L2 while the CSR arrays stream.
    pub const SPMV_BLOCK_COLS: usize = 1 << 14;

    /// Dimension floor below which [`apply_rows`](CsrMatrix::apply_rows)
    /// never considers the cache-blocked path: under 1 MiB of `x` the
    /// whole gather range sits in cache and blocking cannot pay.
    pub const SPMV_BLOCK_DISPATCH_DIM: usize = 1 << 17;

    /// Stored entries per row per column block the cost model requires
    /// before the blocked path can pay for its cursor probes (see
    /// [`spmv_prefers_blocked`](CsrMatrix::spmv_prefers_blocked)).
    pub const SPMV_BLOCK_MIN_ENTRIES_PER_PROBE: usize = 16;

    /// `true` when the cost model picks the cache-blocked SpMV path for
    /// this matrix: the dimension reaches
    /// [`SPMV_BLOCK_DISPATCH_DIM`](CsrMatrix::SPMV_BLOCK_DISPATCH_DIM)
    /// *and* rows are dense enough to amortize the blocked kernel's
    /// per-row-per-block cursor probe. A probe (cursor load/store, row
    /// bound, one overshooting column compare) costs an order of
    /// magnitude more than one streamed entry, so the model demands
    /// [`SPMV_BLOCK_MIN_ENTRIES_PER_PROBE`](CsrMatrix::SPMV_BLOCK_MIN_ENTRIES_PER_PROBE)
    /// stored entries per row per column block on average. The `kernels`
    /// micro-bench shows the straight loop winning decisively below that
    /// density (at netlist-like ~17 nnz/row the probe overhead is pure
    /// loss, 3–12× slower at 2¹⁷–2²¹ rows), so the degree-bounded
    /// netlist operators of this workspace stay on the straight path at
    /// every size; see `DESIGN.md` §16 for the measurements.
    pub fn spmv_prefers_blocked(&self) -> bool {
        if self.n < Self::SPMV_BLOCK_DISPATCH_DIM {
            return false;
        }
        let blocks = self.n.div_ceil(Self::SPMV_BLOCK_COLS);
        let probes = self.n.saturating_mul(blocks);
        self.nnz() / Self::SPMV_BLOCK_MIN_ENTRIES_PER_PROBE >= probes
    }

    /// Computes rows `lo..lo + out.len()` of the product `A·x` into `out`.
    ///
    /// This is the per-shard kernel of the row-sharded parallel matvec
    /// (see [`crate::parallel`]): each row's dot product is accumulated
    /// sequentially by exactly one caller, so covering `0..n` with any
    /// disjoint set of ranges produces output bit-identical to a single
    /// [`apply`](crate::LinearOperator::apply) — no reduction order is
    /// introduced that serial execution would not also have.
    ///
    /// When [`spmv_prefers_blocked`](CsrMatrix::spmv_prefers_blocked)
    /// holds this dispatches to the cache-blocked kernel
    /// ([`apply_rows_blocked`](CsrMatrix::apply_rows_blocked)), which is
    /// itself bit-identical to the straight loop — per-row accumulation
    /// order is unchanged — so the dispatch decision is invisible in the
    /// output.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()` or the row range exceeds the matrix.
    pub fn apply_rows(&self, lo: usize, x: &[f64], out: &mut [f64]) {
        if self.spmv_prefers_blocked() {
            self.apply_rows_blocked(lo, x, out, Self::SPMV_BLOCK_COLS);
        } else {
            self.apply_rows_unblocked(lo, x, out);
        }
    }

    /// The straight (non-blocked) SpMV kernel: one ascending pass per row,
    /// single accumulator — the bit-identity reference for every other
    /// SpMV variant.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()` or the row range exceeds the matrix.
    pub fn apply_rows_unblocked(&self, lo: usize, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n, "input vector dimension mismatch");
        assert!(lo + out.len() <= self.n, "row range out of bounds");
        for (k, dst) in out.iter_mut().enumerate() {
            let (cols, vals) = self.row(lo + k);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            *dst = acc;
        }
    }

    /// Cache-blocked SpMV over rows `lo..lo + out.len()`: the column range
    /// is processed in blocks of `block_cols`, so each shard's gathers
    /// from `x` stay within one block span before moving on — the working
    /// set per block is `8 · block_cols` bytes of `x` plus the streamed
    /// CSR entries.
    ///
    /// Bit-identical to
    /// [`apply_rows_unblocked`](CsrMatrix::apply_rows_unblocked): each
    /// row's entries are still accumulated in ascending column order with
    /// a single accumulator — it is carried between blocks through
    /// `out[k]`, and an `f64` store/reload round-trip is exact.
    ///
    /// # Panics
    ///
    /// Panics if `block_cols == 0`, `x.len() != dim()`, or the row range
    /// exceeds the matrix.
    pub fn apply_rows_blocked(&self, lo: usize, x: &[f64], out: &mut [f64], block_cols: usize) {
        assert!(block_cols > 0, "block_cols must be positive");
        assert_eq!(x.len(), self.n, "input vector dimension mismatch");
        assert!(lo + out.len() <= self.n, "row range out of bounds");
        out.fill(0.0);
        let mut cursor: Vec<u32> = self.row_offsets[lo..lo + out.len()].to_vec();
        let mut c0 = 0usize;
        while c0 < self.n {
            let c1 = (c0 + block_cols).min(self.n) as u32;
            for (k, dst) in out.iter_mut().enumerate() {
                let end = self.row_offsets[lo + k + 1];
                let mut p = cursor[k];
                let mut acc = *dst;
                while p < end && self.col_idx[p as usize] < c1 {
                    acc += self.values[p as usize] * x[self.col_idx[p as usize] as usize];
                    p += 1;
                }
                *dst = acc;
                cursor[k] = p;
            }
            c0 += block_cols;
        }
    }

    /// Returns `true` if the matrix equals its transpose (entry-wise within
    /// `tol`).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for r in 0..self.n {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if (self.get(c as usize, r) - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(y.len(), self.n, "output vector dimension mismatch");
        self.apply_rows(0, x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::zero(3);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.get(1, 2), 0.0);
        let mut y = vec![1.0; 3];
        m.apply(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![0.0; 3]);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 1.0);
        b.push(0, 1, 2.0);
        b.push(0, 1, -0.5);
        let m = b.into_csr();
        assert_eq!(m.get(0, 1), 2.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn exact_zero_entries_dropped() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 1.0);
        b.push(0, 1, -1.0);
        let m = b.into_csr();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn push_sym_mirrors() {
        let mut b = TripletBuilder::new(3);
        b.push_sym(0, 2, 4.0);
        b.push_sym(1, 1, 7.0); // diagonal added once
        let m = b.into_csr();
        assert_eq!(m.get(0, 2), 4.0);
        assert_eq!(m.get(2, 0), 4.0);
        assert_eq!(m.get(1, 1), 7.0);
        assert_eq!(m.nnz(), 3);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn matvec_matches_dense() {
        // [[0,1,2],[1,0,0],[2,0,3]]
        let mut b = TripletBuilder::new(3);
        b.push_sym(0, 1, 1.0);
        b.push_sym(0, 2, 2.0);
        b.push_sym(2, 2, 3.0);
        let m = b.into_csr();
        let x = [1.0, -1.0, 0.5];
        let mut y = vec![0.0; 3];
        m.apply(&x, &mut y);
        assert_eq!(y, vec![0.0, 1.0, 3.5]);
    }

    #[test]
    fn rows_sorted_by_column() {
        let mut b = TripletBuilder::new(4);
        b.push(0, 3, 1.0);
        b.push(0, 1, 1.0);
        b.push(0, 2, 1.0);
        let m = b.into_csr();
        let (cols, _) = m.row(0);
        assert_eq!(cols, &[1, 2, 3]);
    }

    #[test]
    fn row_sums_are_degrees() {
        let mut b = TripletBuilder::new(3);
        b.push_sym(0, 1, 1.0);
        b.push_sym(1, 2, 2.0);
        let m = b.into_csr();
        assert_eq!(m.row_sums(), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn asymmetric_detected() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 1.0);
        let m = b.into_csr();
        assert!(!m.is_symmetric(1e-12));
    }

    #[test]
    fn drop_below_filters_and_preserves_symmetry() {
        let mut b = TripletBuilder::new(3);
        b.push_sym(0, 1, 0.1);
        b.push_sym(1, 2, 0.9);
        b.push_sym(0, 2, -0.5);
        let m = b.into_csr();
        let f = m.drop_below(0.4);
        assert_eq!(f.nnz(), 4); // (1,2) and (0,2), stored symmetrically
        assert_eq!(f.get(0, 1), 0.0);
        assert_eq!(f.get(0, 2), -0.5);
        assert!(f.is_symmetric(0.0));
    }

    #[test]
    fn drop_below_zero_threshold_is_identity() {
        let mut b = TripletBuilder::new(2);
        b.push_sym(0, 1, 0.3);
        let m = b.into_csr();
        assert_eq!(m.drop_below(0.0), m);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_triplet_panics() {
        TripletBuilder::new(2).push(0, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_wrong_dim_panics() {
        let m = CsrMatrix::zero(3);
        let mut y = vec![0.0; 3];
        m.apply(&[1.0, 2.0], &mut y);
    }

    #[test]
    fn try_new_rejects_u32_overflow() {
        let too_big = u32::MAX as usize + 1;
        let err = TripletBuilder::try_new(too_big).unwrap_err();
        assert_eq!(err, IndexOverflow { dim: too_big });
        assert!(err.to_string().contains("exceeds the u32 index space"));
        assert!(TripletBuilder::try_new(u32::MAX as usize).is_ok());
        assert!(TripletBuilder::try_new(16).is_ok());
    }

    #[test]
    #[should_panic(expected = "overflows the u32 index space")]
    fn new_panics_on_u32_overflow() {
        let _ = TripletBuilder::new(u32::MAX as usize + 1);
    }

    /// Deterministic sparse band matrix for kernel-equivalence tests.
    fn band_matrix(n: usize, band: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n);
        for i in 0..n {
            for d in 1..=band {
                let j = (i + d * d) % n;
                if i != j {
                    b.push_sym(i, j, 1.0 / (1.0 + d as f64) + i as f64 * 1e-6);
                }
            }
        }
        b.into_csr()
    }

    #[test]
    fn blocked_apply_bit_identical_to_unblocked() {
        let n = 500;
        let m = band_matrix(n, 5);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut want = vec![0.0; n];
        m.apply_rows_unblocked(0, &x, &mut want);
        // block widths straddling row extents, including degenerate 1
        for block in [1usize, 7, 64, 250, 500, 10_000] {
            let mut got = vec![1.0; n]; // pre-poisoned: kernel must overwrite
            m.apply_rows_blocked(0, &x, &mut got, block);
            assert_eq!(got, want, "block={block}");
        }
        // sharded row ranges, as the threaded operator issues them
        for (lo, len) in [(0usize, 100usize), (100, 300), (400, 100), (250, 0)] {
            let mut got = vec![0.0; len];
            m.apply_rows_blocked(lo, &x, &mut got, 64);
            assert_eq!(got.as_slice(), &want[lo..lo + len], "lo={lo}");
        }
    }

    #[test]
    fn dispatching_apply_matches_unblocked_reference() {
        let m = band_matrix(300, 4);
        let x: Vec<f64> = (0..300).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut a = vec![0.0; 300];
        let mut b = vec![0.0; 300];
        m.apply_rows(0, &x, &mut a);
        m.apply_rows_unblocked(0, &x, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "block_cols must be positive")]
    fn zero_block_width_panics() {
        let m = CsrMatrix::zero(4);
        let mut y = vec![0.0; 4];
        m.apply_rows_blocked(0, &[0.0; 4], &mut y, 0);
    }

    #[test]
    fn cost_model_keeps_sparse_rows_on_straight_path() {
        // Small dimensions never block, regardless of density.
        assert!(!band_matrix(300, 4).spmv_prefers_blocked());
        // At the dimension floor, netlist-like row density (a handful of
        // entries per row) stays far below the per-probe amortization
        // bar, so the dispatcher must keep the straight loop.
        let n = CsrMatrix::SPMV_BLOCK_DISPATCH_DIM;
        let mut b = TripletBuilder::new(n);
        for i in 0..n {
            b.push(i, i, 1.0);
            b.push(i, (i * 7 + 13) % n, 0.5);
        }
        assert!(!b.into_csr().spmv_prefers_blocked());
    }
}
