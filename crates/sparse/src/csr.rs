//! Compressed sparse row matrices built from triplets.

use crate::LinearOperator;

/// Accumulator for matrix entries in coordinate (triplet) form.
///
/// Duplicate `(i, j)` entries are *summed* when converting to CSR, which is
/// exactly the semantics needed when assembling graph adjacency matrices
/// from per-net or per-module contributions (clique model, intersection
/// graph weighting).
///
/// # Example
///
/// ```
/// use np_sparse::TripletBuilder;
///
/// let mut b = TripletBuilder::new(3);
/// b.push_sym(0, 1, 0.5);
/// b.push_sym(0, 1, 0.25); // accumulates
/// b.push_sym(1, 2, 1.0);
/// let m = b.into_csr();
/// assert_eq!(m.nnz(), 4); // (0,1),(1,0),(1,2),(2,1)
/// assert_eq!(m.get(0, 1), 0.75);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TripletBuilder {
    n: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl TripletBuilder {
    /// Creates a builder for an `n × n` matrix.
    pub fn new(n: usize) -> Self {
        TripletBuilder {
            n,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of raw triplets accumulated so far (before duplicate
    /// summing).
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Returns `true` if no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Adds `value` at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "triplet index out of range");
        self.rows.push(row as u32);
        self.cols.push(col as u32);
        self.vals.push(value);
    }

    /// Adds `value` at `(row, col)` *and* `(col, row)`; for diagonal
    /// entries adds the value once.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn push_sym(&mut self, row: usize, col: usize, value: f64) {
        self.push(row, col, value);
        if row != col {
            self.push(col, row, value);
        }
    }

    /// Appends every triplet of `other` to this builder, preserving
    /// `other`'s push order.
    ///
    /// This is the merge step of the sharded parallel graph builders:
    /// each shard accumulates its own builder over a contiguous slice of
    /// the source items, and the shards are appended *in shard order*, so
    /// the merged triplet sequence is identical to what a serial build
    /// over the whole range would have pushed — and therefore
    /// [`into_csr`](TripletBuilder::into_csr) is bit-identical too.
    ///
    /// # Panics
    ///
    /// Panics if the two builders have different dimensions.
    pub fn append(&mut self, other: TripletBuilder) {
        assert_eq!(
            self.n, other.n,
            "cannot append builders of different dimensions"
        );
        self.rows.extend_from_slice(&other.rows);
        self.cols.extend_from_slice(&other.cols);
        self.vals.extend_from_slice(&other.vals);
    }

    /// Converts to CSR, summing duplicates and dropping entries whose
    /// accumulated value is exactly zero.
    pub fn into_csr(self) -> CsrMatrix {
        let n = self.n;
        // counting sort by row
        let mut row_counts = vec![0u32; n + 1];
        for &r in &self.rows {
            row_counts[r as usize + 1] += 1;
        }
        for i in 0..n {
            row_counts[i + 1] += row_counts[i];
        }
        let mut cursor = row_counts.clone();
        let mut cols_sorted = vec![0u32; self.cols.len()];
        let mut vals_sorted = vec![0f64; self.vals.len()];
        for k in 0..self.vals.len() {
            let r = self.rows[k] as usize;
            let slot = cursor[r] as usize;
            cols_sorted[slot] = self.cols[k];
            vals_sorted[slot] = self.vals[k];
            cursor[r] += 1;
        }
        // per-row: sort by column, merge duplicates
        let mut row_offsets = vec![0u32; n + 1];
        let mut col_idx = Vec::with_capacity(self.cols.len());
        let mut values = Vec::with_capacity(self.vals.len());
        for r in 0..n {
            let lo = row_counts[r] as usize;
            let hi = row_counts[r + 1] as usize;
            let mut entries: Vec<(u32, f64)> = cols_sorted[lo..hi]
                .iter()
                .copied()
                .zip(vals_sorted[lo..hi].iter().copied())
                .collect();
            entries.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < entries.len() {
                let c = entries[i].0;
                let mut v = entries[i].1;
                let mut j = i + 1;
                while j < entries.len() && entries[j].0 == c {
                    v += entries[j].1;
                    j += 1;
                }
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
                i = j;
            }
            row_offsets[r + 1] = col_idx.len() as u32;
        }
        CsrMatrix {
            n,
            row_offsets,
            col_idx,
            values,
        }
    }
}

/// A sparse matrix in compressed sparse row format.
///
/// Symmetry is the caller's responsibility (use
/// [`TripletBuilder::push_sym`]); [`CsrMatrix::is_symmetric`] verifies it,
/// and the spectral code debug-asserts it.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_offsets: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// The `n × n` zero matrix.
    pub fn zero(n: usize) -> Self {
        CsrMatrix {
            n,
            row_offsets: vec![0; n + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of stored (structurally nonzero) entries.
    ///
    /// This is the quantity behind the paper's sparsity comparison
    /// ("19935 nonzeros versus 219811 nonzeros" for Test05, §1.2).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The entries of row `r` as parallel `(columns, values)` slices.
    ///
    /// Columns are sorted increasing.
    ///
    /// # Panics
    ///
    /// Panics if `r >= dim()`.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let lo = self.row_offsets[r] as usize;
        let hi = self.row_offsets[r + 1] as usize;
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// The value at `(row, col)`, or `0.0` if not stored.
    ///
    /// `O(log nnz(row))`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (cols, vals) = self.row(row);
        match cols.binary_search(&(col as u32)) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Row sums (the weighted degree vector `d` when the matrix is a graph
    /// adjacency matrix).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.n).map(|r| self.row(r).1.iter().sum()).collect()
    }

    /// Returns a copy with every entry of magnitude `< threshold` removed —
    /// input sparsification by thresholding, one of the eigensolver
    /// speedups suggested in the paper's conclusions ("sparsifying the
    /// input through thresholding").
    ///
    /// Dropping entries symmetrically preserves symmetry.
    ///
    /// # Example
    ///
    /// ```
    /// use np_sparse::TripletBuilder;
    /// let mut b = TripletBuilder::new(2);
    /// b.push_sym(0, 1, 0.25);
    /// b.push_sym(0, 0, 2.0);
    /// let m = b.into_csr().drop_below(0.5);
    /// assert_eq!(m.nnz(), 1);
    /// assert_eq!(m.get(0, 1), 0.0);
    /// ```
    pub fn drop_below(&self, threshold: f64) -> CsrMatrix {
        let mut row_offsets = vec![0u32; self.n + 1];
        let mut col_idx = Vec::with_capacity(self.col_idx.len());
        let mut values = Vec::with_capacity(self.values.len());
        for r in 0..self.n {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if v.abs() >= threshold {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_offsets[r + 1] = col_idx.len() as u32;
        }
        CsrMatrix {
            n: self.n,
            row_offsets,
            col_idx,
            values,
        }
    }

    /// Computes rows `lo..lo + out.len()` of the product `A·x` into `out`.
    ///
    /// This is the per-shard kernel of the row-sharded parallel matvec
    /// (see [`crate::parallel`]): each row's dot product is accumulated
    /// sequentially by exactly one caller, so covering `0..n` with any
    /// disjoint set of ranges produces output bit-identical to a single
    /// [`apply`](crate::LinearOperator::apply) — no reduction order is
    /// introduced that serial execution would not also have.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()` or the row range exceeds the matrix.
    pub fn apply_rows(&self, lo: usize, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n, "input vector dimension mismatch");
        assert!(lo + out.len() <= self.n, "row range out of bounds");
        for (k, dst) in out.iter_mut().enumerate() {
            let (cols, vals) = self.row(lo + k);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            *dst = acc;
        }
    }

    /// Returns `true` if the matrix equals its transpose (entry-wise within
    /// `tol`).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for r in 0..self.n {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if (self.get(c as usize, r) - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(y.len(), self.n, "output vector dimension mismatch");
        self.apply_rows(0, x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::zero(3);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.get(1, 2), 0.0);
        let mut y = vec![1.0; 3];
        m.apply(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![0.0; 3]);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 1.0);
        b.push(0, 1, 2.0);
        b.push(0, 1, -0.5);
        let m = b.into_csr();
        assert_eq!(m.get(0, 1), 2.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn exact_zero_entries_dropped() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 1.0);
        b.push(0, 1, -1.0);
        let m = b.into_csr();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn push_sym_mirrors() {
        let mut b = TripletBuilder::new(3);
        b.push_sym(0, 2, 4.0);
        b.push_sym(1, 1, 7.0); // diagonal added once
        let m = b.into_csr();
        assert_eq!(m.get(0, 2), 4.0);
        assert_eq!(m.get(2, 0), 4.0);
        assert_eq!(m.get(1, 1), 7.0);
        assert_eq!(m.nnz(), 3);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn matvec_matches_dense() {
        // [[0,1,2],[1,0,0],[2,0,3]]
        let mut b = TripletBuilder::new(3);
        b.push_sym(0, 1, 1.0);
        b.push_sym(0, 2, 2.0);
        b.push_sym(2, 2, 3.0);
        let m = b.into_csr();
        let x = [1.0, -1.0, 0.5];
        let mut y = vec![0.0; 3];
        m.apply(&x, &mut y);
        assert_eq!(y, vec![0.0, 1.0, 3.5]);
    }

    #[test]
    fn rows_sorted_by_column() {
        let mut b = TripletBuilder::new(4);
        b.push(0, 3, 1.0);
        b.push(0, 1, 1.0);
        b.push(0, 2, 1.0);
        let m = b.into_csr();
        let (cols, _) = m.row(0);
        assert_eq!(cols, &[1, 2, 3]);
    }

    #[test]
    fn row_sums_are_degrees() {
        let mut b = TripletBuilder::new(3);
        b.push_sym(0, 1, 1.0);
        b.push_sym(1, 2, 2.0);
        let m = b.into_csr();
        assert_eq!(m.row_sums(), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn asymmetric_detected() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 1, 1.0);
        let m = b.into_csr();
        assert!(!m.is_symmetric(1e-12));
    }

    #[test]
    fn drop_below_filters_and_preserves_symmetry() {
        let mut b = TripletBuilder::new(3);
        b.push_sym(0, 1, 0.1);
        b.push_sym(1, 2, 0.9);
        b.push_sym(0, 2, -0.5);
        let m = b.into_csr();
        let f = m.drop_below(0.4);
        assert_eq!(f.nnz(), 4); // (1,2) and (0,2), stored symmetrically
        assert_eq!(f.get(0, 1), 0.0);
        assert_eq!(f.get(0, 2), -0.5);
        assert!(f.is_symmetric(0.0));
    }

    #[test]
    fn drop_below_zero_threshold_is_identity() {
        let mut b = TripletBuilder::new(2);
        b.push_sym(0, 1, 0.3);
        let m = b.into_csr();
        assert_eq!(m.drop_below(0.0), m);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_triplet_panics() {
        TripletBuilder::new(2).push(0, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_wrong_dim_panics() {
        let m = CsrMatrix::zero(3);
        let mut y = vec![0.0; 3];
        m.apply(&[1.0, 2.0], &mut y);
    }
}
