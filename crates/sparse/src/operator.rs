//! The linear-operator abstraction used by the eigensolver.

/// A real symmetric linear operator `y = M x` on `R^dim`.
///
/// Implementations must be symmetric (`xᵀMy = yᵀMx`); the Lanczos
/// iteration in `np-eigen` silently produces garbage otherwise, so the
/// contract is part of the trait's semantics even though it cannot be
/// checked by the compiler.
///
/// # Example
///
/// ```
/// use np_sparse::{LinearOperator, TripletBuilder};
///
/// let mut b = TripletBuilder::new(2);
/// b.push_sym(0, 1, 2.0);
/// let m = b.into_csr();
/// let mut y = vec![0.0; 2];
/// m.apply(&[1.0, 0.0], &mut y);
/// assert_eq!(y, vec![0.0, 2.0]);
/// ```
pub trait LinearOperator {
    /// Dimension of the operator (numbers of rows = columns).
    fn dim(&self) -> usize;

    /// Computes `y = M x`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x.len()` or `y.len()` differ from
    /// [`dim`](Self::dim).
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

impl<T: LinearOperator + ?Sized> LinearOperator for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (**self).apply(x, y)
    }
}
