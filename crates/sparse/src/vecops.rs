//! Dense-vector kernels used by the Lanczos iteration.

/// Dot product `xᵀy`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// assert_eq!(np_sparse::vecops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `y ← y + alpha · x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha · x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Normalizes `x` to unit Euclidean norm and returns the previous norm.
/// If `x` is (numerically) zero it is left unchanged and `0.0` is returned.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Removes from `x` its component along the *unit* vector `u`:
/// `x ← x − (uᵀx) u`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn orthogonalize_against(u: &[f64], x: &mut [f64]) {
    let c = dot(u, x);
    axpy(-c, u, x);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_norm_axpy() {
        let x = [3.0, 4.0];
        assert_eq!(norm2(&x), 5.0);
        let mut y = [1.0, 1.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [7.0, 9.0]);
    }

    #[test]
    fn scale_and_normalize() {
        let mut x = vec![0.0, 3.0, 4.0];
        let prev = normalize(&mut x);
        assert_eq!(prev, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
        scale(2.0, &mut x);
        assert!((norm2(&x) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = vec![0.0; 4];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0; 4]);
    }

    #[test]
    fn orthogonalize_removes_component() {
        let u = [1.0 / 2f64.sqrt(), 1.0 / 2f64.sqrt()];
        let mut x = [3.0, 1.0];
        orthogonalize_against(&u, &mut x);
        assert!(dot(&u, &x).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
