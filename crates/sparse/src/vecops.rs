//! Dense-vector kernels used by the Lanczos iteration.
//!
//! # Fusion and the bit-identity contract
//!
//! The Lanczos hot loop is memory-bound: its cost is passes over `O(n)`
//! vectors, not flops. The fused kernels here ([`axpy_dot`], [`axpy2`],
//! [`orthogonalize_fused`], [`accumulate_scaled`]) combine what would be
//! two or more passes into one, **without changing the floating-point
//! operation order**: every fused kernel is bit-identical to the sequence
//! of naive kernels it replaces (the equivalence property tests in
//! `tests/spectral.rs` pin this down). Reassociating variants that *do*
//! change the reduction order ([`dot_reassoc`], [`norm2_reassoc`]) are
//! always compiled (so they can be tested) but are only dispatched to by
//! the hot-path entry points ([`dot_hot`], [`norm2_hot`]) when the
//! `reassoc-fast` cargo feature is enabled.

/// Dot product `xᵀy`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// assert_eq!(np_sparse::vecops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `y ← y + alpha · x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha · x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Normalizes `x` to unit Euclidean norm and returns the previous norm.
/// If `x` is (numerically) zero it is left unchanged and `0.0` is returned.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Removes from `x` its component along the *unit* vector `u`:
/// `x ← x − (uᵀx) u`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn orthogonalize_against(u: &[f64], x: &mut [f64]) {
    let c = dot(u, x);
    axpy(-c, u, x);
}

/// Fused update-and-project: `y ← y + alpha · x`, returning `zᵀy` for the
/// *updated* `y` — one pass over memory instead of an [`axpy`] pass
/// followed by a [`dot`] pass.
///
/// Bit-identical to `axpy(alpha, x, y); dot(z, y)`: the update expression
/// and the single-accumulator ascending-index reduction are exactly the
/// ones the two separate kernels use.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy_dot(alpha: f64, x: &[f64], y: &mut [f64], z: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "axpy_dot length mismatch");
    assert_eq!(z.len(), y.len(), "axpy_dot length mismatch");
    // −0.0 is the IEEE additive identity `f64::sum()` folds from; starting
    // there keeps even the empty and all-(−0.0) cases bit-identical to
    // [`dot`].
    let mut acc = -0.0;
    for ((yi, xi), zi) in y.iter_mut().zip(x).zip(z) {
        let v = *yi + alpha * xi;
        *yi = v;
        acc += zi * v;
    }
    acc
}

/// Fused double update: `y ← y + a1 · x1 + a2 · x2` in one pass.
///
/// Bit-identical to `axpy(a1, x1, y); axpy(a2, x2, y)`: each element is
/// updated by the two terms in the same order the sequential kernels
/// would apply them, and elements are independent.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy2(a1: f64, x1: &[f64], a2: f64, x2: &[f64], y: &mut [f64]) {
    assert_eq!(x1.len(), y.len(), "axpy2 length mismatch");
    assert_eq!(x2.len(), y.len(), "axpy2 length mismatch");
    for ((yi, v1), v2) in y.iter_mut().zip(x1).zip(x2) {
        *yi = (*yi + a1 * v1) + a2 * v2;
    }
}

/// Fused modified-Gram–Schmidt sweep: projects the concatenation of
/// `sets` out of `x`, in order.
///
/// Equivalent to `for u in concat(sets) { orthogonalize_against(u, x) }`
/// bit for bit, but each vector's subtraction pass doubles as the next
/// vector's projection pass (via [`axpy_dot`]), so a sweep over `m`
/// vectors touches `x` `m + 1` times instead of `2m` times. Since full
/// reorthogonalization is the dominant `O(j·n)` cost of a Lanczos step,
/// this roughly halves the hot loop's memory traffic.
///
/// `sets` may repeat a set (e.g. `&[basis, basis]` for the
/// apply-twice-for-robustness idiom) — repetitions fuse across the
/// boundary too.
///
/// # Panics
///
/// Panics if any vector's length differs from `x.len()`.
pub fn orthogonalize_fused(sets: &[&[Vec<f64>]], x: &mut [f64]) {
    let mut it = sets.iter().flat_map(|s| s.iter()).peekable();
    let Some(first) = it.next() else { return };
    let mut u: &Vec<f64> = first;
    let mut c = dot(u, x);
    for next in it {
        c = axpy_dot(-c, u, x, next);
        u = next;
    }
    axpy(-c, u, x);
}

/// Accumulates `y ← y + Σᵢ coeffs[i] · vecs[i]`, fusing consecutive pairs
/// of terms with [`axpy2`] — the Ritz-vector assembly kernel.
///
/// Bit-identical to `for (c, v) in coeffs.zip(vecs) { axpy(*c, v, y) }`.
///
/// # Panics
///
/// Panics if `coeffs.len() != vecs.len()` or any vector's length differs
/// from `y.len()`.
pub fn accumulate_scaled(coeffs: &[f64], vecs: &[Vec<f64>], y: &mut [f64]) {
    assert_eq!(
        coeffs.len(),
        vecs.len(),
        "accumulate_scaled length mismatch"
    );
    let mut i = 0;
    while i + 1 < coeffs.len() {
        axpy2(coeffs[i], &vecs[i], coeffs[i + 1], &vecs[i + 1], y);
        i += 2;
    }
    if i < coeffs.len() {
        axpy(coeffs[i], &vecs[i], y);
    }
}

/// Dot product with a 4-lane reassociated reduction — the auto-vectorizable
/// shape. **Not** bit-identical to [`dot`] in general (the partial sums are
/// combined in a different order); agreement is only up to rounding.
///
/// Always compiled so the tolerance-mode equivalence tests can exercise it;
/// the hot paths reach it only through [`dot_hot`] under the
/// `reassoc-fast` feature.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_reassoc(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let mut acc = [0.0f64; 4];
    for (a, b) in x.chunks_exact(4).zip(y.chunks_exact(4)) {
        acc[0] += a[0] * b[0];
        acc[1] += a[1] * b[1];
        acc[2] += a[2] * b[2];
        acc[3] += a[3] * b[3];
    }
    let mut tail = 0.0;
    for (a, b) in x
        .chunks_exact(4)
        .remainder()
        .iter()
        .zip(y.chunks_exact(4).remainder())
    {
        tail += a * b;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

/// Euclidean norm via [`dot_reassoc`]; same caveats.
pub fn norm2_reassoc(x: &[f64]) -> f64 {
    dot_reassoc(x, x).sqrt()
}

/// The dot product used on reduction hot paths (Lanczos `α`, `β`).
///
/// Sequential [`dot`] — bit-identical to the naive reference — by default;
/// the 4-lane [`dot_reassoc`] under the `reassoc-fast` feature.
pub fn dot_hot(x: &[f64], y: &[f64]) -> f64 {
    #[cfg(feature = "reassoc-fast")]
    {
        dot_reassoc(x, y)
    }
    #[cfg(not(feature = "reassoc-fast"))]
    {
        dot(x, y)
    }
}

/// The Euclidean norm used on reduction hot paths; dispatches like
/// [`dot_hot`].
pub fn norm2_hot(x: &[f64]) -> f64 {
    dot_hot(x, x).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_norm_axpy() {
        let x = [3.0, 4.0];
        assert_eq!(norm2(&x), 5.0);
        let mut y = [1.0, 1.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [7.0, 9.0]);
    }

    #[test]
    fn scale_and_normalize() {
        let mut x = vec![0.0, 3.0, 4.0];
        let prev = normalize(&mut x);
        assert_eq!(prev, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
        scale(2.0, &mut x);
        assert!((norm2(&x) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = vec![0.0; 4];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0; 4]);
    }

    #[test]
    fn orthogonalize_removes_component() {
        let u = [1.0 / 2f64.sqrt(), 1.0 / 2f64.sqrt()];
        let mut x = [3.0, 1.0];
        orthogonalize_against(&u, &mut x);
        assert!(dot(&u, &x).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    /// Deterministic pseudo-random vector for the fusion identities.
    fn rand_vec(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 11) as f64) / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn axpy_dot_bit_identical_to_axpy_then_dot() {
        for n in [0usize, 1, 3, 64, 257] {
            let x = rand_vec(1, n);
            let z = rand_vec(2, n);
            let y0 = rand_vec(3, n);
            let mut fused = y0.clone();
            let got = axpy_dot(0.731, &x, &mut fused, &z);
            let mut plain = y0.clone();
            axpy(0.731, &x, &mut plain);
            let want = dot(&z, &plain);
            assert_eq!(fused, plain, "n={n}");
            assert_eq!(got.to_bits(), want.to_bits(), "n={n}");
        }
    }

    #[test]
    fn axpy2_bit_identical_to_two_axpys() {
        for n in [0usize, 1, 5, 100] {
            let x1 = rand_vec(4, n);
            let x2 = rand_vec(5, n);
            let y0 = rand_vec(6, n);
            let mut fused = y0.clone();
            axpy2(-1.25, &x1, 0.4, &x2, &mut fused);
            let mut plain = y0;
            axpy(-1.25, &x1, &mut plain);
            axpy(0.4, &x2, &mut plain);
            assert_eq!(fused, plain, "n={n}");
        }
    }

    #[test]
    fn orthogonalize_fused_matches_sequential_sweep() {
        let n = 97;
        let basis: Vec<Vec<f64>> = (0..5).map(|i| rand_vec(10 + i, n)).collect();
        let deflate: Vec<Vec<f64>> = (0..2).map(|i| rand_vec(20 + i, n)).collect();
        let x0 = rand_vec(30, n);

        let mut fused = x0.clone();
        orthogonalize_fused(&[&deflate, &basis, &basis], &mut fused);

        let mut plain = x0;
        for u in deflate.iter().chain(&basis).chain(&basis) {
            orthogonalize_against(u, &mut plain);
        }
        assert_eq!(fused, plain);
    }

    #[test]
    fn orthogonalize_fused_empty_sets_is_noop() {
        let mut x = vec![1.0, 2.0];
        orthogonalize_fused(&[], &mut x);
        orthogonalize_fused(&[&[], &[]], &mut x);
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn accumulate_scaled_matches_axpy_loop() {
        let n = 61;
        for m in [0usize, 1, 2, 5, 8] {
            let vecs: Vec<Vec<f64>> = (0..m).map(|i| rand_vec(40 + i as u64, n)).collect();
            let coeffs = rand_vec(50, m);
            let mut fused = rand_vec(60, n);
            let mut plain = fused.clone();
            accumulate_scaled(&coeffs, &vecs, &mut fused);
            for (c, v) in coeffs.iter().zip(&vecs) {
                axpy(*c, v, &mut plain);
            }
            assert_eq!(fused, plain, "m={m}");
        }
    }

    #[test]
    fn dot_reassoc_agrees_within_tolerance() {
        for n in [0usize, 1, 3, 4, 7, 128, 1001] {
            let x = rand_vec(70, n);
            let y = rand_vec(71, n);
            let a = dot(&x, &y);
            let b = dot_reassoc(&x, &y);
            assert!(
                (a - b).abs() <= 1e-12 * (1.0 + a.abs()),
                "n={n}: {a} vs {b}"
            );
        }
        assert_eq!(norm2_reassoc(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn hot_kernels_dispatch_per_feature() {
        let x = rand_vec(80, 777);
        let y = rand_vec(81, 777);
        let want = if cfg!(feature = "reassoc-fast") {
            dot_reassoc(&x, &y)
        } else {
            dot(&x, &y)
        };
        assert_eq!(dot_hot(&x, &y).to_bits(), want.to_bits());
        // norm2_hot is sqrt of the self-dot under the same dispatch
        let self_want = if cfg!(feature = "reassoc-fast") {
            dot_reassoc(&x, &x).sqrt()
        } else {
            norm2(&x)
        };
        assert_eq!(norm2_hot(&x).to_bits(), self_want.to_bits());
    }
}
