//! Property tests for the sparse-matrix substrate.

use np_sparse::{CsrMatrix, Laplacian, LinearOperator, TripletBuilder};
use np_testkit::{check_cases, Gen};

/// One random instance: dimension, symmetric triplets, and a dense
/// vector of length `n`, generated together so nothing has to be
/// rejected.
fn arb_instance(g: &mut Gen) -> (usize, Vec<(usize, usize, f64)>, Vec<f64>) {
    let n = g.usize_in(2, 12);
    let entries = g.vec_with(0, 40, |g| {
        (
            g.usize_in(0, n - 1),
            g.usize_in(0, n - 1),
            g.f64_in(-4.0, 4.0),
        )
    });
    let x = (0..n).map(|_| g.f64_in(-3.0, 3.0)).collect();
    (n, entries, x)
}

fn build(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut b = TripletBuilder::new(n);
    for &(i, j, v) in entries {
        b.push_sym(i, j, v);
    }
    b.into_csr()
}

fn dense_of(m: &CsrMatrix) -> Vec<Vec<f64>> {
    let n = m.dim();
    (0..n)
        .map(|i| (0..n).map(|j| m.get(i, j)).collect())
        .collect()
}

#[test]
fn matvec_matches_dense() {
    check_cases(128, 0x5A11, |g| {
        let (n, entries, x) = arb_instance(g);
        let m = build(n, &entries);
        let d = dense_of(&m);
        let mut y = vec![0.0; n];
        m.apply(&x, &mut y);
        for i in 0..n {
            let expect: f64 = (0..n).map(|j| d[i][j] * x[j]).sum();
            assert!((y[i] - expect).abs() < 1e-9);
        }
    });
}

#[test]
fn symmetric_by_construction() {
    check_cases(128, 0x5A12, |g| {
        let (n, entries, _) = arb_instance(g);
        let m = build(n, &entries);
        assert!(m.is_symmetric(1e-12));
    });
}

#[test]
fn triplet_order_irrelevant_up_to_rounding() {
    check_cases(128, 0x5A13, |g| {
        // duplicate summation order may differ, so compare within a
        // floating-point tolerance rather than bit-exactly
        let (n, entries, _) = arb_instance(g);
        let a = build(n, &entries);
        let mut reversed = entries.clone();
        reversed.reverse();
        let b = build(n, &reversed);
        assert_eq!(a.nnz(), b.nnz());
        for i in 0..n {
            for j in 0..n {
                assert!((a.get(i, j) - b.get(i, j)).abs() < 1e-12);
            }
        }
    });
}

#[test]
fn drop_below_is_idempotent() {
    check_cases(128, 0x5A14, |g| {
        let (n, entries, _) = arb_instance(g);
        let t = g.f64_in(0.0, 2.0);
        let m = build(n, &entries);
        let once = m.drop_below(t);
        let twice = once.drop_below(t);
        assert_eq!(&once, &twice);
        assert!(once.nnz() <= m.nnz());
        assert!(once.is_symmetric(1e-12));
    });
}

#[test]
fn laplacian_annihilates_ones_and_is_psd() {
    check_cases(128, 0x5A15, |g| {
        let (n, entries, x) = arb_instance(g);
        // Laplacians need nonnegative weights for PSD-ness
        let nonneg: Vec<(usize, usize, f64)> = entries
            .iter()
            .filter(|&&(i, j, _)| i != j)
            .map(|&(i, j, v)| (i, j, v.abs()))
            .collect();
        let q = Laplacian::from_adjacency(build(n, &nonneg));
        let mut y = vec![0.0; n];
        q.apply(&vec![1.0; n], &mut y);
        for v in &y {
            assert!(v.abs() < 1e-9, "Q·1 component {v}");
        }
        assert!(q.quadratic_form(&x) >= -1e-9);
    });
}

#[test]
fn row_sums_match_dense() {
    check_cases(128, 0x5A16, |g| {
        let (n, entries, _) = arb_instance(g);
        let m = build(n, &entries);
        let d = dense_of(&m);
        for (i, s) in m.row_sums().iter().enumerate() {
            let expect: f64 = d[i].iter().sum();
            assert!((s - expect).abs() < 1e-9);
        }
    });
}
