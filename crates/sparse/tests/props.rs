//! Property tests for the sparse-matrix substrate.

use np_sparse::{CsrMatrix, Laplacian, LinearOperator, TripletBuilder};
use proptest::prelude::*;

/// Strategy: dimension, symmetric triplets, and a dense vector of length
/// `n`, generated together so nothing has to be rejected.
fn arb_instance() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>, Vec<f64>)> {
    (2usize..=12).prop_flat_map(|n| {
        let entry = (0..n, 0..n, -4.0f64..4.0);
        (
            proptest::collection::vec(entry, 0..40),
            proptest::collection::vec(-3.0f64..3.0, n..=n),
        )
            .prop_map(move |(es, x)| (n, es, x))
    })
}

fn build(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut b = TripletBuilder::new(n);
    for &(i, j, v) in entries {
        b.push_sym(i, j, v);
    }
    b.into_csr()
}

fn dense_of(m: &CsrMatrix) -> Vec<Vec<f64>> {
    let n = m.dim();
    (0..n)
        .map(|i| (0..n).map(|j| m.get(i, j)).collect())
        .collect()
}

proptest! {
    #[test]
    fn matvec_matches_dense((n, entries, x) in arb_instance()) {
        let m = build(n, &entries);
        let d = dense_of(&m);
        let mut y = vec![0.0; n];
        m.apply(&x, &mut y);
        for i in 0..n {
            let expect: f64 = (0..n).map(|j| d[i][j] * x[j]).sum();
            prop_assert!((y[i] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn symmetric_by_construction((n, entries, _) in arb_instance()) {
        let m = build(n, &entries);
        prop_assert!(m.is_symmetric(1e-12));
    }

    #[test]
    fn triplet_order_irrelevant_up_to_rounding((n, entries, _) in arb_instance()) {
        // duplicate summation order may differ, so compare within a
        // floating-point tolerance rather than bit-exactly
        let a = build(n, &entries);
        let mut reversed = entries.clone();
        reversed.reverse();
        let b = build(n, &reversed);
        prop_assert_eq!(a.nnz(), b.nnz());
        for i in 0..n {
            for j in 0..n {
                prop_assert!((a.get(i, j) - b.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn drop_below_is_idempotent((n, entries, _) in arb_instance(), t in 0.0f64..2.0) {
        let m = build(n, &entries);
        let once = m.drop_below(t);
        let twice = once.drop_below(t);
        prop_assert_eq!(&once, &twice);
        prop_assert!(once.nnz() <= m.nnz());
        prop_assert!(once.is_symmetric(1e-12));
    }

    #[test]
    fn laplacian_annihilates_ones_and_is_psd((n, entries, x) in arb_instance()) {
        // Laplacians need nonnegative weights for PSD-ness
        let nonneg: Vec<(usize, usize, f64)> = entries
            .iter()
            .filter(|&&(i, j, _)| i != j)
            .map(|&(i, j, v)| (i, j, v.abs()))
            .collect();
        let q = Laplacian::from_adjacency(build(n, &nonneg));
        let mut y = vec![0.0; n];
        q.apply(&vec![1.0; n], &mut y);
        for v in &y {
            prop_assert!(v.abs() < 1e-9, "Q·1 component {v}");
        }
        prop_assert!(q.quadratic_form(&x) >= -1e-9);
    }

    #[test]
    fn row_sums_match_dense((n, entries, _) in arb_instance()) {
        let m = build(n, &entries);
        let d = dense_of(&m);
        for (i, s) in m.row_sums().iter().enumerate() {
            let expect: f64 = d[i].iter().sum();
            prop_assert!((s - expect).abs() < 1e-9);
        }
    }
}
