//! Admission control: a semaphore over a bounded queue.
//!
//! The service accepts at most `workers` concurrently *running* requests
//! and at most `queue` requests *waiting* for a worker. Everything beyond
//! that is **shed synchronously** — [`Admission::enroll`] answers
//! [`Enrollment::Shed`] without blocking and without spawning any work,
//! so overload costs the server one queue-state check per rejected
//! request, not a thread.
//!
//! The two-phase shape (enroll, then [`Ticket::wait`]) exists so shedding
//! is decided *before* any resources are committed: a caller that holds a
//! [`Ticket`] is guaranteed a worker slot eventually, because every
//! [`Permit`] holder's work is wall-clock bounded by the service
//! (requests run under a hard cap even when the client asked for no
//! budget). Dropping a ticket without waiting (client gone) releases the
//! queue slot.

use std::sync::{Condvar, Mutex};

/// Snapshot of the admission state, for shed responses and metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Load {
    /// Requests currently holding a worker permit.
    pub running: usize,
    /// Requests currently queued for a permit.
    pub queued: usize,
}

#[derive(Debug)]
struct State {
    running: usize,
    queued: usize,
}

/// The admission controller. One per service; shared by reference across
/// connection threads.
#[derive(Debug)]
pub struct Admission {
    workers: usize,
    queue: usize,
    state: Mutex<State>,
    wakeup: Condvar,
}

/// Outcome of [`Admission::enroll`].
#[derive(Debug)]
pub enum Enrollment<'a> {
    /// A queue slot was granted; [`Ticket::wait`] blocks until a worker
    /// permit is free.
    Queued(Ticket<'a>),
    /// Workers busy and queue full — the request must be answered with a
    /// shed frame. Carries the load at the moment of rejection.
    Shed(Load),
}

/// A granted queue slot (phase one). Converts into a [`Permit`] via
/// [`wait`](Ticket::wait); dropping it un-queues the request.
#[derive(Debug)]
pub struct Ticket<'a> {
    adm: &'a Admission,
    waited: bool,
}

/// A granted worker slot (phase two). Work may run while this is alive;
/// dropping it frees the slot and wakes one queued ticket.
#[derive(Debug)]
pub struct Permit<'a> {
    adm: &'a Admission,
}

impl Admission {
    /// A controller admitting `workers` concurrent runs and `queue`
    /// waiters. `workers` is clamped to at least 1 (a server that can
    /// run nothing would shed everything).
    pub fn new(workers: usize, queue: usize) -> Self {
        Admission {
            workers: workers.max(1),
            queue,
            state: Mutex::new(State {
                running: 0,
                queued: 0,
            }),
            wakeup: Condvar::new(),
        }
    }

    /// Phase one: try to take a queue slot. Never blocks.
    pub fn enroll(&self) -> Enrollment<'_> {
        let mut st = self.state.lock().expect("admission lock");
        // bound total in-flight (running + queued): a ticket on a free
        // worker converts immediately in `wait`, so free workers are
        // usable capacity, but they must not be double-counted while
        // earlier tickets have enrolled and not yet converted
        if st.running + st.queued < self.workers + self.queue {
            st.queued += 1;
            Enrollment::Queued(Ticket {
                adm: self,
                waited: false,
            })
        } else {
            Enrollment::Shed(Load {
                running: st.running,
                queued: st.queued,
            })
        }
    }

    /// Current load snapshot.
    pub fn load(&self) -> Load {
        let st = self.state.lock().expect("admission lock");
        Load {
            running: st.running,
            queued: st.queued,
        }
    }
}

impl<'a> Ticket<'a> {
    /// Phase two: block until a worker permit is free. Progress is
    /// guaranteed because every permit holder's work is wall-clock
    /// bounded by the service.
    pub fn wait(mut self) -> Permit<'a> {
        let mut st = self.adm.state.lock().expect("admission lock");
        while st.running >= self.adm.workers {
            st = self.adm.wakeup.wait(st).expect("admission lock");
        }
        st.queued -= 1;
        st.running += 1;
        self.waited = true; // Drop must not decrement `queued` again
        drop(st);
        Permit { adm: self.adm }
    }
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        if !self.waited {
            let mut st = self.adm.state.lock().expect("admission lock");
            st.queued -= 1;
        }
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.adm.state.lock().expect("admission lock");
        st.running -= 1;
        drop(st);
        self.adm.wakeup.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn sheds_beyond_workers_plus_queue() {
        let adm = Admission::new(2, 3);
        let mut held = Vec::new();
        for _ in 0..5 {
            match adm.enroll() {
                Enrollment::Queued(t) => held.push(t),
                Enrollment::Shed(_) => panic!("capacity 2+3 must admit 5"),
            }
        }
        match adm.enroll() {
            Enrollment::Shed(load) => {
                assert_eq!(load.queued, 5);
            }
            Enrollment::Queued(_) => panic!("sixth request must shed"),
        }
        drop(held);
        assert_eq!(
            adm.load(),
            Load {
                running: 0,
                queued: 0
            }
        );
        assert!(matches!(adm.enroll(), Enrollment::Queued(_)));
    }

    #[test]
    fn permits_bound_concurrency() {
        let adm = Arc::new(Admission::new(2, 16));
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let adm = Arc::clone(&adm);
                let peak = Arc::clone(&peak);
                let live = Arc::clone(&live);
                scope.spawn(move || {
                    let Enrollment::Queued(ticket) = adm.enroll() else {
                        panic!("queue of 16 cannot shed 8");
                    };
                    let permit = ticket.wait();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(5));
                    live.fetch_sub(1, Ordering::SeqCst);
                    drop(permit);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "permit bound violated");
        assert_eq!(
            adm.load(),
            Load {
                running: 0,
                queued: 0
            }
        );
    }

    #[test]
    fn dropped_ticket_frees_its_queue_slot() {
        let adm = Admission::new(1, 1);
        let Enrollment::Queued(t1) = adm.enroll() else {
            panic!()
        };
        let _p1 = t1.wait(); // occupies the only worker
        let Enrollment::Queued(t2) = adm.enroll() else {
            panic!()
        };
        assert!(matches!(adm.enroll(), Enrollment::Shed(_)));
        drop(t2); // client went away while queued
        assert!(matches!(adm.enroll(), Enrollment::Queued(_)));
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let adm = Admission::new(0, 0);
        let Enrollment::Queued(t) = adm.enroll() else {
            panic!("one request must always be admittable")
        };
        let _p = t.wait();
        assert!(matches!(adm.enroll(), Enrollment::Shed(_)));
    }
}
