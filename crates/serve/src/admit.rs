//! Admission control: weighted-fair scheduling over a bounded queue.
//!
//! The service accepts at most `workers` concurrently *running* requests
//! and at most `queue` requests *waiting* for a worker. Everything beyond
//! that is **shed synchronously** — [`Admission::enroll`] answers
//! [`Enrollment::Shed`] without blocking and without spawning any work,
//! so overload costs the server one queue-state check per rejected
//! request, not a thread.
//!
//! Waiting requests are not a single FIFO: each request carries a
//! [`Priority`] and waits in its class's FIFO queue. Freed worker slots
//! are granted by **smooth weighted round-robin** (the nginx algorithm)
//! over the non-empty classes: every grant adds each contending class's
//! weight to its running credit, the class with the most credit wins the
//! slot and pays back the total contending weight. With weights
//! `[9, 3, 1]` a saturated server gives high-priority traffic ~69% of
//! slots while low-priority still drains — no class starves, because a
//! non-empty class's credit grows every round until it must win.
//!
//! The two-phase shape (enroll, then [`Ticket::wait`]) exists so shedding
//! is decided *before* any resources are committed: a caller that holds a
//! [`Ticket`] is guaranteed a worker slot eventually, because every
//! [`Permit`] holder's work is wall-clock bounded by the service
//! (requests run under a hard cap even when the client asked for no
//! budget) and the scheduler is starvation-free. Dropping a ticket
//! without waiting (client gone) releases the queue slot — or, if the
//! slot was already granted, releases the worker and reschedules.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Scheduling class of a request. Defaults to [`Priority::Normal`];
/// clients opt in via the wire key `"priority"`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic: largest scheduling weight.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Batch / backfill traffic: smallest weight, never starved.
    Low,
}

/// Number of priority classes (the length of every per-class array).
pub const PRIORITY_CLASSES: usize = 3;

/// Default smooth-WRR weights, indexed by [`Priority::index`].
pub const DEFAULT_WEIGHTS: [u32; PRIORITY_CLASSES] = [9, 3, 1];

impl Priority {
    /// Dense index: High = 0, Normal = 1, Low = 2.
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// All classes, in index order.
    pub fn all() -> [Priority; PRIORITY_CLASSES] {
        [Priority::High, Priority::Normal, Priority::Low]
    }

    /// Stable lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses a wire name; `None` for anything but `high`/`normal`/`low`.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }
}

/// Snapshot of the admission state, for shed responses and metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Load {
    /// Requests currently holding a worker slot (granted or converted).
    pub running: usize,
    /// Requests currently queued for a slot.
    pub queued: usize,
}

#[derive(Debug)]
struct State {
    running: usize,
    queued: usize,
    next_id: u64,
    /// FIFO of waiting ticket ids, one queue per priority class.
    waiting: [VecDeque<u64>; PRIORITY_CLASSES],
    /// Tickets that have been granted a worker slot but have not yet
    /// converted in [`Ticket::wait`]. Small (≤ workers), so linear scan.
    granted: Vec<u64>,
    /// Smooth-WRR credit per class.
    credit: [i64; PRIORITY_CLASSES],
}

/// The admission controller. One per service; shared by reference across
/// connection threads.
#[derive(Debug)]
pub struct Admission {
    workers: usize,
    queue: usize,
    weights: [u32; PRIORITY_CLASSES],
    state: Mutex<State>,
    wakeup: Condvar,
}

/// Outcome of [`Admission::enroll`].
#[derive(Debug)]
pub enum Enrollment<'a> {
    /// A queue slot was granted; [`Ticket::wait`] blocks until a worker
    /// slot is scheduled to this request.
    Queued(Ticket<'a>),
    /// Workers busy and queue full — the request must be answered with a
    /// shed frame. Carries the load at the moment of rejection.
    Shed(Load),
}

/// A granted queue slot (phase one). Converts into a [`Permit`] via
/// [`wait`](Ticket::wait); dropping it un-queues the request (and frees
/// the worker slot if one was already scheduled to it).
#[derive(Debug)]
pub struct Ticket<'a> {
    adm: &'a Admission,
    id: u64,
    class: usize,
    converted: bool,
}

/// A granted worker slot (phase two). Work may run while this is alive;
/// dropping it frees the slot and schedules queued tickets.
#[derive(Debug)]
pub struct Permit<'a> {
    adm: &'a Admission,
}

impl Admission {
    /// A controller admitting `workers` concurrent runs and `queue`
    /// waiters, scheduling with [`DEFAULT_WEIGHTS`]. `workers` is
    /// clamped to at least 1 (a server that can run nothing would shed
    /// everything).
    pub fn new(workers: usize, queue: usize) -> Self {
        Admission::weighted(workers, queue, DEFAULT_WEIGHTS)
    }

    /// [`Admission::new`] with explicit per-class weights (indexed by
    /// [`Priority::index`]). Each weight is clamped to at least 1 so no
    /// class can be configured into starvation.
    pub fn weighted(workers: usize, queue: usize, weights: [u32; PRIORITY_CLASSES]) -> Self {
        Admission {
            workers: workers.max(1),
            queue,
            weights: weights.map(|w| w.max(1)),
            state: Mutex::new(State {
                running: 0,
                queued: 0,
                next_id: 0,
                waiting: Default::default(),
                granted: Vec::new(),
                credit: [0; PRIORITY_CLASSES],
            }),
            wakeup: Condvar::new(),
        }
    }

    /// Phase one: try to take a queue slot. Never blocks.
    pub fn enroll(&self, priority: Priority) -> Enrollment<'_> {
        let mut st = self.state.lock().expect("admission lock");
        // bound total in-flight (running + queued): a ticket on a free
        // worker is scheduled immediately below, so free workers are
        // usable capacity, but they must not be double-counted while
        // earlier tickets have enrolled and not yet converted
        if st.running + st.queued < self.workers + self.queue {
            let id = st.next_id;
            st.next_id += 1;
            st.queued += 1;
            let class = priority.index();
            st.waiting[class].push_back(id);
            self.schedule(&mut st);
            Enrollment::Queued(Ticket {
                adm: self,
                id,
                class,
                converted: false,
            })
        } else {
            Enrollment::Shed(Load {
                running: st.running,
                queued: st.queued,
            })
        }
    }

    /// Current load snapshot.
    pub fn load(&self) -> Load {
        let st = self.state.lock().expect("admission lock");
        Load {
            running: st.running,
            queued: st.queued,
        }
    }

    /// Waiting requests per priority class (indexed by
    /// [`Priority::index`]), for the metrics snapshot.
    pub fn depths(&self) -> [usize; PRIORITY_CLASSES] {
        let st = self.state.lock().expect("admission lock");
        let mut out = [0; PRIORITY_CLASSES];
        for (d, q) in out.iter_mut().zip(st.waiting.iter()) {
            *d = q.len();
        }
        out
    }

    /// The scheduling weights in effect (post-clamp).
    pub fn weights(&self) -> [u32; PRIORITY_CLASSES] {
        self.weights
    }

    /// Grants free worker slots to waiting tickets by smooth weighted
    /// round-robin, then wakes every waiter so granted tickets can
    /// convert. Must be called with the state lock held.
    fn schedule(&self, st: &mut State) {
        let mut granted_any = false;
        while st.running < self.workers {
            let contending: Vec<usize> = (0..PRIORITY_CLASSES)
                .filter(|&i| !st.waiting[i].is_empty())
                .collect();
            if contending.is_empty() {
                break;
            }
            let mut total: i64 = 0;
            for &i in &contending {
                st.credit[i] += i64::from(self.weights[i]);
                total += i64::from(self.weights[i]);
            }
            // argmax credit; ties resolve to the higher-priority class
            // (lower index), which keeps the schedule deterministic
            let winner = contending
                .iter()
                .copied()
                .max_by_key(|&i| (st.credit[i], std::cmp::Reverse(i)))
                .expect("contending is non-empty");
            st.credit[winner] -= total;
            let id = st.waiting[winner].pop_front().expect("winner is non-empty");
            st.granted.push(id);
            st.queued -= 1;
            st.running += 1;
            granted_any = true;
        }
        if granted_any {
            self.wakeup.notify_all();
        }
    }
}

impl<'a> Ticket<'a> {
    /// Phase two: block until the scheduler grants this request a worker
    /// slot. Progress is guaranteed because every permit holder's work
    /// is wall-clock bounded by the service and smooth WRR never starves
    /// a non-empty class.
    pub fn wait(mut self) -> Permit<'a> {
        let mut st = self.adm.state.lock().expect("admission lock");
        loop {
            if let Some(pos) = st.granted.iter().position(|&g| g == self.id) {
                st.granted.swap_remove(pos);
                break;
            }
            st = self.adm.wakeup.wait(st).expect("admission lock");
        }
        self.converted = true; // Drop must not release anything
        drop(st);
        Permit { adm: self.adm }
    }
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        if self.converted {
            return;
        }
        let mut st = self.adm.state.lock().expect("admission lock");
        if let Some(pos) = st.granted.iter().position(|&g| g == self.id) {
            // granted but never converted: the worker slot comes back
            st.granted.swap_remove(pos);
            st.running -= 1;
            self.adm.schedule(&mut st);
        } else if let Some(pos) = st.waiting[self.class].iter().position(|&w| w == self.id) {
            st.waiting[self.class].remove(pos);
            st.queued -= 1;
        }
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.adm.state.lock().expect("admission lock");
        st.running -= 1;
        self.adm.schedule(&mut st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn sheds_beyond_workers_plus_queue() {
        let adm = Admission::new(2, 3);
        let mut held = Vec::new();
        for _ in 0..5 {
            match adm.enroll(Priority::Normal) {
                Enrollment::Queued(t) => held.push(t),
                Enrollment::Shed(_) => panic!("capacity 2+3 must admit 5"),
            }
        }
        match adm.enroll(Priority::High) {
            Enrollment::Shed(load) => {
                assert_eq!(load.running + load.queued, 5);
            }
            Enrollment::Queued(_) => panic!("sixth request must shed"),
        }
        drop(held);
        assert_eq!(
            adm.load(),
            Load {
                running: 0,
                queued: 0
            }
        );
        assert!(matches!(adm.enroll(Priority::Low), Enrollment::Queued(_)));
    }

    #[test]
    fn permits_bound_concurrency() {
        let adm = Arc::new(Admission::new(2, 16));
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for i in 0..8 {
                let adm = Arc::clone(&adm);
                let peak = Arc::clone(&peak);
                let live = Arc::clone(&live);
                scope.spawn(move || {
                    let priority = Priority::all()[i % PRIORITY_CLASSES];
                    let Enrollment::Queued(ticket) = adm.enroll(priority) else {
                        panic!("queue of 16 cannot shed 8");
                    };
                    let permit = ticket.wait();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(5));
                    live.fetch_sub(1, Ordering::SeqCst);
                    drop(permit);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "permit bound violated");
        assert_eq!(
            adm.load(),
            Load {
                running: 0,
                queued: 0
            }
        );
    }

    #[test]
    fn dropped_ticket_frees_its_queue_slot() {
        let adm = Admission::new(1, 1);
        let Enrollment::Queued(t1) = adm.enroll(Priority::Normal) else {
            panic!()
        };
        let _p1 = t1.wait(); // occupies the only worker
        let Enrollment::Queued(t2) = adm.enroll(Priority::Normal) else {
            panic!()
        };
        assert!(matches!(adm.enroll(Priority::High), Enrollment::Shed(_)));
        drop(t2); // client went away while queued
        assert!(matches!(adm.enroll(Priority::Low), Enrollment::Queued(_)));
    }

    #[test]
    fn dropped_granted_ticket_frees_the_worker_slot() {
        let adm = Admission::new(1, 4);
        let Enrollment::Queued(t1) = adm.enroll(Priority::Normal) else {
            panic!()
        };
        // t1 was scheduled onto the free worker but never converts
        assert_eq!(adm.load().running, 1);
        let Enrollment::Queued(t2) = adm.enroll(Priority::Normal) else {
            panic!()
        };
        drop(t1); // slot must come back and go to t2
        assert_eq!(
            adm.load(),
            Load {
                running: 1,
                queued: 0
            }
        );
        let _p2 = t2.wait(); // converts without blocking
        assert_eq!(
            adm.load(),
            Load {
                running: 1,
                queued: 0
            }
        );
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let adm = Admission::new(0, 0);
        let Enrollment::Queued(t) = adm.enroll(Priority::Normal) else {
            panic!("one request must always be admittable")
        };
        let _p = t.wait();
        assert!(matches!(adm.enroll(Priority::Normal), Enrollment::Shed(_)));
    }

    /// Fills the queue with one waiter per class (plus a running permit),
    /// then releases slots one at a time and records the grant order.
    fn grant_order(weights: [u32; PRIORITY_CLASSES], mix: &[Priority]) -> Vec<Priority> {
        let adm = Admission::weighted(1, mix.len(), weights);
        let Enrollment::Queued(t0) = adm.enroll(Priority::Normal) else {
            panic!()
        };
        let gate = t0.wait(); // occupy the worker so the mix queues up
        let order = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            let mut tickets = Vec::new();
            for &p in mix {
                let Enrollment::Queued(t) = adm.enroll(p) else {
                    panic!("queue sized to the mix")
                };
                tickets.push((p, t));
            }
            for (p, t) in tickets {
                let order = &order;
                scope.spawn(move || {
                    let permit = t.wait();
                    order.lock().unwrap().push(p);
                    // serialize grants: one release at a time
                    std::thread::sleep(Duration::from_millis(2));
                    drop(permit);
                });
            }
            drop(gate);
        });
        order.into_inner().unwrap()
    }

    #[test]
    fn weighted_round_robin_favors_high_without_starving_low() {
        let mix: Vec<Priority> = Priority::all().into_iter().cycle().take(12).collect();
        let order = grant_order([9, 3, 1], &mix);
        assert_eq!(order.len(), 12);
        // with 4 waiters per class and weights 9:3:1, every high grant
        // lands before every low grant
        let last_high = order
            .iter()
            .rposition(|&p| p == Priority::High)
            .expect("high requests granted");
        let first_low = order
            .iter()
            .position(|&p| p == Priority::Low)
            .expect("low requests granted — no starvation");
        assert!(
            last_high < first_low,
            "9:3:1 must clear high before low: {order:?}"
        );
        // all twelve completed — low drained even under strict priority
        for p in Priority::all() {
            assert_eq!(order.iter().filter(|&&q| q == p).count(), 4);
        }
    }

    #[test]
    fn equal_weights_interleave_classes() {
        let mix: Vec<Priority> = Priority::all().into_iter().cycle().take(9).collect();
        let order = grant_order([1, 1, 1], &mix);
        // with equal weights, the first three grants cover all classes
        let head: std::collections::HashSet<_> = order[..3].iter().copied().collect();
        assert_eq!(head.len(), 3, "equal weights must interleave: {order:?}");
    }

    #[test]
    fn load_returns_to_zero_after_mixed_churn() {
        let adm = Arc::new(Admission::new(2, 8));
        std::thread::scope(|scope| {
            for i in 0..24 {
                let adm = Arc::clone(&adm);
                scope.spawn(move || {
                    let p = Priority::all()[i % PRIORITY_CLASSES];
                    match adm.enroll(p) {
                        Enrollment::Queued(t) => {
                            if i % 5 == 0 {
                                drop(t); // simulate client abandon
                            } else {
                                let _permit = t.wait();
                                std::thread::sleep(Duration::from_millis(1));
                            }
                        }
                        Enrollment::Shed(_) => {}
                    }
                });
            }
        });
        assert_eq!(
            adm.load(),
            Load {
                running: 0,
                queued: 0
            }
        );
        assert_eq!(adm.depths(), [0, 0, 0]);
    }
}
