//! The JSON-lines wire protocol: request decoding and response frames.
//!
//! One request per line, one or more response frames per request, each a
//! single JSON object on its own line. Every accepted request produces
//! **exactly one terminal frame** — `result`, `shed` or `error` — plus
//! any number of `progress` frames before it when the request opted in.
//!
//! ```json
//! {"id":"r1","hgr":"4 4\n1 2\n2 3\n3 4\n4 1\n","algo":"igmatch","restarts":4,"budget_ms":200,"deadline_ms":500}
//! {"id":"r1","frame":"result","degraded":false,"cut":1,"left":2,"right":2,...}
//! ```
//!
//! Unknown request keys are rejected (a typo'd `"deadline_m"` silently
//! ignored would be an unbounded request — the opposite of what the
//! caller asked for).

use crate::admit::Priority;
use crate::json::{self, Obj, Value};

/// Upper bound on the requested portfolio width. The portfolio builder
/// boxes one stage per restart, so an unchecked `"restarts": 1e15` would
/// be an allocation attack; no legitimate request needs more attempts
/// than this.
pub const MAX_RESTARTS: usize = 4096;

/// Upper bound on the requested block count, for the same reason: k-way
/// state is allocated per block before the netlist is even parsed.
pub const MAX_K: usize = 4096;

/// The algorithms a request may ask for. `Auto` is IG-Match with the
/// paper's weighting — the service's recommended default.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// IG-Match (the default).
    Auto,
    /// IG-Match, explicitly.
    IgMatch,
    /// IG-Vote.
    IgVote,
    /// EIG1.
    Eig1,
    /// Ratio-cut FM (RCut1.0).
    Rcut,
    /// Plain FM from random starts.
    Fm,
    /// Kernighan–Lin.
    Kl,
}

impl Algo {
    /// Wire name of the algorithm.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Auto => "auto",
            Algo::IgMatch => "igmatch",
            Algo::IgVote => "igvote",
            Algo::Eig1 => "eig1",
            Algo::Rcut => "rcut",
            Algo::Fm => "fm",
            Algo::Kl => "kl",
        }
    }

    fn from_name(name: &str) -> Option<Algo> {
        Some(match name {
            "auto" => Algo::Auto,
            "igmatch" => Algo::IgMatch,
            "igvote" => Algo::IgVote,
            "eig1" => Algo::Eig1,
            "rcut" => Algo::Rcut,
            "fm" => Algo::Fm,
            "kl" => Algo::Kl,
            _ => return None,
        })
    }
}

/// A request-scoped fault to inject, for resilience testing. Parsed from
/// the `"fault"` object; *executing* one requires the `fault-inject`
/// feature — without it the service rejects the request with an explicit
/// error instead of silently ignoring the fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSpec {
    /// Sleep this many milliseconds (in cancellable slices) before the
    /// real work of each attempt — a slow worker.
    Slow(u64),
    /// Panic inside one portfolio attempt — a poisoned stage.
    Panic,
    /// Spin charging the meter until the budget or deadline trips — a
    /// stuck eigensolve (cooperatively stuck: every spin consults the
    /// meter, as all kernels in this workspace do).
    Stuck,
}

/// One decoded request line.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Caller-chosen correlation id, echoed on every frame.
    pub id: String,
    /// The netlist, in hMETIS `.hgr` text format.
    pub hgr: String,
    /// Algorithm to run.
    pub algo: Algo,
    /// Portfolio width (attempt count); `None` = server default.
    pub restarts: Option<usize>,
    /// Base seed; `None` = the workspace default seed.
    pub seed: Option<u64>,
    /// Compute budget in milliseconds; `None` = server default cap only.
    pub budget_ms: Option<u64>,
    /// Hard deadline in milliseconds, measured from *arrival* (so queue
    /// wait counts against it); `None` = no deadline.
    pub deadline_ms: Option<u64>,
    /// Early-stop target: cancel the portfolio once an attempt reaches
    /// this ratio cut.
    pub target_ratio: Option<f64>,
    /// Number of blocks; `None` or `Some(2)` is the classic bipartition
    /// path (identical frames to older clients). `k > 2` switches the
    /// request onto the k-way portfolio and the result frame carries a
    /// `blocks` array instead of the `partition` digit string.
    pub k: Option<usize>,
    /// Balance slack ε for k-way requests: every block must hold at most
    /// `(1+ε)·total/k` area. Ignored on the bipartition path.
    pub epsilon: Option<f64>,
    /// Multilevel V-cycle routing: `Some(true)` forces the request
    /// through the coarsen/partition/uncoarsen tier, `Some(false)` opts
    /// out, `None` leaves the choice to the server's size-based default
    /// (large netlists with `algo: auto` take the V-cycle).
    pub multilevel: Option<bool>,
    /// Stream `progress` frames (stage events) before the terminal frame.
    pub progress: bool,
    /// Admission class: `"high"`, `"normal"` (default) or `"low"`.
    /// Under saturation the weighted-fair scheduler gives `high` most of
    /// the freed worker slots while still draining `low`.
    pub priority: Priority,
    /// Fault to inject (resilience testing).
    pub fault: Option<FaultSpec>,
}

const REQUEST_KEYS: &[&str] = &[
    "id",
    "hgr",
    "algo",
    "restarts",
    "seed",
    "budget_ms",
    "deadline_ms",
    "target_ratio",
    "k",
    "epsilon",
    "multilevel",
    "progress",
    "priority",
    "fault",
];

/// Checked u64 → usize with an explicit upper bound: rejects values that
/// overflow `usize` (32-bit targets) or exceed `max`, instead of the
/// silent truncation an `as usize` cast would produce.
fn bounded_usize(n: u64, key: &str, max: usize) -> Result<usize, String> {
    match usize::try_from(n) {
        Ok(v) if v <= max => Ok(v),
        _ => Err(format!("'{key}' must be at most {max}")),
    }
}

impl Request {
    /// Decodes one request line. The error string is safe to echo into
    /// an [`error frame`](error_frame).
    pub fn parse(line: &str) -> Result<Request, String> {
        let doc = json::parse(line).map_err(|e| format!("bad json: {e}"))?;
        let keys = doc.keys().ok_or("request must be a json object")?;
        if let Some(unknown) = keys.iter().find(|k| !REQUEST_KEYS.contains(k)) {
            return Err(format!("unknown request key '{unknown}'"));
        }
        let id = doc
            .get("id")
            .and_then(Value::as_str)
            .ok_or("missing string field 'id'")?
            .to_string();
        let hgr = doc
            .get("hgr")
            .and_then(Value::as_str)
            .ok_or("missing string field 'hgr'")?
            .to_string();
        let algo = match doc.get("algo") {
            None => Algo::Auto,
            Some(v) => {
                let name = v.as_str().ok_or("'algo' must be a string")?;
                Algo::from_name(name).ok_or_else(|| format!("unknown algo '{name}'"))?
            }
        };
        let restarts = match doc.get("restarts") {
            None => None,
            Some(v) => {
                let n = v
                    .as_u64()
                    .ok_or("'restarts' must be a non-negative integer")?;
                if n == 0 {
                    return Err("'restarts' must be at least 1".into());
                }
                Some(bounded_usize(n, "restarts", MAX_RESTARTS)?)
            }
        };
        let uint = |key: &'static str| -> Result<Option<u64>, String> {
            match doc.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("'{key}' must be a non-negative integer")),
            }
        };
        let seed = uint("seed")?;
        let budget_ms = uint("budget_ms")?;
        let deadline_ms = uint("deadline_ms")?;
        let target_ratio = match doc.get("target_ratio") {
            None => None,
            Some(v) => {
                let x = v.as_f64().ok_or("'target_ratio' must be a number")?;
                if !x.is_finite() || x < 0.0 {
                    return Err("'target_ratio' must be finite and >= 0".into());
                }
                Some(x)
            }
        };
        let k = match doc.get("k") {
            None => None,
            Some(v) => {
                let n = v.as_u64().ok_or("'k' must be a non-negative integer")?;
                if n < 2 {
                    return Err("'k' must be at least 2".into());
                }
                Some(bounded_usize(n, "k", MAX_K)?)
            }
        };
        let epsilon = match doc.get("epsilon") {
            None => None,
            Some(v) => {
                let x = v.as_f64().ok_or("'epsilon' must be a number")?;
                if !x.is_finite() || x < 0.0 {
                    return Err("'epsilon' must be finite and >= 0".into());
                }
                Some(x)
            }
        };
        let multilevel = match doc.get("multilevel") {
            None => None,
            Some(v) => Some(v.as_bool().ok_or("'multilevel' must be a boolean")?),
        };
        let progress = match doc.get("progress") {
            None => false,
            Some(v) => v.as_bool().ok_or("'progress' must be a boolean")?,
        };
        let priority = match doc.get("priority") {
            None => Priority::Normal,
            Some(v) => {
                let name = v.as_str().ok_or("'priority' must be a string")?;
                Priority::parse(name).ok_or_else(|| {
                    format!("unknown priority '{name}' (expected high, normal or low)")
                })?
            }
        };
        let fault = match doc.get("fault") {
            None => None,
            Some(v) => Some(parse_fault(v)?),
        };
        Ok(Request {
            id,
            hgr,
            algo,
            restarts,
            seed,
            budget_ms,
            deadline_ms,
            target_ratio,
            k,
            epsilon,
            multilevel,
            progress,
            priority,
            fault,
        })
    }
}

fn parse_fault(v: &Value) -> Result<FaultSpec, String> {
    let kind = v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("'fault' needs a string field 'kind'")?;
    Ok(match kind {
        "slow" => {
            let ms = v
                .get("ms")
                .and_then(Value::as_u64)
                .ok_or("fault 'slow' needs integer field 'ms'")?;
            FaultSpec::Slow(ms)
        }
        "panic" => FaultSpec::Panic,
        "stuck" => FaultSpec::Stuck,
        other => return Err(format!("unknown fault kind '{other}'")),
    })
}

/// Why a result is flagged `degraded: true` (absent on clean results).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Degradation {
    /// The deadline fired before the main portfolio finished; this is
    /// the best partition found so far.
    DeadlineBestSoFar,
    /// The spectral portfolio exceeded its retry budget; the answer
    /// comes from the FM-restarts-only tier.
    FmFallback,
    /// The deadline expired while the request was still queued; only the
    /// insurance slice ran.
    ExpiredInQueue,
    /// The compute wall expired during V-cycle uncoarsening; the
    /// remaining levels are exact projections of the coarse partition,
    /// just unrefined.
    ProjectionFallback,
}

impl Degradation {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Degradation::DeadlineBestSoFar => "deadline-best-so-far",
            Degradation::FmFallback => "fm-fallback",
            Degradation::ExpiredInQueue => "expired-in-queue",
            Degradation::ProjectionFallback => "projection-fallback",
        }
    }
}

/// Renders a `shed` frame (the 429 of this protocol): the admission
/// controller had no worker and no queue slot.
pub fn shed_frame(id: &str, running: usize, queued: usize) -> String {
    Obj::new()
        .str("id", id)
        .str("frame", "shed")
        .int("code", 429)
        .str("reason", "server at capacity: workers busy and queue full")
        .int("running", running as u64)
        .int("queued", queued as u64)
        .render()
}

/// Renders an `error` frame (terminal; the request produced no
/// partition).
pub fn error_frame(id: &str, reason: &str) -> String {
    Obj::new()
        .str("id", id)
        .str("frame", "error")
        .str("reason", reason)
        .render()
}

/// Renders a `progress` frame for one stage event of one attempt.
pub fn progress_frame(id: &str, attempt: usize, label: &str, stage: &str, detail: &str) -> String {
    Obj::new()
        .str("id", id)
        .str("frame", "progress")
        .int("attempt", attempt as u64)
        .str("label", label)
        .str("stage", stage)
        .str("detail", detail)
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_defaults() {
        let r = Request::parse(r#"{"id":"a","hgr":"1 2\n1 2\n"}"#).unwrap();
        assert_eq!(r.id, "a");
        assert_eq!(r.hgr, "1 2\n1 2\n");
        assert_eq!(r.algo, Algo::Auto);
        assert_eq!(r.restarts, None);
        assert!(!r.progress);
        assert_eq!(r.fault, None);
    }

    #[test]
    fn full_request_parses() {
        let r = Request::parse(
            r#"{"id":"b","hgr":"x","algo":"fm","restarts":8,"seed":7,"budget_ms":100,
               "deadline_ms":250,"target_ratio":0.5,"progress":true,
               "fault":{"kind":"slow","ms":20}}"#,
        )
        .unwrap();
        assert_eq!(r.algo, Algo::Fm);
        assert_eq!(r.restarts, Some(8));
        assert_eq!(r.seed, Some(7));
        assert_eq!(r.budget_ms, Some(100));
        assert_eq!(r.deadline_ms, Some(250));
        assert_eq!(r.target_ratio, Some(0.5));
        assert!(r.progress);
        assert_eq!(r.fault, Some(FaultSpec::Slow(20)));
    }

    #[test]
    fn kway_fields_parse_and_default_off() {
        let r = Request::parse(r#"{"id":"a","hgr":"x"}"#).unwrap();
        assert_eq!(r.k, None);
        assert_eq!(r.epsilon, None);
        let r = Request::parse(r#"{"id":"a","hgr":"x","k":8,"epsilon":0.25}"#).unwrap();
        assert_eq!(r.k, Some(8));
        assert_eq!(r.epsilon, Some(0.25));
    }

    #[test]
    fn multilevel_field_is_tri_state() {
        let r = Request::parse(r#"{"id":"a","hgr":"x"}"#).unwrap();
        assert_eq!(r.multilevel, None, "unset leaves routing to the server");
        let r = Request::parse(r#"{"id":"a","hgr":"x","multilevel":true}"#).unwrap();
        assert_eq!(r.multilevel, Some(true));
        let r = Request::parse(r#"{"id":"a","hgr":"x","multilevel":false}"#).unwrap();
        assert_eq!(r.multilevel, Some(false));
    }

    #[test]
    fn every_algo_name_round_trips() {
        for algo in [
            Algo::Auto,
            Algo::IgMatch,
            Algo::IgVote,
            Algo::Eig1,
            Algo::Rcut,
            Algo::Fm,
            Algo::Kl,
        ] {
            assert_eq!(Algo::from_name(algo.name()), Some(algo));
        }
        assert_eq!(Algo::from_name("hybrid"), None);
    }

    #[test]
    fn bad_requests_rejected_with_reason() {
        for (line, needle) in [
            ("nonsense", "bad json"),
            ("[]", "object"),
            (r#"{"hgr":"x"}"#, "'id'"),
            (r#"{"id":"a"}"#, "'hgr'"),
            (r#"{"id":"a","hgr":"x","algo":"magic"}"#, "unknown algo"),
            (r#"{"id":"a","hgr":"x","restarts":0}"#, "at least 1"),
            (r#"{"id":"a","hgr":"x","restarts":1.5}"#, "integer"),
            (r#"{"id":"a","hgr":"x","deadline_ms":-1}"#, "integer"),
            (r#"{"id":"a","hgr":"x","target_ratio":-2}"#, ">= 0"),
            (r#"{"id":"a","hgr":"x","k":1}"#, "'k' must be at least 2"),
            (r#"{"id":"a","hgr":"x","k":2.5}"#, "integer"),
            (r#"{"id":"a","hgr":"x","epsilon":-0.1}"#, "'epsilon'"),
            (
                r#"{"id":"a","hgr":"x","multilevel":1}"#,
                "'multilevel' must be a boolean",
            ),
            (
                r#"{"id":"a","hgr":"x","deadline_m":5}"#,
                "unknown request key",
            ),
            (
                r#"{"id":"a","hgr":"x","fault":{"kind":"explode"}}"#,
                "fault",
            ),
            (r#"{"id":"a","hgr":"x","fault":{"kind":"slow"}}"#, "'ms'"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn priority_parses_and_defaults_to_normal() {
        let r = Request::parse(r#"{"id":"a","hgr":"x"}"#).unwrap();
        assert_eq!(r.priority, Priority::Normal);
        for (name, want) in [
            ("high", Priority::High),
            ("normal", Priority::Normal),
            ("low", Priority::Low),
        ] {
            let line = format!(r#"{{"id":"a","hgr":"x","priority":"{name}"}}"#);
            assert_eq!(Request::parse(&line).unwrap().priority, want);
        }
        let err = Request::parse(r#"{"id":"a","hgr":"x","priority":"urgent"}"#).unwrap_err();
        assert!(err.contains("unknown priority"), "{err}");
        let err = Request::parse(r#"{"id":"a","hgr":"x","priority":1}"#).unwrap_err();
        assert!(err.contains("must be a string"), "{err}");
    }

    #[test]
    fn adversarial_numbers_rejected_not_truncated() {
        // every line here used to risk a lossy `as usize` truncation or
        // an unbounded allocation; all must reject with a clear reason
        for (line, needle) in [
            // negative and fractional integers
            (r#"{"id":"a","hgr":"x","k":-1}"#, "integer"),
            (r#"{"id":"a","hgr":"x","k":2.5}"#, "integer"),
            (r#"{"id":"a","hgr":"x","restarts":-4}"#, "integer"),
            (r#"{"id":"a","hgr":"x","restarts":0.5}"#, "integer"),
            (r#"{"id":"a","hgr":"x","seed":-7}"#, "integer"),
            // magnitudes beyond exact f64 integer range
            (r#"{"id":"a","hgr":"x","deadline_ms":1e300}"#, "integer"),
            (r#"{"id":"a","hgr":"x","budget_ms":1e300}"#, "integer"),
            (r#"{"id":"a","hgr":"x","restarts":1e300}"#, "integer"),
            // in-range for u64 but beyond the allocation caps
            (r#"{"id":"a","hgr":"x","restarts":1000000000}"#, "at most"),
            (r#"{"id":"a","hgr":"x","k":1000000000}"#, "at most"),
            (r#"{"id":"a","hgr":"x","restarts":4097}"#, "at most"),
            (r#"{"id":"a","hgr":"x","k":4097}"#, "at most"),
            // non-finite and non-numeric
            (r#"{"id":"a","hgr":"x","target_ratio":1e999}"#, "bad json"),
            (r#"{"id":"a","hgr":"x","deadline_ms":"5"}"#, "integer"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
        // the caps themselves are accepted
        let r = Request::parse(r#"{"id":"a","hgr":"x","restarts":4096,"k":4096}"#).unwrap();
        assert_eq!(r.restarts, Some(MAX_RESTARTS));
        assert_eq!(r.k, Some(MAX_K));
    }

    #[test]
    fn frames_are_single_line_valid_json() {
        for frame in [
            shed_frame("id\"☂", 2, 4),
            error_frame("x", "bad\nreason"),
            progress_frame("x", 3, "fm#3", "fm", "pass 2"),
        ] {
            assert!(!frame.contains('\n'));
            let doc = crate::json::parse(&frame).unwrap();
            assert!(doc.get("id").is_some());
        }
    }

    #[test]
    fn shed_frame_is_429() {
        let doc = crate::json::parse(&shed_frame("r", 2, 4)).unwrap();
        assert_eq!(doc.get("code").and_then(Value::as_u64), Some(429));
        assert_eq!(doc.get("frame").and_then(Value::as_str), Some("shed"));
        assert_eq!(doc.get("running").and_then(Value::as_u64), Some(2));
        assert_eq!(doc.get("queued").and_then(Value::as_u64), Some(4));
    }
}
