//! Transports: JSON-lines over stdio or TCP.
//!
//! The transports are thin — all protocol and robustness logic lives in
//! [`Service::handle_line`], which both transports call with an `emit`
//! that locks the connection's writer per frame (frames from concurrent
//! portfolio attempts interleave, but never tear).
//!
//! * **stdio** ([`serve_stdio`]): each request line is handled on its own
//!   thread so slow requests do not head-of-line-block the next line;
//!   responses share stdout. Thread growth is bounded by admission — a
//!   line beyond `workers + queue` capacity is shed in microseconds and
//!   its thread exits.
//! * **TCP** ([`serve_tcp`]): one thread per connection, requests within
//!   a connection handled sequentially (pipelining across connections,
//!   ordering within one). A connection failing mid-write just drops its
//!   remaining frames — the service never panics on a gone client.

use crate::service::Service;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

/// Runs the service over stdin/stdout until EOF. Returns when every
/// in-flight request has emitted its terminal frame.
pub fn serve_stdio(service: &Arc<Service>) {
    let stdin = std::io::stdin();
    let out = Arc::new(Mutex::new(std::io::stdout()));
    std::thread::scope(|scope| {
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let service = Arc::clone(service);
            let out = Arc::clone(&out);
            scope.spawn(move || {
                service.handle_line(&line, &|frame: &str| {
                    let mut out = out.lock().expect("stdout lock");
                    let _ = writeln!(out, "{frame}");
                    let _ = out.flush();
                });
            });
        }
    });
}

/// Accept loop: one handler thread per connection, forever.
pub fn serve_tcp(service: &Arc<Service>, listener: TcpListener) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let service = Arc::clone(service);
        std::thread::spawn(move || handle_connection(&service, stream));
    }
    Ok(())
}

/// Handles one TCP connection: requests in order, one line each.
fn handle_connection(service: &Service, stream: TcpStream) {
    let Ok(reader_half) = stream.try_clone() else {
        return;
    };
    let writer = Mutex::new(stream);
    let reader = BufReader::new(reader_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        service.handle_line(&line, &|frame: &str| {
            let mut w = writer.lock().expect("socket lock");
            let _ = writeln!(w, "{frame}");
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use std::io::{BufRead, BufReader, Write};
    use std::time::Duration;

    #[test]
    fn tcp_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let service = Arc::new(Service::new(ServeConfig::default()));
        {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let _ = serve_tcp(&service, listener);
            });
        }
        let mut client = TcpStream::connect(addr).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        writeln!(
            client,
            r#"{{"id":"t1","hgr":"3 4\n1 2\n2 3\n3 4\n","restarts":2}}"#
        )
        .unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).expect("one response line");
        assert!(line.contains("\"frame\":\"result\""), "{line}");
        assert!(line.contains("\"id\":\"t1\""), "{line}");
        // malformed second request on the same connection still answers
        writeln!(client, "garbage").unwrap();
        line.clear();
        reader.read_line(&mut line).expect("error line");
        assert!(line.contains("\"frame\":\"error\""), "{line}");
    }
}
