//! Content-addressed netlist cache with bounded memory.
//!
//! Clients of a long-running partition service re-submit the same
//! netlist over and over (tuning `restarts`, budgets, algorithms). The
//! expensive, request-independent work — parsing the `.hgr` text and
//! building the spectral Laplacians — depends only on the netlist bytes,
//! so the service keys a cache by an FNV-1a content hash of the request's
//! `hgr` field and hands every hit the *same* [`Hypergraph`] and
//! [`OperatorCache`]. A repeat request therefore skips the parse **and**
//! (via [`np_runner::run_portfolio_cached`]) every Laplacian build its
//! first run already paid for.
//!
//! Hash collisions are handled, not assumed away: each entry stores its
//! full source text and a hit must match it byte-for-byte, otherwise the
//! lookup is treated as a miss and the colliding entry is replaced.
//!
//! Memory is bounded two ways — entry count and total resident bytes
//! (source text plus an estimate of the parsed structures) — with
//! least-recently-used eviction. Parsing happens *outside* the cache
//! lock; concurrent misses on the same text race benignly (one insert
//! wins, both callers get a valid value).

use np_core::engine::OperatorCache;
use np_netlist::Hypergraph;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A parsed netlist plus its shared spectral-operator cache.
#[derive(Debug)]
pub struct CachedNetlist {
    /// The parsed hypergraph.
    pub hypergraph: Hypergraph,
    /// Spectral operators built for this hypergraph so far; shared with
    /// every portfolio run against it.
    pub operators: Arc<OperatorCache>,
    /// Approximate resident size used for the byte bound.
    bytes: usize,
    /// The exact source text (collision guard).
    source: String,
}

impl CachedNetlist {
    /// Approximate resident bytes of this entry.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

#[derive(Debug)]
struct Entry {
    value: Arc<CachedNetlist>,
    /// Logical clock of the last hit (for LRU eviction).
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u64, Entry>,
    clock: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Usage counters, surfaced in the service metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to parse.
    pub misses: u64,
    /// Entries evicted to stay within bounds.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate bytes currently resident.
    pub bytes: usize,
}

/// Result of [`NetlistCache::audit`]: the incrementally-maintained byte
/// total versus a from-scratch recount of the resident entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheAudit {
    /// Entries currently resident.
    pub entries: usize,
    /// The running total the byte bound enforces.
    pub recorded_bytes: usize,
    /// Per-entry sizes recomputed from the stored source and parse.
    pub recomputed_bytes: usize,
}

impl CacheAudit {
    /// Whether the running total matches the recount exactly.
    pub fn consistent(&self) -> bool {
        self.recorded_bytes == self.recomputed_bytes
    }
}

/// The bounded content-addressed cache. One per service.
#[derive(Debug)]
pub struct NetlistCache {
    max_entries: usize,
    max_bytes: usize,
    inner: Mutex<Inner>,
}

impl NetlistCache {
    /// A cache bounded to `max_entries` netlists and roughly `max_bytes`
    /// resident bytes. `max_entries == 0` disables caching (every lookup
    /// parses).
    pub fn new(max_entries: usize, max_bytes: usize) -> Self {
        NetlistCache {
            max_entries,
            max_bytes,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Returns the cached netlist for `hgr`, parsing and inserting on
    /// miss.
    ///
    /// # Errors
    ///
    /// The parse error, rendered for the wire, when `hgr` is not valid
    /// hMETIS text.
    pub fn get_or_parse(&self, hgr: &str) -> Result<Arc<CachedNetlist>, String> {
        let key = fnv1a(hgr.as_bytes());
        {
            let mut inner = self.inner.lock().expect("cache lock");
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(entry) = inner.map.get_mut(&key) {
                if entry.value.source == hgr {
                    entry.last_used = clock;
                    let value = Arc::clone(&entry.value);
                    inner.hits += 1;
                    return Ok(value);
                }
                // 64-bit collision: fall through and replace below
            }
            inner.misses += 1;
        }
        // parse outside the lock: a slow parse of a big netlist must not
        // serialize every other connection's cache lookups behind it
        let hypergraph =
            np_netlist::io::parse_hgr(hgr).map_err(|e| format!("invalid hgr netlist: {e}"))?;
        let bytes = hgr.len() + estimated_bytes(&hypergraph);
        let value = Arc::new(CachedNetlist {
            hypergraph,
            operators: Arc::new(OperatorCache::new()),
            bytes,
            source: hgr.to_string(),
        });
        if self.max_entries == 0 || bytes > self.max_bytes {
            return Ok(value); // uncacheable; still perfectly usable
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.map.insert(
            key,
            Entry {
                value: Arc::clone(&value),
                last_used: clock,
            },
        ) {
            // concurrent miss on the same text (or collision replacement)
            inner.bytes -= old.value.bytes;
        }
        inner.bytes += bytes;
        while inner.map.len() > self.max_entries || inner.bytes > self.max_bytes {
            let Some((&victim, _)) = inner
                .map
                .iter()
                .filter(|(k, _)| **k != key) // never evict what we just inserted
                .min_by_key(|(_, e)| e.last_used)
            else {
                break;
            };
            let old = inner.map.remove(&victim).expect("victim present");
            inner.bytes -= old.value.bytes;
            inner.evictions += 1;
        }
        Ok(value)
    }

    /// Audits the byte accounting: recomputes every resident entry's
    /// size from its stored source and parse, and compares the sum with
    /// the incrementally-maintained total the LRU bound relies on. The
    /// two must always be equal — re-insert (collision replacement or a
    /// racing concurrent miss) and eviction both adjust the total by the
    /// exact recorded entry size. Used by the soak harness to prove no
    /// bytes leak over long mixed traffic.
    pub fn audit(&self) -> CacheAudit {
        let inner = self.inner.lock().expect("cache lock");
        let recomputed = inner
            .map
            .values()
            .map(|e| e.value.source.len() + estimated_bytes(&e.value.hypergraph))
            .sum();
        CacheAudit {
            entries: inner.map.len(),
            recorded_bytes: inner.bytes,
            recomputed_bytes: recomputed,
        }
    }

    /// Current usage counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
            bytes: inner.bytes,
        }
    }
}

/// FNV-1a over the netlist bytes — no cryptographic strength needed
/// (collisions are verified against the stored source), just dispersion.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Rough resident size of the parsed structures: pin counts dominate
/// (one u32 per pin in each direction of the incidence), plus fixed
/// per-net/per-module overhead.
fn estimated_bytes(hg: &Hypergraph) -> usize {
    hg.num_pins() * 2 * std::mem::size_of::<u32>() + (hg.num_nets() + hg.num_modules()) * 16
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hgr(nets: &[&[usize]], modules: usize) -> String {
        let mut s = format!("{} {modules}\n", nets.len());
        for net in nets {
            let line: Vec<String> = net.iter().map(|m| (m + 1).to_string()).collect();
            s.push_str(&line.join(" "));
            s.push('\n');
        }
        s
    }

    #[test]
    fn hit_returns_the_same_parse_and_operators() {
        let cache = NetlistCache::new(4, 1 << 20);
        let text = hgr(&[&[0, 1], &[1, 2]], 3);
        let a = cache.get_or_parse(&text).unwrap();
        let b = cache.get_or_parse(&text).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must share the entry");
        assert!(Arc::ptr_eq(&a.operators, &b.operators));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn parse_errors_propagate() {
        let cache = NetlistCache::new(4, 1 << 20);
        let err = cache.get_or_parse("not a netlist").unwrap_err();
        assert!(err.contains("invalid hgr"), "{err}");
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn lru_eviction_by_entry_count() {
        let cache = NetlistCache::new(2, 1 << 20);
        let a = hgr(&[&[0, 1]], 2);
        let b = hgr(&[&[0, 1], &[1, 2]], 3);
        let c = hgr(&[&[0, 1], &[1, 2], &[2, 3]], 4);
        cache.get_or_parse(&a).unwrap();
        cache.get_or_parse(&b).unwrap();
        cache.get_or_parse(&a).unwrap(); // refresh a: b is now LRU
        cache.get_or_parse(&c).unwrap(); // evicts b
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        cache.get_or_parse(&a).unwrap();
        assert_eq!(cache.stats().hits, 2, "a must have survived");
        cache.get_or_parse(&b).unwrap();
        assert_eq!(cache.stats().misses, 4, "b must have been evicted");
    }

    #[test]
    fn byte_bound_enforced() {
        let text = hgr(&[&[0, 1], &[1, 2]], 3);
        let cache = NetlistCache::new(100, 1); // absurdly small byte cap
        let v = cache.get_or_parse(&text).unwrap();
        assert!(v.bytes() > 1);
        assert_eq!(cache.stats().entries, 0, "oversized entries bypass");
        // same text again: still served (parsed fresh), still correct
        let again = cache.get_or_parse(&text).unwrap();
        assert_eq!(again.hypergraph.num_modules(), 3);
    }

    #[test]
    fn zero_entries_disables_caching() {
        let cache = NetlistCache::new(0, 1 << 20);
        let text = hgr(&[&[0, 1]], 2);
        cache.get_or_parse(&text).unwrap();
        cache.get_or_parse(&text).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn refresh_does_not_double_count_bytes() {
        let cache = NetlistCache::new(4, 1 << 20);
        let text = hgr(&[&[0, 1], &[1, 2]], 3);
        let first = cache.get_or_parse(&text).unwrap();
        let after_insert = cache.stats().bytes;
        assert_eq!(after_insert, first.bytes());
        for _ in 0..10 {
            cache.get_or_parse(&text).unwrap(); // refresh hits
        }
        assert_eq!(
            cache.stats().bytes,
            after_insert,
            "refreshing an entry must not change the byte total"
        );
        assert!(cache.audit().consistent(), "{:?}", cache.audit());
    }

    /// Model-based property test: replay a deterministic insert /
    /// refresh / evict sequence against a trivially-correct model (a
    /// map of key → byte size with the same LRU rules) and require the
    /// cache's recorded byte total to match the model *and* a
    /// from-scratch recount after every step.
    #[test]
    fn byte_accounting_matches_a_model_over_mixed_sequences() {
        // distinct netlists of growing size: index i has i+1 nets
        let texts: Vec<String> = (0..12)
            .map(|i| {
                let nets: Vec<Vec<usize>> = (0..=i).map(|n| vec![n, n + 1]).collect();
                let refs: Vec<&[usize]> = nets.iter().map(Vec::as_slice).collect();
                hgr(&refs, i + 2)
            })
            .collect();
        let sizes: Vec<usize> = texts
            .iter()
            .map(|t| t.len() + estimated_bytes(&np_netlist::io::parse_hgr(t).unwrap()))
            .collect();
        let max_entries = 4;
        let max_bytes = sizes.iter().take(5).sum::<usize>(); // forces byte evictions
        let cache = NetlistCache::new(max_entries, max_bytes);

        // the model: (key, size, last_used) with the same eviction rule
        let mut model: Vec<(usize, usize, u64)> = Vec::new();
        let mut clock = 0u64;
        // xorshift for a deterministic but well-mixed access pattern
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..400 {
            let i = (rng() % texts.len() as u64) as usize;
            cache.get_or_parse(&texts[i]).unwrap();
            clock += 1;
            // model update: refresh or insert, then evict like the cache
            if let Some(slot) = model.iter_mut().find(|(k, _, _)| *k == i) {
                slot.2 = clock;
            } else if sizes[i] <= max_bytes {
                model.push((i, sizes[i], clock));
                loop {
                    let total: usize = model.iter().map(|(_, s, _)| s).sum();
                    if model.len() <= max_entries && total <= max_bytes {
                        break;
                    }
                    let victim = model
                        .iter()
                        .enumerate()
                        .filter(|(_, (k, _, _))| *k != i)
                        .min_by_key(|(_, (_, _, used))| *used)
                        .map(|(pos, _)| pos)
                        .expect("eviction candidate");
                    model.remove(victim);
                }
            }
            let expected: usize = model.iter().map(|(_, s, _)| s).sum();
            let stats = cache.stats();
            assert_eq!(stats.bytes, expected, "model divergence at clock {clock}");
            assert_eq!(stats.entries, model.len());
            assert!(stats.bytes <= max_bytes, "byte bound violated");
            let audit = cache.audit();
            assert!(audit.consistent(), "recount mismatch: {audit:?}");
        }
        assert!(
            cache.stats().evictions > 0,
            "the sequence must actually exercise eviction"
        );
    }

    #[test]
    fn concurrent_misses_converge() {
        let cache = Arc::new(NetlistCache::new(8, 1 << 20));
        let text = hgr(&[&[0, 1], &[1, 2], &[0, 2]], 3);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let text = text.clone();
                scope.spawn(move || cache.get_or_parse(&text).unwrap());
            }
        });
        assert_eq!(cache.stats().entries, 1);
    }
}
