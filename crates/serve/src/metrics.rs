//! Service telemetry: monotonic counters and log-bucketed latency
//! histograms, all lock-free (relaxed atomics — they are telemetry, not
//! synchronization).
//!
//! # Histogram buckets
//!
//! [`Histogram`] buckets by powers of two of **microseconds**: bucket
//! `i` holds observations with `floor(log2(µs)) == i`, so bucket 0 is
//! `[1 µs, 2 µs)`, bucket 10 is `[~1 ms, ~2 ms)`, bucket 19 is
//! `[~0.5 s, ~1 s)` and the last bucket ([`HISTOGRAM_BUCKETS`] − 1,
//! ≳ 33 s) catches everything beyond the service's wall caps.
//! Percentiles are estimated from the bucket upper edges, so a reported
//! p99 is an upper bound within one power of two of the true value —
//! exactly the fidelity a load balancer needs, at the cost of two
//! atomic adds per observation.
//!
//! # Consistency contract
//!
//! Every counter and histogram cell is individually monotonic, but a
//! snapshot taken *during* a request burst is not a transaction — a
//! reader may see a request counted before its latency is observed. At
//! quiescence (no in-flight requests) the identities hold exactly:
//! `results + degraded + shed + errors == requests`,
//! `latency.count == requests`, `queue_wait.count == admitted`, and
//! every histogram's bucket sum equals its count. The soak harness and
//! the `/metrics` concurrency test pin both halves of this contract.

use crate::admit::{Priority, PRIORITY_CLASSES};
use crate::json::Obj;
use crate::proto::Degradation;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two microsecond buckets per histogram.
pub const HISTOGRAM_BUCKETS: usize = 26;

/// A lock-free latency histogram with power-of-two microsecond buckets.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

/// A point-in-time copy of one [`Histogram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed durations, in microseconds.
    pub sum_us: u64,
}

/// Bucket index for a duration of `us` microseconds: `floor(log2(us))`,
/// clamped into the bucket range (sub-microsecond observations land in
/// bucket 0, everything ≥ 2^25 µs in the last bucket).
fn bucket_index(us: u64) -> usize {
    (us.max(1).ilog2() as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper edge of bucket `i`, in microseconds (the last
/// bucket's true range is unbounded; its edge is used for percentile
/// estimates).
pub fn bucket_edge_us(i: usize) -> u64 {
    (2u64 << i) - 1
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current cell values (see the module-level consistency
    /// contract: exact at quiescence, monotonic always).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, cell) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
        }
    }
}

impl HistogramSnapshot {
    /// Estimated `q`-quantile (0 ≤ q ≤ 1) in microseconds: the upper
    /// edge of the first bucket whose cumulative count reaches
    /// `q · count`. Zero when the histogram is empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_edge_us(i);
            }
        }
        bucket_edge_us(HISTOGRAM_BUCKETS - 1)
    }

    /// Renders the snapshot as a JSON object:
    /// `{"count":…,"sum_us":…,"p50_us":…,"p90_us":…,"p99_us":…,"buckets":[…]}`.
    /// Trailing empty buckets are trimmed from the array (the edges are
    /// implied by position: bucket `i` ends at `2^(i+1) − 1 µs`).
    pub fn to_json(&self) -> String {
        let used = self
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |i| i + 1);
        let cells: Vec<String> = self.buckets[..used].iter().map(u64::to_string).collect();
        Obj::new()
            .int("count", self.count)
            .int("sum_us", self.sum_us)
            .int("p50_us", self.quantile_us(0.50))
            .int("p90_us", self.quantile_us(0.90))
            .int("p99_us", self.quantile_us(0.99))
            .raw("buckets", format!("[{}]", cells.join(",")))
            .render()
    }
}

/// Result-frame tiers tracked by the per-tier wall histograms: index 0
/// is a clean result, 1..=4 are the [`Degradation`] reasons in
/// [`TIER_NAMES`] order.
pub const RESULT_TIERS: usize = 5;

/// Wire names of the per-tier histograms, indexed by [`tier_index`].
pub const TIER_NAMES: [&str; RESULT_TIERS] = [
    "clean",
    "deadline-best-so-far",
    "fm-fallback",
    "expired-in-queue",
    "projection-fallback",
];

/// Histogram index of a result frame's degradation (None = clean).
pub fn tier_index(degradation: Option<Degradation>) -> usize {
    match degradation {
        None => 0,
        Some(Degradation::DeadlineBestSoFar) => 1,
        Some(Degradation::FmFallback) => 2,
        Some(Degradation::ExpiredInQueue) => 3,
        Some(Degradation::ProjectionFallback) => 4,
    }
}

/// Monotonic service counters and latency histograms. See the module
/// docs for the consistency contract.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Request lines received (excluding `/metrics` and `/trace`).
    pub requests: AtomicU64,
    /// Requests that acquired a worker permit.
    pub admitted: AtomicU64,
    /// Terminal `result` frames, clean.
    pub results: AtomicU64,
    /// Terminal `result` frames flagged degraded.
    pub degraded: AtomicU64,
    /// Terminal `shed` frames.
    pub shed: AtomicU64,
    /// Terminal `error` frames.
    pub errors: AtomicU64,
    /// Main-tier retries performed.
    pub retries: AtomicU64,
    /// Requests that fell to the FM-restarts tier.
    pub fm_fallbacks: AtomicU64,
    /// Requests answered by the multilevel V-cycle tier.
    pub multilevel: AtomicU64,
    /// Panics contained by the service/runner isolation boundaries.
    pub panics_contained: AtomicU64,
    /// Arrival → terminal frame, every request.
    pub latency: Histogram,
    /// Arrival → terminal frame, per admission class.
    pub latency_by_priority: [Histogram; PRIORITY_CLASSES],
    /// Enroll → permit, admitted requests only.
    pub queue_wait: Histogram,
    /// Enroll → permit, per admission class.
    pub queue_wait_by_priority: [Histogram; PRIORITY_CLASSES],
    /// Permit → terminal frame (compute wall), result frames only, per
    /// degradation tier ([`TIER_NAMES`]).
    pub wall_by_tier: [Histogram; RESULT_TIERS],
}

impl Metrics {
    /// Bumps one counter.
    pub fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a terminal latency (arrival → terminal frame) under the
    /// request's admission class.
    pub fn observe_latency(&self, priority: Priority, latency: Duration) {
        self.latency.observe(latency);
        self.latency_by_priority[priority.index()].observe(latency);
    }

    /// Records an admission queue wait under the request's class.
    pub fn observe_queue_wait(&self, priority: Priority, wait: Duration) {
        self.queue_wait.observe(wait);
        self.queue_wait_by_priority[priority.index()].observe(wait);
    }

    /// Renders the counters as a one-line JSON object (no histograms —
    /// the full snapshot is the service's `/metrics` frame).
    pub fn to_json(&self) -> String {
        Obj::new()
            .int("requests", self.requests.load(Ordering::Relaxed))
            .int("admitted", self.admitted.load(Ordering::Relaxed))
            .int("results", self.results.load(Ordering::Relaxed))
            .int("degraded", self.degraded.load(Ordering::Relaxed))
            .int("shed", self.shed.load(Ordering::Relaxed))
            .int("errors", self.errors.load(Ordering::Relaxed))
            .int("retries", self.retries.load(Ordering::Relaxed))
            .int("fm_fallbacks", self.fm_fallbacks.load(Ordering::Relaxed))
            .int("multilevel", self.multilevel.load(Ordering::Relaxed))
            .int(
                "panics_contained",
                self.panics_contained.load(Ordering::Relaxed),
            )
            .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_index_is_floor_log2_micros() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // edges are inclusive upper bounds of their bucket
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_edge_us(i)), i);
            assert_eq!(bucket_index(bucket_edge_us(i) + 1), i + 1);
        }
    }

    #[test]
    fn observations_land_in_their_buckets_and_sum_matches_count() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(1));
        h.observe(Duration::from_micros(3));
        h.observe(Duration::from_millis(1)); // 1000 µs → bucket 9
        h.observe(Duration::from_secs(120)); // beyond the range → last
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[9], 1);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(s.sum_us, 1 + 3 + 1_000 + 120_000_000);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.observe(Duration::from_micros(10)); // bucket 3, edge 15
        }
        h.observe(Duration::from_millis(100)); // bucket 16, edge ~131 ms
        let s = h.snapshot();
        assert_eq!(s.quantile_us(0.50), 15);
        assert_eq!(s.quantile_us(0.99), 15);
        assert_eq!(s.quantile_us(1.0), bucket_edge_us(16));
        assert!(s.quantile_us(0.5) >= 10, "upper bound property");
        assert_eq!(HistogramSnapshot::default_empty().quantile_us(0.99), 0);
    }

    impl HistogramSnapshot {
        fn default_empty() -> Self {
            HistogramSnapshot {
                buckets: [0; HISTOGRAM_BUCKETS],
                count: 0,
                sum_us: 0,
            }
        }
    }

    #[test]
    fn snapshot_json_is_valid_and_trims_trailing_buckets() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(5));
        let json = h.snapshot().to_json();
        let doc = crate::json::parse(&json).unwrap();
        assert_eq!(doc.get("count").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(doc.get("sum_us").and_then(|v| v.as_u64()), Some(5));
        assert_eq!(doc.get("p99_us").and_then(|v| v.as_u64()), Some(7));
        let crate::json::Value::Array(buckets) = doc.get("buckets").unwrap() else {
            panic!("buckets must be an array");
        };
        assert_eq!(buckets.len(), 3, "trailing zeros trimmed: {json}");
    }

    #[test]
    fn concurrent_observations_are_all_counted() {
        let h = Arc::new(Histogram::default());
        std::thread::scope(|scope| {
            for t in 0..8 {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.observe(Duration::from_micros((t * 1000 + i) as u64));
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 8000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 8000);
    }

    #[test]
    fn tier_indices_cover_every_degradation() {
        assert_eq!(tier_index(None), 0);
        let mut seen = [false; RESULT_TIERS];
        seen[0] = true;
        for d in [
            Degradation::DeadlineBestSoFar,
            Degradation::FmFallback,
            Degradation::ExpiredInQueue,
            Degradation::ProjectionFallback,
        ] {
            let i = tier_index(Some(d));
            assert_eq!(TIER_NAMES[i], d.name(), "name table must match");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
