//! The request lifecycle: admission → deadline-bounded execution →
//! exactly one terminal frame.
//!
//! # The state machine (DESIGN.md §12)
//!
//! ```text
//! line ──parse──▶ enroll ──full──▶ SHED (429)
//!                   │
//!                 queued ──deadline passed in queue──▶ insurance only
//!                   │                                   └▶ RESULT degraded
//!                 permit
//!                   │
//!              insurance FM  (tiny slice: there is *always* a best-so-far)
//!                   │
//!        V-cycle tier (opt-in, or large netlists on the default algo)
//!                   │         └──ok──▶ RESULT (tier "multilevel", levels)
//!                   │
//!              main portfolio ──ok──▶ RESULT (degraded iff deadline fired)
//!                   │
//!            transient error ──retry×N (reseed + backoff)──▶ main portfolio
//!                   │
//!            retries exhausted ──▶ FM-restarts tier ──ok──▶ RESULT degraded
//!                   │                                  │
//!                   └──────── nothing ever completed ──┴──▶ best-so-far
//!                                                           or ERROR
//! ```
//!
//! Three invariants the tests pin down:
//!
//! 1. **Exactly one terminal frame per request** — every path through
//!    [`Service::handle_line`] ends in one `result`, `shed` or `error`
//!    frame, and a panic anywhere in execution is caught and converted
//!    into an `error` frame rather than unwinding through the server
//!    loop.
//! 2. **Bounded occupancy** — a request holds its worker permit for at
//!    most the insurance slice plus `min(budget, deadline, max_wall)`
//!    plus bounded backoff, so queued tickets always make progress and
//!    [`Admission`] never needs a watchdog.
//! 3. **Deadline ⇒ degraded, not dead** — the deadline is propagated as
//!    the wall-clock limit of every [`BudgetMeter`] the request creates,
//!    tripping the kernels cooperatively; whatever completed by then is
//!    returned with `degraded: true` and the reason.

use crate::admit::{Admission, Enrollment, Priority, PRIORITY_CLASSES};
use crate::cache::{CachedNetlist, NetlistCache};
use crate::json::Obj;
use crate::metrics::{Metrics, TIER_NAMES};
use crate::proto::{self, Algo, Degradation, Request};
use np_baselines::{FmOptions, KlOptions, RcutOptions};
use np_core::engine::stages::{Eig1Stage, IgMatchStage, IgVoteStage, KlStage, RcutStage};
use np_core::engine::trace::{SpanKind, SpanRing};
use np_core::engine::RunContext;
use np_core::engine::{BoxedStage, StageEvent, DEFAULT_SEED};
use np_core::{
    Eig1Options, IgMatchOptions, IgVoteOptions, KwayOptions, PartitionError, PartitionResult,
};
use np_multilevel::{multilevel_ctx, multilevel_kway_ctx, MultilevelOptions};
use np_netlist::rng::derive_seed;
use np_netlist::Side;
use np_runner::trace::{record_attempt_spans, SpanFanIn};
use np_runner::{
    run_kway_portfolio, run_portfolio_cached, KwayPortfolio, Portfolio, PortfolioEvent,
    PortfolioOptions, RandomStartFmStage,
};
use np_sparse::{Budget, BudgetMeter, BudgetResource};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Service tuning knobs. The defaults target small interactive netlists;
/// the integration tests shrink them aggressively.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Concurrently *running* requests (admission permits).
    pub workers: usize,
    /// Requests allowed to wait for a permit before shedding starts.
    pub queue: usize,
    /// Portfolio width when the request does not name `restarts`.
    pub default_restarts: usize,
    /// Hard wall-clock cap on any request's compute, whatever the client
    /// asked for — this is what guarantees queue progress.
    pub max_wall: Duration,
    /// Wall-clock slice of the insurance FM tier.
    pub insurance_wall: Duration,
    /// Matvec-equivalent cap of the insurance FM tier.
    pub insurance_matvecs: u64,
    /// Retry budget for transient main-tier failures (reseed + backoff).
    pub retries: usize,
    /// Base backoff; retry `i` sleeps `backoff << i` (cooperatively).
    pub backoff: Duration,
    /// Netlist cache entry bound.
    pub cache_entries: usize,
    /// Netlist cache byte bound.
    pub cache_bytes: usize,
    /// Netlists with at least this many modules route through the
    /// multilevel V-cycle tier when the request uses the default
    /// algorithm and does not say `"multilevel": false`. An explicit
    /// `"multilevel": true` takes the tier at any size.
    pub multilevel_threshold: usize,
    /// Smooth-WRR admission weights per priority class, indexed by
    /// [`Priority::index`] (high, normal, low). Each clamps to ≥ 1.
    pub priority_weights: [u32; PRIORITY_CLASSES],
    /// Capacity of the tracing span ring buffer.
    pub span_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue: 16,
            default_restarts: 4,
            max_wall: Duration::from_secs(5),
            insurance_wall: Duration::from_millis(25),
            insurance_matvecs: 200_000,
            retries: 2,
            backoff: Duration::from_millis(10),
            cache_entries: 32,
            cache_bytes: 64 << 20,
            multilevel_threshold: 20_000,
            priority_weights: crate::admit::DEFAULT_WEIGHTS,
            span_capacity: 1024,
        }
    }
}

/// The partition service: admission controller, netlist cache, metrics
/// and span ring behind one synchronous entry point, [`handle_line`].
///
/// [`handle_line`]: Service::handle_line
#[derive(Debug)]
pub struct Service {
    cfg: ServeConfig,
    admission: Admission,
    cache: NetlistCache,
    metrics: Metrics,
    spans: SpanRing,
    seq: AtomicU64,
}

/// Everything known about the best answer so far, carried across tiers.
struct Candidate {
    result: PartitionResult,
    tier: &'static str,
}

impl Service {
    /// A service with the given configuration.
    pub fn new(cfg: ServeConfig) -> Self {
        Service {
            admission: Admission::weighted(cfg.workers, cfg.queue, cfg.priority_weights),
            cache: NetlistCache::new(cfg.cache_entries, cfg.cache_bytes),
            metrics: Metrics::default(),
            spans: SpanRing::new(cfg.span_capacity),
            seq: AtomicU64::new(0),
            cfg,
        }
    }

    /// The configuration this service runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The service counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Netlist cache counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Recounts the netlist cache's byte accounting (soak invariant).
    pub fn cache_audit(&self) -> crate::cache::CacheAudit {
        self.cache.audit()
    }

    /// The tracing span ring (request → attempt → stage spans).
    pub fn spans(&self) -> &SpanRing {
        &self.spans
    }

    /// Renders the one-line `metrics` frame served for a `/metrics`
    /// request line: live occupancy (running, queued, per-class queue
    /// depth), the monotonic service counters, the latency histograms
    /// (overall, per priority class, per degradation tier), the netlist
    /// cache footprint and the span-ring gauges.
    pub fn metrics_frame(&self) -> String {
        let load = self.admission.load();
        let depths = self.admission.depths();
        let weights = self.admission.weights();
        let cache = self.cache.stats();
        let m = &self.metrics;
        let requests = m.requests.load(Ordering::Relaxed);
        let shed = m.shed.load(Ordering::Relaxed);
        let by_priority = |hists: &[crate::metrics::Histogram; PRIORITY_CLASSES]| {
            let mut obj = Obj::new();
            for p in Priority::all() {
                obj = obj.raw(p.as_str(), hists[p.index()].snapshot().to_json());
            }
            obj.render()
        };
        let tiers = {
            let mut obj = Obj::new();
            for (name, hist) in TIER_NAMES.iter().zip(m.wall_by_tier.iter()) {
                obj = obj.raw(name, hist.snapshot().to_json());
            }
            obj.render()
        };
        let queue_depth = {
            let mut obj = Obj::new();
            for p in Priority::all() {
                obj = obj.int(p.as_str(), depths[p.index()] as u64);
            }
            obj.render()
        };
        Obj::new()
            .str("frame", "metrics")
            .str("schema", "np-serve/metrics/v2")
            .int("running", load.running as u64)
            .int("queued", load.queued as u64)
            .raw("queue_depth", queue_depth)
            .raw(
                "weights",
                format!("[{}]", weights.map(|w| w.to_string()).join(",")),
            )
            .int("requests", requests)
            .int("admitted", m.admitted.load(Ordering::Relaxed))
            .int("results", m.results.load(Ordering::Relaxed))
            .int("degraded", m.degraded.load(Ordering::Relaxed))
            .int("shed", shed)
            .int("errors", m.errors.load(Ordering::Relaxed))
            .int("retries", m.retries.load(Ordering::Relaxed))
            .int("fm_fallbacks", m.fm_fallbacks.load(Ordering::Relaxed))
            .int("multilevel", m.multilevel.load(Ordering::Relaxed))
            .int(
                "panics_contained",
                m.panics_contained.load(Ordering::Relaxed),
            )
            .num(
                "shed_rate",
                if requests == 0 {
                    0.0
                } else {
                    shed as f64 / requests as f64
                },
            )
            .raw("latency", m.latency.snapshot().to_json())
            .raw("latency_by_priority", by_priority(&m.latency_by_priority))
            .raw("queue_wait", m.queue_wait.snapshot().to_json())
            .raw(
                "queue_wait_by_priority",
                by_priority(&m.queue_wait_by_priority),
            )
            .raw("wall_by_tier", tiers)
            .int("cache_entries", cache.entries as u64)
            .int("cache_bytes", cache.bytes as u64)
            .int("cache_hits", cache.hits)
            .int("cache_misses", cache.misses)
            .int("cache_evictions", cache.evictions)
            .int("spans_recorded", self.spans.recorded())
            .int("spans_dropped", self.spans.dropped())
            .int("span_capacity", self.spans.capacity() as u64)
            .render()
    }

    /// Renders the one-line `trace` frame served for a `/trace` request
    /// line: the spans currently resident in the ring, oldest first,
    /// with offsets in microseconds since the service started.
    pub fn trace_frame(&self) -> String {
        let spans = self.spans.snapshot();
        let rendered: Vec<String> = spans
            .iter()
            .map(|s| {
                let mut obj = Obj::new()
                    .str("kind", s.kind.name())
                    .str("label", &s.label)
                    .int("request", s.request);
                if let Some(a) = s.attempt {
                    obj = obj.int("attempt", a as u64);
                }
                obj = obj
                    .int(
                        "start_us",
                        u64::try_from(s.start.as_micros()).unwrap_or(u64::MAX),
                    )
                    .int(
                        "wall_us",
                        u64::try_from(s.wall.as_micros()).unwrap_or(u64::MAX),
                    );
                if let Some(ok) = s.ok {
                    obj = obj.bool("ok", ok);
                }
                obj.render()
            })
            .collect();
        Obj::new()
            .str("frame", "trace")
            .int("recorded", self.spans.recorded())
            .int("dropped", self.spans.dropped())
            .raw("spans", format!("[{}]", rendered.join(",")))
            .render()
    }

    /// Handles one request line end to end, emitting every response
    /// frame through `emit` (progress frames first, then exactly one
    /// terminal frame). Blocks until the terminal frame is emitted.
    ///
    /// `emit` is called from this thread *and* (for progress frames)
    /// from portfolio worker threads, hence `Sync`.
    pub fn handle_line(&self, line: &str, emit: &(dyn Fn(&str) + Sync)) {
        // the two non-JSON lines in the protocol: read-only snapshots
        // that never enter admission (they must answer even at capacity)
        if line.trim() == "/metrics" {
            emit(&self.metrics_frame());
            return;
        }
        if line.trim() == "/trace" {
            emit(&self.trace_frame());
            return;
        }
        self.metrics.bump(&self.metrics.requests);
        let arrival = Instant::now();
        let request = match Request::parse(line) {
            Ok(r) => r,
            Err(reason) => {
                // best-effort id recovery so the client can correlate
                let id = crate::json::parse(line)
                    .ok()
                    .and_then(|d| d.get("id").and_then(|v| v.as_str().map(String::from)))
                    .unwrap_or_else(|| "?".into());
                self.metrics.bump(&self.metrics.errors);
                self.metrics
                    .observe_latency(Priority::Normal, arrival.elapsed());
                emit(&proto::error_frame(&id, &reason));
                return;
            }
        };
        if request.fault.is_some() && !cfg!(feature = "fault-inject") {
            self.metrics.bump(&self.metrics.errors);
            self.metrics
                .observe_latency(request.priority, arrival.elapsed());
            emit(&proto::error_frame(
                &request.id,
                "fault injection is disabled in this build (feature 'fault-inject')",
            ));
            return;
        }
        let deadline = request
            .deadline_ms
            .map(|ms| arrival + Duration::from_millis(ms));

        // ---- admission (phase one is synchronous: overload costs one
        // lock round-trip, not a thread or a parse) ----
        let ticket = match self.admission.enroll(request.priority) {
            Enrollment::Queued(t) => t,
            Enrollment::Shed(load) => {
                self.metrics.bump(&self.metrics.shed);
                self.metrics
                    .observe_latency(request.priority, arrival.elapsed());
                emit(&proto::shed_frame(&request.id, load.running, load.queued));
                return;
            }
        };
        let permit = ticket.wait();
        let queue_wait = arrival.elapsed();
        self.metrics.bump(&self.metrics.admitted);
        self.metrics
            .observe_queue_wait(request.priority, queue_wait);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;

        // ---- execution, panic-isolated: nothing unwinds past here ----
        let exec_start = Instant::now();
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.execute(&request, seq, deadline, queue_wait, emit)
        }));
        drop(permit);
        let wall = exec_start.elapsed();
        let frame = run.unwrap_or_else(|payload| {
            self.metrics.bump(&self.metrics.panics_contained);
            let err = np_core::panic_error(payload);
            proto::error_frame(&request.id, &err.to_string())
        });
        let doc = crate::json::parse(&frame).ok();
        let kind = doc
            .as_ref()
            .and_then(|d| d.get("frame").and_then(|v| v.as_str()));
        let ok = match kind {
            Some("result") => {
                let degraded = doc
                    .as_ref()
                    .and_then(|d| d.get("degraded").and_then(|v| v.as_bool()))
                    .unwrap_or(false);
                let tier = doc
                    .as_ref()
                    .and_then(|d| d.get("reason").and_then(|v| v.as_str()))
                    .and_then(|r| TIER_NAMES.iter().position(|n| *n == r))
                    .unwrap_or(0);
                self.metrics.wall_by_tier[tier].observe(wall);
                self.metrics.bump(if degraded {
                    &self.metrics.degraded
                } else {
                    &self.metrics.results
                });
                true
            }
            _ => {
                self.metrics.bump(&self.metrics.errors);
                false
            }
        };
        self.metrics
            .observe_latency(request.priority, arrival.elapsed());
        self.spans.record_since(
            SpanKind::Request,
            request.id.as_str(),
            seq,
            None,
            arrival,
            Some(ok),
        );
        emit(&frame);
    }

    /// Runs the admitted request and renders its terminal frame. `seq`
    /// is the request's span tag (see [`Service::trace_frame`]).
    fn execute(
        &self,
        request: &Request,
        seq: u64,
        deadline: Option<Instant>,
        queue_wait: Duration,
        emit: &(dyn Fn(&str) + Sync),
    ) -> String {
        let cache_stats_before = self.cache.stats();
        let cached = match self.cache.get_or_parse(&request.hgr) {
            Ok(c) => c,
            Err(reason) => return proto::error_frame(&request.id, &reason),
        };
        let cache_hit = self.cache.stats().hits > cache_stats_before.hits;
        let seed = request.seed.unwrap_or(DEFAULT_SEED);
        let restarts = request.restarts.unwrap_or(self.cfg.default_restarts);
        let compute_start = Instant::now();
        let mut retries_done = 0u64;

        // ---- k > 2: the k-way portfolio route (its own tiers do not
        // apply — the recursive attempt is already the insurance) ----
        if let Some(k) = request.k.filter(|&k| k > 2) {
            return self.execute_kway(
                request,
                k,
                &cached,
                deadline,
                queue_wait,
                compute_start,
                cache_hit,
            );
        }

        // ---- expired while queued: only the insurance slice runs ----
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return match self.insurance(&cached, seed) {
                Some(best) => self.result_frame(
                    request,
                    &best,
                    Some(Degradation::ExpiredInQueue),
                    queue_wait,
                    compute_start.elapsed(),
                    retries_done,
                    cache_hit,
                ),
                None => proto::error_frame(
                    &request.id,
                    "deadline expired while queued and the insurance tier found no partition",
                ),
            };
        }

        // ---- the V-cycle tier: explicit `multilevel:true`, or a large
        // netlist on the default algorithm (opt out with
        // `multilevel:false`). A declined or failed V-cycle falls
        // through to the ordinary tier ladder below. ----
        if self.wants_multilevel(request, &cached) {
            if let Some(frame) = self.try_multilevel(
                request,
                &cached,
                deadline,
                queue_wait,
                compute_start,
                cache_hit,
            ) {
                return frame;
            }
        }

        // ---- tier 0: insurance. After this there is always a
        // best-so-far to degrade to. ----
        let mut best: Option<Candidate> = self.insurance(&cached, seed);

        // ---- tier 1: the main portfolio, with reseeded retries ----
        let mut last_error: Option<PartitionError> = None;
        let mut deadline_fired = false;
        let mut drop_to_fm = false;
        for retry in 0..=self.cfg.retries {
            let Some(wall) = self.remaining_wall(request, deadline, compute_start) else {
                deadline_fired = deadline.is_some();
                break;
            };
            let attempt_seed = derive_seed(seed, retry as u64);
            let portfolio = match self.build_portfolio(request, restarts, attempt_seed) {
                Ok(p) => p,
                Err(reason) => return proto::error_frame(&request.id, &reason),
            };
            let meter = BudgetMeter::new(&Budget::default().with_wall_clock(wall));
            let opts = PortfolioOptions {
                threads: 1,
                seed: attempt_seed,
                target_ratio: request.target_ratio,
            };
            let portfolio_started = Instant::now();
            let outcome = {
                let id = request.id.as_str();
                let progress = request.progress;
                let sink = move |e: &PortfolioEvent<'_>| {
                    if !progress {
                        return;
                    }
                    let (stage, detail) = match e.event {
                        StageEvent::Started { stage } => (*stage, "started".to_string()),
                        StageEvent::Finished { stage, outcome } => (
                            *stage,
                            match outcome {
                                Ok(r) => format!("finished: ratio {:.3e}", r.ratio()),
                                Err(err) => format!("failed: {err}"),
                            },
                        ),
                        StageEvent::Detail { stage, message } => (*stage, message.to_string()),
                    };
                    emit(&proto::progress_frame(
                        id, e.attempt, e.label, stage, &detail,
                    ));
                };
                let fan_in = SpanFanIn::new(&self.spans, seq).forwarding(&sink);
                run_portfolio_cached(
                    &cached.hypergraph,
                    &portfolio,
                    &opts,
                    &meter,
                    Some(&fan_in),
                    &|r: &PartitionResult| r.ratio(),
                    &cached.operators,
                )
            };
            match outcome {
                Ok(out) => {
                    record_attempt_spans(&self.spans, seq, &out.report, portfolio_started);
                    for a in &out.report.attempts {
                        if matches!(a.status, np_runner::AttemptStatus::Panicked) {
                            self.metrics.bump(&self.metrics.panics_contained);
                        }
                    }
                    let incomplete = out.report.attempts.iter().any(|a| {
                        !matches!(
                            a.status,
                            np_runner::AttemptStatus::Won | np_runner::AttemptStatus::Completed
                        )
                    });
                    offer(&mut best, out.best, "portfolio");
                    // deadline (not the client's compute budget) binding
                    // and attempts left unfinished ⇒ best-so-far answer
                    if incomplete && self.deadline_was_binding(request, deadline, compute_start) {
                        deadline_fired = true;
                    }
                    return self.result_frame(
                        request,
                        best.as_ref().expect("offer filled best"),
                        deadline_fired.then_some(Degradation::DeadlineBestSoFar),
                        queue_wait,
                        compute_start.elapsed(),
                        retries_done,
                        cache_hit,
                    );
                }
                Err(err) => {
                    let error = err.error;
                    match &error {
                        // the whole wall ran out: whatever we hold is the answer
                        PartitionError::Budget(b)
                            if matches!(
                                b.resource,
                                BudgetResource::WallClock | BudgetResource::Cancelled
                            ) =>
                        {
                            deadline_fired =
                                self.deadline_was_binding(request, deadline, compute_start);
                            last_error = Some(error);
                            break;
                        }
                        // transient spectral failures: reseed and back off
                        PartitionError::Eigen(_)
                        | PartitionError::Panicked { .. }
                        | PartitionError::Budget(_) => {
                            if matches!(error, PartitionError::Panicked { .. }) {
                                self.metrics.bump(&self.metrics.panics_contained);
                            }
                            last_error = Some(error);
                            if retry == self.cfg.retries {
                                drop_to_fm = true;
                            } else {
                                retries_done += 1;
                                self.metrics.bump(&self.metrics.retries);
                                self.cooperative_backoff(retry, deadline);
                            }
                        }
                        // permanent: the instance itself is unpartitionable
                        // by the spectral tier; FM may still manage
                        PartitionError::TooSmall { .. }
                        | PartitionError::Degenerate
                        | PartitionError::InvalidInput { .. } => {
                            last_error = Some(error);
                            drop_to_fm = true;
                        }
                        _ => {
                            last_error = Some(error);
                            drop_to_fm = true;
                        }
                    }
                    if drop_to_fm {
                        break;
                    }
                }
            }
        }

        // ---- tier 2: FM-restarts-only (spectral tier gave up) ----
        if drop_to_fm && !matches!(request.algo, Algo::Fm) {
            if let Some(wall) = self.remaining_wall(request, deadline, compute_start) {
                self.metrics.bump(&self.metrics.fm_fallbacks);
                let mut portfolio = Portfolio::new();
                for i in 0..restarts {
                    portfolio = portfolio.attempt_boxed(
                        format!("fm-fallback#{i}"),
                        Box::new(RandomStartFmStage::default()),
                    );
                }
                let meter = BudgetMeter::new(&Budget::default().with_wall_clock(wall));
                let opts = PortfolioOptions {
                    threads: 1,
                    seed: derive_seed(seed, 0xFA11_BACC),
                    target_ratio: request.target_ratio,
                };
                if let Ok(out) = run_portfolio_cached(
                    &cached.hypergraph,
                    &portfolio,
                    &opts,
                    &meter,
                    None,
                    &|r: &PartitionResult| r.ratio(),
                    &cached.operators,
                ) {
                    offer(&mut best, out.best, "fm-fallback");
                    return self.result_frame(
                        request,
                        best.as_ref().expect("offer filled best"),
                        Some(Degradation::FmFallback),
                        queue_wait,
                        compute_start.elapsed(),
                        retries_done,
                        cache_hit,
                    );
                }
            }
        }

        // ---- nothing more will complete: best-so-far or error ----
        match &best {
            Some(candidate) => {
                let reason = if deadline_fired {
                    Degradation::DeadlineBestSoFar
                } else {
                    Degradation::FmFallback
                };
                self.result_frame(
                    request,
                    candidate,
                    Some(reason),
                    queue_wait,
                    compute_start.elapsed(),
                    retries_done,
                    cache_hit,
                )
            }
            None => {
                let reason = last_error
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "no tier produced a partition".into());
                proto::error_frame(&request.id, &format!("request failed: {reason}"))
            }
        }
    }

    /// Runs a `k > 2` request through the k-way method race (recursive
    /// bisection + seed-jittered direct spectral attempts) and renders
    /// its terminal frame. The race already contains its own fallback
    /// diversity, so the bipartition tier ladder does not apply; the
    /// deadline and budget still bound the shared meter.
    #[allow(clippy::too_many_arguments)]
    fn execute_kway(
        &self,
        request: &Request,
        k: usize,
        cached: &CachedNetlist,
        deadline: Option<Instant>,
        queue_wait: Duration,
        compute_start: Instant,
        cache_hit: bool,
    ) -> String {
        if self.wants_multilevel(request, cached) {
            if let Some(frame) = self.try_multilevel_kway(
                request,
                k,
                cached,
                deadline,
                queue_wait,
                compute_start,
                cache_hit,
            ) {
                return frame;
            }
        }
        let Some(wall) = self.remaining_wall(request, deadline, compute_start) else {
            return proto::error_frame(
                &request.id,
                "deadline expired before the k-way portfolio could start",
            );
        };
        let seed = request.seed.unwrap_or(DEFAULT_SEED);
        let restarts = request.restarts.unwrap_or(self.cfg.default_restarts);
        let mut opts = KwayOptions {
            k,
            seed,
            ..Default::default()
        };
        if let Some(eps) = request.epsilon {
            opts.epsilon = eps;
        }
        let portfolio = KwayPortfolio::methods(&opts, restarts.saturating_sub(1));
        let meter = BudgetMeter::new(&Budget::default().with_wall_clock(wall));
        let popts = PortfolioOptions {
            threads: 1,
            seed,
            target_ratio: request.target_ratio,
        };
        match run_kway_portfolio(&cached.hypergraph, &portfolio, &popts, &meter) {
            Ok(out) => {
                let blocks: Vec<String> = out
                    .best
                    .partition
                    .labels()
                    .iter()
                    .map(|b| b.to_string())
                    .collect();
                Obj::new()
                    .str("id", &request.id)
                    .str("frame", "result")
                    .bool("degraded", false)
                    .str("tier", "kway-race")
                    .str("algorithm", out.best.algorithm)
                    .int("k", k as u64)
                    .int("cut", out.best.stats.cut_nets as u64)
                    .num("ratio", out.best.stats.ratio())
                    .raw("blocks", format!("[{}]", blocks.join(",")))
                    .bool("cache_hit", cache_hit)
                    .num("queue_ms", queue_wait.as_secs_f64() * 1e3)
                    .num("compute_ms", compute_start.elapsed().as_secs_f64() * 1e3)
                    .render()
            }
            Err(err) => proto::error_frame(&request.id, &format!("request failed: {err}")),
        }
    }

    /// Whether this request routes through the multilevel V-cycle tier:
    /// an explicit `multilevel` key wins; otherwise netlists at or above
    /// the size threshold on the default algorithm take it (a *named*
    /// algorithm is never silently rerouted).
    fn wants_multilevel(&self, request: &Request, cached: &CachedNetlist) -> bool {
        request.multilevel.unwrap_or_else(|| {
            matches!(request.algo, Algo::Auto)
                && cached.hypergraph.num_modules() >= self.cfg.multilevel_threshold
        })
    }

    /// The multilevel V-cycle tier for bipartition requests.
    /// `Some(frame)` is terminal; `None` means no wall remained or the
    /// V-cycle failed, and the ordinary ladder should run instead.
    fn try_multilevel(
        &self,
        request: &Request,
        cached: &CachedNetlist,
        deadline: Option<Instant>,
        queue_wait: Duration,
        compute_start: Instant,
        cache_hit: bool,
    ) -> Option<String> {
        let wall = self.remaining_wall(request, deadline, compute_start)?;
        let mut opts = MultilevelOptions::default();
        opts.ig_match.lanczos.seed = request.seed.unwrap_or(DEFAULT_SEED);
        let budget = Budget::default().with_wall_clock(wall);
        let meter = BudgetMeter::new(&budget);
        let ctx = RunContext::with_meter(&meter);
        let out = multilevel_ctx(&cached.hypergraph, &opts, &ctx).ok()?;
        self.metrics.bump(&self.metrics.multilevel);
        let result = &out.result;
        let partition: String = result
            .partition
            .sides()
            .iter()
            .map(|s| if *s == Side::Left { '0' } else { '1' })
            .collect();
        let degradation = out
            .budget_degraded
            .then_some(Degradation::ProjectionFallback);
        let mut obj = Obj::new()
            .str("id", &request.id)
            .str("frame", "result")
            .bool("degraded", degradation.is_some());
        if let Some(reason) = degradation {
            obj = obj.str("reason", reason.name());
        }
        Some(
            obj.str("tier", "multilevel")
                .str("algorithm", result.algorithm)
                .int("levels", out.levels as u64)
                .int("coarsest_modules", out.coarsest_modules as u64)
                .int("cut", result.stats.cut_nets as u64)
                .int("left", result.stats.left as u64)
                .int("right", result.stats.right as u64)
                .num("ratio", result.ratio())
                .str("partition", &partition)
                .bool("cache_hit", cache_hit)
                .num("queue_ms", queue_wait.as_secs_f64() * 1e3)
                .num("compute_ms", compute_start.elapsed().as_secs_f64() * 1e3)
                .render(),
        )
    }

    /// The multilevel V-cycle tier for `k > 2` requests; same contract
    /// as [`try_multilevel`](Self::try_multilevel) but the frame carries
    /// the k-way `blocks` array.
    #[allow(clippy::too_many_arguments)]
    fn try_multilevel_kway(
        &self,
        request: &Request,
        k: usize,
        cached: &CachedNetlist,
        deadline: Option<Instant>,
        queue_wait: Duration,
        compute_start: Instant,
        cache_hit: bool,
    ) -> Option<String> {
        let wall = self.remaining_wall(request, deadline, compute_start)?;
        let seed = request.seed.unwrap_or(DEFAULT_SEED);
        let mut kopts = KwayOptions {
            k,
            seed,
            ..Default::default()
        };
        if let Some(eps) = request.epsilon {
            kopts.epsilon = eps;
        }
        let mut mopts = MultilevelOptions::default();
        mopts.ig_match.lanczos.seed = seed;
        let budget = Budget::default().with_wall_clock(wall);
        let meter = BudgetMeter::new(&budget);
        let ctx = RunContext::with_meter(&meter);
        let out = multilevel_kway_ctx(&cached.hypergraph, &kopts, &mopts, &ctx).ok()?;
        self.metrics.bump(&self.metrics.multilevel);
        let blocks: Vec<String> = out
            .result
            .partition
            .labels()
            .iter()
            .map(|b| b.to_string())
            .collect();
        let degradation = out
            .budget_degraded
            .then_some(Degradation::ProjectionFallback);
        let mut obj = Obj::new()
            .str("id", &request.id)
            .str("frame", "result")
            .bool("degraded", degradation.is_some());
        if let Some(reason) = degradation {
            obj = obj.str("reason", reason.name());
        }
        Some(
            obj.str("tier", "multilevel-kway")
                .str("algorithm", out.result.algorithm)
                .int("k", k as u64)
                .int("levels", out.levels as u64)
                .int("coarsest_modules", out.coarsest_modules as u64)
                .int("cut", out.result.stats.cut_nets as u64)
                .num("ratio", out.result.stats.ratio())
                .raw("blocks", format!("[{}]", blocks.join(",")))
                .bool("cache_hit", cache_hit)
                .num("queue_ms", queue_wait.as_secs_f64() * 1e3)
                .num("compute_ms", compute_start.elapsed().as_secs_f64() * 1e3)
                .render(),
        )
    }

    /// Tier 0: a one-attempt FM portfolio under a tiny private budget.
    /// Never counts against the main tier's wall (the slice is part of
    /// the occupancy bound instead) and never carries injected faults —
    /// it exists precisely to survive them.
    fn insurance(&self, cached: &CachedNetlist, seed: u64) -> Option<Candidate> {
        let budget = Budget::default()
            .with_wall_clock(self.cfg.insurance_wall.min(self.cfg.max_wall))
            .with_matvecs(self.cfg.insurance_matvecs);
        let meter = BudgetMeter::new(&budget);
        let portfolio =
            Portfolio::new().attempt_boxed("insurance", Box::new(RandomStartFmStage::default()));
        let opts = PortfolioOptions {
            threads: 1,
            seed: derive_seed(seed, 0x1A5E_CE00),
            target_ratio: None,
        };
        run_portfolio_cached(
            &cached.hypergraph,
            &portfolio,
            &opts,
            &meter,
            None,
            &|r: &PartitionResult| r.ratio(),
            &cached.operators,
        )
        .ok()
        .map(|out| Candidate {
            result: out.best,
            tier: "insurance",
        })
    }

    /// Wall-clock room left for main-tier work:
    /// `min(budget_ms, deadline − now, max_wall)`, or `None` when no
    /// time remains.
    fn remaining_wall(
        &self,
        request: &Request,
        deadline: Option<Instant>,
        compute_start: Instant,
    ) -> Option<Duration> {
        let mut wall = self.cfg.max_wall;
        if let Some(ms) = request.budget_ms {
            let budget = Duration::from_millis(ms);
            let spent = compute_start.elapsed();
            wall = wall.min(budget.checked_sub(spent)?);
        }
        if let Some(d) = deadline {
            wall = wall.min(d.checked_duration_since(Instant::now())?);
        }
        (wall > Duration::ZERO).then_some(wall)
    }

    /// Whether the *deadline* (rather than the client's compute budget or
    /// the server cap) is the limit that has run out.
    fn deadline_was_binding(
        &self,
        request: &Request,
        deadline: Option<Instant>,
        compute_start: Instant,
    ) -> bool {
        let Some(d) = deadline else { return false };
        if Instant::now() >= d {
            return true;
        }
        // the deadline is binding if it expires before the budget would
        let deadline_left = d.saturating_duration_since(Instant::now());
        let budget_left = request
            .budget_ms
            .map(|ms| Duration::from_millis(ms).saturating_sub(compute_start.elapsed()))
            .unwrap_or(self.cfg.max_wall);
        deadline_left < budget_left
    }

    /// Sleeps `backoff << retry`, in short slices, stopping early when
    /// the deadline approaches.
    fn cooperative_backoff(&self, retry: usize, deadline: Option<Instant>) {
        let mut remaining = self
            .cfg
            .backoff
            .saturating_mul(1u32 << retry.min(16) as u32);
        let slice = Duration::from_millis(1);
        while remaining > Duration::ZERO {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return;
            }
            let nap = remaining.min(slice);
            std::thread::sleep(nap);
            remaining -= nap;
        }
    }

    /// Builds the main-tier portfolio: `restarts` attempts of the
    /// requested algorithm, each on a decorrelated seed stream, with the
    /// request's fault decorator applied when the feature is on.
    fn build_portfolio(
        &self,
        request: &Request,
        restarts: usize,
        seed: u64,
    ) -> Result<Portfolio, String> {
        let mut portfolio = Portfolio::new();
        for i in 0..restarts {
            let stream = derive_seed(seed, i as u64);
            let stage = attempt_stage(request.algo, stream);
            let stage = self.decorate(request, i, stage);
            portfolio = portfolio.attempt_boxed(format!("{}#{i}", request.algo.name()), stage);
        }
        Ok(portfolio)
    }

    /// Applies the request's fault to the attempt stage (fault-inject
    /// builds only). The panic fault poisons only attempt 0 — the point
    /// is to prove one poisoned attempt cannot take the request (or the
    /// server) down with it.
    #[cfg(feature = "fault-inject")]
    fn decorate(&self, request: &Request, attempt: usize, stage: BoxedStage) -> BoxedStage {
        use crate::proto::FaultSpec;
        match request.fault {
            Some(FaultSpec::Panic) if attempt == 0 => crate::fault::apply(FaultSpec::Panic, stage),
            Some(FaultSpec::Panic) | None => stage,
            Some(spec) => crate::fault::apply(spec, stage),
        }
    }

    #[cfg(not(feature = "fault-inject"))]
    fn decorate(&self, _request: &Request, _attempt: usize, stage: BoxedStage) -> BoxedStage {
        stage
    }

    /// Renders the terminal `result` frame.
    #[allow(clippy::too_many_arguments)]
    fn result_frame(
        &self,
        request: &Request,
        candidate: &Candidate,
        degradation: Option<Degradation>,
        queue_wait: Duration,
        compute: Duration,
        retries: u64,
        cache_hit: bool,
    ) -> String {
        let result = &candidate.result;
        let partition: String = result
            .partition
            .sides()
            .iter()
            .map(|s| if *s == Side::Left { '0' } else { '1' })
            .collect();
        let mut obj = Obj::new()
            .str("id", &request.id)
            .str("frame", "result")
            .bool("degraded", degradation.is_some());
        if let Some(reason) = degradation {
            obj = obj.str("reason", reason.name());
        }
        obj.str("tier", candidate.tier)
            .str("algorithm", result.algorithm)
            .int("cut", result.stats.cut_nets as u64)
            .int("left", result.stats.left as u64)
            .int("right", result.stats.right as u64)
            .num("ratio", result.ratio())
            .str("partition", &partition)
            .int("retries", retries)
            .bool("cache_hit", cache_hit)
            .num("queue_ms", queue_wait.as_secs_f64() * 1e3)
            .num("compute_ms", compute.as_secs_f64() * 1e3)
            .render()
    }
}

/// Keeps the better (lower-ratio) of the held candidate and the offered
/// result.
fn offer(best: &mut Option<Candidate>, result: PartitionResult, tier: &'static str) {
    let better = match best {
        Some(held) => result.ratio() < held.result.ratio(),
        None => true,
    };
    if better {
        *best = Some(Candidate { result, tier });
    }
}

/// One portfolio attempt of `algo` with every internal seed moved onto
/// `stream` and internal restart loops collapsed to one run (the
/// portfolio is the restart loop) — the same mapping the `np-part` CLI
/// uses.
fn attempt_stage(algo: Algo, stream: u64) -> BoxedStage {
    match algo {
        Algo::Auto | Algo::IgMatch => {
            let mut o = IgMatchOptions::default();
            o.lanczos.seed = stream;
            Box::new(IgMatchStage::new(o))
        }
        Algo::IgVote => {
            let mut o = IgVoteOptions::default();
            o.lanczos.seed = stream;
            Box::new(IgVoteStage::new(o))
        }
        Algo::Eig1 => {
            let mut o = Eig1Options::default();
            o.lanczos.seed = stream;
            Box::new(Eig1Stage { opts: o })
        }
        Algo::Rcut => Box::new(RcutStage {
            opts: RcutOptions {
                runs: 1,
                seed: stream,
                ..Default::default()
            },
        }),
        Algo::Fm => Box::new(RandomStartFmStage {
            opts: FmOptions::default(),
        }),
        Algo::Kl => Box::new(KlStage {
            opts: KlOptions {
                runs: 1,
                seed: stream,
                ..Default::default()
            },
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::io::to_hgr_string;
    use np_testkit::banded_hypergraph;
    use std::sync::Mutex;

    fn collect(svc: &Service, line: &str) -> Vec<String> {
        let frames = Mutex::new(Vec::new());
        svc.handle_line(line, &|f: &str| frames.lock().unwrap().push(f.to_string()));
        frames.into_inner().unwrap()
    }

    fn small_hgr() -> String {
        to_hgr_string(&banded_hypergraph(7, 48, 64, 6))
    }

    fn request_line(id: &str, extra: &str) -> String {
        let hgr = crate::json::escape(&small_hgr());
        format!(r#"{{"id":"{id}","hgr":{hgr}{extra}}}"#)
    }

    #[test]
    fn clean_request_gets_one_result_frame() {
        let svc = Service::new(ServeConfig::default());
        let frames = collect(&svc, &request_line("r1", r#","restarts":2"#));
        assert_eq!(frames.len(), 1, "{frames:?}");
        let doc = crate::json::parse(&frames[0]).unwrap();
        assert_eq!(doc.get("frame").and_then(|v| v.as_str()), Some("result"));
        assert_eq!(doc.get("degraded").and_then(|v| v.as_bool()), Some(false));
        assert_eq!(doc.get("id").and_then(|v| v.as_str()), Some("r1"));
        let partition = doc.get("partition").and_then(|v| v.as_str()).unwrap();
        assert_eq!(partition.len(), 48, "one side digit per module");
        assert!(partition.contains('0') && partition.contains('1'));
        assert_eq!(svc.metrics().results.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parse_failures_keep_the_id_when_recoverable() {
        let svc = Service::new(ServeConfig::default());
        let frames = collect(&svc, r#"{"id":"oops","hgr":"x","bogus_key":1}"#);
        assert_eq!(frames.len(), 1);
        assert!(frames[0].contains("\"id\":\"oops\""), "{frames:?}");
        assert!(frames[0].contains("error"), "{frames:?}");
        let frames = collect(&svc, "not json at all");
        assert!(frames[0].contains("\"id\":\"?\""), "{frames:?}");
    }

    #[test]
    fn invalid_netlist_is_an_error_frame() {
        let svc = Service::new(ServeConfig::default());
        let frames = collect(&svc, r#"{"id":"bad","hgr":"definitely not hgr"}"#);
        assert_eq!(frames.len(), 1);
        assert!(frames[0].contains("invalid hgr"), "{frames:?}");
    }

    #[test]
    fn immediate_deadline_returns_degraded_best_so_far() {
        let svc = Service::new(ServeConfig::default());
        let frames = collect(&svc, &request_line("d0", r#","deadline_ms":0"#));
        assert_eq!(frames.len(), 1);
        let doc = crate::json::parse(&frames[0]).unwrap();
        assert_eq!(doc.get("frame").and_then(|v| v.as_str()), Some("result"));
        assert_eq!(doc.get("degraded").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(
            doc.get("reason").and_then(|v| v.as_str()),
            Some("expired-in-queue")
        );
        assert_eq!(svc.metrics().degraded.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn repeat_requests_hit_the_netlist_cache() {
        let svc = Service::new(ServeConfig::default());
        collect(&svc, &request_line("c1", r#","restarts":1"#));
        let frames = collect(&svc, &request_line("c2", r#","restarts":1"#));
        assert!(frames[0].contains("\"cache_hit\":true"), "{frames:?}");
        assert!(svc.cache_stats().hits >= 1);
    }

    #[test]
    fn progress_frames_stream_before_the_result() {
        let svc = Service::new(ServeConfig::default());
        let frames = collect(
            &svc,
            &request_line("p1", r#","restarts":2,"progress":true"#),
        );
        assert!(frames.len() > 1, "expected progress frames, got {frames:?}");
        for frame in &frames[..frames.len() - 1] {
            let doc = crate::json::parse(frame).unwrap();
            assert_eq!(doc.get("frame").and_then(|v| v.as_str()), Some("progress"));
        }
        assert!(frames.last().unwrap().contains("\"frame\":\"result\""));
    }

    #[test]
    fn metrics_line_is_a_single_snapshot_frame() {
        let svc = Service::new(ServeConfig::default());
        collect(&svc, &request_line("m1", r#","restarts":1"#));
        collect(&svc, r#"{"id":"m2","hgr":"not hgr"}"#);
        let frames = collect(&svc, "/metrics");
        assert_eq!(frames.len(), 1, "{frames:?}");
        let doc = crate::json::parse(&frames[0]).unwrap();
        assert_eq!(doc.get("frame").and_then(|v| v.as_str()), Some("metrics"));
        assert_eq!(doc.get("running").and_then(|v| v.as_u64()), Some(0));
        assert_eq!(doc.get("queued").and_then(|v| v.as_u64()), Some(0));
        assert_eq!(doc.get("requests").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(doc.get("results").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(doc.get("errors").and_then(|v| v.as_u64()), Some(1));
        assert!(doc.get("cache_bytes").and_then(|v| v.as_u64()).unwrap() > 0);
        // the snapshot itself is not a request
        let again = collect(&svc, "/metrics");
        let doc = crate::json::parse(&again[0]).unwrap();
        assert_eq!(doc.get("requests").and_then(|v| v.as_u64()), Some(2));
    }

    #[test]
    fn kway_request_returns_a_blocks_array() {
        let svc = Service::new(ServeConfig::default());
        let frames = collect(
            &svc,
            &request_line("k4", r#","k":4,"epsilon":0.5,"restarts":2"#),
        );
        assert_eq!(frames.len(), 1, "{frames:?}");
        let doc = crate::json::parse(&frames[0]).unwrap();
        assert_eq!(doc.get("frame").and_then(|v| v.as_str()), Some("result"));
        assert_eq!(doc.get("degraded").and_then(|v| v.as_bool()), Some(false));
        assert_eq!(doc.get("k").and_then(|v| v.as_u64()), Some(4));
        let blocks = match doc.get("blocks") {
            Some(crate::json::Value::Array(items)) => items.clone(),
            other => panic!("expected blocks array, got {other:?}"),
        };
        assert_eq!(blocks.len(), 48, "one label per module");
        let labels: Vec<u64> = blocks.iter().map(|v| v.as_u64().unwrap()).collect();
        assert!(labels.iter().all(|&b| b < 4));
        for b in 0..4 {
            assert!(labels.contains(&b), "block {b} must be non-empty");
        }
        assert!(doc.get("partition").is_none(), "k-way frames carry blocks");
        assert_eq!(svc.metrics().results.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn k2_requests_keep_the_bipartition_frame() {
        let svc = Service::new(ServeConfig::default());
        let frames = collect(&svc, &request_line("k2", r#","k":2,"restarts":1"#));
        assert_eq!(frames.len(), 1);
        let doc = crate::json::parse(&frames[0]).unwrap();
        assert_eq!(doc.get("frame").and_then(|v| v.as_str()), Some("result"));
        assert!(doc.get("partition").is_some(), "{frames:?}");
        assert!(doc.get("blocks").is_none(), "{frames:?}");
    }

    #[test]
    fn every_algo_serves() {
        let svc = Service::new(ServeConfig::default());
        for algo in ["auto", "igmatch", "igvote", "eig1", "rcut", "fm", "kl"] {
            let frames = collect(
                &svc,
                &request_line(algo, &format!(r#","algo":"{algo}","restarts":2"#)),
            );
            assert_eq!(frames.len(), 1, "{algo}: {frames:?}");
            assert!(
                frames[0].contains("\"frame\":\"result\""),
                "{algo}: {frames:?}"
            );
        }
    }

    #[test]
    fn multilevel_request_reports_levels() {
        let svc = Service::new(ServeConfig::default());
        let frames = collect(&svc, &request_line("ml", r#","multilevel":true"#));
        assert_eq!(frames.len(), 1, "{frames:?}");
        let doc = crate::json::parse(&frames[0]).unwrap();
        assert_eq!(doc.get("frame").and_then(|v| v.as_str()), Some("result"));
        assert_eq!(doc.get("tier").and_then(|v| v.as_str()), Some("multilevel"));
        assert_eq!(doc.get("degraded").and_then(|v| v.as_bool()), Some(false));
        // 48 modules sit below the coarsen target: zero levels, and the
        // V-cycle is the flat hybrid pipeline
        assert_eq!(doc.get("levels").and_then(|v| v.as_u64()), Some(0));
        let partition = doc.get("partition").and_then(|v| v.as_str()).unwrap();
        assert_eq!(partition.len(), 48);
        assert_eq!(svc.metrics().multilevel.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn multilevel_kway_request_reports_levels_and_blocks() {
        let svc = Service::new(ServeConfig::default());
        let frames = collect(
            &svc,
            &request_line("mlk", r#","multilevel":true,"k":4,"epsilon":0.5"#),
        );
        assert_eq!(frames.len(), 1, "{frames:?}");
        let doc = crate::json::parse(&frames[0]).unwrap();
        assert_eq!(doc.get("frame").and_then(|v| v.as_str()), Some("result"));
        assert_eq!(
            doc.get("tier").and_then(|v| v.as_str()),
            Some("multilevel-kway")
        );
        assert_eq!(doc.get("k").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(doc.get("levels").and_then(|v| v.as_u64()), Some(0));
        let blocks = match doc.get("blocks") {
            Some(crate::json::Value::Array(items)) => items.clone(),
            other => panic!("expected blocks array, got {other:?}"),
        };
        assert_eq!(blocks.len(), 48, "one label per module");
        assert!(blocks.iter().all(|v| v.as_u64().unwrap() < 4));
    }

    #[test]
    fn large_netlists_route_through_the_vcycle_by_default() {
        let cfg = ServeConfig {
            multilevel_threshold: 16, // the 48-module test netlist counts as "large"
            ..Default::default()
        };
        let svc = Service::new(cfg);
        let frames = collect(&svc, &request_line("auto", ""));
        let doc = crate::json::parse(&frames[0]).unwrap();
        assert_eq!(doc.get("tier").and_then(|v| v.as_str()), Some("multilevel"));
        // explicit opt-out returns to the portfolio ladder
        let frames = collect(&svc, &request_line("optout", r#","multilevel":false"#));
        let doc = crate::json::parse(&frames[0]).unwrap();
        assert_ne!(doc.get("tier").and_then(|v| v.as_str()), Some("multilevel"));
        // a named algorithm is never silently rerouted
        let frames = collect(&svc, &request_line("fm", r#","algo":"fm","restarts":1"#));
        let doc = crate::json::parse(&frames[0]).unwrap();
        assert_ne!(doc.get("tier").and_then(|v| v.as_str()), Some("multilevel"));
        assert_eq!(svc.metrics().multilevel.load(Ordering::Relaxed), 1);
    }

    #[cfg(not(feature = "fault-inject"))]
    #[test]
    fn fault_requests_rejected_without_the_feature() {
        let svc = Service::new(ServeConfig::default());
        let frames = collect(&svc, &request_line("f", r#","fault":{"kind":"panic"}"#));
        assert_eq!(frames.len(), 1);
        assert!(
            frames[0].contains("fault injection is disabled"),
            "{frames:?}"
        );
    }
}
