//! Soak harness: sustained mixed traffic against an in-process
//! [`Service`], with leak detection and metrics-consistency checks.
//!
//! The harness drives `clients` concurrent threads for `duration`,
//! each cycling deterministically (seeded xorshift) through the traffic
//! mix the fleet actually sees: bipartition portfolios on several
//! algorithms, k-way requests, multilevel V-cycles, malformed lines,
//! aggressive deadlines that expire in the queue, and — on
//! `fault-inject` builds with [`SoakOptions::fault_storms`] — periodic
//! storms of slow/panicking/stuck stages. Every client checks the
//! one-terminal-frame discipline per request as it goes.
//!
//! When traffic stops, the harness asserts the invariants that only
//! show up over time:
//!
//! * **No leaked permits** — admission load returns to `{0, 0}` and
//!   every per-class queue depth to zero.
//! * **No leaked threads** — on Linux, the process thread count (from
//!   `/proc/self/status`) returns to its pre-soak value.
//! * **No leaked cache bytes** — [`NetlistCache::audit`] recounts every
//!   resident entry and must match the running total exactly.
//! * **Metrics consistency** — terminal frames equal request count,
//!   every histogram's bucket sum equals its count, and counters only
//!   ever grew during the run (checked by mid-soak sampling).
//!
//! Violations are collected into [`SoakReport::violations`] rather than
//! panicking, so the bench binary can render a report artifact and CI
//! can fail on its exit code.
//!
//! [`NetlistCache::audit`]: crate::cache::NetlistCache::audit

use crate::admit::Priority;
use crate::json::{Obj, Value};
use crate::service::{ServeConfig, Service};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Soak run parameters.
#[derive(Clone, Debug)]
pub struct SoakOptions {
    /// Service configuration under test.
    pub cfg: ServeConfig,
    /// How long the traffic generators run.
    pub duration: Duration,
    /// Concurrent client threads (keep above `cfg.workers` to exercise
    /// queueing and shedding).
    pub clients: usize,
    /// Base seed for the deterministic traffic mix.
    pub seed: u64,
    /// Inject periodic fault storms (effective only on `fault-inject`
    /// builds; ignored otherwise so the same options run everywhere).
    pub fault_storms: bool,
    /// Check the process thread count for leaks. The count is
    /// process-wide, so this is only meaningful when the soak is the
    /// only thing running (the CI soak job, `RUST_TEST_THREADS=1`) —
    /// leave it off inside a parallel test runner.
    pub check_threads: bool,
}

impl Default for SoakOptions {
    fn default() -> Self {
        SoakOptions {
            cfg: ServeConfig {
                workers: 2,
                queue: 8,
                max_wall: Duration::from_millis(250),
                cache_entries: 4,
                ..ServeConfig::default()
            },
            duration: Duration::from_secs(10),
            clients: 6,
            seed: 0x50AC_50AC,
            fault_storms: true,
            check_threads: false,
        }
    }
}

/// What the soak observed, plus every violated invariant.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Wall time the harness actually ran.
    pub elapsed: Duration,
    /// Request lines sent (including malformed ones).
    pub sent: u64,
    /// Terminal frames received, by kind: result, shed, error.
    pub results: u64,
    /// Terminal `shed` frames received.
    pub shed: u64,
    /// Terminal `error` frames received.
    pub errors: u64,
    /// Requests that received anything other than exactly one terminal
    /// frame (must be zero).
    pub terminal_violations: u64,
    /// Estimated p99 total latency per priority class, microseconds
    /// (from the service's own histograms).
    pub p99_us_by_priority: [u64; 3],
    /// Completed low-priority requests (starvation check).
    pub low_priority_completed: u64,
    /// Process thread count before and after (Linux only).
    pub threads: Option<(usize, usize)>,
    /// The final `/metrics` frame.
    pub final_metrics: String,
    /// Every invariant that failed, human-readable. Empty = pass.
    pub violations: Vec<String>,
}

impl SoakReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report as a one-line JSON object (the CI artifact).
    pub fn to_json(&self) -> String {
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| crate::json::escape(v))
            .collect();
        let mut obj = Obj::new()
            .bool("passed", self.passed())
            .num("elapsed_s", self.elapsed.as_secs_f64())
            .int("sent", self.sent)
            .int("results", self.results)
            .int("shed", self.shed)
            .int("errors", self.errors)
            .int("terminal_violations", self.terminal_violations)
            .int("p99_us_high", self.p99_us_by_priority[0])
            .int("p99_us_normal", self.p99_us_by_priority[1])
            .int("p99_us_low", self.p99_us_by_priority[2])
            .int("low_priority_completed", self.low_priority_completed);
        if let Some((before, after)) = self.threads {
            obj = obj
                .int("threads_before", before as u64)
                .int("threads_after", after as u64);
        }
        obj.raw("violations", format!("[{}]", violations.join(",")))
            .raw("final_metrics", self.final_metrics.clone())
            .render()
    }
}

/// One deterministic request line for slot `n` of client `c`.
fn request_line(c: usize, n: u64, rng: &mut impl FnMut() -> u64, storms: bool) -> String {
    let id = format!("c{c}-{n}");
    let hgr = crate::json::escape(&ring_hgr(12 + (rng() % 4) as usize * 8, rng() % 7));
    let priority = ["high", "normal", "low"][(rng() % 3) as usize];
    let mut extra = format!(r#","priority":"{priority}""#);
    match rng() % 10 {
        0 => extra.push_str(r#","algo":"fm","restarts":2"#),
        1 => extra.push_str(r#","algo":"igmatch","restarts":1"#),
        2 => extra.push_str(r#","k":3,"epsilon":0.5,"restarts":2"#),
        3 => extra.push_str(r#","multilevel":true"#),
        4 => extra.push_str(&format!(r#","deadline_ms":{}"#, rng() % 3)),
        5 => extra.push_str(r#","restarts":3,"budget_ms":20"#),
        6 => return format!(r#"{{"id":"{id}","hgr":"not a netlist"{extra}}}"#),
        7 => return format!("malformed line {n}"),
        _ => extra.push_str(r#","restarts":2"#),
    }
    // fault storms: a burst of injected faults every ~64 requests
    if storms && cfg!(feature = "fault-inject") && n % 64 < 8 {
        let fault = match rng() % 3 {
            0 => r#","fault":{"kind":"slow","ms":5}"#.to_string(),
            1 => r#","fault":{"kind":"panic"}"#.to_string(),
            _ => r#","fault":{"kind":"stuck"}"#.to_string(),
        };
        extra.push_str(&fault);
        if !extra.contains("budget_ms") && !extra.contains("deadline_ms") {
            extra.push_str(r#","budget_ms":30"#);
        }
    }
    format!(r#"{{"id":"{id}","hgr":{hgr}{extra}}}"#)
}

/// A ring netlist of `n` modules rotated by `shift` (distinct texts
/// exercise cache insert/refresh/evict without an external generator).
fn ring_hgr(n: usize, shift: u64) -> String {
    let mut s = format!("{n} {n}\n");
    for i in 0..n {
        let a = (i + shift as usize) % n + 1;
        let b = (i + shift as usize + 1) % n + 1;
        s.push_str(&format!("{a} {b}\n"));
    }
    s
}

/// Current thread count of this process, Linux only.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

fn get_u64(doc: &Value, key: &str) -> u64 {
    doc.get(key).and_then(Value::as_u64).unwrap_or(0)
}

/// Sums `count` over every histogram object found under `doc[key]`
/// (either a histogram object itself or an object of histograms).
fn histogram_counts(doc: &Value, key: &str) -> Option<(u64, u64)> {
    // returns (sum of counts, sum of bucket cells) for consistency checks
    fn one(v: &Value) -> Option<(u64, u64)> {
        let count = v.get("count").and_then(Value::as_u64)?;
        let Some(Value::Array(buckets)) = v.get("buckets") else {
            return None;
        };
        let cells: u64 = buckets.iter().filter_map(Value::as_u64).sum();
        Some((count, cells))
    }
    let v = doc.get(key)?;
    if v.get("count").is_some() {
        return one(v);
    }
    let keys = v.keys()?;
    let mut total = (0, 0);
    for k in keys {
        let (c, b) = one(v.get(k)?)?;
        total.0 += c;
        total.1 += b;
    }
    Some(total)
}

/// Runs the soak and returns the report. Panics never escape the
/// service (that is part of what is under test); the harness itself
/// only panics on programming errors in the harness.
pub fn run_soak(opts: &SoakOptions) -> SoakReport {
    let started = Instant::now();
    let threads_before = thread_count();
    let service = Service::new(opts.cfg);
    let sent = AtomicU64::new(0);
    let terminal_violations = AtomicU64::new(0);
    let monotonic_violations = Mutex::new(Vec::<String>::new());

    std::thread::scope(|scope| {
        for c in 0..opts.clients {
            let service = &service;
            let sent = &sent;
            let terminal_violations = &terminal_violations;
            let deadline = started + opts.duration;
            let mut state = opts.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(c as u64 + 1));
            let storms = opts.fault_storms;
            scope.spawn(move || {
                let mut rng = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                let mut n = 0u64;
                while Instant::now() < deadline {
                    let line = request_line(c, n, &mut rng, storms);
                    n += 1;
                    sent.fetch_add(1, Ordering::Relaxed);
                    let terminals = Mutex::new(0u32);
                    service.handle_line(&line, &|frame: &str| {
                        if !frame.contains("\"frame\":\"progress\"") {
                            *terminals.lock().unwrap() += 1;
                        }
                    });
                    if terminals.into_inner().unwrap() != 1 {
                        terminal_violations.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        // a sampler thread proves counters are monotonic *during* the
        // burst, not just at quiescence
        {
            let service = &service;
            let monotonic_violations = &monotonic_violations;
            let deadline = started + opts.duration;
            scope.spawn(move || {
                let keys = [
                    "requests", "admitted", "results", "degraded", "shed", "errors",
                ];
                let mut last = [0u64; 6];
                while Instant::now() < deadline {
                    if let Ok(doc) = crate::json::parse(&service.metrics_frame()) {
                        for (i, key) in keys.iter().enumerate() {
                            let now = get_u64(&doc, key);
                            if now < last[i] {
                                monotonic_violations.lock().unwrap().push(format!(
                                    "counter '{key}' went backwards: {} -> {now}",
                                    last[i]
                                ));
                            }
                            last[i] = now;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            });
        }
    });

    // quiescent: collect the final snapshot and check every invariant
    let mut violations = monotonic_violations.into_inner().unwrap();
    let final_metrics = service.metrics_frame();
    let doc = crate::json::parse(&final_metrics).expect("metrics frame must parse");

    let sent = sent.load(Ordering::Relaxed);
    let terminal_violations = terminal_violations.load(Ordering::Relaxed);
    if terminal_violations > 0 {
        violations.push(format!(
            "{terminal_violations} requests broke the one-terminal-frame discipline"
        ));
    }

    let (requests, admitted) = (get_u64(&doc, "requests"), get_u64(&doc, "admitted"));
    let results = get_u64(&doc, "results");
    let degraded = get_u64(&doc, "degraded");
    let shed = get_u64(&doc, "shed");
    let errors = get_u64(&doc, "errors");
    if requests != sent {
        violations.push(format!("requests {requests} != sent {sent}"));
    }
    if results + degraded + shed + errors != requests {
        violations.push(format!(
            "terminal counters {results}+{degraded}+{shed}+{errors} != requests {requests}"
        ));
    }
    match histogram_counts(&doc, "latency") {
        Some((count, cells)) => {
            if count != requests {
                violations.push(format!("latency count {count} != requests {requests}"));
            }
            if cells != count {
                violations.push(format!("latency bucket sum {cells} != count {count}"));
            }
        }
        None => violations.push("latency histogram missing from /metrics".into()),
    }
    match histogram_counts(&doc, "queue_wait") {
        Some((count, cells)) => {
            if count != admitted {
                violations.push(format!("queue_wait count {count} != admitted {admitted}"));
            }
            if cells != count {
                violations.push(format!("queue_wait bucket sum {cells} != count {count}"));
            }
        }
        None => violations.push("queue_wait histogram missing from /metrics".into()),
    }
    for key in [
        "latency_by_priority",
        "queue_wait_by_priority",
        "wall_by_tier",
    ] {
        match histogram_counts(&doc, key) {
            Some((count, cells)) if count == cells => {}
            Some((count, cells)) => {
                violations.push(format!("{key} bucket sum {cells} != count {count}"))
            }
            None => violations.push(format!("{key} missing from /metrics")),
        }
    }

    // leaked permits: load and per-class depths must be zero
    let (running, queued) = (get_u64(&doc, "running"), get_u64(&doc, "queued"));
    if running != 0 || queued != 0 {
        violations.push(format!(
            "leaked permits: running {running}, queued {queued}"
        ));
    }

    // leaked cache bytes: recount must match the running total
    let audit = service.cache_audit();
    if !audit.consistent() {
        violations.push(format!(
            "cache byte leak: recorded {} != recomputed {}",
            audit.recorded_bytes, audit.recomputed_bytes
        ));
    }

    // leaked threads (Linux): scoped threads are joined, so the count
    // must return to the pre-soak value. Sampled with a grace period —
    // the OS reaps exited threads asynchronously.
    let mut threads_after = thread_count();
    if opts.check_threads {
        if let (Some(before), Some(_)) = (threads_before, threads_after) {
            for _ in 0..50 {
                if threads_after.is_some_and(|after| after <= before) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(40));
                threads_after = thread_count();
            }
            if let Some(after) = threads_after {
                if after > before {
                    violations.push(format!("leaked threads: {before} before, {after} after"));
                }
            }
        }
    }
    let threads = threads_before.zip(threads_after);

    let p99 = |p: Priority| {
        doc.get("latency_by_priority")
            .and_then(|v| v.get(p.as_str()))
            .and_then(|v| v.get("p99_us"))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    let low_completed = doc
        .get("latency_by_priority")
        .and_then(|v| v.get("low"))
        .and_then(|v| v.get("count"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    if low_completed == 0 && sent > 100 {
        violations.push("low-priority traffic starved: zero completions".into());
    }

    SoakReport {
        elapsed: started.elapsed(),
        sent,
        results: results + degraded,
        shed,
        errors,
        terminal_violations,
        p99_us_by_priority: [
            p99(Priority::High),
            p99(Priority::Normal),
            p99(Priority::Low),
        ],
        low_priority_completed: low_completed,
        threads,
        final_metrics,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_hgr_is_valid_hmetis() {
        let text = ring_hgr(6, 2);
        let hg = np_netlist::io::parse_hgr(&text).unwrap();
        assert_eq!(hg.num_modules(), 6);
        assert_eq!(hg.num_nets(), 6);
    }

    #[test]
    fn short_soak_passes_every_invariant() {
        let report = run_soak(&SoakOptions {
            duration: Duration::from_millis(1500),
            clients: 4,
            ..SoakOptions::default()
        });
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.sent > 0);
        assert_eq!(report.terminal_violations, 0);
        // the report renders as valid JSON for the CI artifact
        let doc = crate::json::parse(&report.to_json()).unwrap();
        assert_eq!(doc.get("passed").and_then(Value::as_bool), Some(true));
        assert!(doc.get("final_metrics").is_some());
    }
}
