//! Request-level fault injection for the service layer.
//!
//! Compiled only with the `fault-inject` feature, mirroring `np-core`'s
//! robustness-layer faults: a request may carry a
//! [`FaultSpec`](crate::proto::FaultSpec) and the service then wraps every
//! portfolio attempt in the matching decorator stage. The three faults
//! model the three ways a worker misbehaves in production:
//!
//! * **slow** — the attempt takes much longer than expected but stays
//!   cooperative (sleeps in short slices, checking the meter between
//!   them, so deadlines still cancel it);
//! * **panic** — the attempt panics mid-stage; the runner's
//!   `catch_unwind` isolation must contain it;
//! * **stuck** — a divergent eigensolve: the attempt spins forever,
//!   charging the meter each spin, so only budget/deadline exhaustion
//!   ends it.
//!
//! Without the feature, requests that name a fault are rejected with an
//! explicit error — silently ignoring a fault request would make a
//! resilience test pass vacuously.

use crate::proto::FaultSpec;
use np_core::engine::{BoxedStage, RunContext, Stage};
use np_core::{PartitionError, PartitionResult};
use np_netlist::Hypergraph;
use std::time::Duration;

/// Wraps `inner` in the decorator implementing `spec`.
pub fn apply(spec: FaultSpec, inner: BoxedStage) -> BoxedStage {
    match spec {
        FaultSpec::Slow(ms) => Box::new(SlowStage {
            delay: Duration::from_millis(ms),
            inner,
        }),
        FaultSpec::Panic => Box::new(PanicStage),
        FaultSpec::Stuck => Box::new(StuckStage),
    }
}

/// Sleeps before delegating, in 1 ms slices with a meter check between
/// slices — slow but cooperative.
struct SlowStage {
    delay: Duration,
    inner: BoxedStage,
}

impl Stage for SlowStage {
    fn name(&self) -> &'static str {
        "fault:slow"
    }

    fn run(
        &self,
        hg: &Hypergraph,
        input: Option<PartitionResult>,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        let slice = Duration::from_millis(1);
        let mut remaining = self.delay;
        while remaining > Duration::ZERO {
            ctx.meter().check()?;
            let nap = remaining.min(slice);
            std::thread::sleep(nap);
            remaining -= nap;
        }
        self.inner.run(hg, input, ctx)
    }
}

/// Panics immediately — a poisoned attempt.
struct PanicStage;

impl Stage for PanicStage {
    fn name(&self) -> &'static str {
        "fault:panic"
    }

    fn run(
        &self,
        _hg: &Hypergraph,
        _input: Option<PartitionResult>,
        _ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        panic!("injected service fault: panicking stage");
    }
}

/// Spins charging the meter until a limit trips — a stuck eigensolve.
/// Never returns a partition.
struct StuckStage;

impl Stage for StuckStage {
    fn name(&self) -> &'static str {
        "fault:stuck"
    }

    fn run(
        &self,
        _hg: &Hypergraph,
        _input: Option<PartitionResult>,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        loop {
            // one matvec-equivalent per spin: an unlimited meter never
            // trips, so pair this fault with a budget or deadline
            ctx.meter().charge(1)?;
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::hypergraph_from_nets;
    use np_runner::RandomStartFmStage;
    use np_sparse::{Budget, BudgetMeter};

    fn tiny() -> Hypergraph {
        hypergraph_from_nets(
            8,
            &[
                vec![0, 1],
                vec![1, 2],
                vec![2, 3],
                vec![0, 3],
                vec![4, 5],
                vec![5, 6],
                vec![6, 7],
                vec![4, 7],
                vec![3, 4],
            ],
        )
    }

    #[test]
    fn slow_stage_is_cancellable() {
        let stage = apply(
            FaultSpec::Slow(60_000),
            Box::new(RandomStartFmStage::default()),
        );
        let meter = BudgetMeter::new(&Budget::default().with_wall_clock(Duration::from_millis(5)));
        let ctx = RunContext::with_meter(&meter);
        let start = std::time::Instant::now();
        let err = stage.run(&tiny(), None, &ctx).unwrap_err();
        assert!(matches!(err, PartitionError::Budget(_)), "{err}");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "must not sleep out the full minute"
        );
    }

    #[test]
    fn slow_stage_eventually_delegates() {
        let stage = apply(FaultSpec::Slow(2), Box::new(RandomStartFmStage::default()));
        let result = stage.run(&tiny(), None, &RunContext::unlimited()).unwrap();
        assert!(result.stats.cut_nets >= 1);
    }

    #[test]
    fn stuck_stage_trips_on_budget() {
        let stage = apply(FaultSpec::Stuck, Box::new(RandomStartFmStage::default()));
        let meter = BudgetMeter::new(&Budget::default().with_matvecs(100));
        let ctx = RunContext::with_meter(&meter);
        let err = stage.run(&tiny(), None, &ctx).unwrap_err();
        assert!(matches!(err, PartitionError::Budget(_)), "{err}");
    }

    #[test]
    #[should_panic(expected = "injected service fault")]
    fn panic_stage_panics() {
        let stage = apply(FaultSpec::Panic, Box::new(RandomStartFmStage::default()));
        let _ = stage.run(&tiny(), None, &RunContext::unlimited());
    }
}
