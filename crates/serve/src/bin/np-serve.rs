//! `np-serve` — the partition service binary.
//!
//! ```text
//! np-serve [--listen ADDR | --stdio]
//!          [--workers N] [--queue N] [--restarts N] [--max-wall-ms MS]
//!          [--metrics-interval-ms MS]
//! ```
//!
//! Speaks the JSON-lines protocol of `np_serve::proto`: one request
//! object per line in, one or more frames per request out (progress
//! frames if requested, then exactly one terminal `result`/`shed`/
//! `error` frame). `--stdio` (the default) serves stdin→stdout, handy
//! for piping; `--listen 127.0.0.1:7199` serves TCP. Clients can pull
//! a metrics snapshot on demand by sending a bare `/metrics` line (or
//! `/trace` for recent spans); `--metrics-interval-ms` additionally
//! pushes the same snapshot to stderr on a timer, for scraping the
//! service without holding a connection.

use np_serve::{ServeConfig, Service};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: np-serve [--listen ADDR | --stdio] \
                     [--workers N] [--queue N] [--restarts N] [--max-wall-ms MS] \
                     [--metrics-interval-ms MS]";

struct Args {
    listen: Option<String>,
    metrics_interval: Option<Duration>,
    cfg: ServeConfig,
}

fn parse_args<I>(args: I) -> Result<Args, String>
where
    I: IntoIterator<Item = String>,
{
    let mut listen = None;
    let mut metrics_interval = None;
    let mut cfg = ServeConfig::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--listen" => listen = Some(iter.next().ok_or("--listen needs an address")?),
            "--stdio" => listen = None,
            "--workers" => {
                let v = iter.next().ok_or("--workers needs a value")?;
                cfg.workers = v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--workers expects a positive count, got '{v}'"))?;
            }
            "--queue" => {
                let v = iter.next().ok_or("--queue needs a value")?;
                cfg.queue = v
                    .parse::<usize>()
                    .map_err(|_| format!("--queue expects a count, got '{v}'"))?;
            }
            "--restarts" => {
                let v = iter.next().ok_or("--restarts needs a value")?;
                cfg.default_restarts = v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--restarts expects a positive count, got '{v}'"))?;
            }
            "--max-wall-ms" => {
                let v = iter.next().ok_or("--max-wall-ms needs a value")?;
                let ms = v
                    .parse::<u64>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--max-wall-ms expects milliseconds, got '{v}'"))?;
                cfg.max_wall = Duration::from_millis(ms);
            }
            "--metrics-interval-ms" => {
                let v = iter.next().ok_or("--metrics-interval-ms needs a value")?;
                let ms = v.parse::<u64>().ok().filter(|n| *n >= 1).ok_or_else(|| {
                    format!("--metrics-interval-ms expects milliseconds, got '{v}'")
                })?;
                metrics_interval = Some(Duration::from_millis(ms));
            }
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unexpected argument '{other}'\n{USAGE}")),
        }
    }
    Ok(Args {
        listen,
        metrics_interval,
        cfg,
    })
}

/// Pushes a metrics frame to stderr every `interval` until the process
/// exits. Detached on purpose: the exporter must never hold the server
/// up, and the thread dies with the process.
fn spawn_metrics_exporter(service: &Arc<Service>, interval: Duration) {
    let service = Arc::clone(service);
    std::thread::spawn(move || loop {
        std::thread::sleep(interval);
        eprintln!("{}", service.metrics_frame());
    });
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let service = Arc::new(Service::new(args.cfg));
    if let Some(interval) = args.metrics_interval {
        spawn_metrics_exporter(&service, interval);
    }
    match args.listen {
        Some(addr) => {
            let listener = match TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("cannot listen on {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("np-serve listening on {addr}");
            if let Err(e) = np_serve::server::serve_tcp(&service, listener) {
                eprintln!("accept loop failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => {
            np_serve::server::serve_stdio(&service);
            eprintln!("np-serve: stdin closed; {}", service.metrics().to_json());
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_to_stdio() {
        let a = parse(&[]).unwrap();
        assert!(a.listen.is_none());
        assert!(a.metrics_interval.is_none());
        assert_eq!(a.cfg.workers, ServeConfig::default().workers);
    }

    #[test]
    fn metrics_interval_parses_and_rejects_zero() {
        let a = parse(&["--metrics-interval-ms", "250"]).unwrap();
        assert_eq!(a.metrics_interval, Some(Duration::from_millis(250)));
        assert!(parse(&["--metrics-interval-ms", "0"]).is_err());
        assert!(parse(&["--metrics-interval-ms"]).is_err());
    }

    #[test]
    fn full_flags() {
        let a = parse(&[
            "--listen",
            "127.0.0.1:7199",
            "--workers",
            "2",
            "--queue",
            "8",
            "--restarts",
            "6",
            "--max-wall-ms",
            "500",
        ])
        .unwrap();
        assert_eq!(a.listen.as_deref(), Some("127.0.0.1:7199"));
        assert_eq!(a.cfg.workers, 2);
        assert_eq!(a.cfg.queue, 8);
        assert_eq!(a.cfg.default_restarts, 6);
        assert_eq!(a.cfg.max_wall, Duration::from_millis(500));
    }

    #[test]
    fn bad_flags_rejected() {
        for bad in [
            &["--workers", "0"][..],
            &["--restarts", "none"][..],
            &["--max-wall-ms", "0"][..],
            &["--mystery"][..],
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }
}
