//! `np-serve` — an overload-safe concurrent partition service.
//!
//! Turns the workspace's batch partitioning pipeline (IG-Match / EIG1 /
//! FM portfolios over the `np-runner` executor) into a long-running
//! server speaking a JSON-lines protocol over TCP or stdio. The hard
//! parts are deliberately the *robustness* parts:
//!
//! * **Admission control** ([`admit`]) — a semaphore over a bounded
//!   queue; beyond `workers + queue` in-flight requests the service
//!   sheds synchronously with an explicit 429-style frame instead of
//!   queueing unboundedly. Queued requests are granted workers by
//!   smooth weighted round-robin over three `priority` classes
//!   (high/normal/low), so high priority keeps a bounded tail under
//!   saturation while low priority still drains.
//! * **Deadlines** ([`service`]) — a request's `deadline_ms` becomes the
//!   wall-clock limit of every [`BudgetMeter`](np_sparse::BudgetMeter)
//!   the request creates, so the numerical kernels cancel themselves
//!   cooperatively; queue wait counts against the deadline.
//! * **Graceful degradation** — every admitted request first buys an
//!   "insurance" FM answer under a tiny private budget, so when the
//!   deadline fires mid-portfolio the service returns the best-so-far
//!   partition flagged `degraded: true` rather than an error; spectral
//!   failures retry with fresh seeds and exponential backoff, then drop
//!   to an FM-restarts-only tier.
//! * **Panic isolation** — a panicking stage fails its portfolio attempt
//!   (`np-runner`'s `catch_unwind` boundary), and a second boundary
//!   around the whole request turns anything that still escapes into an
//!   `error` frame instead of a dead server.
//! * **Bounded caching** ([`cache`]) — repeat netlists are recognized by
//!   content hash and share one parse plus one spectral-operator cache,
//!   under entry/byte bounds with LRU eviction (byte accounting audited
//!   by [`Service::cache_audit`](service::Service::cache_audit)).
//! * **Observability** ([`metrics`], `np_core::engine::trace`) — a bare
//!   `/metrics` line (outside admission, so it answers at full load)
//!   returns monotonic counters, log-bucketed latency/queue-wait
//!   histograms per priority class and degradation tier, and live
//!   queue-depth gauges; `/trace` returns recent structured spans
//!   (request → attempt → stage) from a bounded ring.
//! * **Endurance** ([`soak`]) — a deterministic mixed-traffic soak
//!   harness asserting the service leaks no permits, threads or cache
//!   bytes and that its metrics stay self-consistent over minutes of
//!   faulty traffic.
//!
//! The `fault-inject` feature compiles request-level fault decorators
//! (the `fault` module) — slow worker, panicking stage, stuck eigensolve
//! — used by the resilience integration tests and the soak's fault
//! storms.
//!
//! # Quickstart
//!
//! ```
//! use np_serve::{Service, ServeConfig};
//! use std::sync::Mutex;
//!
//! let svc = Service::new(ServeConfig::default());
//! let frames = Mutex::new(Vec::new());
//! svc.handle_line(
//!     r#"{"id":"r1","hgr":"3 4\n1 2\n2 3\n3 4\n","restarts":2}"#,
//!     &|frame: &str| frames.lock().unwrap().push(frame.to_string()),
//! );
//! let frames = frames.into_inner().unwrap();
//! assert_eq!(frames.len(), 1);
//! assert!(frames[0].contains("\"frame\":\"result\""));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod admit;
pub mod cache;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod json;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod service;
pub mod soak;

pub use admit::{Admission, Enrollment, Priority};
pub use cache::{CacheStats, NetlistCache};
pub use metrics::{Histogram, HistogramSnapshot, Metrics};
pub use proto::{Algo, FaultSpec, Request};
pub use service::{ServeConfig, Service};
pub use soak::{run_soak, SoakOptions, SoakReport};
