//! Minimal JSON reader/writer for the wire protocol.
//!
//! The workspace carries no external dependencies, so the service parses
//! its request lines with this hand-rolled recursive-descent parser. It
//! is deliberately defensive — request bytes come from the network:
//!
//! * nesting depth is capped ([`MAX_DEPTH`]) so a `[[[[…` bomb cannot
//!   overflow the stack;
//! * every string passes through one escaping routine ([`escape`]) on
//!   the way out, so attacker-controlled text (netlist names, panic
//!   messages) can never break the framing of a response line;
//! * numbers are plain `f64` — the protocol has no use for integers
//!   outside `u64`/`usize` ranges exactly representable in a double.
//!
//! Object keys keep their insertion order (a `Vec` of pairs, not a map):
//! responses render deterministically and duplicate keys are rejected at
//! parse time.

use std::fmt;

/// Maximum nesting depth accepted by [`parse`].
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order, duplicate keys rejected.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (rejects fractions, negatives and out-of-range doubles).
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        if x.is_finite() && x >= 0.0 && x <= 2f64.powi(53) && x.fract() == 0.0 {
            Some(x as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object's keys, if this is an object.
    pub fn keys(&self) -> Option<Vec<&str>> {
        match self {
            Value::Object(pairs) => Some(pairs.iter().map(|(k, _)| k.as_str()).collect()),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Value::Number(x)),
            _ => Err(self.err(format!("invalid number '{text}'"))),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid; copy it wholesale
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u`, joining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // high surrogate: require a low surrogate right after
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key '{key}'")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Renders `value` as a JSON string literal (quotes included), escaping
/// quotes, backslashes and control characters.
pub fn escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An incrementally built single-line JSON object (the response frame
/// shape). Values added through the typed methods are escaped/rendered
/// at insertion; keys are trusted identifiers chosen by this crate.
#[derive(Clone, Debug, Default)]
pub struct Obj {
    fields: Vec<(&'static str, String)>,
}

impl Obj {
    /// An empty object.
    pub fn new() -> Self {
        Obj::default()
    }

    /// Adds a string field (escaped).
    #[must_use]
    pub fn str(mut self, key: &'static str, value: &str) -> Self {
        self.fields.push((key, escape(value)));
        self
    }

    /// Adds an integer field.
    #[must_use]
    pub fn int(mut self, key: &'static str, value: u64) -> Self {
        self.fields.push((key, value.to_string()));
        self
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn bool(mut self, key: &'static str, value: bool) -> Self {
        self.fields.push((key, value.to_string()));
        self
    }

    /// Adds a float field (non-finite renders as `null`).
    #[must_use]
    pub fn num(mut self, key: &'static str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value:e}")
        } else {
            "null".to_string()
        };
        self.fields.push((key, rendered));
        self
    }

    /// Adds an already-rendered JSON fragment (array/object built by the
    /// caller from other [`Obj`]s).
    #[must_use]
    pub fn raw(mut self, key: &'static str, fragment: String) -> Self {
        self.fields.push((key, fragment));
        self
    }

    /// Renders the object as one line (no trailing newline).
    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        format!("{{{}}}", body.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Number(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"id":"r1","nums":[1,2,3],"cfg":{"deep":true},"x":null}"#).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_str), Some("r1"));
        assert_eq!(
            v.get("nums"),
            Some(&Value::Array(vec![
                Value::Number(1.0),
                Value::Number(2.0),
                Value::Number(3.0)
            ]))
        );
        assert_eq!(
            v.get("cfg")
                .and_then(|c| c.get("deep"))
                .and_then(Value::as_bool),
            Some(true)
        );
        assert_eq!(v.get("x"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ \u{1} caf\u{e9} \u{1F600}";
        let wire = escape(original);
        let back = parse(&wire).unwrap();
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn surrogate_pairs_join() {
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("\u{1F600}"));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn depth_bomb_rejected() {
        let bomb = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = parse(&bomb).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
        // a document at the cap parses fine
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn malformed_documents_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,\"a\":2}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
            "nan",
            "1e999",
            "\"bad \u{7}\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("1e300").unwrap().as_u64(), None);
    }

    #[test]
    fn obj_renders_one_line() {
        let line = Obj::new()
            .str("id", "a\"b")
            .int("n", 3)
            .bool("ok", true)
            .num("ratio", 0.125)
            .num("bad", f64::NAN)
            .raw("list", "[1,2]".into())
            .render();
        assert_eq!(
            line,
            r#"{"id":"a\"b","n":3,"ok":true,"ratio":1.25e-1,"bad":null,"list":[1,2]}"#
        );
        assert!(parse(&line).is_ok());
        assert!(!line.contains('\n'));
    }
}
