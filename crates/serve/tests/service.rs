//! Service integration suite: overload safety, deadline degradation and
//! (with `--features fault-inject`) fault resilience.
//!
//! The central test is the ISSUE's acceptance criterion: a worker pool
//! of 2 facing 16 concurrent mixed-size requests must answer **every**
//! request with exactly one terminal frame — result, degraded result or
//! shed — with no hangs and no panics escaping the server loop.

use np_serve::json::{self, Value};
use np_serve::{ServeConfig, Service};
use np_testkit::banded_hypergraph;
use std::sync::mpsc;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

/// A request line for a banded netlist of `modules` modules.
fn request_line(id: &str, modules: usize, extra: &str) -> String {
    let hg = banded_hypergraph(modules as u64, modules, modules + modules / 2, 6);
    let hgr = json::escape(&np_netlist::io::to_hgr_string(&hg));
    format!(r#"{{"id":"{id}","hgr":{hgr}{extra}}}"#)
}

/// Runs one request to completion, collecting its frames.
fn collect(svc: &Service, line: &str) -> Vec<String> {
    let frames = Mutex::new(Vec::new());
    svc.handle_line(line, &|f: &str| frames.lock().unwrap().push(f.to_string()));
    frames.into_inner().unwrap()
}

fn frame_kind(frame: &str) -> String {
    json::parse(frame)
        .expect("every frame is valid json")
        .get("frame")
        .and_then(Value::as_str)
        .expect("every frame has a kind")
        .to_string()
}

/// The acceptance criterion: workers=2, 16 concurrent mixed-size
/// requests, exactly one terminal response each, within a bounded wall.
#[test]
fn overload_16_concurrent_requests_on_2_workers_all_get_terminal_answers() {
    let svc = Arc::new(Service::new(ServeConfig {
        workers: 2,
        queue: 6, // 2 + 6 in flight; the rest must shed
        max_wall: Duration::from_millis(300),
        insurance_wall: Duration::from_millis(10),
        ..ServeConfig::default()
    }));
    let (tx, rx) = mpsc::channel::<(usize, Vec<String>)>();
    // all 16 requests hit admission at once — 2 + 6 capacity must shed
    let gate = Arc::new(Barrier::new(16));
    std::thread::scope(|scope| {
        for i in 0..16 {
            let svc = Arc::clone(&svc);
            let tx = tx.clone();
            let gate = Arc::clone(&gate);
            scope.spawn(move || {
                // mixed sizes and mixed configs: some tiny deadlines,
                // some budgets, several algorithms
                let modules = 24 + (i % 4) * 40;
                let extra = match i % 4 {
                    0 => r#","restarts":2"#.to_string(),
                    1 => r#","deadline_ms":40,"restarts":4"#.to_string(),
                    2 => format!(
                        r#","algo":"{}","budget_ms":80,"restarts":2"#,
                        ["eig1", "fm"][(i / 4) % 2]
                    ),
                    _ => r#","deadline_ms":1,"restarts":3"#.to_string(),
                };
                let line = request_line(&format!("r{i}"), modules, &extra);
                gate.wait();
                let frames = collect(&svc, &line);
                tx.send((i, frames)).unwrap();
            });
        }
        drop(tx);
        let mut seen = 0;
        // bounded wait: a hang here is exactly the bug this test exists
        // to catch
        while seen < 16 {
            let (i, frames) = rx
                .recv_timeout(Duration::from_secs(60))
                .expect("every request must terminate; a missing response is a hang");
            let terminals: Vec<&String> = frames
                .iter()
                .filter(|f| {
                    let kind = frame_kind(f);
                    kind == "result" || kind == "shed" || kind == "error"
                })
                .collect();
            assert_eq!(
                terminals.len(),
                1,
                "request r{i} must get exactly one terminal frame, got {frames:?}"
            );
            let doc = json::parse(terminals[0]).unwrap();
            assert_eq!(
                doc.get("id").and_then(Value::as_str),
                Some(format!("r{i}").as_str()),
                "terminal frame must echo the request id"
            );
            // a partition-bearing answer must be a real bipartition
            if frame_kind(terminals[0]) == "result" {
                let p = doc.get("partition").and_then(Value::as_str).unwrap();
                assert!(p.contains('0') && p.contains('1'), "r{i}: {p}");
            }
            seen += 1;
        }
    });
    let m = svc.metrics();
    let results = m.results.load(std::sync::atomic::Ordering::Relaxed);
    let degraded = m.degraded.load(std::sync::atomic::Ordering::Relaxed);
    let shed = m.shed.load(std::sync::atomic::Ordering::Relaxed);
    let errors = m.errors.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(results + degraded + shed + errors, 16, "{}", m.to_json());
    assert!(shed >= 1, "16 requests into capacity 8 must shed some");
    assert!(
        results + degraded >= 8,
        "everything admitted must be answered: {}",
        m.to_json()
    );
    assert_eq!(errors, 0, "no request should error: {}", m.to_json());
}

/// Deadline-exceeded requests return best-so-far with `degraded: true`.
#[test]
fn deadline_mid_portfolio_returns_degraded_best_so_far() {
    let svc = Service::new(ServeConfig {
        workers: 1,
        insurance_wall: Duration::from_millis(15),
        ..ServeConfig::default()
    });
    // a deadline generous enough for the insurance tier but (on a large
    // instance with many restarts) tight for the full portfolio
    let line = request_line("tight", 160, r#","deadline_ms":60,"restarts":16"#);
    let frames = collect(&svc, &line);
    assert_eq!(frames.len(), 1, "{frames:?}");
    let doc = json::parse(&frames[0]).unwrap();
    assert_eq!(doc.get("frame").and_then(Value::as_str), Some("result"));
    let p = doc.get("partition").and_then(Value::as_str).unwrap();
    assert_eq!(p.len(), 160);
    // the request either finished inside the deadline (fast machine —
    // clean result) or was degraded with an explicit reason; both are
    // correct, a hang or error is not
    if doc.get("degraded").and_then(Value::as_bool) == Some(true) {
        let reason = doc.get("reason").and_then(Value::as_str).unwrap();
        assert!(
            reason == "deadline-best-so-far" || reason == "expired-in-queue",
            "{reason}"
        );
    }
}

/// A deadline of zero still gets a partition (insurance tier), flagged
/// degraded.
#[test]
fn zero_deadline_still_answers_with_a_partition() {
    let svc = Service::new(ServeConfig::default());
    let frames = collect(&svc, &request_line("zero", 48, r#","deadline_ms":0"#));
    assert_eq!(frames.len(), 1);
    let doc = json::parse(&frames[0]).unwrap();
    assert_eq!(doc.get("frame").and_then(Value::as_str), Some("result"));
    assert_eq!(doc.get("degraded").and_then(Value::as_bool), Some(true));
    assert_eq!(
        doc.get("reason").and_then(Value::as_str),
        Some("expired-in-queue")
    );
    assert_eq!(
        doc.get("partition").and_then(Value::as_str).map(str::len),
        Some(48)
    );
}

/// Target-ratio early stop produces a clean (non-degraded) result.
#[test]
fn target_ratio_early_stop_is_clean() {
    let svc = Service::new(ServeConfig::default());
    let frames = collect(
        &svc,
        &request_line("early", 48, r#","restarts":8,"target_ratio":1.0"#),
    );
    assert_eq!(frames.len(), 1);
    let doc = json::parse(&frames[0]).unwrap();
    assert_eq!(doc.get("frame").and_then(Value::as_str), Some("result"));
    assert_eq!(doc.get("degraded").and_then(Value::as_bool), Some(false));
}

/// Repeat submissions of the same netlist share one parse and operator
/// cache.
#[test]
fn netlist_cache_is_shared_across_requests() {
    let svc = Service::new(ServeConfig::default());
    let line = request_line("cache-a", 64, r#","algo":"eig1","restarts":2"#);
    collect(&svc, &line);
    let line2 = request_line("cache-b", 64, r#","algo":"eig1","restarts":2"#);
    let frames = collect(&svc, &line2);
    assert!(frames[0].contains("\"cache_hit\":true"), "{frames:?}");
    let stats = svc.cache_stats();
    assert_eq!(stats.misses, 1);
    assert!(stats.hits >= 1);
}

/// Parses the current `/metrics` frame of a service.
fn metrics_doc(svc: &Service) -> Value {
    json::parse(&svc.metrics_frame()).expect("/metrics must always render valid json")
}

/// Integer field of a metrics document.
fn counter(doc: &Value, key: &str) -> u64 {
    doc.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("metrics frame must carry integer '{key}'"))
}

/// `(count, sum-of-bucket-cells)` for one histogram object.
fn hist_cells(hist: &Value) -> (u64, u64) {
    let count = hist.get("count").and_then(Value::as_u64).unwrap();
    let cells = match hist.get("buckets") {
        Some(Value::Array(items)) => items.iter().filter_map(Value::as_u64).sum(),
        _ => panic!("histogram must carry a bucket array"),
    };
    (count, cells)
}

/// Blocks until the service reports at least one running request — used
/// to park a "plug" request on the only worker before queueing rivals.
fn wait_until_running(svc: &Service) {
    let started = std::time::Instant::now();
    while counter(&metrics_doc(svc), "running") == 0 {
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "plug request never started running"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// The weighted-fair acceptance criterion: under a saturated single
/// worker, high-priority requests are granted ahead of a much larger
/// low-priority cohort — their p99 latency is strictly lower — while
/// every low-priority request still completes (no starvation).
#[test]
fn high_priority_p99_beats_low_under_saturation_and_low_still_drains() {
    let svc = Arc::new(Service::new(ServeConfig {
        workers: 1,
        queue: 40,
        max_wall: Duration::from_secs(2),
        insurance_wall: Duration::from_millis(5),
        ..ServeConfig::default()
    }));
    const HIGH: usize = 3;
    const LOW: usize = 24;
    std::thread::scope(|scope| {
        // a plug occupies the lone worker so all contenders pile up in
        // the queue and admission order is decided by the scheduler,
        // not by arrival timing
        {
            let svc = Arc::clone(&svc);
            scope.spawn(move || {
                let line = request_line("plug", 160, r#","restarts":6,"budget_ms":60"#);
                collect(&svc, &line);
            });
        }
        wait_until_running(&svc);
        let gate = Arc::new(Barrier::new(HIGH + LOW));
        for i in 0..HIGH + LOW {
            let svc = Arc::clone(&svc);
            let gate = Arc::clone(&gate);
            scope.spawn(move || {
                let class = if i < HIGH { "high" } else { "low" };
                let line = request_line(
                    &format!("{class}{i}"),
                    160,
                    &format!(r#","restarts":6,"budget_ms":30,"priority":"{class}""#),
                );
                gate.wait();
                let frames = collect(&svc, &line);
                assert_eq!(frames.len(), 1, "{class}{i}: {frames:?}");
                assert_eq!(frame_kind(&frames[0]), "result", "{class}{i}: {frames:?}");
            });
        }
    });
    let doc = metrics_doc(&svc);
    assert_eq!(counter(&doc, "shed"), 0, "queue 40 must hold the burst");
    let by_priority = doc.get("latency_by_priority").unwrap();
    let p99 = |class: &str| {
        by_priority
            .get(class)
            .and_then(|h| h.get("p99_us"))
            .and_then(Value::as_u64)
            .unwrap()
    };
    let (low_count, _) = hist_cells(by_priority.get("low").unwrap());
    assert_eq!(low_count, LOW as u64, "every low request must complete");
    assert!(
        p99("high") < p99("low"),
        "high p99 {}us must be strictly below low p99 {}us\n{doc:?}",
        p99("high"),
        p99("low")
    );
}

/// Satellite regression: requests whose deadline expires while they sit
/// in the queue must each release their permit exactly once — the load
/// gauge returns to zero and the service keeps accepting work.
#[test]
fn queue_expiry_racing_dispatch_releases_every_permit_exactly_once() {
    let svc = Arc::new(Service::new(ServeConfig {
        workers: 1,
        queue: 12,
        max_wall: Duration::from_millis(500),
        insurance_wall: Duration::from_millis(10),
        ..ServeConfig::default()
    }));
    std::thread::scope(|scope| {
        {
            let svc = Arc::clone(&svc);
            scope.spawn(move || {
                let line = request_line("plug", 160, r#","restarts":6,"budget_ms":80"#);
                collect(&svc, &line);
            });
        }
        wait_until_running(&svc);
        // deadlines of 0..8ms all expire behind the ~80ms plug; some
        // race their expiry against the moment the worker frees up
        for i in 0..8u64 {
            let svc = Arc::clone(&svc);
            scope.spawn(move || {
                let line = request_line(
                    &format!("e{i}"),
                    48,
                    &format!(r#","deadline_ms":{i},"restarts":2"#),
                );
                let frames = collect(&svc, &line);
                let terminals = frames
                    .iter()
                    .filter(|f| frame_kind(f) != "progress")
                    .count();
                assert_eq!(terminals, 1, "e{i} must terminate exactly once: {frames:?}");
            });
        }
    });
    // every handle_line returned, so every permit must be home
    let doc = metrics_doc(&svc);
    assert_eq!(counter(&doc, "running"), 0, "{doc:?}");
    assert_eq!(counter(&doc, "queued"), 0, "{doc:?}");
    assert_eq!(
        counter(&doc, "admitted"),
        counter(&doc, "requests"),
        "queue 12 holds all 9 requests, nothing sheds: {doc:?}"
    );
    let (wait_count, _) = hist_cells(doc.get("queue_wait").unwrap());
    assert_eq!(wait_count, counter(&doc, "admitted"), "{doc:?}");
    // the pool is intact: a fresh request is admitted and answered
    let frames = collect(&svc, &request_line("after", 48, r#","restarts":2"#));
    assert_eq!(frames.len(), 1, "{frames:?}");
    assert_eq!(frame_kind(&frames[0]), "result", "{frames:?}");
}

/// Satellite: `/metrics` under concurrent load — snapshots taken during
/// a 16-request burst always parse, counters never move backwards, and
/// the final snapshot satisfies the quiescent consistency identities.
#[test]
fn metrics_snapshots_stay_consistent_under_a_concurrent_burst() {
    let svc = Arc::new(Service::new(ServeConfig {
        workers: 2,
        queue: 14, // 16 in flight: the whole burst fits, nothing sheds
        max_wall: Duration::from_millis(300),
        insurance_wall: Duration::from_millis(10),
        ..ServeConfig::default()
    }));
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|scope| {
        // two samplers hammer /metrics for the whole burst
        for _ in 0..2 {
            let svc = Arc::clone(&svc);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let keys = [
                    "requests", "admitted", "results", "degraded", "shed", "errors",
                ];
                let mut last = [0u64; 6];
                while !done.load(std::sync::atomic::Ordering::Relaxed) {
                    let doc = metrics_doc(&svc);
                    let now: Vec<u64> = keys.iter().map(|k| counter(&doc, k)).collect();
                    for (j, key) in keys.iter().enumerate() {
                        assert!(now[j] >= last[j], "'{key}' moved backwards: {doc:?}");
                        last[j] = now[j];
                    }
                    let settled = now[2] + now[3] + now[4] + now[5];
                    assert!(settled <= now[0], "more answers than requests: {doc:?}");
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }
        let gate = Arc::new(Barrier::new(16));
        let workers: Vec<_> = (0..16)
            .map(|i| {
                let svc = Arc::clone(&svc);
                let gate = Arc::clone(&gate);
                scope.spawn(move || {
                    let class = ["high", "normal", "low"][i % 3];
                    let line = request_line(
                        &format!("b{i}"),
                        32 + (i % 4) * 32,
                        &format!(r#","restarts":2,"budget_ms":40,"priority":"{class}""#),
                    );
                    gate.wait();
                    collect(&svc, &line);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        done.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    let doc = metrics_doc(&svc);
    assert_eq!(counter(&doc, "requests"), 16, "{doc:?}");
    assert_eq!(counter(&doc, "shed"), 0, "{doc:?}");
    assert_eq!(counter(&doc, "errors"), 0, "{doc:?}");
    assert_eq!(
        counter(&doc, "results") + counter(&doc, "degraded"),
        16,
        "{doc:?}"
    );
    // quiescent identities: every request is measured exactly once, and
    // every histogram's bucket cells sum to its own count
    let (lat_count, lat_cells) = hist_cells(doc.get("latency").unwrap());
    assert_eq!(lat_count, 16, "{doc:?}");
    assert_eq!(lat_cells, lat_count, "{doc:?}");
    let (wait_count, wait_cells) = hist_cells(doc.get("queue_wait").unwrap());
    assert_eq!(wait_count, counter(&doc, "admitted"), "{doc:?}");
    assert_eq!(wait_cells, wait_count, "{doc:?}");
    for group in ["latency_by_priority", "queue_wait_by_priority"] {
        let mut total = 0;
        for class in ["high", "normal", "low"] {
            let (count, cells) = hist_cells(doc.get(group).unwrap().get(class).unwrap());
            assert_eq!(cells, count, "{group}.{class}: {doc:?}");
            total += count;
        }
        assert_eq!(
            total, 16,
            "{group} classes must partition the burst: {doc:?}"
        );
    }
}

#[cfg(feature = "fault-inject")]
mod faults {
    use super::*;

    /// One poisoned (panicking) attempt must not take down the request:
    /// the other attempts win and the result is clean.
    #[test]
    fn panicking_attempt_is_contained_and_the_request_succeeds() {
        let svc = Service::new(ServeConfig::default());
        let frames = collect(
            &svc,
            &request_line("poison", 48, r#","restarts":3,"fault":{"kind":"panic"}"#),
        );
        assert_eq!(frames.len(), 1, "{frames:?}");
        let doc = json::parse(&frames[0]).unwrap();
        assert_eq!(doc.get("frame").and_then(Value::as_str), Some("result"));
        assert_eq!(doc.get("degraded").and_then(Value::as_bool), Some(false));
        assert!(
            svc.metrics()
                .panics_contained
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        );
    }

    /// A stuck eigensolve (cooperatively divergent) is ended by the
    /// deadline and degraded to the best-so-far answer.
    #[test]
    fn stuck_stage_is_rescued_by_the_deadline() {
        let svc = Service::new(ServeConfig {
            workers: 1,
            max_wall: Duration::from_millis(200),
            retries: 1,
            backoff: Duration::from_millis(2),
            ..ServeConfig::default()
        });
        let frames = collect(
            &svc,
            &request_line(
                "stuck",
                48,
                r#","deadline_ms":120,"restarts":2,"fault":{"kind":"stuck"}"#,
            ),
        );
        assert_eq!(frames.len(), 1, "{frames:?}");
        let doc = json::parse(&frames[0]).unwrap();
        assert_eq!(
            doc.get("frame").and_then(Value::as_str),
            Some("result"),
            "{frames:?}"
        );
        assert_eq!(doc.get("degraded").and_then(Value::as_bool), Some(true));
        assert_eq!(
            doc.get("partition").and_then(Value::as_str).map(str::len),
            Some(48)
        );
    }

    /// Slow workers are cancelled by the deadline, not waited out.
    #[test]
    fn slow_worker_is_bounded_by_the_deadline() {
        let svc = Service::new(ServeConfig {
            workers: 1,
            max_wall: Duration::from_millis(300),
            retries: 0,
            ..ServeConfig::default()
        });
        let started = std::time::Instant::now();
        let frames = collect(
            &svc,
            &request_line(
                "slow",
                48,
                r#","deadline_ms":100,"restarts":2,"fault":{"kind":"slow","ms":60000}"#,
            ),
        );
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "a 60s injected delay must be cut short by the 100ms deadline"
        );
        assert_eq!(frames.len(), 1, "{frames:?}");
        assert!(frames[0].contains("\"frame\":\"result\""), "{frames:?}");
        assert!(frames[0].contains("\"degraded\":true"), "{frames:?}");
    }
}
