//! Service integration suite: overload safety, deadline degradation and
//! (with `--features fault-inject`) fault resilience.
//!
//! The central test is the ISSUE's acceptance criterion: a worker pool
//! of 2 facing 16 concurrent mixed-size requests must answer **every**
//! request with exactly one terminal frame — result, degraded result or
//! shed — with no hangs and no panics escaping the server loop.

use np_serve::json::{self, Value};
use np_serve::{ServeConfig, Service};
use np_testkit::banded_hypergraph;
use std::sync::mpsc;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

/// A request line for a banded netlist of `modules` modules.
fn request_line(id: &str, modules: usize, extra: &str) -> String {
    let hg = banded_hypergraph(modules as u64, modules, modules + modules / 2, 6);
    let hgr = json::escape(&np_netlist::io::to_hgr_string(&hg));
    format!(r#"{{"id":"{id}","hgr":{hgr}{extra}}}"#)
}

/// Runs one request to completion, collecting its frames.
fn collect(svc: &Service, line: &str) -> Vec<String> {
    let frames = Mutex::new(Vec::new());
    svc.handle_line(line, &|f: &str| frames.lock().unwrap().push(f.to_string()));
    frames.into_inner().unwrap()
}

fn frame_kind(frame: &str) -> String {
    json::parse(frame)
        .expect("every frame is valid json")
        .get("frame")
        .and_then(Value::as_str)
        .expect("every frame has a kind")
        .to_string()
}

/// The acceptance criterion: workers=2, 16 concurrent mixed-size
/// requests, exactly one terminal response each, within a bounded wall.
#[test]
fn overload_16_concurrent_requests_on_2_workers_all_get_terminal_answers() {
    let svc = Arc::new(Service::new(ServeConfig {
        workers: 2,
        queue: 6, // 2 + 6 in flight; the rest must shed
        max_wall: Duration::from_millis(300),
        insurance_wall: Duration::from_millis(10),
        ..ServeConfig::default()
    }));
    let (tx, rx) = mpsc::channel::<(usize, Vec<String>)>();
    // all 16 requests hit admission at once — 2 + 6 capacity must shed
    let gate = Arc::new(Barrier::new(16));
    std::thread::scope(|scope| {
        for i in 0..16 {
            let svc = Arc::clone(&svc);
            let tx = tx.clone();
            let gate = Arc::clone(&gate);
            scope.spawn(move || {
                // mixed sizes and mixed configs: some tiny deadlines,
                // some budgets, several algorithms
                let modules = 24 + (i % 4) * 40;
                let extra = match i % 4 {
                    0 => r#","restarts":2"#.to_string(),
                    1 => r#","deadline_ms":40,"restarts":4"#.to_string(),
                    2 => format!(
                        r#","algo":"{}","budget_ms":80,"restarts":2"#,
                        ["eig1", "fm"][(i / 4) % 2]
                    ),
                    _ => r#","deadline_ms":1,"restarts":3"#.to_string(),
                };
                let line = request_line(&format!("r{i}"), modules, &extra);
                gate.wait();
                let frames = collect(&svc, &line);
                tx.send((i, frames)).unwrap();
            });
        }
        drop(tx);
        let mut seen = 0;
        // bounded wait: a hang here is exactly the bug this test exists
        // to catch
        while seen < 16 {
            let (i, frames) = rx
                .recv_timeout(Duration::from_secs(60))
                .expect("every request must terminate; a missing response is a hang");
            let terminals: Vec<&String> = frames
                .iter()
                .filter(|f| {
                    let kind = frame_kind(f);
                    kind == "result" || kind == "shed" || kind == "error"
                })
                .collect();
            assert_eq!(
                terminals.len(),
                1,
                "request r{i} must get exactly one terminal frame, got {frames:?}"
            );
            let doc = json::parse(terminals[0]).unwrap();
            assert_eq!(
                doc.get("id").and_then(Value::as_str),
                Some(format!("r{i}").as_str()),
                "terminal frame must echo the request id"
            );
            // a partition-bearing answer must be a real bipartition
            if frame_kind(terminals[0]) == "result" {
                let p = doc.get("partition").and_then(Value::as_str).unwrap();
                assert!(p.contains('0') && p.contains('1'), "r{i}: {p}");
            }
            seen += 1;
        }
    });
    let m = svc.metrics();
    let results = m.results.load(std::sync::atomic::Ordering::Relaxed);
    let degraded = m.degraded.load(std::sync::atomic::Ordering::Relaxed);
    let shed = m.shed.load(std::sync::atomic::Ordering::Relaxed);
    let errors = m.errors.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(results + degraded + shed + errors, 16, "{}", m.to_json());
    assert!(shed >= 1, "16 requests into capacity 8 must shed some");
    assert!(
        results + degraded >= 8,
        "everything admitted must be answered: {}",
        m.to_json()
    );
    assert_eq!(errors, 0, "no request should error: {}", m.to_json());
}

/// Deadline-exceeded requests return best-so-far with `degraded: true`.
#[test]
fn deadline_mid_portfolio_returns_degraded_best_so_far() {
    let svc = Service::new(ServeConfig {
        workers: 1,
        insurance_wall: Duration::from_millis(15),
        ..ServeConfig::default()
    });
    // a deadline generous enough for the insurance tier but (on a large
    // instance with many restarts) tight for the full portfolio
    let line = request_line("tight", 160, r#","deadline_ms":60,"restarts":16"#);
    let frames = collect(&svc, &line);
    assert_eq!(frames.len(), 1, "{frames:?}");
    let doc = json::parse(&frames[0]).unwrap();
    assert_eq!(doc.get("frame").and_then(Value::as_str), Some("result"));
    let p = doc.get("partition").and_then(Value::as_str).unwrap();
    assert_eq!(p.len(), 160);
    // the request either finished inside the deadline (fast machine —
    // clean result) or was degraded with an explicit reason; both are
    // correct, a hang or error is not
    if doc.get("degraded").and_then(Value::as_bool) == Some(true) {
        let reason = doc.get("reason").and_then(Value::as_str).unwrap();
        assert!(
            reason == "deadline-best-so-far" || reason == "expired-in-queue",
            "{reason}"
        );
    }
}

/// A deadline of zero still gets a partition (insurance tier), flagged
/// degraded.
#[test]
fn zero_deadline_still_answers_with_a_partition() {
    let svc = Service::new(ServeConfig::default());
    let frames = collect(&svc, &request_line("zero", 48, r#","deadline_ms":0"#));
    assert_eq!(frames.len(), 1);
    let doc = json::parse(&frames[0]).unwrap();
    assert_eq!(doc.get("frame").and_then(Value::as_str), Some("result"));
    assert_eq!(doc.get("degraded").and_then(Value::as_bool), Some(true));
    assert_eq!(
        doc.get("reason").and_then(Value::as_str),
        Some("expired-in-queue")
    );
    assert_eq!(
        doc.get("partition").and_then(Value::as_str).map(str::len),
        Some(48)
    );
}

/// Target-ratio early stop produces a clean (non-degraded) result.
#[test]
fn target_ratio_early_stop_is_clean() {
    let svc = Service::new(ServeConfig::default());
    let frames = collect(
        &svc,
        &request_line("early", 48, r#","restarts":8,"target_ratio":1.0"#),
    );
    assert_eq!(frames.len(), 1);
    let doc = json::parse(&frames[0]).unwrap();
    assert_eq!(doc.get("frame").and_then(Value::as_str), Some("result"));
    assert_eq!(doc.get("degraded").and_then(Value::as_bool), Some(false));
}

/// Repeat submissions of the same netlist share one parse and operator
/// cache.
#[test]
fn netlist_cache_is_shared_across_requests() {
    let svc = Service::new(ServeConfig::default());
    let line = request_line("cache-a", 64, r#","algo":"eig1","restarts":2"#);
    collect(&svc, &line);
    let line2 = request_line("cache-b", 64, r#","algo":"eig1","restarts":2"#);
    let frames = collect(&svc, &line2);
    assert!(frames[0].contains("\"cache_hit\":true"), "{frames:?}");
    let stats = svc.cache_stats();
    assert_eq!(stats.misses, 1);
    assert!(stats.hits >= 1);
}

#[cfg(feature = "fault-inject")]
mod faults {
    use super::*;

    /// One poisoned (panicking) attempt must not take down the request:
    /// the other attempts win and the result is clean.
    #[test]
    fn panicking_attempt_is_contained_and_the_request_succeeds() {
        let svc = Service::new(ServeConfig::default());
        let frames = collect(
            &svc,
            &request_line("poison", 48, r#","restarts":3,"fault":{"kind":"panic"}"#),
        );
        assert_eq!(frames.len(), 1, "{frames:?}");
        let doc = json::parse(&frames[0]).unwrap();
        assert_eq!(doc.get("frame").and_then(Value::as_str), Some("result"));
        assert_eq!(doc.get("degraded").and_then(Value::as_bool), Some(false));
        assert!(
            svc.metrics()
                .panics_contained
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        );
    }

    /// A stuck eigensolve (cooperatively divergent) is ended by the
    /// deadline and degraded to the best-so-far answer.
    #[test]
    fn stuck_stage_is_rescued_by_the_deadline() {
        let svc = Service::new(ServeConfig {
            workers: 1,
            max_wall: Duration::from_millis(200),
            retries: 1,
            backoff: Duration::from_millis(2),
            ..ServeConfig::default()
        });
        let frames = collect(
            &svc,
            &request_line(
                "stuck",
                48,
                r#","deadline_ms":120,"restarts":2,"fault":{"kind":"stuck"}"#,
            ),
        );
        assert_eq!(frames.len(), 1, "{frames:?}");
        let doc = json::parse(&frames[0]).unwrap();
        assert_eq!(
            doc.get("frame").and_then(Value::as_str),
            Some("result"),
            "{frames:?}"
        );
        assert_eq!(doc.get("degraded").and_then(Value::as_bool), Some(true));
        assert_eq!(
            doc.get("partition").and_then(Value::as_str).map(str::len),
            Some(48)
        );
    }

    /// Slow workers are cancelled by the deadline, not waited out.
    #[test]
    fn slow_worker_is_bounded_by_the_deadline() {
        let svc = Service::new(ServeConfig {
            workers: 1,
            max_wall: Duration::from_millis(300),
            retries: 0,
            ..ServeConfig::default()
        });
        let started = std::time::Instant::now();
        let frames = collect(
            &svc,
            &request_line(
                "slow",
                48,
                r#","deadline_ms":100,"restarts":2,"fault":{"kind":"slow","ms":60000}"#,
            ),
        );
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "a 60s injected delay must be cut short by the 100ms deadline"
        );
        assert_eq!(frames.len(), 1, "{frames:?}");
        assert!(frames[0].contains("\"frame\":\"result\""), "{frames:?}");
        assert!(frames[0].contains("\"degraded\":true"), "{frames:?}");
    }
}
