//! Test-mode entry for the soak harness: a bounded run of the same
//! mixed-traffic loop the CI soak job executes for minutes, asserting
//! the leak and consistency invariants hold end to end.

use np_serve::{run_soak, SoakOptions};
use std::time::Duration;

/// A two-second mixed-priority soak must finish with zero invariant
/// violations and a self-consistent final `/metrics` snapshot.
#[test]
fn bounded_soak_holds_every_invariant() {
    let report = run_soak(&SoakOptions {
        duration: Duration::from_millis(2000),
        clients: 5,
        seed: 0xC0FF_EE00,
        ..SoakOptions::default()
    });
    assert!(
        report.passed(),
        "soak violations: {:?}\nfinal metrics: {}",
        report.violations,
        report.final_metrics
    );
    assert!(report.sent > 0, "harness must generate traffic");
    assert_eq!(report.terminal_violations, 0);
    assert!(
        report.low_priority_completed > 0,
        "low priority must not starve: {}",
        report.to_json()
    );
    // the report renders as one valid JSON document
    let doc = np_serve::json::parse(&report.to_json()).expect("report json");
    assert!(doc.get("passed").is_some());
}
