//! Portfolio determinism and cancellation properties (ISSUE PR 3,
//! satellite 3).
//!
//! * **Determinism**: for a fixed base seed, the winner — index,
//!   partition, ratio — and every per-attempt record (status, score,
//!   charge) are bit-identical for `threads ∈ {1, 2, 8}` on random
//!   netlists, because attempt seeds derive from the attempt *index*
//!   (not the worker) and the reduction orders by `(score, index)`.
//! * **Cancellation**: once the shared deadline passes, in-flight
//!   attempts stop at their next budget check and the whole portfolio
//!   returns promptly with every attempt's fate recorded.

use np_baselines::{FmOptions, RcutOptions};
use np_core::engine::stages::{IgMatchStage, RcutStage};
use np_core::{PartitionError, PartitionResult, Partitioner, RunContext};
use np_netlist::rng::derive_seed;
use np_netlist::{Hypergraph, Side};
use np_runner::presets::fm_restarts;
use np_runner::{
    run_portfolio, AttemptStatus, Portfolio, PortfolioOptions, PortfolioOutcome, RandomStartFmStage,
};
use np_sparse::{Budget, BudgetMeter};
use np_testkit::{check_cases, small_hypergraph, Gen};
use std::time::{Duration, Instant};

/// Winner index, winning sides, winning ratio bits, then per-attempt
/// (status, score bits, charge).
type Fingerprint = (usize, Vec<Side>, u64, Vec<(AttemptStatus, u64, u64)>);

/// Everything about an outcome that the determinism contract promises is
/// thread-count invariant. Wall times and the *global* pool total are
/// deliberately excluded (they are timing-dependent).
fn fingerprint(out: &PortfolioOutcome) -> Fingerprint {
    (
        out.winner,
        out.best.partition.sides().to_vec(),
        out.best.ratio().to_bits(),
        out.report
            .attempts
            .iter()
            .map(|a| {
                (
                    a.status,
                    a.score.unwrap_or(f64::INFINITY).to_bits(),
                    a.charge,
                )
            })
            .collect(),
    )
}

fn mixed_portfolio(seed: u64) -> Portfolio {
    let mut p = Portfolio::new().attempt("IG-Match", IgMatchStage::default());
    for i in 0..3u64 {
        p = p.attempt(
            format!("RCut#{i}"),
            RcutStage {
                opts: RcutOptions {
                    runs: 1,
                    seed: derive_seed(seed, i),
                    ..RcutOptions::default()
                },
            },
        );
    }
    p
}

#[test]
fn winner_is_identical_for_1_2_and_8_threads() {
    check_cases(24, 0x0DAC_5EED, |g: &mut Gen| {
        let hg = small_hypergraph(g);
        if hg.num_modules() < 2 {
            return;
        }
        let seed = g.rng().next_u64();
        let portfolio = mixed_portfolio(seed);
        let mut prints = Vec::new();
        for threads in [1usize, 2, 8] {
            let opts = PortfolioOptions::default()
                .with_threads(threads)
                .with_seed(seed);
            match run_portfolio(&hg, &portfolio, &opts, &BudgetMeter::unlimited(), None) {
                Ok(out) => prints.push(Some(fingerprint(&out))),
                Err(_) => prints.push(None),
            }
        }
        assert_eq!(prints[0], prints[1], "threads=1 vs threads=2");
        assert_eq!(prints[0], prints[2], "threads=1 vs threads=8");
    });
}

#[test]
fn fm_restart_portfolio_is_thread_invariant() {
    check_cases(16, 0xF00D_F00D, |g: &mut Gen| {
        let hg = small_hypergraph(g);
        if hg.num_modules() < 4 {
            return;
        }
        let portfolio = fm_restarts(6, &FmOptions::default());
        let mut prints = Vec::new();
        for threads in [1usize, 2, 8] {
            let opts = PortfolioOptions::default()
                .with_threads(threads)
                .with_seed(11);
            // tiny instances may legitimately fail (FM's balance slack
            // allows emptying a side for n=4, which evaluates as
            // Degenerate) — failures must be thread-invariant too
            match run_portfolio(&hg, &portfolio, &opts, &BudgetMeter::unlimited(), None) {
                Ok(out) => prints.push(Some(fingerprint(&out))),
                Err(_) => prints.push(None),
            }
        }
        assert_eq!(prints[0], prints[1]);
        assert_eq!(prints[0], prints[2]);
    });
}

#[test]
fn attempt_seeds_follow_the_derive_seed_streams() {
    // run the same single-attempt stage standalone on stream i and
    // inside the portfolio at index i: identical results
    let mut g = Gen::new(0xBEEF);
    // n >= 8 keeps FM's balance slack from ever emptying a side, so
    // every attempt completes and the portfolio cannot fail
    let hg = loop {
        let hg = small_hypergraph(&mut g);
        if hg.num_modules() >= 8 {
            break hg;
        }
    };
    let base = 0x1234_5678_9ABC_DEF0u64;
    let portfolio = fm_restarts(4, &FmOptions::default());
    let out = run_portfolio(
        &hg,
        &portfolio,
        &PortfolioOptions::default().with_threads(1).with_seed(base),
        &BudgetMeter::unlimited(),
        None,
    )
    .unwrap();
    for i in 0..4u64 {
        let stage = RandomStartFmStage::default();
        let ctx = RunContext::unlimited().with_seed(derive_seed(base, i));
        let standalone = stage.partition(&hg, &ctx);
        let reported = &out.report.attempts[i as usize];
        match standalone {
            Ok(r) => assert_eq!(Some(r.ratio()), reported.ratio, "attempt {i}"),
            Err(_) => assert!(reported.ratio.is_none(), "attempt {i}"),
        }
    }
}

/// A stage that spins on the shared meter until the budget trips —
/// models a long-running kernel that only stops cooperatively.
struct SpinStage;

impl Partitioner for SpinStage {
    fn name(&self) -> &'static str {
        "spin"
    }

    fn partition(
        &self,
        _hg: &Hypergraph,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        loop {
            ctx.meter().charge(1)?;
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

#[test]
fn deadline_stops_in_flight_attempts_within_one_check() {
    let hg = np_netlist::hypergraph_from_nets(4, &[vec![0, 1], vec![2, 3]]);
    let portfolio = Portfolio::new()
        .attempt("spin-0", SpinStage)
        .attempt("spin-1", SpinStage)
        .attempt("spin-2", SpinStage)
        .attempt("spin-3", SpinStage);
    let meter = BudgetMeter::new(&Budget::default().with_wall_clock(Duration::from_millis(50)));
    let t0 = Instant::now();
    let err = run_portfolio(
        &hg,
        &portfolio,
        &PortfolioOptions::default().with_threads(2),
        &meter,
        None,
    )
    .unwrap_err();
    let elapsed = t0.elapsed();
    // 50ms budget, 200µs per check: generous slack for CI schedulers,
    // but far below what running any attempt to "completion" would take
    assert!(
        elapsed < Duration::from_secs(5),
        "portfolio did not stop promptly: {elapsed:?}"
    );
    assert!(matches!(err.error, PartitionError::Budget(_)));
    assert_eq!(err.report.attempts.len(), 4);
    for a in &err.report.attempts {
        assert!(
            matches!(
                a.status,
                AttemptStatus::BudgetExhausted | AttemptStatus::Skipped
            ),
            "unexpected status {:?}",
            a.status
        );
    }
    // the ones that ran actually charged the shared pool
    assert!(meter.matvecs_used() > 0);
}

#[test]
fn external_cancel_trips_in_flight_attempts() {
    let hg = np_netlist::hypergraph_from_nets(4, &[vec![0, 1], vec![2, 3]]);
    let portfolio = Portfolio::new()
        .attempt("spin-0", SpinStage)
        .attempt("spin-1", SpinStage);
    let meter = BudgetMeter::unlimited();
    let canceller = meter.clone();
    let t0 = Instant::now();
    let err = std::thread::scope(|s| {
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            canceller.cancel();
        });
        run_portfolio(
            &hg,
            &portfolio,
            &PortfolioOptions::default().with_threads(2),
            &meter,
            None,
        )
        .unwrap_err()
    });
    assert!(t0.elapsed() < Duration::from_secs(5));
    for a in &err.report.attempts {
        assert!(
            matches!(a.status, AttemptStatus::Cancelled | AttemptStatus::Skipped),
            "unexpected status {:?}",
            a.status
        );
    }
}

#[test]
fn target_ratio_reports_partial_portfolio() {
    let mut g = Gen::new(7);
    let hg = loop {
        let hg = small_hypergraph(&mut g);
        if hg.num_modules() >= 4 {
            break hg;
        }
    };
    let portfolio = Portfolio::new()
        .attempt("a", IgMatchStage::default())
        .attempt("b", IgMatchStage::default())
        .attempt("c", IgMatchStage::default())
        .attempt("d", IgMatchStage::default());
    let meter = BudgetMeter::unlimited();
    // an unreachable-to-miss target (any finite ratio qualifies)
    let out = run_portfolio(
        &hg,
        &portfolio,
        &PortfolioOptions::default()
            .with_threads(1)
            .with_target_ratio(f64::MAX),
        &meter,
        None,
    );
    if let Ok(out) = out {
        assert!(out.report.cancelled);
        let skipped = out
            .report
            .attempts
            .iter()
            .filter(|a| a.status == AttemptStatus::Skipped)
            .count();
        assert_eq!(skipped, 3, "attempts after the first must be skipped");
        let json = out.report.to_json();
        assert!(json.contains("\"cancelled\": true"));
        assert!(json.contains("\"status\": \"skipped\""));
    }
}
