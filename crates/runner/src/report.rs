//! Portfolio run reports and their JSON serialization.
//!
//! The JSON writer is hand-rolled (this workspace carries no external
//! dependencies): the schema is flat, every string passes through
//! [`json_string`], and non-finite floats serialize as `null`.

use crate::{PortfolioOptions, Slot};
use std::fmt;
use std::time::Duration;

/// Schema tag embedded in every serialized report, so downstream tooling
/// can detect format drift.
pub const REPORT_SCHEMA: &str = "np-runner/portfolio-report/v1";

/// What happened to one portfolio attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptStatus {
    /// Completed and won the reduction.
    Won,
    /// Completed but lost the reduction.
    Completed,
    /// Started, then tripped on the shared cancel flag (target ratio
    /// reached elsewhere, or an external [`BudgetMeter::cancel`]).
    ///
    /// [`BudgetMeter::cancel`]: np_sparse::BudgetMeter::cancel
    Cancelled,
    /// Started, then ran out of the shared matvec or wall-clock budget.
    BudgetExhausted,
    /// Started, then failed with an algorithmic error.
    Failed,
    /// Started, then panicked; the panic was contained at the attempt
    /// boundary ([`std::panic::catch_unwind`]) so the rest of the
    /// portfolio kept running.
    Panicked,
    /// Never started: the shared budget was already exhausted or
    /// cancelled when the attempt came up in the queue.
    Skipped,
}

impl AttemptStatus {
    /// Stable lowercase identifier used in the JSON report.
    pub fn as_str(self) -> &'static str {
        match self {
            AttemptStatus::Won => "won",
            AttemptStatus::Completed => "completed",
            AttemptStatus::Cancelled => "cancelled",
            AttemptStatus::BudgetExhausted => "budget-exhausted",
            AttemptStatus::Failed => "failed",
            AttemptStatus::Panicked => "panicked",
            AttemptStatus::Skipped => "skipped",
        }
    }
}

impl fmt::Display for AttemptStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Record of a single attempt: outcome, quality, cost.
#[derive(Clone, Debug)]
pub struct AttemptReport {
    /// Attempt index (also the seed stream and the reduction tie-break).
    pub index: usize,
    /// The attempt's label.
    pub label: String,
    /// What happened.
    pub status: AttemptStatus,
    /// Name of the algorithm that produced the result, if one completed.
    pub algorithm: Option<String>,
    /// Ratio cut of the attempt's partition, if one completed.
    pub ratio: Option<f64>,
    /// Net cut of the attempt's partition, if one completed.
    pub cut_nets: Option<usize>,
    /// The attempt's reduction score (equals `ratio` unless the caller
    /// supplied a custom objective), if one completed.
    pub score: Option<f64>,
    /// The error message, for failed / cancelled / budget-tripped runs.
    pub error: Option<String>,
    /// Wall time the attempt spent executing (zero for skipped).
    pub wall: Duration,
    /// Matvec-equivalents the attempt charged to the shared pool.
    pub charge: u64,
}

/// Full record of one portfolio run — per-attempt outcomes plus the
/// reduction verdict. Serializable to JSON via
/// [`PortfolioReport::to_json`].
#[derive(Clone, Debug)]
pub struct PortfolioReport {
    /// Base seed the portfolio ran with.
    pub seed: u64,
    /// Effective worker-thread count.
    pub threads: usize,
    /// The early-stop target, if one was set.
    pub target_ratio: Option<f64>,
    /// Wall time of the whole portfolio.
    pub wall: Duration,
    /// `true` if the run ended cancelled (target reached or external
    /// cancel), i.e. some attempts may not represent full effort.
    pub cancelled: bool,
    /// Index of the winning attempt, if any completed.
    pub winner: Option<usize>,
    /// The winner's reduction score, if any attempt completed.
    pub best_score: Option<f64>,
    /// One record per attempt, in index order.
    pub attempts: Vec<AttemptReport>,
}

impl PortfolioReport {
    /// Serializes the report as a self-contained JSON object (no
    /// external dependencies; see [`REPORT_SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 192 * self.attempts.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json_string(REPORT_SCHEMA)));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"target_ratio\": {},\n",
            json_f64(self.target_ratio)
        ));
        out.push_str(&format!(
            "  \"wall_ms\": {},\n",
            json_f64(Some(self.wall.as_secs_f64() * 1e3))
        ));
        out.push_str(&format!("  \"cancelled\": {},\n", self.cancelled));
        out.push_str(&format!("  \"winner\": {},\n", json_usize(self.winner)));
        out.push_str(&format!(
            "  \"best_score\": {},\n",
            json_f64(self.best_score)
        ));
        out.push_str("  \"attempts\": [");
        for (i, a) in self.attempts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"index\": {}, ", a.index));
            out.push_str(&format!("\"label\": {}, ", json_string(&a.label)));
            out.push_str(&format!("\"status\": {}, ", json_string(a.status.as_str())));
            out.push_str(&format!(
                "\"algorithm\": {}, ",
                json_opt_string(a.algorithm.as_deref())
            ));
            out.push_str(&format!("\"ratio\": {}, ", json_f64(a.ratio)));
            out.push_str(&format!("\"cut_nets\": {}, ", json_usize(a.cut_nets)));
            out.push_str(&format!("\"score\": {}, ", json_f64(a.score)));
            out.push_str(&format!(
                "\"wall_ms\": {}, ",
                json_f64(Some(a.wall.as_secs_f64() * 1e3))
            ));
            out.push_str(&format!("\"charge\": {}, ", a.charge));
            out.push_str(&format!(
                "\"error\": {}",
                json_opt_string(a.error.as_deref())
            ));
            out.push('}');
        }
        if !self.attempts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Builds the attempt record out of a finished worker slot.
pub(crate) fn of_slot(index: usize, label: &str, slot: &Slot) -> AttemptReport {
    AttemptReport {
        index,
        label: label.to_string(),
        status: slot.status,
        algorithm: slot.result.as_ref().map(|r| r.algorithm.to_string()),
        ratio: slot.result.as_ref().map(|r| r.ratio()),
        cut_nets: slot.result.as_ref().map(|r| r.stats.cut_nets),
        score: slot.result.as_ref().map(|_| slot.score),
        error: slot.error.as_ref().map(|e| e.to_string()),
        wall: slot.wall,
        charge: slot.charge,
    }
}

/// Builds the run-level report.
pub(crate) fn assemble(
    opts: &PortfolioOptions,
    threads: usize,
    wall: Duration,
    cancelled: bool,
    best_score: Option<f64>,
    attempts: Vec<AttemptReport>,
) -> PortfolioReport {
    let winner = attempts
        .iter()
        .find(|a| a.status == AttemptStatus::Won)
        .map(|a| a.index);
    PortfolioReport {
        seed: opts.seed,
        threads,
        target_ratio: opts.target_ratio,
        wall,
        cancelled,
        winner,
        best_score,
        attempts,
    }
}

/// JSON string literal with minimal escaping (quotes, backslashes,
/// control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_opt_string(s: Option<&str>) -> String {
    match s {
        Some(s) => json_string(s),
        None => "null".to_string(),
    }
}

/// Finite floats print with full round-trip precision; `None` and
/// non-finite values become `null` (JSON has no NaN/inf).
fn json_f64(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => {
            // `{}` on f64 is round-trip exact in Rust but prints
            // integral values without a decimal point, which some JSON
            // consumers type as int — force a float spelling
            let s = format!("{v}");
            if s.contains('.') || s.contains('e') || s.contains('E') {
                s
            } else {
                format!("{s}.0")
            }
        }
        _ => "null".to_string(),
    }
}

fn json_usize(v: Option<usize>) -> String {
    match v {
        Some(v) => format!("{v}"),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> PortfolioReport {
        PortfolioReport {
            seed: 7,
            threads: 2,
            target_ratio: None,
            wall: Duration::from_millis(12),
            cancelled: false,
            winner: Some(1),
            best_score: Some(0.25),
            attempts: vec![
                AttemptReport {
                    index: 0,
                    label: "RCut#0".into(),
                    status: AttemptStatus::Completed,
                    algorithm: Some("RCut1.0".into()),
                    ratio: Some(0.5),
                    cut_nets: Some(3),
                    score: Some(0.5),
                    error: None,
                    wall: Duration::from_millis(5),
                    charge: 42,
                },
                AttemptReport {
                    index: 1,
                    label: "weird \"label\"\n".into(),
                    status: AttemptStatus::Won,
                    algorithm: Some("IG-Match".into()),
                    ratio: Some(0.25),
                    cut_nets: Some(1),
                    score: Some(0.25),
                    error: None,
                    wall: Duration::from_millis(7),
                    charge: 17,
                },
            ],
        }
    }

    #[test]
    fn json_contains_schema_and_fields() {
        let json = sample_report().to_json();
        assert!(json.contains("\"schema\": \"np-runner/portfolio-report/v1\""));
        assert!(json.contains("\"seed\": 7"));
        assert!(json.contains("\"winner\": 1"));
        assert!(json.contains("\"best_score\": 0.25"));
        assert!(json.contains("\"status\": \"won\""));
        assert!(json.contains("\"target_ratio\": null"));
    }

    #[test]
    fn json_escapes_strings() {
        let json = sample_report().to_json();
        assert!(json.contains("\"weird \\\"label\\\"\\n\""));
    }

    #[test]
    fn json_escapes_adversarial_labels_and_errors() {
        // labels and error strings are caller- (or panic-payload-)
        // controlled: quotes, backslashes, raw control characters and
        // path-like backslash runs must all serialize to valid JSON
        let mut r = sample_report();
        r.attempts[0].label = "evil\"},{\"x\u{0}\u{1f}\\path\tend".into();
        r.attempts[0].status = AttemptStatus::Panicked;
        r.attempts[0].error = Some("panicked at 'boom\nline two'\r\u{7}".into());
        let json = r.to_json();
        assert!(
            json.contains("\"evil\\\"},{\\\"x\\u0000\\u001f\\\\path\\tend\""),
            "{json}"
        );
        assert!(
            json.contains("\"panicked at 'boom\\nline two'\\r\\u0007\""),
            "{json}"
        );
        assert!(json.contains("\"status\": \"panicked\""));
        // no raw control character may survive into the output
        assert!(json.chars().all(|c| c == '\n' || (c as u32) >= 0x20));
        // and the escaping must round-trip: unescape the two strings and
        // compare against the originals
        assert_eq!(
            unescape(r#"evil\"},{\"x\u0000\u001f\\path\tend"#),
            "evil\"},{\"x\u{0}\u{1f}\\path\tend"
        );
    }

    /// Minimal JSON string unescaper for the round-trip assertion (the
    /// full parser lives in `np-serve`, which cannot be a dev-dependency
    /// here without a cycle).
    fn unescape(s: &str) -> String {
        let mut out = String::new();
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next().unwrap() {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).map(|_| chars.next().unwrap()).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).unwrap()).unwrap());
                }
                other => out.push(other),
            }
        }
        out
    }

    #[test]
    fn json_floats_are_floats_and_nonfinite_is_null() {
        assert_eq!(json_f64(Some(2.0)), "2.0");
        assert_eq!(json_f64(Some(0.125)), "0.125");
        assert_eq!(json_f64(Some(f64::NAN)), "null");
        assert_eq!(json_f64(Some(f64::INFINITY)), "null");
        assert_eq!(json_f64(None), "null");
    }

    #[test]
    fn empty_attempt_list_closes_array() {
        let mut r = sample_report();
        r.attempts.clear();
        r.winner = None;
        let json = r.to_json();
        assert!(json.contains("\"attempts\": []"));
        assert!(json.contains("\"winner\": null"));
    }

    #[test]
    fn status_strings_are_stable() {
        assert_eq!(AttemptStatus::Won.to_string(), "won");
        assert_eq!(AttemptStatus::BudgetExhausted.as_str(), "budget-exhausted");
        assert_eq!(AttemptStatus::Skipped.as_str(), "skipped");
    }
}
