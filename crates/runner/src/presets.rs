//! Ready-made restart portfolios for the workspace's seed-sensitive
//! algorithms.
//!
//! Each helper builds a [`Portfolio`] of `n` single-run attempts whose
//! per-attempt seeds come from decorrelated [`derive_seed`] streams of
//! one base seed, so `best-of-n` under the runner reproduces the
//! *structure* of the baselines' internal restart loops (RCut1.0's
//! best-of-10, KL's best-of-4) while making every start independently
//! schedulable, cancellable and reportable.
//!
//! Note the seed streams differ from the internal loops' (which draw all
//! starts from one sequential PRNG), so cut values match the internal
//! loops statistically, not bit-for-bit.

use crate::{Portfolio, RandomStartFmStage};
use np_baselines::{FmOptions, KlOptions, RcutOptions};
use np_core::engine::stages::{KlStage, RcutStage};
use np_multilevel::{MultilevelOptions, MultilevelStage};
use np_netlist::rng::derive_seed;

/// Best-of-`n` RCut1.0: `n` attempts of a single-run [`RcutStage`], with
/// attempt `i` seeded by `derive_seed(seed, i)`.
pub fn rcut_restarts(n: usize, seed: u64, base: &RcutOptions) -> Portfolio {
    let base = *base;
    Portfolio::new().restarts("RCut", n, |i| {
        Box::new(RcutStage {
            opts: RcutOptions {
                runs: 1,
                seed: derive_seed(seed, i as u64),
                ..base
            },
        })
    })
}

/// Best-of-`n` Kernighan–Lin: `n` attempts of a single-run [`KlStage`],
/// with attempt `i` seeded by `derive_seed(seed, i)`.
pub fn kl_restarts(n: usize, seed: u64, base: &KlOptions) -> Portfolio {
    let base = *base;
    Portfolio::new().restarts("KL", n, |i| {
        Box::new(KlStage {
            opts: KlOptions {
                runs: 1,
                seed: derive_seed(seed, i as u64),
                ..base
            },
        })
    })
}

/// Best-of-`n` multilevel V-cycle: `n` attempts of a [`MultilevelStage`]
/// whose coarsest-level Lanczos start is seeded by `derive_seed(seed,
/// i)`. Everything else about the V-cycle (matching, contraction,
/// refinement) is deterministic, so the attempts differ exactly in the
/// coarsest eigensolve — cheap diversity at the only stochastic point.
pub fn multilevel_restarts(n: usize, seed: u64, base: &MultilevelOptions) -> Portfolio {
    let base = *base;
    Portfolio::new().restarts("V-cycle", n, |i| {
        let mut opts = base;
        opts.ig_match.lanczos.seed = derive_seed(seed, i as u64);
        Box::new(MultilevelStage::new(opts))
    })
}

/// Best-of-`n` Fiduccia–Mattheyses from random balanced starts. The
/// per-attempt randomness comes from the runner's own seed streams
/// ([`RandomStartFmStage`] draws from the attempt context), so this
/// portfolio needs no explicit seed here.
pub fn fm_restarts(n: usize, opts: &FmOptions) -> Portfolio {
    let opts = *opts;
    Portfolio::new().restarts("FM", n, |_| Box::new(RandomStartFmStage { opts }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_portfolio, PortfolioOptions};
    use np_netlist::hypergraph_from_nets;
    use np_sparse::BudgetMeter;

    fn ladder() -> np_netlist::Hypergraph {
        hypergraph_from_nets(
            8,
            &[
                vec![0, 1],
                vec![1, 2],
                vec![2, 3],
                vec![4, 5],
                vec![5, 6],
                vec![6, 7],
                vec![0, 4],
                vec![3, 7],
            ],
        )
    }

    #[test]
    fn rcut_restarts_have_distinct_seeds_and_single_runs() {
        let p = rcut_restarts(4, 99, &RcutOptions::default());
        assert_eq!(p.len(), 4);
        assert_eq!(p.attempts()[0].label(), "RCut#0");
        assert_eq!(p.attempts()[3].label(), "RCut#3");
    }

    #[test]
    fn multilevel_restarts_vary_only_the_lanczos_seed() {
        let p = multilevel_restarts(3, 42, &MultilevelOptions::default());
        assert_eq!(p.len(), 3);
        assert_eq!(p.attempts()[0].label(), "V-cycle#0");
        assert_eq!(p.attempts()[2].label(), "V-cycle#2");
    }

    #[test]
    fn presets_run_end_to_end() {
        let hg = ladder();
        let opts = PortfolioOptions::default().with_threads(2).with_seed(5);
        for p in [
            rcut_restarts(3, 5, &RcutOptions::default()),
            kl_restarts(3, 5, &KlOptions::default()),
            fm_restarts(3, &FmOptions::default()),
            multilevel_restarts(3, 5, &MultilevelOptions::default()),
        ] {
            let out = run_portfolio(&hg, &p, &opts, &BudgetMeter::unlimited(), None).unwrap();
            assert_eq!(out.report.attempts.len(), 3);
            assert!(out.best.ratio().is_finite());
        }
    }
}
