//! A k-way portfolio: concurrent multi-start execution over the
//! [`KwayPartitioner`] units of `np-core`, reduced by the k-way ratio
//! cut.
//!
//! The bipartition portfolio in the crate root races seed-decorrelated
//! [`Stage`](np_core::Stage)s; this module is its k-way counterpart.
//! Attempts are [`KwayPartitioner`]s (the recursive-bisection route,
//! seed-jittered direct spectral roundings, or any custom unit), each
//! running under a tributary of one shared [`BudgetMeter`] with the same
//! determinism contract: attempt `i` is seeded from
//! `derive_seed(seed, i)` where the unit consumes a seed, and the
//! reduction orders candidates by `(ratio, attempt_index)` so the winner
//! is bit-identical for any worker-thread count.

use crate::{effective_threads, PortfolioOptions};
use np_core::engine::{OperatorCache, RunContext};
use np_core::kway::{KwayDirectStage, KwayRecursiveStage};
use np_core::{KwayOptions, KwayPartitioner, KwayResult, PartitionError};
use np_netlist::rng::derive_seed;
use np_netlist::Hypergraph;
use np_sparse::BudgetMeter;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A boxed k-way unit usable as a portfolio attempt.
pub type BoxedKwayPartitioner = Box<dyn KwayPartitioner + Send + Sync>;

/// An ordered list of labelled k-way attempts. As for the bipartition
/// portfolio, the index fixes both the seed stream and the tie-break.
#[derive(Default)]
pub struct KwayPortfolio {
    attempts: Vec<(String, BoxedKwayPartitioner)>,
}

impl fmt::Debug for KwayPortfolio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KwayPortfolio")
            .field(
                "attempts",
                &self.attempts.iter().map(|(l, _)| l).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl KwayPortfolio {
    /// An empty portfolio.
    pub fn new() -> Self {
        KwayPortfolio::default()
    }

    /// Appends an attempt (builder style).
    #[must_use]
    pub fn attempt(
        mut self,
        label: impl Into<String>,
        unit: impl KwayPartitioner + Send + Sync + 'static,
    ) -> Self {
        self.attempts.push((label.into(), Box::new(unit)));
        self
    }

    /// The standard method race: one recursive-bisection attempt plus
    /// `direct_restarts` direct spectral attempts on decorrelated seed
    /// streams (stream `i` uses `derive_seed(opts.seed, i)`).
    #[must_use]
    pub fn methods(opts: &KwayOptions, direct_restarts: usize) -> Self {
        let mut p =
            KwayPortfolio::new().attempt("recursive", KwayRecursiveStage::new(opts.clone()));
        for i in 0..direct_restarts {
            let mut o = opts.clone();
            o.seed = derive_seed(opts.seed, i as u64);
            p = p.attempt(format!("direct#{i}"), KwayDirectStage::new(o));
        }
        p
    }

    /// Number of attempts.
    pub fn len(&self) -> usize {
        self.attempts.len()
    }

    /// `true` if no attempt has been added yet.
    pub fn is_empty(&self) -> bool {
        self.attempts.is_empty()
    }
}

/// What happened to one k-way attempt.
#[derive(Clone, Debug)]
pub struct KwayAttemptReport {
    /// The attempt's label.
    pub label: String,
    /// The k-way ratio cut of the attempt's result, when it completed.
    pub ratio: Option<f64>,
    /// The error message, when it failed.
    pub error: Option<String>,
    /// Budget units this attempt charged to the shared meter.
    pub charge: u64,
}

/// Successful k-way portfolio outcome.
#[derive(Debug)]
pub struct KwayPortfolioOutcome {
    /// The best result over all completed attempts.
    pub best: KwayResult,
    /// Index of the winning attempt.
    pub winner: usize,
    /// Per-attempt record, in index order.
    pub attempts: Vec<KwayAttemptReport>,
}

/// Failure of the whole k-way portfolio (no attempt completed).
#[derive(Debug)]
pub struct KwayPortfolioError {
    /// The first (by attempt index) error observed, or `InvalidInput`
    /// for an empty portfolio.
    pub error: PartitionError,
    /// Per-attempt record, in index order.
    pub attempts: Vec<KwayAttemptReport>,
}

impl fmt::Display for KwayPortfolioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "k-way portfolio failed: {} ({} attempts, none completed)",
            self.error,
            self.attempts.len()
        )
    }
}

impl std::error::Error for KwayPortfolioError {}

struct KwaySlot {
    result: Option<KwayResult>,
    score: f64,
    error: Option<PartitionError>,
    charge: u64,
}

/// Runs every attempt over a scoped worker pool and reduces to the best
/// result by k-way ratio cut with `(score, index)` tie-breaking.
///
/// `meter` is the portfolio-wide budget scope; every attempt charges a
/// [`BudgetMeter::tributary`] of it. A shared [`OperatorCache`] lets all
/// attempts reuse the top-level spectral operators.
///
/// # Errors
///
/// [`KwayPortfolioError`] when no attempt completes or the portfolio is
/// empty.
pub fn run_kway_portfolio(
    hg: &Hypergraph,
    portfolio: &KwayPortfolio,
    opts: &PortfolioOptions,
    meter: &BudgetMeter,
) -> Result<KwayPortfolioOutcome, KwayPortfolioError> {
    let n = portfolio.len();
    if n == 0 {
        return Err(KwayPortfolioError {
            error: PartitionError::InvalidInput {
                reason: "portfolio has no attempts",
            },
            attempts: Vec::new(),
        });
    }
    let threads = effective_threads(opts.threads, n);
    let operators = Arc::new(OperatorCache::new());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<KwaySlot>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let (_, unit) = &portfolio.attempts[idx];
                let tributary = meter.tributary();
                let ctx = RunContext::with_meter(&tributary)
                    .with_seed(derive_seed(opts.seed, idx as u64))
                    .with_operator_cache(Arc::clone(&operators));
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    unit.partition(hg, &ctx)
                }))
                .unwrap_or_else(|payload| Err(np_core::panic_error(payload)));
                let charge = tributary.local_used();
                let slot = match outcome {
                    Ok(result) => {
                        let score = result.stats.ratio();
                        KwaySlot {
                            result: Some(result),
                            score: if score.is_finite() {
                                score
                            } else {
                                f64::INFINITY
                            },
                            error: None,
                            charge,
                        }
                    }
                    Err(error) => KwaySlot {
                        result: None,
                        score: f64::INFINITY,
                        error: Some(error),
                        charge,
                    },
                };
                *slots[idx].lock().expect("slot lock") = Some(slot);
            });
        }
    });

    let mut records: Vec<KwaySlot> = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock")
                .expect("every slot is filled by the pool")
        })
        .collect();

    let winner = records
        .iter()
        .enumerate()
        .filter(|(_, s)| s.result.is_some())
        .min_by(|(ia, a), (ib, b)| a.score.total_cmp(&b.score).then(ia.cmp(ib)))
        .map(|(i, _)| i);

    let attempts: Vec<KwayAttemptReport> = records
        .iter()
        .enumerate()
        .map(|(i, s)| KwayAttemptReport {
            label: portfolio.attempts[i].0.clone(),
            ratio: s.result.as_ref().map(|_| s.score),
            error: s.error.as_ref().map(|e| e.to_string()),
            charge: s.charge,
        })
        .collect();

    match winner {
        Some(w) => Ok(KwayPortfolioOutcome {
            best: records[w].result.take().expect("winner has a result"),
            winner: w,
            attempts,
        }),
        None => Err(KwayPortfolioError {
            error: records
                .iter()
                .find_map(|s| s.error.clone())
                .expect("a failed portfolio records at least one error"),
            attempts,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::generate::{generate, GeneratorConfig};

    fn circuit() -> Hypergraph {
        generate(&GeneratorConfig::new(140, 150, 0xCAFE))
    }

    fn kopts(k: usize) -> KwayOptions {
        KwayOptions {
            k,
            epsilon: 0.5,
            ..Default::default()
        }
    }

    #[test]
    fn empty_portfolio_rejected() {
        let err = run_kway_portfolio(
            &circuit(),
            &KwayPortfolio::new(),
            &PortfolioOptions::default(),
            &BudgetMeter::unlimited(),
        )
        .unwrap_err();
        assert!(matches!(err.error, PartitionError::InvalidInput { .. }));
        assert!(err.to_string().contains("k-way portfolio failed"));
    }

    #[test]
    fn method_race_produces_valid_blocks() {
        let hg = circuit();
        let portfolio = KwayPortfolio::methods(&kopts(4), 2);
        assert_eq!(portfolio.len(), 3);
        let out = run_kway_portfolio(
            &hg,
            &portfolio,
            &PortfolioOptions::default().with_threads(2),
            &BudgetMeter::unlimited(),
        )
        .unwrap();
        assert_eq!(out.best.partition.num_blocks(), 4);
        assert_eq!(out.attempts.len(), 3);
        let best = out.attempts[out.winner].ratio.unwrap();
        for a in &out.attempts {
            if let Some(r) = a.ratio {
                assert!(best <= r + 1e-12, "winner must be the minimum");
            }
        }
    }

    #[test]
    fn winner_is_thread_invariant() {
        let hg = circuit();
        let portfolio = KwayPortfolio::methods(&kopts(3), 3);
        let mut winners = Vec::new();
        for threads in [1, 2, 4] {
            let out = run_kway_portfolio(
                &hg,
                &portfolio,
                &PortfolioOptions::default().with_threads(threads),
                &BudgetMeter::unlimited(),
            )
            .unwrap();
            winners.push((out.winner, out.best.partition.clone()));
        }
        assert_eq!(winners[0], winners[1]);
        assert_eq!(winners[1], winners[2]);
    }

    #[test]
    fn failed_attempts_are_reported_not_fatal() {
        let hg = circuit();
        // k larger than the module count fails validation in every
        // attempt except the sane one
        let portfolio = KwayPortfolio::new()
            .attempt("bad", np_core::kway::KwayDirectStage::new(kopts(10_000)))
            .attempt("good", np_core::kway::KwayRecursiveStage::new(kopts(3)));
        let out = run_kway_portfolio(
            &hg,
            &portfolio,
            &PortfolioOptions::default().with_threads(1),
            &BudgetMeter::unlimited(),
        )
        .unwrap();
        assert_eq!(out.winner, 1);
        assert!(out.attempts[0].error.is_some());
        assert!(out.attempts[1].ratio.is_some());
    }
}
