//! Span fan-in: portfolio events from concurrent attempts → one
//! [`SpanRing`].
//!
//! A portfolio interleaves [`StageEvent`]s from every worker thread;
//! the [`PortfolioSink`] fan-in already tags each event with its attempt
//! index. [`SpanFanIn`] completes the picture for tracing: it keeps one
//! open-stage stack *per attempt* (stages of different attempts overlap
//! in time but never nest across attempts), closes each stage on its
//! `Finished` event and records a [`SpanKind::Stage`] span tagged with
//! the attempt into the shared ring.
//!
//! After the run, [`record_attempt_spans`] turns the
//! [`PortfolioReport`]'s per-attempt wall times into
//! [`SpanKind::Attempt`] spans, so a reader sees the full containment:
//! request span ⊃ attempt spans ⊃ stage spans (the serving layer records
//! the request span itself).

use crate::{PortfolioEvent, PortfolioReport, PortfolioSink};
use np_core::engine::trace::{Span, SpanKind, SpanRing};
use np_core::engine::StageEvent;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// A [`PortfolioSink`] recording stage spans into a [`SpanRing`],
/// optionally forwarding every event to an inner sink (so tracing
/// composes with progress streaming instead of replacing it).
pub struct SpanFanIn<'a> {
    ring: &'a SpanRing,
    request: u64,
    open: Mutex<HashMap<usize, Vec<(String, Instant)>>>,
    forward: Option<&'a dyn PortfolioSink>,
}

impl std::fmt::Debug for SpanFanIn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanFanIn")
            .field("request", &self.request)
            .field("forwarding", &self.forward.is_some())
            .finish()
    }
}

impl<'a> SpanFanIn<'a> {
    /// A fan-in tagging every span with `request` (the serving layer's
    /// request sequence number; use `0` outside a request scope).
    pub fn new(ring: &'a SpanRing, request: u64) -> Self {
        SpanFanIn {
            ring,
            request,
            open: Mutex::new(HashMap::new()),
            forward: None,
        }
    }

    /// Also forwards every event to `sink` (builder style).
    #[must_use]
    pub fn forwarding(mut self, sink: &'a dyn PortfolioSink) -> Self {
        self.forward = Some(sink);
        self
    }
}

impl PortfolioSink for SpanFanIn<'_> {
    fn on_event(&self, event: &PortfolioEvent<'_>) {
        match event.event {
            StageEvent::Started { stage } => {
                self.open
                    .lock()
                    .expect("fan-in lock")
                    .entry(event.attempt)
                    .or_default()
                    .push((stage.to_string(), Instant::now()));
            }
            StageEvent::Finished { stage, outcome } => {
                let started = {
                    let mut open = self.open.lock().expect("fan-in lock");
                    let stack = open.entry(event.attempt).or_default();
                    match stack.iter().rposition(|(name, _)| name == *stage) {
                        Some(i) => stack.remove(i).1,
                        None => Instant::now(),
                    }
                };
                self.ring.record_since(
                    SpanKind::Stage,
                    *stage,
                    self.request,
                    Some(event.attempt),
                    started,
                    Some(outcome.is_ok()),
                );
            }
            StageEvent::Detail { .. } => {}
        }
        if let Some(sink) = self.forward {
            sink.on_event(event);
        }
    }
}

/// Records one [`SpanKind::Attempt`] span per attempt of `report` into
/// `ring`, labelled with the attempt label and carrying the attempt's
/// wall time. `portfolio_started` anchors the start offsets: attempts
/// run concurrently, so each span is placed at the portfolio start (the
/// per-attempt queueing skew inside the worker pool is not tracked).
pub fn record_attempt_spans(
    ring: &SpanRing,
    request: u64,
    report: &PortfolioReport,
    portfolio_started: Instant,
) {
    let base = portfolio_started.saturating_duration_since(ring.epoch());
    for attempt in &report.attempts {
        ring.record(Span {
            kind: SpanKind::Attempt,
            label: attempt.label.clone(),
            request,
            attempt: Some(attempt.index),
            start: base,
            wall: attempt.wall,
            ok: Some(attempt.error.is_none()),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_portfolio, Portfolio, PortfolioOptions, RandomStartFmStage};
    use np_core::engine::stages::IgMatchStage;
    use np_netlist::hypergraph_from_nets;
    use np_sparse::BudgetMeter;

    fn hg() -> np_netlist::Hypergraph {
        hypergraph_from_nets(
            6,
            &[
                vec![0, 1],
                vec![1, 2],
                vec![0, 2],
                vec![3, 4],
                vec![4, 5],
                vec![3, 5],
                vec![2, 3],
            ],
        )
    }

    #[test]
    fn portfolio_run_records_tagged_stage_and_attempt_spans() {
        let ring = SpanRing::new(256);
        let fan_in = SpanFanIn::new(&ring, 42);
        let portfolio = Portfolio::new()
            .attempt("IG-Match", IgMatchStage::default())
            .attempt("FM", RandomStartFmStage::default());
        let started = Instant::now();
        let out = run_portfolio(
            &hg(),
            &portfolio,
            &PortfolioOptions::default().with_threads(2),
            &BudgetMeter::unlimited(),
            Some(&fan_in),
        )
        .unwrap();
        record_attempt_spans(&ring, 42, &out.report, started);

        let spans = ring.snapshot();
        let stages: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::Stage).collect();
        let attempts: Vec<_> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Attempt)
            .collect();
        assert_eq!(stages.len(), 2, "{spans:?}");
        assert_eq!(attempts.len(), 2, "{spans:?}");
        for s in &spans {
            assert_eq!(s.request, 42);
            assert!(s.attempt.is_some());
            assert_eq!(s.ok, Some(true));
        }
        let labels: Vec<&str> = attempts.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"IG-Match") && labels.contains(&"FM"));
        // every stage span sits inside some attempt's index space
        for s in &stages {
            assert!(s.attempt.unwrap() < 2);
        }
    }

    #[test]
    fn fan_in_forwards_to_inner_sink() {
        let ring = SpanRing::new(64);
        let forwarded = Mutex::new(0usize);
        let inner = |_: &PortfolioEvent<'_>| {
            *forwarded.lock().unwrap() += 1;
        };
        let fan_in = SpanFanIn::new(&ring, 1).forwarding(&inner);
        let portfolio = Portfolio::new().attempt("IG-Match", IgMatchStage::default());
        run_portfolio(
            &hg(),
            &portfolio,
            &PortfolioOptions::default().with_threads(1),
            &BudgetMeter::unlimited(),
            Some(&fan_in),
        )
        .unwrap();
        assert!(
            *forwarded.lock().unwrap() >= 2,
            "inner sink must see started+finished"
        );
        assert!(!ring.snapshot().is_empty());
    }

    #[test]
    fn concurrent_attempts_keep_independent_stacks() {
        // interleave events from two attempts by hand: each must close
        // against its own stack
        let ring = SpanRing::new(16);
        let fan_in = SpanFanIn::new(&ring, 9);
        let err = np_core::PartitionError::Degenerate;
        let started = |attempt: usize| PortfolioEvent {
            attempt,
            label: "x",
            event: &StageEvent::Started { stage: "S" },
        };
        fan_in.on_event(&started(0));
        fan_in.on_event(&started(1));
        fan_in.on_event(&PortfolioEvent {
            attempt: 1,
            label: "x",
            event: &StageEvent::Finished {
                stage: "S",
                outcome: Err(&err),
            },
        });
        fan_in.on_event(&PortfolioEvent {
            attempt: 0,
            label: "x",
            event: &StageEvent::Finished {
                stage: "S",
                outcome: Err(&err),
            },
        });
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].attempt, Some(1), "attempt 1 finished first");
        assert_eq!(spans[1].attempt, Some(0));
    }
}
