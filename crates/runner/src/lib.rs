//! `np-runner` — a parallel multi-start *portfolio* executor over the
//! `np-core` stage engine.
//!
//! The paper's strongest baseline (Wei–Cheng RCut1.0) is explicitly a
//! best-of-10-random-starts method, and every seed-sensitive flow in this
//! workspace (FM, KL, reseeded Lanczos) benefits from best-of-N the same
//! way — yet a plain engine run executes one attempt on one thread. This
//! crate runs a whole *portfolio* of attempts concurrently over a scoped
//! worker pool and reduces them to the best
//! [`PartitionResult`] by ratio cut.
//!
//! # Determinism contract
//!
//! * Attempt `i` runs against a [`RunContext`] whose seed is
//!   `derive_seed(opts.seed, i)` ([`np_netlist::rng::derive_seed`]), so
//!   every attempt owns an independent, decorrelated PRNG stream that
//!   does not depend on which worker thread picks it up.
//! * The reduction orders candidates by `(score, attempt_index)` —
//!   strictly smaller score wins, ties go to the smaller index — so for a
//!   fixed seed the winner is **bit-identical for any `threads` value,
//!   including 1**, as long as the portfolio runs to completion.
//! * Early-stopping features (a wall-clock deadline on the shared
//!   [`BudgetMeter`], [`PortfolioOptions::target_ratio`], an external
//!   [`BudgetMeter::cancel`]) trade that thread-invariance for latency:
//!   *which* attempts complete then depends on real-time scheduling. The
//!   reduction over whatever completed is still `(score, index)`-ordered
//!   and every attempt's fate is reported.
//!
//! # Cancellation
//!
//! All attempts charge one shared meter scope: each gets a
//! [`BudgetMeter::tributary`] (local spend tally, global pool/deadline/
//! cancel flag). When the deadline passes, or an attempt reaches
//! [`PortfolioOptions::target_ratio`] and the runner calls
//! [`BudgetMeter::cancel`], every in-flight attempt trips at its next
//! budget checkpoint — within one check, since all kernels in this
//! workspace check at per-iteration granularity — and queued attempts
//! are skipped. Partial results are still reported in the
//! [`PortfolioReport`].
//!
//! # Panic isolation
//!
//! Every attempt runs inside [`std::panic::catch_unwind`]: a panicking
//! stage is reported as a [`AttemptStatus::Panicked`] attempt (with the
//! panic message in the attempt's error field) instead of unwinding
//! through the scoped pool and aborting the whole portfolio. Long-running
//! callers — the `np-serve` partition service in particular — rely on
//! this to keep one poisoned attempt from killing unrelated requests.
//!
//! # Example
//!
//! ```
//! use np_core::engine::stages::{IgMatchStage, RcutStage};
//! use np_runner::{run_portfolio, Portfolio, PortfolioOptions, RandomStartFmStage};
//! use np_netlist::hypergraph_from_nets;
//! use np_sparse::BudgetMeter;
//!
//! let hg = hypergraph_from_nets(
//!     6,
//!     &[vec![0, 1], vec![1, 2], vec![0, 2], vec![3, 4], vec![4, 5], vec![3, 5], vec![2, 3]],
//! );
//! let portfolio = Portfolio::new()
//!     .attempt("IG-Match", IgMatchStage::default())
//!     .attempt("FM#0", RandomStartFmStage::default())
//!     .attempt("FM#1", RandomStartFmStage::default());
//! let opts = PortfolioOptions::default().with_threads(2);
//! let out = run_portfolio(&hg, &portfolio, &opts, &BudgetMeter::unlimited(), None).unwrap();
//! assert_eq!(out.best.stats.cut_nets, 1);
//! assert_eq!(out.report.attempts.len(), 3);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod kway;
pub mod presets;
mod report;
pub mod trace;

pub use kway::{
    run_kway_portfolio, KwayAttemptReport, KwayPortfolio, KwayPortfolioError, KwayPortfolioOutcome,
};
pub use report::{AttemptReport, AttemptStatus, PortfolioReport, REPORT_SCHEMA};
pub use trace::{record_attempt_spans, SpanFanIn};

use np_baselines::{fm_bisect_metered, FmOptions};
use np_core::engine::{
    run_stage, BoxedStage, EventSink, OperatorCache, RunContext, StageEvent, DEFAULT_SEED,
};
use np_core::{PartitionError, PartitionResult, Partitioner, Stage};
use np_netlist::rng::derive_seed;
use np_netlist::{Bipartition, Hypergraph, ModuleId};
use np_sparse::{BudgetMeter, BudgetResource};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One labelled attempt of a [`Portfolio`].
pub struct Attempt {
    label: String,
    stage: BoxedStage,
}

impl Attempt {
    /// The attempt's display label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl fmt::Debug for Attempt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Attempt")
            .field("label", &self.label)
            .field("stage", &self.stage.name())
            .finish()
    }
}

/// An ordered list of labelled attempts. Order matters: the attempt
/// index determines both the seed stream and the reduction tie-break.
#[derive(Debug, Default)]
pub struct Portfolio {
    attempts: Vec<Attempt>,
}

impl Portfolio {
    /// An empty portfolio.
    pub fn new() -> Self {
        Portfolio::default()
    }

    /// Appends an attempt (builder style).
    #[must_use]
    pub fn attempt(
        mut self,
        label: impl Into<String>,
        stage: impl Stage + Send + Sync + 'static,
    ) -> Self {
        self.attempts.push(Attempt {
            label: label.into(),
            stage: Box::new(stage),
        });
        self
    }

    /// Appends an already-boxed attempt (builder style) — for callers
    /// assembling stages dynamically (the CLI, config files).
    #[must_use]
    pub fn attempt_boxed(mut self, label: impl Into<String>, stage: BoxedStage) -> Self {
        self.attempts.push(Attempt {
            label: label.into(),
            stage,
        });
        self
    }

    /// Appends `n` attempts produced by `make(restart_index)` (builder
    /// style). The factory receives the index of the restart *within
    /// this batch* (0-based); labels are `"{prefix}#{i}"`.
    #[must_use]
    pub fn restarts(
        mut self,
        prefix: &str,
        n: usize,
        mut make: impl FnMut(usize) -> BoxedStage,
    ) -> Self {
        for i in 0..n {
            self.attempts.push(Attempt {
                label: format!("{prefix}#{i}"),
                stage: make(i),
            });
        }
        self
    }

    /// Number of attempts.
    pub fn len(&self) -> usize {
        self.attempts.len()
    }

    /// `true` if no attempt has been added yet.
    pub fn is_empty(&self) -> bool {
        self.attempts.is_empty()
    }

    /// The attempts, in index order.
    pub fn attempts(&self) -> &[Attempt] {
        &self.attempts
    }
}

/// Options for [`run_portfolio`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PortfolioOptions {
    /// Worker-thread count; `0` means one worker per available CPU.
    /// The effective count never exceeds the number of attempts.
    pub threads: usize,
    /// Base seed; attempt `i` runs on stream `derive_seed(seed, i)`.
    pub seed: u64,
    /// Stop the whole portfolio as soon as an attempt scores `<=` this
    /// value (cooperative cancellation of the remaining attempts).
    pub target_ratio: Option<f64>,
}

impl Default for PortfolioOptions {
    fn default() -> Self {
        PortfolioOptions {
            threads: 0,
            seed: DEFAULT_SEED,
            target_ratio: None,
        }
    }
}

impl PortfolioOptions {
    /// Sets the worker-thread count (builder style).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the base seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the early-stop target (builder style).
    #[must_use]
    pub fn with_target_ratio(mut self, target: f64) -> Self {
        self.target_ratio = Some(target);
        self
    }
}

/// A [`StageEvent`] observed inside one portfolio attempt, tagged with
/// the attempt that emitted it.
#[derive(Debug)]
pub struct PortfolioEvent<'a> {
    /// Index of the emitting attempt.
    pub attempt: usize,
    /// Label of the emitting attempt.
    pub label: &'a str,
    /// The wrapped stage event.
    pub event: &'a StageEvent<'a>,
}

/// A thread-safe fan-in sink for [`PortfolioEvent`]s. Events from
/// different attempts arrive concurrently (and therefore interleaved);
/// the attempt tag is what makes the stream reconstructible per attempt.
///
/// Implemented for any `Fn(&PortfolioEvent<'_>) + Sync` closure.
pub trait PortfolioSink: Sync {
    /// Receives one tagged event, called synchronously from the worker
    /// thread executing the attempt.
    fn on_event(&self, event: &PortfolioEvent<'_>);
}

impl<F: Fn(&PortfolioEvent<'_>) + Sync> PortfolioSink for F {
    fn on_event(&self, event: &PortfolioEvent<'_>) {
        self(event)
    }
}

/// Per-attempt adapter forwarding engine events into the fan-in sink.
struct Forward<'a> {
    sink: &'a dyn PortfolioSink,
    attempt: usize,
    label: &'a str,
}

impl EventSink for Forward<'_> {
    fn on_event(&self, event: &StageEvent<'_>) {
        self.sink.on_event(&PortfolioEvent {
            attempt: self.attempt,
            label: self.label,
            event,
        });
    }
}

/// Successful portfolio outcome: the winning partition plus the full
/// per-attempt report.
#[derive(Debug)]
pub struct PortfolioOutcome {
    /// The best partition over all completed attempts.
    pub best: PartitionResult,
    /// Index of the winning attempt.
    pub winner: usize,
    /// What happened to every attempt.
    pub report: PortfolioReport,
}

/// Failure of the whole portfolio (no attempt completed), with the
/// attempt record attached.
#[derive(Debug)]
pub struct PortfolioError {
    /// The decisive error: the first (by attempt index) error observed,
    /// or `InvalidInput` for an empty portfolio.
    pub error: PartitionError,
    /// What happened to every attempt (partial progress included).
    /// Boxed to keep the `Err` variant of [`run_portfolio`] small.
    pub report: Box<PortfolioReport>,
}

impl fmt::Display for PortfolioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "portfolio failed: {} ({} attempts, none completed)",
            self.error,
            self.report.attempts.len()
        )
    }
}

impl std::error::Error for PortfolioError {}

/// Monotonic-minimum cell over `f64` scores — the shared best-cost cell
/// attempts consult-free publish into (lock-free; stores the bit pattern
/// in an `AtomicU64`).
struct BestCell {
    bits: AtomicU64,
}

impl BestCell {
    fn new() -> Self {
        BestCell {
            bits: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }

    /// Lowers the cell to `score` if smaller; returns the new minimum.
    fn offer(&self, score: f64) -> f64 {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            if score >= f64::from_bits(current) {
                return f64::from_bits(current);
            }
            match self.bits.compare_exchange_weak(
                current,
                score.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return score,
                Err(seen) => current = seen,
            }
        }
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// What one attempt produced, gathered by the worker that ran it.
pub(crate) struct Slot {
    pub(crate) status: AttemptStatus,
    pub(crate) result: Option<PartitionResult>,
    pub(crate) score: f64,
    pub(crate) error: Option<PartitionError>,
    pub(crate) wall: Duration,
    pub(crate) charge: u64,
}

impl Slot {
    fn skipped() -> Self {
        Slot {
            status: AttemptStatus::Skipped,
            result: None,
            score: f64::INFINITY,
            error: None,
            wall: Duration::ZERO,
            charge: 0,
        }
    }
}

/// Maps a raw score to the reduction key: non-finite scores (degenerate
/// ratios, NaN) always lose to finite ones.
fn reduction_score(score: f64) -> f64 {
    if score.is_finite() {
        score
    } else {
        f64::INFINITY
    }
}

pub(crate) fn effective_threads(requested: usize, attempts: usize) -> usize {
    let hw = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    let t = if requested == 0 { hw() } else { requested };
    t.clamp(1, attempts.max(1))
}

/// Runs every attempt of `portfolio` against `hg` over a scoped worker
/// pool and reduces to the best result by **ratio cut** (see
/// [`run_portfolio_scored`] for a custom objective).
///
/// `meter` is the *global* budget scope: its deadline and matvec pool
/// bound the whole portfolio, and the runner cancels it when
/// [`PortfolioOptions::target_ratio`] is reached — so pass a dedicated
/// meter (or a [`BudgetMeter::tributary`] of a larger scope you are
/// happy to see cancelled).
///
/// # Errors
///
/// [`PortfolioError`] when no attempt completes (every attempt failed,
/// was cancelled, or was skipped), or when the portfolio is empty.
pub fn run_portfolio(
    hg: &Hypergraph,
    portfolio: &Portfolio,
    opts: &PortfolioOptions,
    meter: &BudgetMeter,
    sink: Option<&dyn PortfolioSink>,
) -> Result<PortfolioOutcome, PortfolioError> {
    run_portfolio_scored(hg, portfolio, opts, meter, sink, &|r: &PartitionResult| {
        r.ratio()
    })
}

/// [`run_portfolio`] with a caller-supplied objective: each completed
/// attempt is scored by `score` (lower is better) and the reduction —
/// including the `(score, attempt_index)` determinism contract and the
/// [`PortfolioOptions::target_ratio`] early stop — uses that score
/// instead of the ratio cut. Used by the area-aware benchmarks, where
/// the objective is the area-weighted ratio cut.
///
/// # Errors
///
/// Same as [`run_portfolio`].
pub fn run_portfolio_scored(
    hg: &Hypergraph,
    portfolio: &Portfolio,
    opts: &PortfolioOptions,
    meter: &BudgetMeter,
    sink: Option<&dyn PortfolioSink>,
    score: &(dyn Fn(&PartitionResult) -> f64 + Sync),
) -> Result<PortfolioOutcome, PortfolioError> {
    // One operator cache for the whole portfolio: the spectral Laplacians
    // depend only on the hypergraph, so the first attempt to need one
    // builds it and every other attempt reuses it instead of rebuilding
    // per attempt. Results are unchanged — the operators are
    // deterministic functions of the netlist.
    let operators = Arc::new(OperatorCache::new());
    run_portfolio_cached(hg, portfolio, opts, meter, sink, score, &operators)
}

/// [`run_portfolio_scored`] against a caller-owned [`OperatorCache`]:
/// the spectral operators built during this portfolio stay in `operators`
/// afterwards, so a long-lived caller (a server handling repeat requests
/// for the same netlist) can reuse them across runs instead of paying the
/// Laplacian builds again. Correctness is unaffected — the cached
/// operators are deterministic functions of the hypergraph, so the cache
/// must simply belong to this `hg` (cache keyed per netlist is the
/// caller's contract, exactly as for [`RunContext::with_operator_cache`]).
///
/// # Errors
///
/// Same as [`run_portfolio`].
pub fn run_portfolio_cached(
    hg: &Hypergraph,
    portfolio: &Portfolio,
    opts: &PortfolioOptions,
    meter: &BudgetMeter,
    sink: Option<&dyn PortfolioSink>,
    score: &(dyn Fn(&PartitionResult) -> f64 + Sync),
    operators: &Arc<OperatorCache>,
) -> Result<PortfolioOutcome, PortfolioError> {
    let started = Instant::now();
    let n = portfolio.len();
    if n == 0 {
        return Err(PortfolioError {
            error: PartitionError::InvalidInput {
                reason: "portfolio has no attempts",
            },
            report: Box::new(report::assemble(
                opts,
                0,
                started.elapsed(),
                false,
                None,
                Vec::new(),
            )),
        });
    }
    let threads = effective_threads(opts.threads, n);
    let next = AtomicUsize::new(0);
    let best = BestCell::new();
    let slots: Vec<Mutex<Option<Slot>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let attempt = &portfolio.attempts[idx];
                    // deadline already passed / portfolio already
                    // cancelled: don't even start
                    let slot = if meter.check().is_err() {
                        Slot::skipped()
                    } else {
                        run_attempt(hg, attempt, idx, opts, meter, sink, score, &best, operators)
                    };
                    *slots[idx].lock().expect("slot lock") = Some(slot);
                }
            });
        }
    });

    let mut records: Vec<Slot> = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock")
                .expect("every slot is filled by the pool")
        })
        .collect();

    // deterministic reduction: (score, attempt_idx), smaller wins
    let winner = records
        .iter()
        .enumerate()
        .filter(|(_, s)| s.result.is_some())
        .min_by(|(ia, a), (ib, b)| {
            reduction_score(a.score)
                .total_cmp(&reduction_score(b.score))
                .then(ia.cmp(ib))
        })
        .map(|(i, _)| i);

    if let Some(w) = winner {
        records[w].status = AttemptStatus::Won;
    }
    let best_score = winner.map(|_| best.get()).filter(|s| s.is_finite());
    let wall = started.elapsed();
    let cancelled = meter.is_cancelled();
    let reports = records
        .iter()
        .enumerate()
        .map(|(i, s)| report::of_slot(i, portfolio.attempts[i].label(), s))
        .collect();
    let report = report::assemble(opts, threads, wall, cancelled, best_score, reports);

    match winner {
        Some(w) => Ok(PortfolioOutcome {
            best: records[w].result.take().expect("winner has a result"),
            winner: w,
            report,
        }),
        None => Err(PortfolioError {
            error: records.iter().find_map(|s| s.error.clone()).unwrap_or(
                PartitionError::InvalidInput {
                    reason: "every attempt was skipped",
                },
            ),
            report: Box::new(report),
        }),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_attempt(
    hg: &Hypergraph,
    attempt: &Attempt,
    idx: usize,
    opts: &PortfolioOptions,
    meter: &BudgetMeter,
    sink: Option<&dyn PortfolioSink>,
    score: &(dyn Fn(&PartitionResult) -> f64 + Sync),
    best: &BestCell,
    operators: &Arc<OperatorCache>,
) -> Slot {
    let tributary = meter.tributary();
    let forward = sink.map(|sink| Forward {
        sink,
        attempt: idx,
        label: &attempt.label,
    });
    // Attempts share the portfolio-wide operator cache but keep their
    // sharded kernels serial (threads = 1): the worker pool already uses
    // every requested core, so per-attempt SpMV sharding would only
    // oversubscribe it.
    let mut ctx = RunContext::with_meter(&tributary)
        .with_seed(derive_seed(opts.seed, idx as u64))
        .with_operator_cache(Arc::clone(operators));
    if let Some(fwd) = &forward {
        ctx = ctx.with_events(fwd);
    }
    let t0 = Instant::now();
    // A panicking stage must fail *the attempt*, not unwind through the
    // scoped pool and abort the whole portfolio (and its caller — in a
    // server, the process). `AssertUnwindSafe` is justified because a
    // panicked attempt's partial state is confined to the attempt: the
    // stage is an immutable options struct, and the shared meter /
    // best-cell are atomics that stay consistent under abandonment.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_stage(attempt.stage.as_ref(), hg, None, &ctx)
    }))
    .unwrap_or_else(|payload| Err(np_core::panic_error(payload)));
    let wall = t0.elapsed();
    let charge = tributary.local_used();
    match outcome {
        Ok(result) => {
            let s = (score)(&result);
            best.offer(reduction_score(s));
            if opts.target_ratio.is_some_and(|t| s <= t) {
                meter.cancel();
            }
            Slot {
                status: AttemptStatus::Completed,
                result: Some(result),
                score: s,
                error: None,
                wall,
                charge,
            }
        }
        Err(error) => {
            let status = match &error {
                PartitionError::Budget(e) if e.resource == BudgetResource::Cancelled => {
                    AttemptStatus::Cancelled
                }
                PartitionError::Budget(_) => AttemptStatus::BudgetExhausted,
                PartitionError::Panicked { .. } => AttemptStatus::Panicked,
                _ => AttemptStatus::Failed,
            };
            Slot {
                status,
                result: None,
                score: f64::INFINITY,
                error: Some(error),
                wall,
                charge,
            }
        }
    }
}

/// Fiduccia–Mattheyses from a *random balanced* start drawn from the
/// attempt's seed stream ([`RunContext::rng`]) — the portfolio
/// counterpart of [`FmStage`](np_core::engine::stages::FmStage), whose
/// deterministic "first half left" seed partition would make every FM
/// restart identical.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RandomStartFmStage {
    /// Algorithm options.
    pub opts: FmOptions,
}

impl RandomStartFmStage {
    /// A stage with the given options.
    pub fn new(opts: FmOptions) -> Self {
        RandomStartFmStage { opts }
    }
}

impl Partitioner for RandomStartFmStage {
    fn name(&self) -> &'static str {
        "FM-restart"
    }

    fn partition(
        &self,
        hg: &Hypergraph,
        ctx: &RunContext<'_>,
    ) -> Result<PartitionResult, PartitionError> {
        let n = hg.num_modules();
        if n < 2 {
            return Err(PartitionError::TooSmall {
                modules: n,
                nets: hg.num_nets(),
            });
        }
        let mut rng = ctx.rng();
        let mut order: Vec<u32> = (0..n as u32).collect();
        rng.shuffle(&mut order);
        let start = Bipartition::from_left_set(n, order[..n / 2].iter().copied().map(ModuleId));
        let improved = fm_bisect_metered(hg, &start, &self.opts, ctx.meter())?;
        let stats = improved.partition.cut_stats(hg);
        if stats.left == 0 || stats.right == 0 {
            return Err(PartitionError::Degenerate);
        }
        Ok(PartitionResult::evaluate(
            hg,
            improved.partition,
            "FM-restart",
            None,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_core::engine::stages::IgMatchStage;
    use np_netlist::hypergraph_from_nets;
    use np_sparse::Budget;

    fn two_triangles() -> Hypergraph {
        hypergraph_from_nets(
            6,
            &[
                vec![0, 1],
                vec![1, 2],
                vec![0, 2],
                vec![3, 4],
                vec![4, 5],
                vec![3, 5],
                vec![2, 3],
            ],
        )
    }

    #[test]
    fn empty_portfolio_rejected() {
        let err = run_portfolio(
            &two_triangles(),
            &Portfolio::new(),
            &PortfolioOptions::default(),
            &BudgetMeter::unlimited(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err.error, PartitionError::InvalidInput { .. }));
        assert!(err.report.attempts.is_empty());
        assert!(err.to_string().contains("portfolio failed"));
    }

    #[test]
    fn single_attempt_wins() {
        let portfolio = Portfolio::new().attempt("only", IgMatchStage::default());
        let out = run_portfolio(
            &two_triangles(),
            &portfolio,
            &PortfolioOptions::default().with_threads(1),
            &BudgetMeter::unlimited(),
            None,
        )
        .unwrap();
        assert_eq!(out.winner, 0);
        assert_eq!(out.best.stats.cut_nets, 1);
        assert_eq!(out.report.winner, Some(0));
        assert_eq!(out.report.attempts[0].status, AttemptStatus::Won);
    }

    #[test]
    fn tie_breaks_to_smaller_index() {
        // identical deterministic attempts: index 0 must win every time
        let portfolio = Portfolio::new()
            .attempt("a", IgMatchStage::default())
            .attempt("b", IgMatchStage::default())
            .attempt("c", IgMatchStage::default());
        for threads in [1, 2, 3] {
            let out = run_portfolio(
                &two_triangles(),
                &portfolio,
                &PortfolioOptions::default().with_threads(threads),
                &BudgetMeter::unlimited(),
                None,
            )
            .unwrap();
            assert_eq!(out.winner, 0, "threads={threads}");
        }
    }

    #[test]
    fn attempts_get_decorrelated_seed_streams() {
        // two FM restarts from different streams should (on this
        // instance) explore different random starts; both must be
        // reported and the reduction must pick the better one
        let hg = two_triangles();
        let portfolio = Portfolio::new().restarts("FM", 4, |_| {
            Box::new(RandomStartFmStage::default()) as BoxedStage
        });
        let out = run_portfolio(
            &hg,
            &portfolio,
            &PortfolioOptions::default().with_threads(1).with_seed(7),
            &BudgetMeter::unlimited(),
            None,
        )
        .unwrap();
        assert_eq!(out.report.attempts.len(), 4);
        let best_ratio = out.best.ratio();
        for a in &out.report.attempts {
            if let Some(r) = a.ratio {
                assert!(best_ratio <= r + 1e-12, "winner must be the minimum");
            }
        }
    }

    #[test]
    fn target_ratio_cancels_remaining_attempts() {
        // threads=1: attempt 0 reaches the (easy) target, so attempts
        // 1.. must be skipped without running
        let portfolio = Portfolio::new()
            .attempt("first", IgMatchStage::default())
            .attempt("second", IgMatchStage::default())
            .attempt("third", IgMatchStage::default());
        let meter = BudgetMeter::unlimited();
        let out = run_portfolio(
            &two_triangles(),
            &portfolio,
            &PortfolioOptions::default()
                .with_threads(1)
                .with_target_ratio(1.0),
            &meter,
            None,
        )
        .unwrap();
        assert_eq!(out.winner, 0);
        assert!(out.report.cancelled);
        assert!(meter.is_cancelled());
        assert_eq!(out.report.attempts[1].status, AttemptStatus::Skipped);
        assert_eq!(out.report.attempts[2].status, AttemptStatus::Skipped);
    }

    #[test]
    fn exhausted_budget_reports_every_attempt() {
        let portfolio = Portfolio::new()
            .attempt("a", IgMatchStage::default())
            .attempt("b", IgMatchStage::default());
        let meter = BudgetMeter::new(&Budget::default().with_matvecs(0));
        let err = run_portfolio(
            &two_triangles(),
            &portfolio,
            &PortfolioOptions::default().with_threads(1),
            &meter,
            None,
        )
        .unwrap_err();
        assert!(matches!(err.error, PartitionError::InvalidInput { .. }));
        assert_eq!(err.report.attempts.len(), 2);
        for a in &err.report.attempts {
            assert_eq!(a.status, AttemptStatus::Skipped);
        }
    }

    #[test]
    fn events_are_tagged_with_attempt() {
        let log = Mutex::new(Vec::<(usize, String)>::new());
        let sink = |e: &PortfolioEvent<'_>| {
            if let StageEvent::Started { stage } = e.event {
                log.lock().unwrap().push((e.attempt, stage.to_string()));
            }
        };
        let portfolio = Portfolio::new()
            .attempt("a", IgMatchStage::default())
            .attempt("b", RandomStartFmStage::default());
        run_portfolio(
            &two_triangles(),
            &portfolio,
            &PortfolioOptions::default().with_threads(1),
            &BudgetMeter::unlimited(),
            Some(&sink),
        )
        .unwrap();
        let log = log.into_inner().unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0], (0, "IG-Match".to_string()));
        assert_eq!(log[1], (1, "FM-restart".to_string()));
    }

    #[test]
    fn per_attempt_charge_is_local() {
        let portfolio = Portfolio::new()
            .attempt("a", IgMatchStage::default())
            .attempt("b", IgMatchStage::default());
        let meter = BudgetMeter::unlimited();
        let out = run_portfolio(
            &two_triangles(),
            &portfolio,
            &PortfolioOptions::default().with_threads(1),
            &meter,
            None,
        )
        .unwrap();
        let total: u64 = out.report.attempts.iter().map(|a| a.charge).sum();
        assert_eq!(
            total,
            meter.matvecs_used(),
            "attempt charges must partition the pool"
        );
        assert!(out.report.attempts.iter().all(|a| a.charge > 0));
    }

    /// Test double for the panic-isolation contract: a stage that always
    /// panics, standing in for a poisoned algorithm.
    struct PanickingStage;

    impl Partitioner for PanickingStage {
        fn name(&self) -> &'static str {
            "panicker"
        }

        fn partition(
            &self,
            _hg: &Hypergraph,
            _ctx: &RunContext<'_>,
        ) -> Result<PartitionResult, PartitionError> {
            panic!("injected attempt panic");
        }
    }

    #[test]
    fn panicking_attempt_fails_the_attempt_not_the_portfolio() {
        // attempt 0 panics; the pool must survive, run attempt 1, and
        // report the panic as a per-attempt outcome
        let portfolio = Portfolio::new()
            .attempt("poisoned", PanickingStage)
            .attempt("healthy", IgMatchStage::default());
        for threads in [1, 2] {
            let out = run_portfolio(
                &two_triangles(),
                &portfolio,
                &PortfolioOptions::default().with_threads(threads),
                &BudgetMeter::unlimited(),
                None,
            )
            .unwrap();
            assert_eq!(out.winner, 1, "threads={threads}");
            assert_eq!(out.report.attempts[0].status, AttemptStatus::Panicked);
            let msg = out.report.attempts[0].error.as_deref().unwrap();
            assert!(msg.contains("injected attempt panic"), "{msg}");
            assert_eq!(out.report.attempts[1].status, AttemptStatus::Won);
        }
    }

    #[test]
    fn all_attempts_panicking_is_a_portfolio_error_not_a_panic() {
        let portfolio = Portfolio::new()
            .attempt("a", PanickingStage)
            .attempt("b", PanickingStage);
        let err = run_portfolio(
            &two_triangles(),
            &portfolio,
            &PortfolioOptions::default().with_threads(2),
            &BudgetMeter::unlimited(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err.error, PartitionError::Panicked { .. }));
        for a in &err.report.attempts {
            assert_eq!(a.status, AttemptStatus::Panicked);
        }
    }

    #[test]
    fn best_cell_is_monotonic() {
        let cell = BestCell::new();
        assert_eq!(cell.offer(5.0), 5.0);
        assert_eq!(cell.offer(7.0), 5.0);
        assert_eq!(cell.offer(2.0), 2.0);
        assert_eq!(cell.get(), 2.0);
    }

    #[test]
    fn custom_score_reverses_the_winner() {
        let portfolio = Portfolio::new()
            .attempt("a", IgMatchStage::default())
            .attempt("b", IgMatchStage::default());
        // a perverse objective that prefers the *larger* ratio still
        // tie-breaks deterministically by index
        let out = run_portfolio_scored(
            &two_triangles(),
            &portfolio,
            &PortfolioOptions::default().with_threads(1),
            &BudgetMeter::unlimited(),
            None,
            &|r: &PartitionResult| -r.ratio(),
        )
        .unwrap();
        assert_eq!(out.winner, 0);
    }

    #[test]
    fn thread_auto_detect_never_zero() {
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(8, 3), 3, "clamped to attempt count");
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(0, 0), 1);
    }
}
