//! Iterative partitioning baselines used as comparison points in the
//! paper's evaluation (§4).
//!
//! * [`fm`](mod@fm) — the Fiduccia–Mattheyses linear-time pass with gain buckets
//!   and a balance criterion, the workhorse behind most 1980s/90s
//!   partitioners;
//! * [`rcut`](mod@rcut) — a stand-in for Wei–Cheng's **RCut1.0**: FM-style iterative
//!   shifting re-targeted at the *ratio cut* objective, with group
//!   swapping and best-of-N random restarts, matching the published
//!   description of the program the paper compares against;
//! * [`kl`](mod@kl) — Kernighan–Lin pairwise-exchange bisection on a weighted
//!   graph (the clique model of a netlist), the historical baseline of
//!   §1.1;
//! * [`anneal`](mod@anneal) — a simulated-annealing ratio-cut optimizer, the
//!   stochastic baseline family of §1.1 (Kirkpatrick et al., Sechen).
//!
//! All randomness flows through the deterministic
//! [`Rng64`](np_netlist::rng::Rng64), so a fixed seed reproduces the
//! paper-table numbers in `EXPERIMENTS.md` exactly.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod anneal;
pub mod fm;
pub mod kl;
pub mod rcut;

pub use anneal::{anneal, AnnealOptions, AnnealResult};
pub use fm::{fm_bisect, fm_bisect_metered, FmOptions, FmResult};
pub use kl::{kl_bisect, kl_bisect_metered, KlOptions, KlResult};
pub use rcut::{rcut, rcut_metered, refine_ratio_cut_metered, RcutOptions, RcutResult};
