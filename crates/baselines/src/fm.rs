//! Fiduccia–Mattheyses iterative improvement with gain buckets.
//!
//! A pass tentatively moves every module exactly once, always picking the
//! highest-gain unlocked module whose move respects the balance
//! constraint, then rewinds to the best prefix of the move sequence
//! (minimum cut, ties broken toward balance). Passes repeat until one
//! fails to improve. The bucket list makes each pass `O(pins)` in the
//! number of bucket operations, as in the original paper \[7\].
//!
//! The same machinery, re-targeted at the ratio-cut objective and freed
//! from the balance constraint, powers the [`rcut`](mod@crate::rcut) stand-in
//! for Wei–Cheng's RCut1.0.

use np_netlist::partition::CutTracker;
use np_netlist::{Bipartition, Hypergraph, ModuleId, Side};
use np_sparse::{BudgetExceeded, BudgetMeter};

const NONE: u32 = u32::MAX;

/// What the best-prefix rewind optimizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PrefixObjective {
    /// Minimum net cut (classic FM).
    Cut,
    /// Minimum ratio cut (Wei–Cheng shifting).
    Ratio,
    /// Minimum area-weighted ratio cut; requires the tracker to carry
    /// module areas (`CutTracker::set_areas`).
    AreaRatio,
}

/// Options for [`fm_bisect`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FmOptions {
    /// Maximum imbalance as a fraction of the module count: the left block
    /// must stay within `n/2 ± balance_tolerance·n/2` modules
    /// (plus slack of one module for odd `n`).
    pub balance_tolerance: f64,
    /// Upper bound on improvement passes.
    pub max_passes: usize,
}

impl Default for FmOptions {
    fn default() -> Self {
        FmOptions {
            balance_tolerance: 0.1,
            max_passes: 20,
        }
    }
}

/// Result of an FM run.
#[derive(Clone, Debug, PartialEq)]
pub struct FmResult {
    /// The improved partition.
    pub partition: Bipartition,
    /// Net cut of `partition`.
    pub cut_nets: usize,
    /// Number of improvement passes performed (including the final
    /// non-improving one).
    pub passes: usize,
}

/// Runs Fiduccia–Mattheyses passes from `initial` until no pass improves
/// the cut.
///
/// # Panics
///
/// Panics if `initial.len() != hg.num_modules()` or if the balance window
/// excludes the initial partition *and* every reachable one (tolerance so
/// tight no module may move); a zero-module hypergraph is rejected by
/// construction.
///
/// # Example
///
/// ```
/// use np_baselines::{fm_bisect, FmOptions};
/// use np_netlist::{hypergraph_from_nets, Bipartition, ModuleId};
///
/// let hg = hypergraph_from_nets(
///     6,
///     &[vec![0, 1], vec![1, 2], vec![0, 2], vec![3, 4], vec![4, 5], vec![3, 5], vec![2, 3]],
/// );
/// // deliberately bad start: interleaved
/// let start = Bipartition::from_left_set(6, [ModuleId(0), ModuleId(3), ModuleId(4)]);
/// let r = fm_bisect(&hg, &start, &FmOptions::default());
/// assert_eq!(r.cut_nets, 1); // recovers the natural bisection
/// ```
pub fn fm_bisect(hg: &Hypergraph, initial: &Bipartition, opts: &FmOptions) -> FmResult {
    fm_bisect_metered(hg, initial, opts, &BudgetMeter::unlimited())
        .expect("unlimited meter never trips")
}

/// [`fm_bisect`] with cooperative budget enforcement: `meter` is checked
/// before every improvement pass (a pass is `O(pins)` bucket work, so the
/// overshoot past a tripped budget is bounded by one pass).
///
/// One FM pass is charged as one matvec-equivalent so matvec-capped
/// budgets bound FM work too.
///
/// # Errors
///
/// [`BudgetExceeded`] when the meter reports a limit hit; the partition
/// state reached so far is discarded (callers wanting partial progress
/// should budget per-pass themselves).
///
/// # Panics
///
/// Same as [`fm_bisect`].
pub fn fm_bisect_metered(
    hg: &Hypergraph,
    initial: &Bipartition,
    opts: &FmOptions,
    meter: &BudgetMeter,
) -> Result<FmResult, BudgetExceeded> {
    let n = hg.num_modules();
    assert_eq!(initial.len(), n, "partition size mismatch");
    let half = n as f64 / 2.0;
    let slack = (opts.balance_tolerance * half).ceil() as i64 + 1;
    let min_left = ((half as i64) - slack).max(0) as usize;
    let max_left = (((half.ceil()) as i64) + slack).min(n as i64) as usize;

    let mut tracker = CutTracker::from_partition(hg, initial);
    let mut passes = 0usize;
    while passes < opts.max_passes {
        meter.charge(1)?;
        passes += 1;
        let improved = run_pass(hg, &mut tracker, min_left, max_left, PrefixObjective::Cut);
        if !improved {
            break;
        }
    }
    Ok(FmResult {
        partition: tracker.to_partition(),
        cut_nets: tracker.cut_nets(),
        passes,
    })
}

/// Doubly-linked gain bucket lists for one side of the partition.
struct GainBuckets {
    /// `heads[g + offset]` = first module with gain `g`, or `NONE`.
    heads: Vec<u32>,
    next: Vec<u32>,
    prev: Vec<u32>,
    gain: Vec<i64>,
    present: Vec<bool>,
    offset: i64,
    /// Upper bound hint for the highest non-empty bucket.
    top: i64,
    len: usize,
}

impl GainBuckets {
    fn new(num_modules: usize, max_gain: i64) -> Self {
        GainBuckets {
            heads: vec![NONE; (2 * max_gain + 1) as usize],
            next: vec![NONE; num_modules],
            prev: vec![NONE; num_modules],
            gain: vec![0; num_modules],
            present: vec![false; num_modules],
            offset: max_gain,
            top: -max_gain,
            len: 0,
        }
    }

    fn insert(&mut self, m: u32, gain: i64) {
        debug_assert!(!self.present[m as usize]);
        let slot = (gain + self.offset) as usize;
        self.gain[m as usize] = gain;
        self.prev[m as usize] = NONE;
        self.next[m as usize] = self.heads[slot];
        if self.heads[slot] != NONE {
            self.prev[self.heads[slot] as usize] = m;
        }
        self.heads[slot] = m;
        self.present[m as usize] = true;
        self.top = self.top.max(gain);
        self.len += 1;
    }

    fn remove(&mut self, m: u32) {
        debug_assert!(self.present[m as usize]);
        let (p, nx) = (self.prev[m as usize], self.next[m as usize]);
        if p != NONE {
            self.next[p as usize] = nx;
        } else {
            let slot = (self.gain[m as usize] + self.offset) as usize;
            self.heads[slot] = nx;
        }
        if nx != NONE {
            self.prev[nx as usize] = p;
        }
        self.present[m as usize] = false;
        self.len -= 1;
    }

    fn update(&mut self, m: u32, new_gain: i64) {
        if self.present[m as usize] && self.gain[m as usize] != new_gain {
            self.remove(m);
            self.insert(m, new_gain);
        }
    }

    /// Highest-gain module, if any (refreshing the `top` hint).
    fn peek_best(&mut self) -> Option<(u32, i64)> {
        if self.len == 0 {
            return None;
        }
        while self.heads[(self.top + self.offset) as usize] == NONE {
            self.top -= 1;
        }
        Some((self.heads[(self.top + self.offset) as usize], self.top))
    }
}

/// One *group-swapping* pass: moves are forced to alternate sides, so the
/// tentative sequence explores pairwise exchanges rather than one-sided
/// shifts (the second ingredient of Wei–Cheng's RCut recipe). Returns
/// `true` if the objective improved.
pub(crate) fn run_swap_pass(
    hg: &Hypergraph,
    tracker: &mut CutTracker<'_>,
    objective: PrefixObjective,
) -> bool {
    let n = hg.num_modules();
    let max_gain = hg
        .modules()
        .map(|m| hg.degree(m) as i64)
        .max()
        .unwrap_or(0)
        .max(1);
    let mut left = GainBuckets::new(n, max_gain);
    let mut right = GainBuckets::new(n, max_gain);
    for m in hg.modules() {
        let g = tracker.gain(m);
        match tracker.side(m) {
            Side::Left => left.insert(m.0, g),
            Side::Right => right.insert(m.0, g),
        }
    }
    let score = |t: &CutTracker<'_>| -> f64 {
        match objective {
            PrefixObjective::Cut => t.cut_nets() as f64,
            PrefixObjective::Ratio => t.ratio(),
            PrefixObjective::AreaRatio => t.area_ratio(),
        }
    };
    let initial_score = score(tracker);
    let mut best_score = initial_score;
    let mut best_prefix = 0usize;
    let mut moves: Vec<ModuleId> = Vec::with_capacity(n);
    let mut locked = vec![false; n];
    let mut take_from = if tracker.stats().left * 2 >= n {
        Side::Left
    } else {
        Side::Right
    };
    loop {
        let stats = tracker.stats();
        let (bucket, dest, side_count) = match take_from {
            Side::Left => (&mut left, Side::Right, stats.left),
            Side::Right => (&mut right, Side::Left, stats.right),
        };
        if side_count <= 1 {
            break; // never empty a side
        }
        let Some((m, _)) = bucket.peek_best() else {
            break;
        };
        bucket.remove(m);
        locked[m as usize] = true;
        let module = ModuleId(m);
        tracker.move_module(module, dest);
        moves.push(module);
        for &net in hg.nets_of(module) {
            for &p in hg.pins(net) {
                if locked[p.index()] {
                    continue;
                }
                let g = tracker.gain(p);
                match tracker.side(p) {
                    Side::Left => left.update(p.0, g),
                    Side::Right => right.update(p.0, g),
                }
            }
        }
        // only evaluate after each completed pair (a swap)
        if moves.len().is_multiple_of(2) {
            let s = score(tracker);
            if s < best_score {
                best_score = s;
                best_prefix = moves.len();
            }
        }
        take_from = take_from.flip();
    }
    for &m in moves[best_prefix..].iter().rev() {
        let side = tracker.side(m);
        tracker.move_module(m, side.flip());
    }
    best_score < initial_score
}

/// One FM pass over `tracker`. Returns `true` if the objective improved.
///
/// `min_left..=max_left` bounds the left block size throughout the move
/// sequence.
pub(crate) fn run_pass(
    hg: &Hypergraph,
    tracker: &mut CutTracker<'_>,
    min_left: usize,
    max_left: usize,
    objective: PrefixObjective,
) -> bool {
    let n = hg.num_modules();
    let max_gain = hg
        .modules()
        .map(|m| hg.degree(m) as i64)
        .max()
        .unwrap_or(0)
        .max(1);
    let mut left = GainBuckets::new(n, max_gain);
    let mut right = GainBuckets::new(n, max_gain);
    for m in hg.modules() {
        let g = tracker.gain(m);
        match tracker.side(m) {
            Side::Left => left.insert(m.0, g),
            Side::Right => right.insert(m.0, g),
        }
    }

    let score = |t: &CutTracker<'_>| -> f64 {
        match objective {
            PrefixObjective::Cut => t.cut_nets() as f64,
            PrefixObjective::Ratio => t.ratio(),
            PrefixObjective::AreaRatio => t.area_ratio(),
        }
    };
    let initial_score = score(tracker);
    let mut best_score = initial_score;
    let mut best_prefix = 0usize;
    let mut best_balance = tracker.stats().left.abs_diff(tracker.stats().right);
    let mut moves: Vec<ModuleId> = Vec::with_capacity(n);
    let mut locked = vec![false; n];

    loop {
        let left_count = tracker.stats().left;
        let can_from_left = left_count > min_left && left.len > 0;
        let can_from_right = left_count < max_left && right.len > 0;
        let choice = match (can_from_left, can_from_right) {
            (false, false) => break,
            (true, false) => Side::Left,
            (false, true) => Side::Right,
            (true, true) => {
                let gl = left.peek_best().map(|(_, g)| g).unwrap_or(i64::MIN);
                let gr = right.peek_best().map(|(_, g)| g).unwrap_or(i64::MIN);
                if gl > gr {
                    Side::Left
                } else if gr > gl {
                    Side::Right
                } else if left_count * 2 >= n {
                    Side::Left
                } else {
                    Side::Right
                }
            }
        };
        let (bucket, dest) = match choice {
            Side::Left => (&mut left, Side::Right),
            Side::Right => (&mut right, Side::Left),
        };
        let (m, _) = bucket.peek_best().expect("chosen side has candidates");
        bucket.remove(m);
        locked[m as usize] = true;
        let module = ModuleId(m);
        tracker.move_module(module, dest);
        moves.push(module);

        // refresh gains of unlocked modules on affected nets
        for &net in hg.nets_of(module) {
            for &p in hg.pins(net) {
                if locked[p.index()] {
                    continue;
                }
                let g = tracker.gain(p);
                match tracker.side(p) {
                    Side::Left => left.update(p.0, g),
                    Side::Right => right.update(p.0, g),
                }
            }
        }

        let s = score(tracker);
        let balance = tracker.stats().left.abs_diff(tracker.stats().right);
        if s < best_score || (s == best_score && balance < best_balance) {
            best_score = s;
            best_prefix = moves.len();
            best_balance = balance;
        }
    }

    // rewind to the best prefix
    for &m in moves[best_prefix..].iter().rev() {
        let side = tracker.side(m);
        tracker.move_module(m, side.flip());
    }
    best_score < initial_score
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::hypergraph_from_nets;
    use np_netlist::rng::Rng64;

    fn two_triangles() -> Hypergraph {
        hypergraph_from_nets(
            6,
            &[
                vec![0, 1],
                vec![1, 2],
                vec![0, 2],
                vec![3, 4],
                vec![4, 5],
                vec![3, 5],
                vec![2, 3],
            ],
        )
    }

    #[test]
    fn recovers_natural_bisection_from_bad_start() {
        let hg = two_triangles();
        let start = Bipartition::from_left_set(6, [ModuleId(0), ModuleId(3), ModuleId(4)]);
        let r = fm_bisect(&hg, &start, &FmOptions::default());
        assert_eq!(r.cut_nets, 1);
        assert_eq!(r.partition.cut_stats(&hg).cut_nets, 1);
    }

    #[test]
    fn never_worsens_the_cut() {
        let hg = two_triangles();
        let mut rng = Rng64::new(5);
        for _ in 0..20 {
            let left = (0..6u32).filter(|_| rng.gen_bool(0.5)).map(ModuleId);
            let start = Bipartition::from_left_set(6, left);
            let before = start.cut_stats(&hg).cut_nets;
            let r = fm_bisect(&hg, &start, &FmOptions::default());
            assert!(r.cut_nets <= before, "{} > {before}", r.cut_nets);
        }
    }

    #[test]
    fn respects_balance_window() {
        let hg = two_triangles();
        let start = Bipartition::from_left_set(6, [ModuleId(0), ModuleId(1), ModuleId(2)]);
        let opts = FmOptions {
            balance_tolerance: 0.0,
            ..Default::default()
        };
        let r = fm_bisect(&hg, &start, &opts);
        let s = r.partition.cut_stats(&hg);
        // slack of 1 module around perfect balance
        assert!(s.left.abs_diff(s.right) <= 2, "{s:?}");
    }

    #[test]
    fn already_optimal_partition_stable() {
        let hg = two_triangles();
        let start = Bipartition::from_left_set(6, [ModuleId(0), ModuleId(1), ModuleId(2)]);
        let r = fm_bisect(&hg, &start, &FmOptions::default());
        assert_eq!(r.cut_nets, 1);
        assert!(r.passes <= 2);
    }

    #[test]
    fn metered_fm_trips_and_matches() {
        use np_sparse::Budget;
        use std::time::Duration;
        let hg = two_triangles();
        let start = Bipartition::from_left_set(6, [ModuleId(0), ModuleId(3), ModuleId(4)]);
        // zero wall clock: trips before the first pass
        let tight = BudgetMeter::new(&Budget::default().with_wall_clock(Duration::ZERO));
        assert!(fm_bisect_metered(&hg, &start, &FmOptions::default(), &tight).is_err());
        // unlimited meter: identical to the plain entry point
        let meter = BudgetMeter::unlimited();
        let metered = fm_bisect_metered(&hg, &start, &FmOptions::default(), &meter).unwrap();
        let plain = fm_bisect(&hg, &start, &FmOptions::default());
        assert_eq!(metered, plain);
        assert_eq!(meter.matvecs_used() as usize, plain.passes);
    }

    #[test]
    fn gain_buckets_basic_operations() {
        let mut b = GainBuckets::new(4, 3);
        b.insert(0, 1);
        b.insert(1, 3);
        b.insert(2, -3);
        assert_eq!(b.peek_best(), Some((1, 3)));
        b.remove(1);
        assert_eq!(b.peek_best(), Some((0, 1)));
        b.update(2, 2);
        assert_eq!(b.peek_best(), Some((2, 2)));
        b.remove(2);
        b.remove(0);
        assert_eq!(b.peek_best(), None);
        assert_eq!(b.len, 0);
    }

    #[test]
    fn bucket_update_of_absent_module_is_noop() {
        let mut b = GainBuckets::new(2, 2);
        b.update(0, 1);
        assert_eq!(b.peek_best(), None);
    }

    #[test]
    fn pass_moves_every_module_at_most_once() {
        // indirectly: two consecutive non-improving passes terminate
        let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![2, 3]]);
        let start = Bipartition::from_left_set(4, [ModuleId(0), ModuleId(1)]);
        let r = fm_bisect(&hg, &start, &FmOptions::default());
        assert_eq!(r.cut_nets, 0);
    }

    #[test]
    fn swap_pass_fixes_crossed_pair() {
        // optimal bisection needs a swap: start with one module from each
        // triangle exchanged; a pure shift pass can fix it too, but the
        // swap pass must as well, preserving balance
        let hg = two_triangles();
        let start = Bipartition::from_left_set(6, [ModuleId(0), ModuleId(1), ModuleId(3)]);
        let mut tracker = CutTracker::from_partition(&hg, &start);
        let improved = run_swap_pass(&hg, &mut tracker, PrefixObjective::Cut);
        assert!(improved);
        assert_eq!(tracker.cut_nets(), 1);
        let s = tracker.stats();
        assert_eq!(s.left.abs_diff(s.right), 0);
    }

    #[test]
    fn swap_pass_never_worsens() {
        let hg = two_triangles();
        let mut rng = Rng64::new(11);
        for _ in 0..20 {
            let left = (0..6u32).filter(|_| rng.gen_bool(0.5)).map(ModuleId);
            let start = Bipartition::from_left_set(6, left);
            let mut tracker = CutTracker::from_partition(&hg, &start);
            let before = tracker.cut_nets();
            run_swap_pass(&hg, &mut tracker, PrefixObjective::Cut);
            assert!(tracker.cut_nets() <= before);
        }
    }

    #[test]
    fn larger_random_instance_improves() {
        // ring of 40 modules: optimal bisection cut = 2
        let n = 40;
        let nets: Vec<Vec<u32>> = (0..n)
            .map(|i| vec![i as u32, ((i + 1) % n) as u32])
            .collect();
        let hg = hypergraph_from_nets(n, &nets);
        let mut rng = Rng64::new(7);
        let left = (0..n as u32).filter(|_| rng.gen_bool(0.5)).map(ModuleId);
        let start = Bipartition::from_left_set(n, left);
        let r = fm_bisect(&hg, &start, &FmOptions::default());
        assert!(r.cut_nets <= 6, "cut {}", r.cut_nets);
        assert!(r.cut_nets >= 2);
    }
}
