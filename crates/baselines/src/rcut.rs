//! RCut1.0 stand-in: ratio-cut optimization by iterative shifting and
//! group swapping with random restarts (Wei–Cheng \[32\]).
//!
//! The paper's headline comparison is against the RCut1.0 program, which
//! "uses an adaptation of the shifting and group swapping methods in \[7\]"
//! (i.e. Fiduccia–Mattheyses machinery re-targeted at the ratio-cut
//! objective) and reports the best of 10 runs from random starting
//! configurations. This module reproduces that recipe:
//!
//! 1. draw a random balanced bipartition;
//! 2. **shifting**: FM passes whose best-prefix rewind minimizes the
//!    *ratio cut* instead of the raw cut, with no balance window (the
//!    denominator penalizes lopsided partitions by itself) beyond
//!    forbidding an empty side;
//! 3. **group swapping**: passes whose tentative moves alternate sides,
//!    exploring pairwise exchanges the one-sided shifts cannot reach;
//! 4. repeat both until neither improves the ratio;
//! 5. keep the best result over `runs` seeds.

use crate::fm::{run_pass, run_swap_pass, PrefixObjective};
use np_netlist::partition::CutTracker;
use np_netlist::rng::Rng64;
use np_netlist::{Bipartition, CutStats, Hypergraph, ModuleId};
use np_sparse::{BudgetExceeded, BudgetMeter};

/// Options for [`rcut`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RcutOptions {
    /// Number of random starting configurations (the paper's comparisons
    /// use the best of 10).
    pub runs: usize,
    /// PRNG seed for the starting configurations.
    pub seed: u64,
    /// Upper bound on shifting passes per run.
    pub max_passes: usize,
}

impl Default for RcutOptions {
    fn default() -> Self {
        RcutOptions {
            runs: 10,
            seed: 0x8C47_1990,
            max_passes: 30,
        }
    }
}

/// Result of an RCut run.
#[derive(Clone, Debug, PartialEq)]
pub struct RcutResult {
    /// The best partition over all runs.
    pub partition: Bipartition,
    /// Cut statistics of `partition`.
    pub stats: CutStats,
    /// Which run (0-based) produced the winner.
    pub best_run: usize,
}

impl RcutResult {
    /// The ratio-cut value of the best partition.
    pub fn ratio(&self) -> f64 {
        self.stats.ratio()
    }
}

/// Optimizes the ratio cut of `hg` from `opts.runs` random starts and
/// returns the best result.
///
/// Deterministic for a fixed seed.
///
/// # Panics
///
/// Panics if `hg` has fewer than 2 modules or `opts.runs == 0`.
///
/// # Example
///
/// ```
/// use np_baselines::{rcut, RcutOptions};
/// use np_netlist::hypergraph_from_nets;
///
/// let hg = hypergraph_from_nets(
///     6,
///     &[vec![0, 1], vec![1, 2], vec![0, 2], vec![3, 4], vec![4, 5], vec![3, 5], vec![2, 3]],
/// );
/// let r = rcut(&hg, &RcutOptions::default());
/// assert_eq!(r.stats.cut_nets, 1);
/// ```
pub fn rcut(hg: &Hypergraph, opts: &RcutOptions) -> RcutResult {
    rcut_metered(hg, opts, &BudgetMeter::unlimited()).expect("unlimited budget cannot be exceeded")
}

/// Budget-aware variant of [`rcut`] — the single implementation behind
/// both entry points. Each shifting/swapping pass round charges one unit
/// against `meter`; with an unlimited meter the run is bit-identical to
/// [`rcut`].
///
/// # Errors
///
/// [`BudgetExceeded`] when `meter` trips mid-optimization; partial runs
/// are discarded (restart-based search has no meaningful partial result).
///
/// # Panics
///
/// Same structural panics as [`rcut`].
pub fn rcut_metered(
    hg: &Hypergraph,
    opts: &RcutOptions,
    meter: &BudgetMeter,
) -> Result<RcutResult, BudgetExceeded> {
    let n = hg.num_modules();
    assert!(n >= 2, "need at least 2 modules");
    assert!(opts.runs > 0, "need at least one run");
    let mut rng = Rng64::new(opts.seed);
    let mut best: Option<(f64, usize, Bipartition, CutStats)> = None;

    for run in 0..opts.runs {
        // random balanced start: shuffle and split in half
        let mut order: Vec<u32> = (0..n as u32).collect();
        rng.shuffle(&mut order);
        let left = order[..n / 2].iter().copied().map(ModuleId);
        let start = Bipartition::from_left_set(n, left);

        let mut tracker = CutTracker::from_partition(hg, &start);
        for _ in 0..opts.max_passes {
            meter.charge(1)?;
            // one shifting pass, then one group-swapping pass; stop when
            // neither improves the ratio
            let shifted = run_pass(hg, &mut tracker, 1, n - 1, PrefixObjective::Ratio);
            let swapped = run_swap_pass(hg, &mut tracker, PrefixObjective::Ratio);
            if !shifted && !swapped {
                break;
            }
        }
        let stats = tracker.stats();
        let ratio = stats.ratio();
        if best.as_ref().is_none_or(|(r, ..)| ratio < *r) {
            best = Some((ratio, run, tracker.to_partition(), stats));
        }
    }

    let (_, best_run, partition, stats) = best.expect("runs > 0");
    Ok(RcutResult {
        partition,
        stats,
        best_run,
    })
}

/// Like [`rcut`], but optimizes the *area-weighted* ratio cut
/// `cut / (area(U) · area(W))` — the objective the original RCut1.0
/// program used, which the paper's spectral methods cannot (§4).
///
/// # Panics
///
/// Panics if sizes disagree, `hg` has fewer than 2 modules, or
/// `opts.runs == 0`.
///
/// # Example
///
/// ```
/// use np_baselines::rcut::rcut_with_areas;
/// use np_baselines::RcutOptions;
/// use np_netlist::areas::ModuleAreas;
/// use np_netlist::hypergraph_from_nets;
///
/// let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
/// let areas = ModuleAreas::new(vec![8.0, 1.0, 1.0, 1.0]);
/// let r = rcut_with_areas(&hg, &areas, &RcutOptions::default());
/// // the heavy module is worth isolating: areas 8:3 at cut 1
/// assert_eq!(r.stats.cut_nets, 1);
/// ```
pub fn rcut_with_areas(
    hg: &Hypergraph,
    areas: &np_netlist::areas::ModuleAreas,
    opts: &RcutOptions,
) -> AreaRcutResult {
    let n = hg.num_modules();
    assert!(n >= 2, "need at least 2 modules");
    assert!(opts.runs > 0, "need at least one run");
    assert_eq!(areas.len(), n, "area vector size mismatch");
    let mut rng = Rng64::new(opts.seed);
    let mut best: Option<(f64, usize, Bipartition)> = None;
    for run in 0..opts.runs {
        let mut order: Vec<u32> = (0..n as u32).collect();
        rng.shuffle(&mut order);
        let left = order[..n / 2].iter().copied().map(ModuleId);
        let start = Bipartition::from_left_set(n, left);
        let mut tracker = CutTracker::from_partition(hg, &start);
        tracker.set_areas(areas);
        for _ in 0..opts.max_passes {
            let shifted = run_pass(hg, &mut tracker, 1, n - 1, PrefixObjective::AreaRatio);
            let swapped = run_swap_pass(hg, &mut tracker, PrefixObjective::AreaRatio);
            if !shifted && !swapped {
                break;
            }
        }
        let ratio = tracker.area_ratio();
        if best.as_ref().is_none_or(|(r, ..)| ratio < *r) {
            best = Some((ratio, run, tracker.to_partition()));
        }
    }
    let (_, best_run, partition) = best.expect("runs > 0");
    let stats = np_netlist::areas::area_cut_stats(hg, &partition, areas);
    AreaRcutResult {
        partition,
        stats,
        best_run,
    }
}

/// Result of an area-weighted RCut run.
#[derive(Clone, Debug, PartialEq)]
pub struct AreaRcutResult {
    /// The best partition over all runs.
    pub partition: Bipartition,
    /// Area-weighted cut statistics of `partition`.
    pub stats: np_netlist::areas::AreaCutStats,
    /// Which run (0-based) produced the winner.
    pub best_run: usize,
}

/// Improves an existing partition with ratio-objective shifting passes
/// (no restarts) — the "standard iterative techniques" post-processing the
/// paper suggests for spectral output (§5). Returns the improved partition
/// and its statistics; the result is never worse than the input.
///
/// # Panics
///
/// Panics if `initial.len() != hg.num_modules()` or the netlist has fewer
/// than 2 modules.
///
/// # Example
///
/// ```
/// use np_baselines::rcut::refine_ratio_cut;
/// use np_netlist::{hypergraph_from_nets, Bipartition, ModuleId};
///
/// let hg = hypergraph_from_nets(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
/// let rough = Bipartition::from_left_set(4, [ModuleId(0), ModuleId(2)]);
/// let (improved, stats) = refine_ratio_cut(&hg, &rough, 10);
/// assert!(stats.ratio() <= rough.ratio_cut(&hg));
/// assert_eq!(stats, improved.cut_stats(&hg));
/// ```
pub fn refine_ratio_cut(
    hg: &Hypergraph,
    initial: &Bipartition,
    max_passes: usize,
) -> (Bipartition, CutStats) {
    refine_ratio_cut_metered(hg, initial, max_passes, &BudgetMeter::unlimited())
        .expect("unlimited budget cannot be exceeded")
}

/// Budget-aware variant of [`refine_ratio_cut`]: each shifting pass charges
/// one unit against `meter` (the same accounting unit as an eigensolver
/// matrix–vector product), so wall-clock and work budgets are enforced
/// between passes. On exhaustion the passes completed so far are simply
/// discarded by the caller — refinement is optional polish, so partial
/// progress need not be surfaced.
///
/// # Errors
///
/// [`BudgetExceeded`] when `meter` trips before `max_passes` passes have
/// run.
///
/// # Panics
///
/// Same structural panics as [`refine_ratio_cut`].
pub fn refine_ratio_cut_metered(
    hg: &Hypergraph,
    initial: &Bipartition,
    max_passes: usize,
    meter: &BudgetMeter,
) -> Result<(Bipartition, CutStats), BudgetExceeded> {
    let n = hg.num_modules();
    assert!(n >= 2, "need at least 2 modules");
    assert_eq!(initial.len(), n, "partition size mismatch");
    let mut tracker = CutTracker::from_partition(hg, initial);
    for _ in 0..max_passes {
        meter.charge(1)?;
        if !run_pass(hg, &mut tracker, 1, n - 1, PrefixObjective::Ratio) {
            break;
        }
    }
    let stats = tracker.stats();
    Ok((tracker.to_partition(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::hypergraph_from_nets;

    fn two_triangles() -> Hypergraph {
        hypergraph_from_nets(
            6,
            &[
                vec![0, 1],
                vec![1, 2],
                vec![0, 2],
                vec![3, 4],
                vec![4, 5],
                vec![3, 5],
                vec![2, 3],
            ],
        )
    }

    #[test]
    fn finds_natural_ratio_cut() {
        let r = rcut(&two_triangles(), &RcutOptions::default());
        assert_eq!(r.stats.cut_nets, 1);
        assert_eq!(r.stats.areas(), "3:3");
    }

    #[test]
    fn deterministic_per_seed() {
        let hg = two_triangles();
        let a = rcut(&hg, &RcutOptions::default());
        let b = rcut(&hg, &RcutOptions::default());
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.best_run, b.best_run);
    }

    #[test]
    fn more_runs_never_hurt() {
        let hg = two_triangles();
        let few = rcut(
            &hg,
            &RcutOptions {
                runs: 1,
                ..Default::default()
            },
        );
        let many = rcut(
            &hg,
            &RcutOptions {
                runs: 10,
                ..Default::default()
            },
        );
        assert!(many.ratio() <= few.ratio() + 1e-12);
    }

    #[test]
    fn unbalanced_natural_cut_allowed() {
        // satellite: 2 modules attached to a 6-clique by one net — the
        // ratio objective should prefer the 2:6 split over bisection
        let mut nets: Vec<Vec<u32>> = Vec::new();
        for i in 2..8u32 {
            for j in i + 1..8 {
                nets.push(vec![i, j]);
            }
        }
        nets.push(vec![0, 1]);
        nets.push(vec![1, 2]);
        let hg = hypergraph_from_nets(8, &nets);
        let r = rcut(&hg, &RcutOptions::default());
        assert_eq!(r.stats.cut_nets, 1);
        assert_eq!(r.stats.areas(), "2:6");
    }

    #[test]
    fn stats_match_partition() {
        let hg = two_triangles();
        let r = rcut(&hg, &RcutOptions::default());
        assert_eq!(r.stats, r.partition.cut_stats(&hg));
    }

    #[test]
    fn two_module_instance() {
        let hg = hypergraph_from_nets(2, &[vec![0, 1]]);
        let r = rcut(&hg, &RcutOptions::default());
        assert_eq!(r.stats.left + r.stats.right, 2);
        assert_eq!(r.stats.cut_nets, 1); // the only split cuts the net
    }

    #[test]
    fn refine_never_worsens_random_partitions() {
        let hg = two_triangles();
        let mut rng = np_netlist::rng::Rng64::new(42);
        for _ in 0..20 {
            let left = (0..6u32).filter(|_| rng.gen_bool(0.5)).map(ModuleId);
            let p = Bipartition::from_left_set(6, left);
            let before = p.ratio_cut(&hg);
            let (_, stats) = refine_ratio_cut(&hg, &p, 10);
            assert!(stats.ratio() <= before + 1e-12);
        }
    }

    #[test]
    fn refine_reaches_local_optimum() {
        let hg = two_triangles();
        let p = Bipartition::from_left_set(6, [ModuleId(0), ModuleId(3)]);
        let (improved, stats) = refine_ratio_cut(&hg, &p, 20);
        assert_eq!(stats.cut_nets, 1);
        assert_eq!(improved.cut_stats(&hg), stats);
    }

    #[test]
    fn metered_unlimited_matches_plain() {
        let hg = two_triangles();
        let plain = rcut(&hg, &RcutOptions::default());
        let metered =
            rcut_metered(&hg, &RcutOptions::default(), &BudgetMeter::unlimited()).unwrap();
        assert_eq!(plain, metered);
    }

    #[test]
    fn metered_exhaustion_surfaces() {
        let hg = two_triangles();
        let budget = np_sparse::Budget::default().with_matvecs(1);
        let meter = BudgetMeter::new(&budget);
        assert!(rcut_metered(&hg, &RcutOptions::default(), &meter).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_panics() {
        rcut(
            &two_triangles(),
            &RcutOptions {
                runs: 0,
                ..Default::default()
            },
        );
    }
}
