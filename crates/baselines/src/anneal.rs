//! Simulated-annealing ratio-cut baseline.
//!
//! Paper §1.1 lists stochastic hill-climbing ("the annealing approach of
//! Kirkpatrick et al., Sechen, and others") as the other major family of
//! iterative partitioners. This module provides a standard
//! single-module-move annealer over the ratio-cut objective so the
//! spectral methods can be compared against the stochastic class too.
//!
//! The schedule is geometric; acceptance uses the Metropolis criterion on
//! the *relative* ratio-cut change (the objective spans orders of
//! magnitude, so absolute deltas would make temperature scale-dependent).

use np_netlist::partition::CutTracker;
use np_netlist::rng::Rng64;
use np_netlist::{Bipartition, CutStats, Hypergraph, ModuleId};

/// Options for [`anneal`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnnealOptions {
    /// Initial temperature (relative-change units; ~1.0 accepts most
    /// uphill moves, ~0.01 almost none).
    pub initial_temperature: f64,
    /// Geometric cooling factor per sweep (`0 < alpha < 1`).
    pub cooling: f64,
    /// Number of cooling sweeps; each sweep proposes `n` random moves.
    pub sweeps: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            initial_temperature: 0.5,
            cooling: 0.92,
            sweeps: 120,
            seed: 0x5A_1983,
        }
    }
}

/// Result of an annealing run.
#[derive(Clone, Debug, PartialEq)]
pub struct AnnealResult {
    /// The best partition seen during the run.
    pub partition: Bipartition,
    /// Cut statistics of `partition`.
    pub stats: CutStats,
    /// Moves accepted across the run.
    pub accepted_moves: usize,
}

impl AnnealResult {
    /// The ratio-cut value of the best partition.
    pub fn ratio(&self) -> f64 {
        self.stats.ratio()
    }
}

/// Anneals the ratio cut of `hg` starting from a random balanced
/// partition. Deterministic for a fixed seed.
///
/// # Panics
///
/// Panics if `hg` has fewer than 2 modules, `opts.sweeps == 0`, or the
/// cooling factor is outside `(0, 1)`.
///
/// # Example
///
/// ```
/// use np_baselines::{anneal, AnnealOptions};
/// use np_netlist::hypergraph_from_nets;
///
/// let hg = hypergraph_from_nets(
///     6,
///     &[vec![0, 1], vec![1, 2], vec![0, 2], vec![3, 4], vec![4, 5], vec![3, 5], vec![2, 3]],
/// );
/// let r = anneal(&hg, &AnnealOptions::default());
/// assert_eq!(r.stats.cut_nets, 1);
/// ```
pub fn anneal(hg: &Hypergraph, opts: &AnnealOptions) -> AnnealResult {
    let n = hg.num_modules();
    assert!(n >= 2, "need at least 2 modules");
    assert!(opts.sweeps > 0, "need at least one sweep");
    assert!(
        opts.cooling > 0.0 && opts.cooling < 1.0,
        "cooling factor must be in (0, 1)"
    );
    let mut rng = Rng64::new(opts.seed);

    // random balanced start
    let mut order: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut order);
    let start = Bipartition::from_left_set(n, order[..n / 2].iter().copied().map(ModuleId));
    let mut tracker = CutTracker::from_partition(hg, &start);

    let mut best_partition = tracker.to_partition();
    let mut best_ratio = tracker.ratio();
    let mut accepted = 0usize;
    let mut temperature = opts.initial_temperature;

    for _ in 0..opts.sweeps {
        for _ in 0..n {
            let m = ModuleId(rng.gen_range(n) as u32);
            let stats = tracker.stats();
            // never empty a side
            let from_left = tracker.side(m) == np_netlist::Side::Left;
            if (from_left && stats.left == 1) || (!from_left && stats.right == 1) {
                continue;
            }
            let before = tracker.ratio();
            let side = tracker.side(m);
            tracker.move_module(m, side.flip());
            let after = tracker.ratio();
            // relative change; accept improving moves always, uphill with
            // Metropolis probability
            let delta = (after - before) / before.max(f64::MIN_POSITIVE);
            let accept = delta <= 0.0 || rng.gen_f64() < (-delta / temperature).exp();
            if accept {
                accepted += 1;
                if after < best_ratio {
                    best_ratio = after;
                    best_partition = tracker.to_partition();
                }
            } else {
                tracker.move_module(m, side); // revert
            }
        }
        temperature *= opts.cooling;
    }

    let stats = best_partition.cut_stats(hg);
    AnnealResult {
        partition: best_partition,
        stats,
        accepted_moves: accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netlist::hypergraph_from_nets;

    fn two_triangles() -> Hypergraph {
        hypergraph_from_nets(
            6,
            &[
                vec![0, 1],
                vec![1, 2],
                vec![0, 2],
                vec![3, 4],
                vec![4, 5],
                vec![3, 5],
                vec![2, 3],
            ],
        )
    }

    #[test]
    fn finds_bridge_cut() {
        let r = anneal(&two_triangles(), &AnnealOptions::default());
        assert_eq!(r.stats.cut_nets, 1);
        assert_eq!(r.stats.areas(), "3:3");
    }

    #[test]
    fn deterministic_per_seed() {
        let hg = two_triangles();
        let a = anneal(&hg, &AnnealOptions::default());
        let b = anneal(&hg, &AnnealOptions::default());
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.accepted_moves, b.accepted_moves);
    }

    #[test]
    fn different_seeds_may_differ_but_stay_valid() {
        let hg = two_triangles();
        for seed in 0..5 {
            let r = anneal(
                &hg,
                &AnnealOptions {
                    seed,
                    sweeps: 30,
                    ..Default::default()
                },
            );
            let s = r.partition.cut_stats(&hg);
            assert!(s.left > 0 && s.right > 0);
            assert_eq!(s, r.stats);
        }
    }

    #[test]
    fn stats_match_partition() {
        let hg = two_triangles();
        let r = anneal(&hg, &AnnealOptions::default());
        assert_eq!(r.stats, r.partition.cut_stats(&hg));
    }

    #[test]
    fn cold_annealer_is_greedy_descent() {
        let hg = two_triangles();
        let r = anneal(
            &hg,
            &AnnealOptions {
                initial_temperature: 1e-9,
                sweeps: 50,
                ..Default::default()
            },
        );
        // pure descent still finds a decent local optimum here
        assert!(r.stats.cut_nets <= 3);
    }

    #[test]
    fn accepts_some_uphill_when_hot() {
        let hg = two_triangles();
        let hot = anneal(
            &hg,
            &AnnealOptions {
                initial_temperature: 10.0,
                cooling: 0.99,
                sweeps: 10,
                ..Default::default()
            },
        );
        // with high temperature nearly every proposal is accepted
        assert!(hot.accepted_moves > 30, "{}", hot.accepted_moves);
    }

    #[test]
    #[should_panic(expected = "cooling factor")]
    fn bad_cooling_panics() {
        anneal(
            &two_triangles(),
            &AnnealOptions {
                cooling: 1.5,
                ..Default::default()
            },
        );
    }
}
