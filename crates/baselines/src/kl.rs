//! Kernighan–Lin pairwise-exchange bisection on a weighted graph.
//!
//! The historical baseline of paper §1.1 \[19\]. KL operates on *graphs*,
//! so a netlist must first be mapped through a net model (e.g. the clique
//! model in `np-core`); this module takes the weighted adjacency matrix
//! directly.
//!
//! Each pass greedily selects swap pairs by the classic `D`-value
//! heuristic (`gain(a, b) = D_a + D_b − 2·w(a, b)`, choosing the best `a`
//! and `b` by individual `D` values rather than scanning all pairs), locks
//! them, and rewinds to the best prefix. Passes repeat until no
//! improvement.

use np_netlist::rng::Rng64;
use np_sparse::{BudgetExceeded, BudgetMeter, CsrMatrix, LinearOperator};

/// Options for [`kl_bisect`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KlOptions {
    /// Upper bound on improvement passes.
    pub max_passes: usize,
    /// Number of random starting bisections; the best result wins.
    pub runs: usize,
    /// PRNG seed for the starts.
    pub seed: u64,
}

impl Default for KlOptions {
    fn default() -> Self {
        KlOptions {
            max_passes: 10,
            runs: 4,
            seed: 0x4B4C_1970,
        }
    }
}

/// Result of a KL run.
#[derive(Clone, Debug, PartialEq)]
pub struct KlResult {
    /// `true` for vertices in the left block.
    pub left: Vec<bool>,
    /// Total weight of edges crossing the bisection.
    pub cut_weight: f64,
}

/// Bisects the graph with Kernighan–Lin from `opts.runs` random balanced
/// starts, returning the best result. For odd `n` the extra vertex sits on
/// the right.
///
/// Deterministic for a fixed seed.
///
/// # Panics
///
/// Panics if the graph has fewer than 2 vertices.
///
/// # Example
///
/// ```
/// use np_baselines::{kl_bisect, KlOptions};
/// use np_sparse::TripletBuilder;
///
/// // two triangles + weak bridge
/// let mut b = TripletBuilder::new(6);
/// for &(i, j) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
///     b.push_sym(i, j, 1.0);
/// }
/// b.push_sym(2, 3, 0.5);
/// let r = kl_bisect(&b.into_csr(), &KlOptions::default());
/// assert!((r.cut_weight - 0.5).abs() < 1e-12);
/// ```
pub fn kl_bisect(graph: &CsrMatrix, opts: &KlOptions) -> KlResult {
    kl_bisect_metered(graph, opts, &BudgetMeter::unlimited())
        .expect("unlimited budget cannot be exceeded")
}

/// Budget-aware variant of [`kl_bisect`] — the single implementation
/// behind both entry points. Each improvement pass charges one unit
/// against `meter`; with an unlimited meter the run is bit-identical to
/// [`kl_bisect`].
///
/// # Errors
///
/// [`BudgetExceeded`] when `meter` trips before the search completes.
///
/// # Panics
///
/// Panics if the graph has fewer than 2 vertices.
pub fn kl_bisect_metered(
    graph: &CsrMatrix,
    opts: &KlOptions,
    meter: &BudgetMeter,
) -> Result<KlResult, BudgetExceeded> {
    let n = graph.dim();
    assert!(n >= 2, "need at least 2 vertices");
    let mut rng = Rng64::new(opts.seed);
    let mut best: Option<KlResult> = None;
    for _ in 0..opts.runs.max(1) {
        let mut order: Vec<u32> = (0..n as u32).collect();
        rng.shuffle(&mut order);
        let mut left = vec![false; n];
        for &v in &order[..n / 2] {
            left[v as usize] = true;
        }
        let result = kl_from(graph, left, opts.max_passes, meter)?;
        if best
            .as_ref()
            .is_none_or(|b| result.cut_weight < b.cut_weight)
        {
            best = Some(result);
        }
    }
    Ok(best.expect("runs >= 1"))
}

fn cut_weight(graph: &CsrMatrix, left: &[bool]) -> f64 {
    let mut cut = 0.0;
    for i in 0..graph.dim() {
        let (cols, vals) = graph.row(i);
        for (&j, &w) in cols.iter().zip(vals) {
            if (j as usize) > i && left[i] != left[j as usize] {
                cut += w;
            }
        }
    }
    cut
}

fn kl_from(
    graph: &CsrMatrix,
    mut left: Vec<bool>,
    max_passes: usize,
    meter: &BudgetMeter,
) -> Result<KlResult, BudgetExceeded> {
    let n = graph.dim();
    // D[v] = external − internal connection weight
    let compute_d = |left: &[bool]| -> Vec<f64> {
        (0..n)
            .map(|i| {
                let (cols, vals) = graph.row(i);
                cols.iter()
                    .zip(vals)
                    .map(|(&j, &w)| if left[i] != left[j as usize] { w } else { -w })
                    .sum()
            })
            .collect()
    };

    for _ in 0..max_passes {
        meter.charge(1)?;
        let mut d = compute_d(&left);
        let mut locked = vec![false; n];
        let mut swaps: Vec<(usize, usize)> = Vec::new();
        let mut gains: Vec<f64> = Vec::new();
        let pairs = n / 2;
        for _ in 0..pairs {
            // best unlocked vertex on each side by D value
            let pick =
                |want_left: bool, d: &[f64], locked: &[bool], left: &[bool]| -> Option<usize> {
                    let mut best: Option<usize> = None;
                    for v in 0..n {
                        if locked[v] || left[v] != want_left {
                            continue;
                        }
                        if best.is_none_or(|b| d[v] > d[b]) {
                            best = Some(v);
                        }
                    }
                    best
                };
            let (Some(a), Some(b)) = (
                pick(true, &d, &locked, &left),
                pick(false, &d, &locked, &left),
            ) else {
                break;
            };
            let gain = d[a] + d[b] - 2.0 * graph.get(a, b);
            swaps.push((a, b));
            gains.push(gain);
            locked[a] = true;
            locked[b] = true;
            // tentative swap, then refresh D of unlocked neighbors
            left[a] = false;
            left[b] = true;
            for v in [a, b] {
                let (cols, _) = graph.row(v);
                for &u in cols {
                    let u = u as usize;
                    if locked[u] {
                        continue;
                    }
                    let (ucols, uvals) = graph.row(u);
                    d[u] = ucols
                        .iter()
                        .zip(uvals)
                        .map(|(&j, &wj)| if left[u] != left[j as usize] { wj } else { -wj })
                        .sum();
                }
            }
        }
        // best prefix of cumulative gains
        let mut cum = 0.0;
        let mut best_cum = 0.0;
        let mut best_k = 0usize;
        for (k, g) in gains.iter().enumerate() {
            cum += g;
            if cum > best_cum + 1e-12 {
                best_cum = cum;
                best_k = k + 1;
            }
        }
        // undo swaps beyond the best prefix
        for &(a, b) in swaps[best_k..].iter().rev() {
            left[a] = true;
            left[b] = false;
        }
        if best_k == 0 {
            break;
        }
    }
    let cut = cut_weight(graph, &left);
    Ok(KlResult {
        left,
        cut_weight: cut,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_sparse::TripletBuilder;

    fn dumbbell() -> CsrMatrix {
        let mut b = TripletBuilder::new(6);
        for &(i, j) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.push_sym(i, j, 1.0);
        }
        b.push_sym(2, 3, 0.5);
        b.into_csr()
    }

    #[test]
    fn finds_weak_bridge() {
        let r = kl_bisect(&dumbbell(), &KlOptions::default());
        assert!((r.cut_weight - 0.5).abs() < 1e-12);
        // blocks are the two triangles
        assert_eq!(r.left[0], r.left[1]);
        assert_eq!(r.left[1], r.left[2]);
        assert_ne!(r.left[2], r.left[3]);
    }

    #[test]
    fn preserves_balance() {
        let r = kl_bisect(&dumbbell(), &KlOptions::default());
        let l = r.left.iter().filter(|&&x| x).count();
        assert_eq!(l, 3);
    }

    #[test]
    fn deterministic() {
        let g = dumbbell();
        let a = kl_bisect(&g, &KlOptions::default());
        let b = kl_bisect(&g, &KlOptions::default());
        assert_eq!(a.left, b.left);
    }

    #[test]
    fn cut_weight_helper_consistent() {
        let g = dumbbell();
        let r = kl_bisect(&g, &KlOptions::default());
        assert!((cut_weight(&g, &r.left) - r.cut_weight).abs() < 1e-12);
    }

    #[test]
    fn ring_bisection_cut_two() {
        let n = 16;
        let mut b = TripletBuilder::new(n);
        for i in 0..n {
            b.push_sym(i, (i + 1) % n, 1.0);
        }
        let r = kl_bisect(&b.into_csr(), &KlOptions::default());
        assert!((r.cut_weight - 2.0).abs() < 1e-9, "cut {}", r.cut_weight);
    }

    #[test]
    fn metered_unlimited_matches_plain() {
        let g = dumbbell();
        let plain = kl_bisect(&g, &KlOptions::default());
        let metered =
            kl_bisect_metered(&g, &KlOptions::default(), &BudgetMeter::unlimited()).unwrap();
        assert_eq!(plain, metered);
    }

    #[test]
    fn metered_exhaustion_surfaces() {
        let g = dumbbell();
        let budget = np_sparse::Budget::default().with_matvecs(1);
        let meter = BudgetMeter::new(&budget);
        assert!(kl_bisect_metered(&g, &KlOptions::default(), &meter).is_err());
    }

    #[test]
    fn two_vertex_graph() {
        let mut b = TripletBuilder::new(2);
        b.push_sym(0, 1, 3.0);
        let r = kl_bisect(&b.into_csr(), &KlOptions::default());
        assert_eq!(r.cut_weight, 3.0);
        assert_ne!(r.left[0], r.left[1]);
    }
}
