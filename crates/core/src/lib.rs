//! Spectral ratio-cut partitioning based on the netlist intersection graph.
//!
//! This crate implements the algorithms of Cong, Hagen and Kahng,
//! *Net Partitions Yield Better Module Partitions* (DAC 1992):
//!
//! * [`models`] — graph representations of the netlist hypergraph: the
//!   standard weighted **clique** net model and the dual **intersection
//!   graph** with the paper's edge weighting (§2);
//! * [`ordering`] — spectral (Fiedler-vector) linear orderings of modules
//!   or nets;
//! * [`eig1`](fn@eig1) — the Hagen–Kahng EIG1 baseline: spectral *module*
//!   ordering on the clique-model graph plus a best-prefix ratio-cut sweep;
//! * [`ig_vote`](fn@ig_vote) — the Hagen–Kahng IG-Vote (EIG1-IG) heuristic:
//!   spectral *net* ordering plus threshold voting (paper Appendix B);
//! * [`ig_match`](fn@ig_match) — the paper's contribution: for every split
//!   of the net ordering, an incremental maximum-matching /
//!   maximum-independent-set computation completes the net partition into a
//!   module partition cutting at most `|maximum matching|` nets
//!   (Theorems 2–5), in `O(|V|·(|V|+|E|))` total for all splits
//!   (Theorem 6);
//! * [`engine`] — the composable stage layer: every algorithm above (plus
//!   the baselines) as a uniform [`Stage`], glued together by
//!   [`Pipeline`]s and [`FallbackChain`]s, sharing one [`RunContext`]
//!   (budget meter, seed, instrumentation);
//! * [`kway`] — balanced k-way partitioning with fixed modules, by
//!   recursive bisection of the hybrid pipeline or by direct multiway
//!   spectral embedding with seeded k-means rounding.
//!
//! # Quickstart
//!
//! ```
//! use np_core::{ig_match, IgMatchOptions};
//! use np_netlist::hypergraph_from_nets;
//!
//! // two clusters of modules joined by a single net
//! let hg = hypergraph_from_nets(
//!     8,
//!     &[
//!         vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3],
//!         vec![4, 5], vec![5, 6], vec![6, 7], vec![4, 7],
//!         vec![3, 4], // bridge
//!     ],
//! );
//! let out = ig_match(&hg, &IgMatchOptions::default())?;
//! assert_eq!(out.result.stats.cut_nets, 1); // only the bridge is cut
//! assert_eq!(out.result.stats.areas(), "4:4");
//! # Ok::<(), np_core::PartitionError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod result;

pub mod bounds;
pub mod cluster;
pub mod eig1;
pub mod engine;
pub mod igmatch;
pub mod igvote;
pub mod kway;
pub mod models;
pub mod multiway;
pub mod ordering;
pub mod placement;
pub mod robust;

pub use eig1::{eig1, eig1_ctx, Eig1Options};
pub use engine::{
    BoxedStage, EventSink, FallbackChain, Partitioner, Pipeline, RunContext, Stage, StageEvent,
};
pub use error::{panic_error, PartitionError};
pub use igmatch::{ig_match, ig_match_ctx, IgMatchOptions, IgMatchOutcome};
pub use igvote::{ig_vote, ig_vote_ctx, IgVoteOptions};
pub use kway::{
    kway_partition, kway_partition_ctx, KwayMethod, KwayOptions, KwayPartitioner, KwayResult,
};
pub use models::IgWeighting;
pub use result::PartitionResult;
pub use robust::{
    robust_partition, robust_partition_ctx, Diagnostics, FallbackStage, RobustFailure,
    RobustOptions, RobustOutcome,
};
